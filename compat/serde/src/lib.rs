//! Vendored std-only subset of the `serde` serialization API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice the workspace uses: a [`Serialize`] trait (JSON-writing, not
//! format-generic — `serde_json` is the only consumer) and the
//! `#[derive(Serialize)]` macro re-exported from the vendored
//! `serde_derive`. Deserialization is out of scope.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Serialization into JSON text. `indent` is the nesting depth the value
/// starts at; implementations writing multi-line output indent their
/// closing delimiter by `indent` and their children by `indent + 1`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String, indent: usize);
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a JSON object from (name, value) pairs — the derive macro's
/// runtime half.
pub fn write_object(out: &mut String, indent: usize, fields: &[(&str, &dyn Serialize)]) {
    if fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (name, value)) in fields.iter().enumerate() {
        push_indent(out, indent + 1);
        push_json_string(out, name);
        out.push_str(": ");
        value.serialize_json(out, indent + 1);
        if i + 1 < fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    push_indent(out, indent);
    out.push('}');
}

fn write_seq<'a, I>(out: &mut String, indent: usize, items: I)
where
    I: ExactSizeIterator<Item = &'a dyn Serialize>,
{
    let n = items.len();
    if n == 0 {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, item) in items.enumerate() {
        push_indent(out, indent + 1);
        item.serialize_json(out, indent + 1);
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    push_indent(out, indent);
    out.push(']');
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        if self.is_finite() {
            // `{}` on f64 round-trips and never prints exponent-free
            // garbage; integral values get a trailing `.0` so the JSON
            // stays unambiguously a float.
            let s = format!("{self}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        (*self as f64).serialize_json(out, indent);
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        push_json_string(out, &self.to_string());
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        push_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        push_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        (**self).serialize_json(out, indent);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        write_seq(out, indent, self.iter().map(|x| x as &dyn Serialize));
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_slice().serialize_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.serialize_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String, indent: usize) {
                let items: Vec<&dyn Serialize> = vec![$(&self.$idx),+];
                write_seq(out, indent, items.iter().map(|x| *x as &dyn Serialize));
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s, 0);
        s
    }

    #[test]
    fn scalars_encode() {
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2.0");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&42u32), "42");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(json(&'x'), "\"x\"");
        assert_eq!(json(&None::<f64>), "null");
        assert_eq!(json(&Some(3.0f64)), "3.0");
    }

    #[test]
    fn sequences_and_tuples_nest() {
        assert_eq!(json(&Vec::<f64>::new()), "[]");
        let v = vec![(1.0f64, 2.0f64)];
        let s = json(&v);
        assert!(s.starts_with("[\n") && s.ends_with(']'), "{s}");
        assert!(s.contains("1.0") && s.contains("2.0"));
    }

    #[test]
    fn objects_are_pretty() {
        let mut s = String::new();
        write_object(&mut s, 0, &[("a", &1u8), ("b", &"x")]);
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": \"x\"\n}");
    }
}
