//! Vendored std-only subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice the property suite uses: [`Strategy`] (ranges, [`Just`],
//! [`prop_map`](Strategy::prop_map), `prop_oneof!`), [`any`],
//! [`collection::vec`], the `proptest!` test-defining macro, and
//! `prop_assert!` / `prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed (FNV-1a of the test name, XOR
//! `PROPTEST_SEED`); `PROPTEST_CASES` (default 64) controls the case
//! count. There is no shrinking: a failing case panics with the assert's
//! message directly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-test random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for one named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        TestRng(StdRng::seed_from_u64(h ^ seed))
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(64)
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> PropMap<Self, F>
    where
        Self: Sized,
    {
        PropMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.sample(rng)),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct PropMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for PropMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// A uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Length bounds for collection strategies (half-open internally).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` of values from `element`, length within `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts within a property (no shrinking: panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..$crate::cases() {
                $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = u32> {
        prop_oneof![Just(0u32), (1u32..5).prop_map(|x| x * 2)]
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_behave(
            x in 0.5f64..2.0,
            n in 1usize..10,
            flag in any::<bool>(),
            v in crate::collection::vec(0u8..4, 2..6),
            even in parity(),
        ) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(flag || !flag);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert_eq!(even % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
