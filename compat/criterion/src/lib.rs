//! Vendored std-only subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice the bench targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::from_parameter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warmup + calibrated timed loop; the mean time per iteration is printed
//! to stdout as `<id> ... time: <t>` so `scripts/bench_snapshot.sh` can
//! capture it. Sampling statistics, plots, and CLI filtering are out of
//! scope.
//!
//! Env knobs: `CRITERION_WARMUP_MS` (default 50) and
//! `CRITERION_MEASURE_MS` (default 200) bound the per-benchmark runtime.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(name: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

/// Runs one benchmark routine through warmup and measurement.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = env_ms("CRITERION_WARMUP_MS", 50);
        let measure = env_ms("CRITERION_MEASURE_MS", 200);

        // Warmup: run until the warmup budget elapses, counting iterations
        // to calibrate the measurement batch size.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (measure.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters = target.clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean_ns: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{id:<40} time: {:>12}   ({} iters)",
        format_time(b.mean_ns),
        b.iters
    );
}

/// Benchmark identifier: a name and/or a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from the parameter alone (group name supplies the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, for API compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a routine against one input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a routine under this group's prefix.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "2");
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5.0).ends_with("ns"));
        assert!(format_time(5.0e3).ends_with("µs"));
        assert!(format_time(5.0e6).ends_with("ms"));
        assert!(format_time(5.0e9).ends_with(" s"));
    }
}
