//! Vendored std-only subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of `rand` it actually uses: [`RngCore`], [`Rng`]
//! (`gen`/`gen_range`/`gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms and seeds, which is all the reproduction relies on (golden
//! values in tests were produced with this generator, not upstream
//! `rand`'s ChaCha12).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` (subset of upstream's trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`bool`: fair coin; floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + f64::sample_standard(rng) * (b - a)
    }
}

/// Uniform `u64` in `[0, span)` via the widening-multiply method.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (a as i128 + sample_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64. Not upstream `rand`'s ChaCha12,
    /// but deterministic, fast, and statistically solid for simulation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::sample_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&y));
            let z: u32 = rng.gen_range(0..=4);
            assert!(z <= 4);
            let w: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count() as f64 / n as f64;
        assert!((heads - 0.25).abs() < 0.01, "p {heads}");
        let coin = (0..n).filter(|_| rng.gen::<bool>()).count() as f64 / n as f64;
        assert!((coin - 0.5).abs() < 0.01, "coin {coin}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
