//! Vendored `#[derive(Serialize)]` for the std-only serde subset.
//!
//! No `syn`/`quote` (the build environment has no crates.io access):
//! the macro scans the raw token stream for `struct <Name> { ... }` and
//! emits a `serde::Serialize` impl calling `serde::write_object` with the
//! field names. Supports plain structs with named fields — exactly the
//! shapes the workspace derives on. Enums, tuple structs, generics, and
//! `#[serde(...)]` attributes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name>`; anything before it (attributes, visibility,
    // doc comments) is irrelevant.
    let mut name: Option<String> = None;
    let mut body: Option<&TokenTree> = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("derive(Serialize): enums are not supported by the vendored serde; serialize a struct or a primitive".into());
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("derive(Serialize): expected a struct name".into()),
                }
                // The next top-level brace group is the field list.
                for rest in iter.by_ref() {
                    match rest {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            body = Some(rest);
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            return Err("derive(Serialize): generic structs are not supported by the vendored serde".into());
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                            return Err("derive(Serialize): tuple structs are not supported by the vendored serde".into());
                        }
                        _ => {}
                    }
                }
                break;
            }
            _ => {}
        }
    }

    let name = name.ok_or("derive(Serialize): no struct found")?;
    let body = match body {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => {
            return Err(format!(
                "derive(Serialize): struct {name} has no named fields"
            ))
        }
    };

    let fields = field_names(body)?;
    let mut pairs = String::new();
    for f in &fields {
        pairs.push_str(&format!("({f:?}, &self.{f} as &dyn ::serde::Serialize),"));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         \x20   fn serialize_json(&self, out: &mut ::std::string::String, indent: usize) {{\n\
         \x20       ::serde::write_object(out, indent, &[{pairs}]);\n\
         \x20   }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("derive(Serialize): generated code failed to parse: {e:?}"))
}

/// Extracts field names from the brace-group token stream of a struct.
///
/// Walks `attrs* vis? name ':' type ','` items. Inside a type, commas may
/// appear between `<`/`>` (generic arguments) — parenthesized and
/// bracketed subtrees arrive as single `Group` tokens, so only angle
/// brackets need explicit depth tracking.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    let mut angle_depth = 0i32;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if in_type {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        in_type = false;
                        last_ident = None;
                    }
                    _ => {}
                }
            }
            continue;
        }
        match tt {
            // Skip attributes (`#[...]`): the `#` then its bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    iter.next();
                }
            }
            TokenTree::Ident(id) => last_ident = Some(id.to_string()),
            // Visibility scope `pub(crate)` arrives as a paren group.
            TokenTree::Group(_) => {}
            TokenTree::Punct(p) if p.as_char() == ':' => {
                let f = last_ident
                    .take()
                    .ok_or("derive(Serialize): field colon without a name")?;
                // `pub` alone can't precede ':', so last_ident is the
                // field name (keywords like `pub` are overwritten by it).
                fields.push(f);
                in_type = true;
                angle_depth = 0;
            }
            _ => {}
        }
    }
    Ok(fields)
}
