//! Vendored std-only subset of `serde_json`.
//!
//! The vendored `serde::Serialize` writes JSON text directly, so this
//! crate is a thin entry point: [`to_string_pretty`] (and
//! [`to_string`], which currently produces the same pretty output — every
//! consumer in the workspace writes human-inspected result files).

#![forbid(unsafe_code)]

use std::fmt;

/// Serialization error. The vendored writer is infallible; the type
/// exists so call sites keep upstream's `Result` shape.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out, 0);
    Ok(out)
}

/// Serializes `value` as JSON. Alias of [`to_string_pretty`] here.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Record {
        name: String,
        value: f64,
        tags: Vec<(String, f64)>,
        count: usize,
        flag: bool,
        missing: Option<f64>,
    }

    #[test]
    fn derived_struct_round_trips_to_expected_json() {
        let r = Record {
            name: "x".into(),
            value: 2.5,
            tags: vec![("a".into(), 1.0)],
            count: 3,
            flag: true,
            missing: None,
        };
        let s = super::to_string_pretty(&r).unwrap();
        assert!(s.contains("\"name\": \"x\""), "{s}");
        assert!(s.contains("\"value\": 2.5"), "{s}");
        assert!(s.contains("\"count\": 3"), "{s}");
        assert!(s.contains("\"flag\": true"), "{s}");
        assert!(s.contains("\"missing\": null"), "{s}");
        assert!(s.starts_with("{\n") && s.ends_with('}'), "{s}");
    }
}
