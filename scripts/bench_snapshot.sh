#!/usr/bin/env bash
# Performance snapshot of the evaluation engine:
#   1. criterion microbenches for allocation and baseband, and
#   2. the end-to-end snapshot binary, which times the 25-AP
#      allocate_with_restarts path (BENCH_allocation.json) and the
#      baseband Monte-Carlo engine against the pre-workspace baseline
#      (BENCH_baseband.json), both at the repo root.
#
# Usage: scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== criterion: bench_allocation =="
cargo bench --offline -p acorn-bench --bench bench_allocation

echo
echo "== criterion: bench_baseband =="
cargo bench --offline -p acorn-bench --bench bench_baseband

echo
echo "== end-to-end: baseband engine + 25-AP allocate_with_restarts =="
cargo run --offline --release -p acorn-bench --bin bench_snapshot

echo
echo "== event runtime: kernel micro + composite 25/400-AP scaling =="
cargo run --offline --release -p acorn-bench --bin bench_events

echo
echo "== dynamic channel bonding: approximation gap + CTMC cross-check =="
cargo run --offline --release -p acorn-bench --bin bench_dcb

echo
echo "snapshots written to BENCH_baseband.json, BENCH_allocation.json, BENCH_events.json and BENCH_dcb.json"
