#!/usr/bin/env bash
# Performance snapshot of the evaluation engine:
#   1. criterion microbenches for allocation and baseband, and
#   2. the 25-AP end-to-end allocate_with_restarts timing, which writes
#      BENCH_allocation.json at the repo root.
#
# Usage: scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== criterion: bench_allocation =="
cargo bench --offline -p acorn-bench --bench bench_allocation

echo
echo "== criterion: bench_baseband =="
cargo bench --offline -p acorn-bench --bench bench_baseband

echo
echo "== end-to-end: 25-AP allocate_with_restarts =="
cargo run --offline --release -p acorn-bench --bin bench_snapshot

echo
echo "snapshot written to BENCH_allocation.json"
