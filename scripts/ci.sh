#!/usr/bin/env bash
# The tier-1 gate, runnable locally and from any CI runner:
#   1. formatting (cargo fmt --check, whole workspace),
#   2. release build,
#   3. the root test suite (tier-1: reproduction guards, properties,
#      determinism, event-runtime goldens),
#   4. the determinism + golden suites re-run under ACORN_THREADS = 1, 2
#      and 8 — the engine's thread-count cap must never move an output
#      bit, including the hard-coded pre-port fingerprints.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --all -- --check

echo
echo "== release build =="
cargo build --release --offline

echo
echo "== tests =="
cargo test -q --offline

echo
echo "== determinism across thread counts =="
for t in 1 2 8; do
    echo "-- ACORN_THREADS=$t --"
    ACORN_THREADS=$t cargo test -q --offline --release \
        --test determinism --test event_runtime
done

echo
echo "ci: all gates passed"
