#!/usr/bin/env bash
# The tier-1 gate, runnable locally and from any CI runner:
#   1. formatting (cargo fmt --check, whole workspace),
#   2. panic-path budget: `unwrap()` / `expect(` / `panic!(` in ANY
#      crate's non-test code must not grow past the audited baselines
#      (one for library crates, one for the bench/figure binaries —
#      fallible library paths return typed errors instead),
#   3. warnings-clean check build of the whole workspace,
#   4. release build,
#   5. the root test suite (tier-1: reproduction guards, properties,
#      determinism, resilience, event-runtime goldens),
#   5b. the distributed golden-twin gate: the zone-controller plane's
#      benign-path allocation must equal the centralized controller's
#      exactly, and partitions must degrade per-zone only,
#   5c. the chaos-soak smoke gate: short-horizon soak with internal
#      ACORN_THREADS = 1/2/8 sweep (bit-identical logs + sketch
#      fingerprints), sabotage negative test, bounded-telemetry growth,
#      plane chaos heal, and the sketch property suite,
#   6. the observability overhead gate: the baseband packet path must
#      stay zero-allocation with a NullSink attached (measured under the
#      counting allocator), and instrumented runs must be bit-identical
#      to plain ones,
#   7. the determinism + golden suites re-run under ACORN_THREADS = 1, 2
#      and 8 — the engine's thread-count cap must never move an output
#      bit, including the hard-coded pre-port fingerprints. The
#      determinism sweep runs with a RecordingSink attached and asserts
#      byte-stable snapshot JSON; the resilience suite records through
#      the events-layer sinks (faults.*, csa.*, iapp.* counters).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --all -- --check

echo
echo "== panic-path budget (all crates, non-test) =="
# Two audited baselines. Library crates (28): provably-unreachable
# expects (core/par.rs), frame-layout invariants (baseband/frame.rs),
# and lock-poisoning fallbacks — everything reachable from user input
# returns a typed error (the soak crate adds zero: all fallible
# registrations go through `if let Ok`). Bench/figure binaries (32) may
# unwrap on their own outputs. Test modules sit at the bottom of each
# file behind #[cfg(test)], so counting stops at that marker.
LIB_PANIC_BASELINE=28
BIN_PANIC_BASELINE=32
count_panics() { # $1: newline-separated file list
    local total=0 f hits
    while IFS= read -r f; do
        [ -f "$f" ] || continue
        hits=$(awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
            | grep -cE '\.unwrap\(\)|\.expect\(|panic!\(' || true)
        if [ "$hits" -gt 0 ]; then
            echo "  $f: $hits" >&2
            total=$((total + hits))
        fi
    done <<< "$1"
    echo "$total"
}
lib_count=$(count_panics "$(find crates -path 'crates/bench' -prune -o \
    -path '*/src/*' -name '*.rs' -print | sort)")
bin_count=$(count_panics "$(find crates/bench/src -name '*.rs' | sort)")
echo "  lib total: $lib_count (baseline $LIB_PANIC_BASELINE)"
echo "  bench-bin total: $bin_count (baseline $BIN_PANIC_BASELINE)"
if [ "$lib_count" -gt "$LIB_PANIC_BASELINE" ] \
    || [ "$bin_count" -gt "$BIN_PANIC_BASELINE" ]; then
    echo "panic-path budget exceeded" >&2
    echo "(convert the new unwrap/expect/panic to a typed error, or" >&2
    echo " re-audit and bump the baseline in scripts/ci.sh)" >&2
    exit 1
fi

echo
echo "== warnings-clean check =="
RUSTFLAGS="-D warnings" cargo check --offline --workspace --all-targets

echo
echo "== release build =="
cargo build --release --offline

echo
echo "== tests =="
cargo test -q --offline

echo
echo "== observability overhead gate (NullSink) =="
# The disabled-observability contract, measured rather than assumed:
# 0 allocs/packet on the warm baseband path, plain == instrumented bit
# patterns. scripts/bench_snapshot.sh tracks the companion < 2%
# wall-clock budget in BENCH_allocation.json / BENCH_baseband.json.
cargo test -q --offline --release -p acorn-bench --test obs_overhead

echo
echo "== goodput-table accuracy gate =="
# The memoized SNR->PER->goodput table must stay within its documented
# error budget (GoodputTable::GOODPUT_TOLERANCE_BPS) over the full
# MCS x width x SNR sweep, and must not change any golden-topology
# coloring. The companion spatial_graph properties pin the grid-built
# interference graph to the brute-force oracle, edge for edge.
cargo test -q --offline --release --test table_accuracy --test spatial_graph

echo
echo "== dynamic-channel-bonding gate =="
# The DCB event simulator must land within the documented tolerance of
# the exactly solved Faridi-style CTMC on every cross-check topology x
# Markovian policy, and the branch-and-bound optimum must terminate on
# the enumerable gap topologies without the greedy ever beating it
# (tests/dcb.rs documents both bounds; bench_dcb snapshots the same
# numbers to BENCH_dcb.json).
cargo test -q --offline --release --test dcb

echo
echo "== distributed golden-twin gate =="
# The distributed control plane must land on EXACTLY the centralized
# controller's allocation on the benign path (assignments, widths and
# associations, bit for bit) on three seeded multi-zone topologies, and
# a partition must degrade only the isolated zone (per-zone safe mode,
# post-heal reconvergence to the twin).
cargo test -q --offline --release --test distributed_twin

echo
echo "== chaos-soak smoke gate =="
# Short-horizon soak over a 16-AP city grid: the chaos sweep test runs
# the full faulty soak at ACORN_THREADS = 1/2/8 internally and asserts
# bit-identical event logs, telemetry snapshot bytes (which cover every
# sketch fingerprint), and final state; sabotage must trip the watchdog
# with replayable coordinates; sketch/series telemetry must stay
# bounded as the horizon grows; and the distributed plane must heal
# back to its centralized twin under periodic partition/crash windows.
# The sketch property suite pins merge commutativity / associativity
# and the deterministic rank-error bound against an exact ECDF.
cargo test -q --offline --release --test soak
cargo test -q --offline --release -p acorn-obs --test sketch_props

echo
echo "== determinism across thread counts =="
# determinism.rs sweeps ACORN_THREADS internally (fault-free AND faulty
# composites, the per-transmission DCB runs over the overlapping-BSS
# grid, plus the faulty distributed control plane: loss + a
# zone-controller crash, event-log/telemetry/per-zone-allocation
# equality); the outer loop additionally pins the *ambient* thread
# count for the golden-fingerprint and resilience suites.
# baseband_determinism.rs sweeps ACORN_THREADS itself and asserts the
# batched packet engine (run_packets) is outcome-for-outcome bit-identical
# to the per-packet path at 1/2/8 threads; the obs_overhead gate above
# holds the companion zero-allocation claim for both paths.
for t in 1 2 8; do
    echo "-- ACORN_THREADS=$t --"
    ACORN_THREADS=$t cargo test -q --offline --release \
        --test determinism --test event_runtime --test resilience
done
cargo test -q --offline --release --test baseband_determinism

echo
echo "== city-scale determinism (10k APs, sharded + memoized) =="
# The full 25x25-district composite: sharded re-allocation and the
# memoized table swept at ACORN_THREADS = 1/2/8 inside the test.
ACORN_CITY_FULL=1 cargo test -q --offline --release \
    --test determinism sharded_and_city

echo
echo "ci: all gates passed"
