#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation plus the
# ablations. Outputs: console tables + results/*.json (+ results/logs/).
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: the tier-1 gate (fmt, build, tests, thread-count
# determinism). Regenerating figures from a broken tree wastes an hour.
scripts/ci.sh

mkdir -p results/logs
BINS="fig01_psd fig02_constellation fig03_ber fig04_per fig05_sigma \
      table1_transitions fig06_throughput fig08_channels fig09_durations \
      fig10_topologies fig11_interference table3_random fig13_mobility \
      fig14_approx ablations ext_sinr_susceptibility ext_bianchi"
for b in $BINS; do
    echo "== $b =="
    cargo run --release -q -p acorn-bench --bin "$b" | tee "results/logs/$b.txt"
done
echo "All experiments regenerated. See EXPERIMENTS.md for the paper-vs-measured record."
