//! Regression guard for the parallel baseband Monte-Carlo engine: the
//! thread count, workspace reuse, and batching must never change an
//! answer. Mirrors `tests/determinism.rs` (which covers the allocation
//! engine) for the frame pipeline: several configs spanning SISO/STBC,
//! AWGN/selective fading, and genie/preamble sync are run at
//! `ACORN_THREADS` = 1, 2 and 8, and every report — including the f64
//! bit patterns and the constellation sample — must be identical.
//!
//! Kept as a single `#[test]` because the env var is process-global and
//! the thread counts must run sequentially.

use acorn::baseband::channel::ChannelModel;
use acorn::baseband::frame::{
    mix_seed, run_trial_with, run_trials, try_run_trial, Equalization, FrameConfig, FrameReport,
    FrameWorkspace, SyncMode,
};
use acorn::baseband::PacketOutcome;
use acorn::phy::ChannelWidth;

/// A spread of operating points that together exercise every branch the
/// per-packet pipeline can take: both widths, coded and uncoded, SISO and
/// Alamouti, flat and frequency-selective channels, genie and correlation
/// sync, genie and least-squares equalization.
fn configs() -> Vec<FrameConfig> {
    let base20 = FrameConfig::baseline(ChannelWidth::Ht20);
    let base40 = FrameConfig::baseline(ChannelWidth::Ht40);
    vec![
        FrameConfig {
            equalization: Equalization::Genie,
            packet_bytes: 400,
            ..base20
        }
        .with_target_snr(6.0),
        FrameConfig {
            code_rate: Some(acorn::phy::CodeRate::R34),
            packet_bytes: 300,
            ..base40
        }
        .with_target_snr(9.0),
        FrameConfig {
            stbc: true,
            channel: ChannelModel::FlatRayleigh,
            packet_bytes: 200,
            ..base20
        }
        .with_target_snr(12.0),
        FrameConfig {
            channel: ChannelModel::SelectiveRayleigh {
                taps: 6,
                delay_spread_taps: 2.0,
            },
            sync: SyncMode::Preamble { threshold: 0.5 },
            packet_bytes: 250,
            ..base20
        }
        .with_target_snr(8.0),
    ]
}

fn bitwise_eq(a: &FrameReport, b: &FrameReport) -> bool {
    a == b
        && a.evm_rms.to_bits() == b.evm_rms.to_bits()
        && a.measured_tx_power.to_bits() == b.measured_tx_power.to_bits()
        && a.constellation.len() == b.constellation.len()
        && a.constellation
            .iter()
            .zip(&b.constellation)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

#[test]
fn baseband_results_are_identical_across_thread_counts() {
    const PACKETS: usize = 24;
    const SEED: u64 = 20_260_806;
    let configs = configs();

    // Reference: the sequential fold through one long-lived workspace.
    let mut ws = FrameWorkspace::new();
    let reference: Vec<FrameReport> = configs
        .iter()
        .map(|c| run_trial_with(c, PACKETS, SEED, &mut ws).unwrap())
        .collect();

    for threads in ["1", "2", "8"] {
        std::env::set_var("ACORN_THREADS", threads);
        for (c, want) in configs.iter().zip(&reference) {
            let got = try_run_trial(c, PACKETS, SEED).unwrap();
            assert!(
                bitwise_eq(&got, want),
                "parallel trial differs from sequential at {threads} threads \
                 for {c:?}: {got:?} vs {want:?}"
            );
        }

        // The batched packet engine must match the per-packet entry,
        // outcome for outcome, at every thread count: `run_packets` is
        // what every worker's chunk loop executes, so this is the
        // bit-identity contract the engine speedup rests on.
        for c in &configs {
            let seeds: Vec<u64> = (0..PACKETS as u64).map(|i| mix_seed(SEED, i)).collect();
            let mut ws_batch = FrameWorkspace::new();
            let mut batched: Vec<PacketOutcome> = Vec::new();
            ws_batch.run_packets(c, &seeds, &mut batched).unwrap();
            let mut ws_seq = FrameWorkspace::new();
            for (k, &seed) in seeds.iter().enumerate() {
                let single = ws_seq.run_packet(c, seed).unwrap();
                let b = &batched[k];
                assert_eq!(single.bits, b.bits, "packet {k} bits for {c:?}");
                assert_eq!(single.bit_errors, b.bit_errors, "packet {k} for {c:?}");
                assert_eq!(single.sync_failed, b.sync_failed, "packet {k} for {c:?}");
                assert_eq!(
                    single.tx_power.to_bits(),
                    b.tx_power.to_bits(),
                    "packet {k} tx power for {c:?}"
                );
                assert_eq!(
                    single.evm_sum.to_bits(),
                    b.evm_sum.to_bits(),
                    "packet {k} evm for {c:?}"
                );
                assert_eq!(single.evm_n, b.evm_n, "packet {k} evm count for {c:?}");
            }
        }

        // The batched sweep must honor its documented contract at every
        // thread count: `run_trials(cs, n, seed)[i]` equals the standalone
        // trial of `cs[i]` on the derived seed `mix_seed(seed, i)`.
        let sweep = run_trials(&configs, PACKETS, SEED);
        for (i, (c, got)) in configs.iter().zip(&sweep).enumerate() {
            let want = try_run_trial(c, PACKETS, mix_seed(SEED, i as u64)).unwrap();
            assert!(
                bitwise_eq(got.as_ref().unwrap(), &want),
                "sweep entry {i} differs from its standalone trial at {threads} threads"
            );
        }
    }
    std::env::remove_var("ACORN_THREADS");

    // Workspace reuse is transparent: a fresh workspace per trial gives
    // bit-identical reports to the long-lived one used for the reference,
    // even though the reference workspace was retuned across configs.
    for (c, want) in configs.iter().zip(&reference) {
        let mut fresh = FrameWorkspace::new();
        let got = run_trial_with(c, PACKETS, SEED, &mut fresh).unwrap();
        assert!(
            bitwise_eq(&got, want),
            "fresh workspace differs from reused workspace for {c:?}"
        );
    }
}
