//! Release gates for the dynamic-channel-bonding stack (ROADMAP item 3):
//!
//! 1. **CTMC cross-check** — the event-driven DCB simulator must land
//!    within `CTMC_TOLERANCE` of the exactly solved stationary chain on
//!    every overlapping-BSS cross-check topology, for every Markovian
//!    policy family. The chain is an independent closed-form model
//!    (Faridi et al., arXiv:1509.00290), so agreement here validates the
//!    simulator's carrier-sensing, censoring, and width dynamics the way
//!    PR 2's calibration module validated the baseband.
//! 2. **Greedy-vs-exact approximation gap** — the branch-and-bound
//!    optimum (Kai et al., arXiv:1703.03909 role) must terminate on the
//!    enumerable gap topologies, never lose to the paper's greedy, and
//!    the measured gap must stay above a documented floor. The same
//!    numbers are recorded in `BENCH_dcb.json` by `bench_dcb`.
//!
//! `scripts/ci.sh` runs this file as a `--release` gate alongside
//! `table_accuracy` and `spatial_graph`.

use acorn::core::allocation::{allocate_with_restarts, AllocationConfig};
use acorn::core::model::ThroughputModel;
use acorn::core::theory::y_star_bps;
use acorn::dcb::{allocate_exact, ctmc, CtmcParams, ExactConfig, MarkovPolicy, PolicyKind};
use acorn::events::{DcbScenario, OverlappingBssGrid};
use acorn::topology::{Channel20, ChannelAssignment, InterferenceGraph};

/// Documented simulator-vs-CTMC tolerance: per-WLAN relative error on a
/// 60 000 s horizon. The sampling error of a regenerative mean over that
/// horizon sits near 1–2%; 5% gives three-sigma headroom while still
/// catching any systematic modelling drift (a wrong service rate or a
/// missed censoring path shows up as 10%+).
const CTMC_TOLERANCE: f64 = 0.05;

/// Documented floor for the measured greedy/exact ratio on the gap
/// topologies (the paper's greedy is near-optimal at this scale; the
/// worst case O(1/(Δ+1)) is far below it).
const GAP_FLOOR: f64 = 0.90;

fn bonded(c: u8) -> ChannelAssignment {
    match ChannelAssignment::bonded(Channel20(c)) {
        Some(b) => b,
        None => unreachable!("even lower channel"),
    }
}

fn single(c: u8) -> ChannelAssignment {
    ChannelAssignment::Single(Channel20(c))
}

/// The overlapping-BSS cross-check topologies: small enough to solve
/// exactly, dense enough that bonding decisions interact.
fn crosscheck_topologies() -> Vec<(&'static str, InterferenceGraph, Vec<ChannelAssignment>)> {
    vec![
        (
            "k2-bond-overlap",
            InterferenceGraph::complete(2),
            vec![bonded(0), single(1)],
        ),
        (
            "chain3-shared-bond",
            InterferenceGraph::from_edges(3, &[(0, 1), (1, 2)]),
            vec![bonded(0), single(1), bonded(0)],
        ),
        (
            "k4-two-bond-pairs",
            InterferenceGraph::complete(4),
            vec![bonded(0), single(1), bonded(2), single(3)],
        ),
    ]
}

fn markov_policies() -> Vec<(PolicyKind, MarkovPolicy)> {
    vec![
        (PolicyKind::StaticPrimary, MarkovPolicy::StaticPrimary),
        (PolicyKind::AlwaysMax, MarkovPolicy::AlwaysMax),
        (
            PolicyKind::Probabilistic(0.5),
            MarkovPolicy::Probabilistic(0.5),
        ),
    ]
}

#[test]
fn simulator_matches_ctmc_on_every_crosscheck_topology() {
    let params = CtmcParams::default();
    for (name, graph, alloc) in crosscheck_topologies() {
        for (kind, markov) in markov_policies() {
            let exact = match ctmc::solve(&graph, &alloc, markov, &params) {
                Ok(s) => s,
                Err(e) => unreachable!("{name}: CTMC must solve: {e}"),
            };
            let mut scenario = DcbScenario::new(graph.clone(), alloc.clone(), kind, 0xDCB0);
            scenario.params = params;
            scenario.horizon_s = 60_000.0;
            let sim = scenario.run();
            for i in 0..graph.len() {
                let want = exact.per_wlan_bps[i];
                let got = sim.per_ap_bps[i];
                let rel = (got - want).abs() / want;
                assert!(
                    rel <= CTMC_TOLERANCE,
                    "{name}/{kind:?} wlan {i}: sim {got:.0} vs ctmc {want:.0} \
                     (rel {rel:.4} > {CTMC_TOLERANCE})"
                );
            }
        }
    }
}

/// The simulator also reproduces the chain's *width usage*, not just its
/// throughput: the stationary 40 MHz time fraction must match.
#[test]
fn simulator_matches_ctmc_width_usage() {
    let params = CtmcParams::default();
    let (_, graph, alloc) = crosscheck_topologies().remove(0);
    let exact = match ctmc::solve(&graph, &alloc, MarkovPolicy::AlwaysMax, &params) {
        Ok(s) => s,
        Err(e) => unreachable!("CTMC must solve: {e}"),
    };
    let mut scenario = DcbScenario::new(graph, alloc, PolicyKind::AlwaysMax, 0xDCB1);
    scenario.horizon_s = 60_000.0;
    let sim = scenario.run();
    let want = exact.tx40_time_fraction[0];
    let got = sim.tx40_time_fraction[0];
    assert!(
        (got - want).abs() <= CTMC_TOLERANCE * want.max(0.05),
        "tx40 fraction: sim {got:.4} vs ctmc {want:.4}"
    );
}

/// The gap topologies: enumerable deployments where the exact search
/// terminates. Matches `bench_dcb`'s table.
fn gap_grids() -> Vec<(&'static str, OverlappingBssGrid)> {
    vec![
        (
            "grid2x2-4ch",
            OverlappingBssGrid {
                nx: 2,
                ny: 2,
                clients_per_ap: 3,
                n_channels: 4,
                seed: 101,
            },
        ),
        (
            "grid2x3-4ch",
            OverlappingBssGrid {
                nx: 2,
                ny: 3,
                clients_per_ap: 2,
                n_channels: 4,
                seed: 202,
            },
        ),
        (
            "grid3x2-2ch",
            OverlappingBssGrid {
                nx: 3,
                ny: 2,
                clients_per_ap: 2,
                n_channels: 2,
                seed: 303,
            },
        ),
    ]
}

#[test]
fn exact_search_terminates_and_bounds_the_greedy() {
    for (name, grid) in gap_grids() {
        let model = grid.model();
        let plan = grid.plan();
        let exact = allocate_exact(&model, &plan, &ExactConfig::default());
        assert!(exact.complete, "{name}: exact search must terminate");
        let greedy = allocate_with_restarts(&model, &plan, &AllocationConfig::default(), 8, 0xD0CB);
        let greedy_bps = model.total_bps(&greedy.assignments);
        assert!(
            exact.total_bps >= greedy_bps - 1e-6,
            "{name}: optimum {} below greedy {}",
            exact.total_bps,
            greedy_bps
        );
        assert!(
            exact.total_bps <= y_star_bps(&model) + 1e-6,
            "{name}: optimum above the interference-free ceiling"
        );
        let gap = acorn::dcb::greedy_vs_exact_gap(greedy_bps, exact.total_bps);
        assert!(
            gap >= GAP_FLOOR,
            "{name}: measured gap {gap:.4} under the documented floor {GAP_FLOOR}"
        );
        assert!(exact.assignments.iter().all(|&a| plan.contains(a)));
    }
}

/// Policy families are ordered the way the DCB papers predict on a dense
/// shared-spectrum grid: bonding at all beats never bonding, and the
/// occupancy-aware family stays within the envelope of the static
/// extremes rather than collapsing.
#[test]
fn policy_families_behave_on_the_dense_grid() {
    // 5 channels on a kings-move 3×3 at this seed: the epoch greedy
    // hands out 6 bonds AND leaves two neighbour pairs sharing a
    // primary — bonding decisions and carrier-sense blocking genuinely
    // coexist (the same grid bench_dcb reports on).
    let grid = OverlappingBssGrid {
        nx: 3,
        ny: 3,
        clients_per_ap: 2,
        n_channels: 5,
        seed: 11,
    };
    let run = |policy: PolicyKind| {
        let mut s = grid.scenario(policy, 4);
        s.horizon_s = 10_000.0;
        s.run()
    };
    let never = run(PolicyKind::StaticPrimary);
    let always = run(PolicyKind::AlwaysMax);
    let aware = run(PolicyKind::OccupancyAware(0.4));
    assert_eq!(never.completions40.iter().sum::<u64>(), 0);
    assert!(always.completions40.iter().sum::<u64>() > 0);
    assert!(
        never.blocked.iter().sum::<u64>() > 0,
        "the grid must have real carrier-sense contention"
    );
    assert!(
        always.total_bps() > never.total_bps(),
        "on λ/μ-symmetric traffic, extra width must not hurt aggregate"
    );
    assert!(aware.total_bps() >= never.total_bps());
}
