//! Regression guard for the parallel evaluation engine: the thread count
//! must never change an answer. Every fan-out point (candidate ranking,
//! restarts, the churn loop) is exercised at `ACORN_THREADS` = 1, 2 and 8
//! on several seeded topologies, and the results — including the f64 bit
//! patterns — must be identical.
//!
//! The env var is process-global and the three thread counts must run
//! sequentially, so the tests serialize on a shared lock.

use acorn_core::allocation::{
    allocate_sharded_with_restarts_obs, allocate_with_restarts, allocate_with_restarts_obs,
    random_initial, AllocationConfig,
};
use acorn_core::model::{ClientSnr, NetworkModel, ThroughputModel};
use acorn_core::{AcornConfig, AcornController, NetworkState};
use acorn_ctrlplane::{CrashWindow, DistributedPlane, PlaneConfig};
use acorn_dcb::PolicyKind;
use acorn_events::{
    CityReport, CityScenario, CompositeReport, CompositeScenario, DcbReport, DriftSpec, FaultPlan,
    MobilitySpec, OverlappingBssGrid,
};
use acorn_obs::RecordingSink;
use acorn_phy::{GoodputTable, LinkQualityEstimator};
use acorn_sim::churn::{run_churn, ChurnConfig, ChurnReport};
use acorn_sim::scenario::{city_grid, enterprise_grid, zoned_city};
use acorn_topology::{ApId, ChannelPlan, ClientId, InterferenceGraph, Point, Trajectory, Wlan};
use acorn_traces::{AssociationDurations, Session, SessionGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Both tests sweep the process-global `ACORN_THREADS` variable, so they
/// must never overlap within the test binary's parallel harness.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Seeded deployments of varying size, each with its own session trace.
fn topology(i: usize) -> (Wlan, AcornController, Vec<Session>) {
    let seeds = [41u64, 42, 43];
    let dims = [(2usize, 2usize), (3, 2), (3, 3)];
    let mut rng = StdRng::seed_from_u64(seeds[i]);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 3600.0);
    let (rows, cols) = dims[i];
    let wlan = enterprise_grid(rows, cols, 50.0, sessions.len().max(4), seeds[i]);
    let ctl = AcornController::new(AcornConfig::default());
    (wlan, ctl, sessions)
}

/// A random abstract model for the direct `allocate_with_restarts` path.
fn abstract_model(i: usize) -> NetworkModel {
    let mut rng = StdRng::seed_from_u64(90 + i as u64);
    let n_aps = 4 + i;
    let cells: Vec<Vec<ClientSnr>> = (0..n_aps)
        .map(|_| {
            (0..rng.gen_range(1..4usize))
                .map(|c| ClientSnr {
                    client: c,
                    snr20_db: rng.gen_range(1.5..32.0),
                })
                .collect()
        })
        .collect();
    NetworkModel::new(InterferenceGraph::complete(n_aps), cells)
}

fn run_controller_alloc(wlan: &Wlan, ctl: &AcornController, seed: u64) -> (NetworkState, u64) {
    let mut state = ctl.new_state(wlan, seed);
    for c in 0..wlan.clients.len() {
        ctl.associate(wlan, &mut state, ClientId(c));
    }
    let r = ctl.reallocate_with_restarts(wlan, &mut state, 8, seed.wrapping_add(10));
    (state, r.total_bps.to_bits())
}

fn run_churn_once(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    seed: u64,
) -> ChurnReport {
    let cfg = ChurnConfig {
        horizon_s: 3600.0,
        reallocation_period_s: 1200.0,
        restarts: 4,
        adapt_widths: true,
    };
    run_churn(wlan, ctl, sessions, &cfg, seed)
}

/// The event-runtime composite: churn + a walking client + shadowing
/// drift in one simulation — every standard process active at once, with
/// the executed-event log and the telemetry snapshot as the comparands.
fn run_composite(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    seed: u64,
) -> CompositeReport {
    let mobile = ClientId(wlan.clients.len() - 1);
    let from = wlan.clients[mobile.0].pos;
    CompositeScenario {
        wlan: wlan.clone(),
        sessions: sessions.to_vec(),
        horizon_s: 3600.0,
        reallocation_period_s: 1200.0,
        restarts: 4,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 40.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 120.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.03,
        }),
        faults: None,
        seed,
        record_log: true,
    }
    .run(ctl)
}

/// The composite plus the fault layer at full tilt: an AP crash, message
/// loss/corruption/delay, and measurement faults. Every fault decision
/// runs inside event handlers with seeds keyed on event sequence numbers,
/// so the thread count must not move a single bit of it either.
fn run_faulty_composite(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    seed: u64,
) -> CompositeReport {
    let mobile = ClientId(wlan.clients.len() - 1);
    let from = wlan.clients[mobile.0].pos;
    CompositeScenario {
        wlan: wlan.clone(),
        sessions: sessions.to_vec(),
        horizon_s: 3600.0,
        reallocation_period_s: 1200.0,
        restarts: 4,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 40.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 120.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.03,
        }),
        faults: Some(FaultPlan {
            seed: seed ^ 0xFA17,
            control_period_s: 30.0,
            ap_mttf_s: Some(600.0),
            ap_mttr_s: 300.0,
            max_crashes: 1,
            loss: 0.2,
            corruption: 0.05,
            delay_prob: 0.1,
            delay_max_s: 45.0,
            meas_nan: 0.02,
            meas_outlier: 0.05,
            meas_freeze: 0.05,
            ..FaultPlan::default()
        }),
        seed,
        record_log: true,
    }
    .run(ctl)
}

/// A disconnected abstract model: disjoint complete blocks, so the
/// sharded allocator actually fans out over several components.
fn multi_component_model(i: usize) -> NetworkModel {
    let mut rng = StdRng::seed_from_u64(700 + i as u64);
    let blocks: &[usize] = [&[3usize, 4, 2][..], &[1, 5, 3, 2][..], &[2, 2, 2, 2, 1][..]][i];
    let n: usize = blocks.iter().sum();
    let mut g = InterferenceGraph::new(n);
    let mut base = 0;
    for &b in blocks {
        for a in base..base + b {
            for c in (a + 1)..base + b {
                g.add_edge(ApId(a), ApId(c));
            }
        }
        base += b;
    }
    let cells: Vec<Vec<ClientSnr>> = (0..n)
        .map(|_| {
            (0..rng.gen_range(1..4usize))
                .map(|c| ClientSnr {
                    client: c,
                    snr20_db: rng.gen_range(1.5..32.0),
                })
                .collect()
        })
        .collect();
    NetworkModel::new(g, cells)
}

/// A memoized goodput table small enough to rebuild per run in a debug
/// test. Sharing one table between the compared runs would also be fine
/// now — its counters are cumulative and every model reports deltas
/// against its own attach-time cursor — but a fresh table per run keeps
/// each comparand fully self-contained.
fn small_table() -> Arc<GoodputTable> {
    Arc::new(GoodputTable::build(
        LinkQualityEstimator::default(),
        -12.0,
        48.0,
        0.25,
    ))
}

/// Thread-sweep goldens for the city-scale fast paths: the sharded
/// allocator on disconnected models (results and RecordingSink snapshot
/// bytes) and the city composite (sharded re-allocation + memoized
/// table + drift) must be bit-identical at `ACORN_THREADS` = 1, 2 and 8.
///
/// The city deployment defaults to 2×2 districts (16 APs) so the sweep
/// stays debug-test sized; set `ACORN_CITY_FULL=1` to run the 25×25
/// district (10 000 AP) composite instead — `scripts/ci.sh` does so in
/// release as part of the thread-count gate.
#[test]
fn sharded_and_city_runs_are_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let thread_counts = ["1", "2", "8"];
    let alloc_cfg = AllocationConfig::default();
    let plan = ChannelPlan::restricted(6);

    for topo in 0..3 {
        let model = multi_component_model(topo);
        let initial = random_initial(&plan, model.n_aps(), 900 + topo as u64);
        let mut runs: Vec<(Vec<_>, u64)> = Vec::new();
        let mut snaps: Vec<String> = Vec::new();
        for threads in thread_counts {
            std::env::set_var("ACORN_THREADS", threads);
            let sink = RecordingSink::new();
            let r = allocate_sharded_with_restarts_obs(
                &model,
                &plan,
                initial.clone(),
                &alloc_cfg,
                6,
                800 + topo as u64,
                &sink,
            );
            runs.push((r.assignments, r.total_bps.to_bits()));
            snaps.push(sink.snapshot().to_json());
        }
        std::env::remove_var("ACORN_THREADS");
        for (t, threads) in thread_counts.iter().enumerate().skip(1) {
            assert_eq!(
                runs[0], runs[t],
                "model {topo}: sharded allocation differs at {threads} threads"
            );
            assert_eq!(
                snaps[0], snaps[t],
                "model {topo}: sharded snapshot bytes differ at {threads} threads"
            );
        }
        assert!(
            snaps[0].contains("alloc.shards"),
            "sharded path must report its shard count"
        );
    }

    let full = std::env::var("ACORN_CITY_FULL").is_ok();
    let (districts, aps_side) = if full { (25, 4) } else { (2, 2) };
    let n_aps = districts * districts * aps_side * aps_side;
    let mut rng = StdRng::seed_from_u64(4242);
    let sessions = SessionGenerator {
        arrival_rate_per_s: n_aps as f64 / 300.0,
        durations: AssociationDurations::default(),
    }
    .generate(&mut rng, 3600.0);
    let wlan = city_grid(districts, aps_side, sessions.len().max(1), 4242);
    let mut city_runs: Vec<CityReport> = Vec::new();
    for threads in thread_counts {
        std::env::set_var("ACORN_THREADS", threads);
        let ctl = AcornController::with_table(AcornConfig::default(), small_table());
        city_runs.push(
            CityScenario {
                wlan: wlan.clone(),
                sessions: sessions.clone(),
                horizon_s: 3600.0,
                reallocation_period_s: 1200.0,
                restarts: 2,
                candidate_radius_m: 120.0,
                adapt_widths: true,
                drift: Some(DriftSpec {
                    period_s: 600.0,
                    phase_step_rad: 0.02,
                }),
                faults: None,
                seed: 4242,
                record_log: true,
            }
            .run(&ctl),
        );
    }
    std::env::remove_var("ACORN_THREADS");
    for (t, threads) in thread_counts.iter().enumerate().skip(1) {
        assert_eq!(
            city_runs[0].stats, city_runs[t].stats,
            "city ({n_aps} APs): run stats differ at {threads} threads"
        );
        assert_eq!(
            city_runs[0].log, city_runs[t].log,
            "city ({n_aps} APs): event log differs at {threads} threads"
        );
        assert_eq!(
            city_runs[0].telemetry, city_runs[t].telemetry,
            "city ({n_aps} APs): telemetry differs at {threads} threads"
        );
        assert_eq!(
            city_runs[0].telemetry.to_json(),
            city_runs[t].telemetry.to_json(),
            "city ({n_aps} APs): telemetry JSON differs at {threads} threads"
        );
        assert_eq!(
            city_runs[0].realloc, city_runs[t].realloc,
            "city ({n_aps} APs): realloc records differ at {threads} threads"
        );
        assert_eq!(
            city_runs[0].final_state, city_runs[t].final_state,
            "city ({n_aps} APs): final state differs at {threads} threads"
        );
    }
    let shards = city_runs[0]
        .telemetry
        .counters
        .iter()
        .find(|c| c.name == "alloc.shards")
        .map(|c| c.value)
        .unwrap_or(0);
    assert!(
        shards as usize >= districts * districts,
        "city run reported {shards} shards for {} districts",
        districts * districts
    );
}

#[test]
fn results_are_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let thread_counts = ["1", "2", "8"];
    let alloc_cfg = AllocationConfig::default();
    let plan = ChannelPlan::restricted(6);

    for topo in 0..3 {
        let (wlan, ctl, sessions) = topology(topo);
        let model = abstract_model(topo);

        let mut controller_runs: Vec<(NetworkState, u64)> = Vec::new();
        let mut direct_runs: Vec<(Vec<_>, u64)> = Vec::new();
        let mut churn_runs: Vec<ChurnReport> = Vec::new();
        let mut composite_runs: Vec<CompositeReport> = Vec::new();
        let mut faulty_runs: Vec<CompositeReport> = Vec::new();
        let mut obs_snapshots: Vec<String> = Vec::new();
        for threads in thread_counts {
            std::env::set_var("ACORN_THREADS", threads);
            controller_runs.push(run_controller_alloc(&wlan, &ctl, 7 + topo as u64));
            let r = allocate_with_restarts(&model, &plan, &alloc_cfg, 8, 500 + topo as u64);
            direct_runs.push((r.assignments, r.total_bps.to_bits()));
            // The instrumented path must (a) agree with the plain path and
            // (b) record the same snapshot bytes at every thread count.
            let sink = RecordingSink::new();
            let r_obs =
                allocate_with_restarts_obs(&model, &plan, &alloc_cfg, 8, 500 + topo as u64, &sink);
            assert_eq!(
                r_obs.total_bps.to_bits(),
                direct_runs.last().unwrap().1,
                "topology {topo}: instrumentation changed the result at {threads} threads"
            );
            obs_snapshots.push(sink.snapshot().to_json());
            churn_runs.push(run_churn_once(&wlan, &ctl, &sessions, 21 + topo as u64));
            composite_runs.push(run_composite(&wlan, &ctl, &sessions, 33 + topo as u64));
            faulty_runs.push(run_faulty_composite(
                &wlan,
                &ctl,
                &sessions,
                33 + topo as u64,
            ));
        }
        std::env::remove_var("ACORN_THREADS");

        for (t, threads) in thread_counts.iter().enumerate().skip(1) {
            assert_eq!(
                controller_runs[0], controller_runs[t],
                "topology {topo}: controller allocation differs at {threads} threads"
            );
            assert_eq!(
                direct_runs[0], direct_runs[t],
                "topology {topo}: allocate_with_restarts differs at {threads} threads"
            );
            assert_eq!(
                churn_runs[0], churn_runs[t],
                "topology {topo}: churn run differs at {threads} threads"
            );
            assert_eq!(
                churn_runs[0].mean_after_bps().to_bits(),
                churn_runs[t].mean_after_bps().to_bits(),
                "topology {topo}: churn throughput bits differ at {threads} threads"
            );
            assert_eq!(
                composite_runs[0].log, composite_runs[t].log,
                "topology {topo}: composite event log differs at {threads} threads"
            );
            assert_eq!(
                composite_runs[0].telemetry, composite_runs[t].telemetry,
                "topology {topo}: composite telemetry differs at {threads} threads"
            );
            assert_eq!(
                composite_runs[0].telemetry.to_json(),
                composite_runs[t].telemetry.to_json(),
                "topology {topo}: composite telemetry JSON differs at {threads} threads"
            );
            assert_eq!(
                obs_snapshots[0], obs_snapshots[t],
                "topology {topo}: RecordingSink snapshot bytes differ at {threads} threads"
            );
            assert_eq!(
                composite_runs[0].final_state, composite_runs[t].final_state,
                "topology {topo}: composite final state differs at {threads} threads"
            );
            assert_eq!(
                faulty_runs[0].log, faulty_runs[t].log,
                "topology {topo}: faulty composite event log differs at {threads} threads"
            );
            assert_eq!(
                faulty_runs[0].telemetry, faulty_runs[t].telemetry,
                "topology {topo}: faulty composite telemetry differs at {threads} threads"
            );
            assert_eq!(
                faulty_runs[0].final_state, faulty_runs[t].final_state,
                "topology {topo}: faulty composite final state differs at {threads} threads"
            );
            assert_eq!(
                faulty_runs[0].resilience, faulty_runs[t].resilience,
                "topology {topo}: resilience report differs at {threads} threads"
            );
        }
    }
}

/// The per-transmission DCB layer joins the same contract: an
/// occupancy-aware run over the dense overlapping-BSS grid — the one
/// family whose decisions feed on mutable EWMA state — must produce a
/// byte-identical report at every thread count, alongside a
/// probabilistic run to cover the stochastic width draws.
#[test]
fn dcb_runs_are_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let thread_counts = ["1", "2", "8"];
    let grid = OverlappingBssGrid {
        nx: 3,
        ny: 3,
        clients_per_ap: 2,
        n_channels: 6,
        seed: 42,
    };
    let mut aware_runs: Vec<DcbReport> = Vec::new();
    let mut prob_runs: Vec<DcbReport> = Vec::new();
    for threads in thread_counts {
        std::env::set_var("ACORN_THREADS", threads);
        let mut aware = grid.scenario(PolicyKind::OccupancyAware(0.3), 4);
        aware.horizon_s = 2_000.0;
        aware_runs.push(aware.run());
        let mut prob = grid.scenario(PolicyKind::Probabilistic(0.5), 4);
        prob.horizon_s = 2_000.0;
        prob_runs.push(prob.run());
    }
    std::env::remove_var("ACORN_THREADS");
    assert!(aware_runs[0].events > 0, "the DCB run must execute events");
    for (t, threads) in thread_counts.iter().enumerate().skip(1) {
        assert_eq!(
            aware_runs[0], aware_runs[t],
            "dcb: occupancy-aware report differs at {threads} threads"
        );
        assert_eq!(
            prob_runs[0], prob_runs[t],
            "dcb: probabilistic report differs at {threads} threads"
        );
    }
}

/// The distributed control plane under wire faults *and* a mid-run
/// zone-controller crash must be bit-identical across thread counts:
/// the executed-event log, the telemetry JSON bytes, and the final
/// per-zone allocations may not depend on `ACORN_THREADS`.
#[test]
fn distributed_plane_is_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let thread_counts = ["1", "2", "8"];
    let mut runs = Vec::new();
    for threads in thread_counts {
        std::env::set_var("ACORN_THREADS", threads);
        let wlan = zoned_city(2, 2, 250.0, 16, 5);
        let ctl = AcornController::new(AcornConfig::default());
        let cfg = PlaneConfig {
            seed: 31,
            epoch_period_s: 100.0,
            first_epoch_at_s: 10.0,
            horizon_s: 510.0,
            restarts: 2,
            faults: FaultPlan {
                seed: 31 ^ 0xFA17,
                loss: 0.2,
                corruption: 0.05,
                delay_prob: 0.1,
                delay_max_s: 20.0,
                ..FaultPlan::default()
            },
            crashes: vec![CrashWindow {
                zone: 1,
                at_s: 130.0,
                restart_at_s: 230.0,
            }],
            record_log: true,
            ..PlaneConfig::default()
        };
        let mut plane = DistributedPlane::new(wlan, ctl, cfg);
        plane.run_to_quiescence();
        runs.push((
            plane
                .event_log()
                .expect("log recording was enabled")
                .clone(),
            plane.telemetry().snapshot().to_json(),
            plane.state().clone(),
            plane.sim.world.applied_epoch.clone(),
            plane.sim.world.fingerprints.clone(),
        ));
    }
    std::env::remove_var("ACORN_THREADS");
    assert!(
        runs[0].0.entries.len() > 0,
        "the faulty distributed run must execute events"
    );
    for (t, threads) in thread_counts.iter().enumerate().skip(1) {
        assert_eq!(
            runs[0].0, runs[t].0,
            "distributed: event log differs at {threads} threads"
        );
        assert_eq!(
            runs[0].1, runs[t].1,
            "distributed: telemetry JSON differs at {threads} threads"
        );
        assert_eq!(
            runs[0].2, runs[t].2,
            "distributed: final state differs at {threads} threads"
        );
        assert_eq!(
            runs[0].3, runs[t].3,
            "distributed: applied epochs differ at {threads} threads"
        );
        assert_eq!(
            runs[0].4, runs[t].4,
            "distributed: zone fingerprints differ at {threads} threads"
        );
    }
}
