//! Cross-validation: the analytic airtime/contention model (what ACORN's
//! algorithms optimize) against the slot-level DCF simulator, on full
//! deployments. Spans acorn-sim, acorn-mac, acorn-topology, acorn-phy.

use acorn::phy::estimator::LinkQualityEstimator;
use acorn::phy::ChannelWidth;
use acorn::sim::runner::{evaluate_analytic, evaluate_dcf};
use acorn::sim::{enterprise_grid, fig11, topology1, topology2, Traffic};
use acorn::topology::{ApId, Channel20, ChannelAssignment, ClientId, Wlan};

fn natural_assoc(wlan: &Wlan) -> Vec<Option<ApId>> {
    (0..wlan.clients.len())
        .map(|c| {
            (0..wlan.aps.len())
                .map(ApId)
                .filter(|&ap| wlan.snr_db(ap, ClientId(c), ChannelWidth::Ht20) > -3.0)
                .max_by(|&a, &b| {
                    wlan.snr_db(a, ClientId(c), ChannelWidth::Ht20)
                        .total_cmp(&wlan.snr_db(b, ClientId(c), ChannelWidth::Ht20))
                })
        })
        .collect()
}

fn single(c: u8) -> ChannelAssignment {
    ChannelAssignment::Single(Channel20(c))
}

fn bonded(c: u8) -> ChannelAssignment {
    ChannelAssignment::bonded(Channel20(c)).unwrap()
}

fn compare(wlan: &Wlan, assignments: &[ChannelAssignment], tolerance: f64, seed: u64) {
    let est = LinkQualityEstimator::default();
    let assoc = natural_assoc(wlan);
    let analytic = evaluate_analytic(wlan, assignments, &assoc, &est, 1500, Traffic::Udp);
    let dcf = evaluate_dcf(wlan, assignments, &assoc, &est, 1500, 5.0, seed);
    for i in 0..wlan.aps.len() {
        let a = analytic.per_ap_bps[i];
        let d = dcf.per_ap_bps[i];
        if a < 1e6 && d < 1e6 {
            continue; // both (near) idle — ratios are meaningless
        }
        let err = (a - d).abs() / a.max(d);
        assert!(
            err < tolerance,
            "AP {i}: analytic {a:.3e} vs DCF {d:.3e} (err {err:.3})"
        );
    }
}

#[test]
fn topology1_agrees() {
    compare(&topology1(), &[single(0), bonded(2)], 0.1, 1);
}

#[test]
fn topology2_agrees() {
    // 5 APs: the ACORN-like allocation (poor cells on 20 MHz).
    compare(
        &topology2(),
        &[bonded(0), bonded(2), bonded(4), single(8), single(9)],
        0.15,
        2,
    );
}

#[test]
fn heterogeneous_contention_shows_the_intercell_anomaly() {
    // A *documented divergence*: the paper's M = 1/(|con|+1) estimate
    // assumes contending cells take comparable airtime per access. When a
    // fast cell shares a channel with slow cells (fig11's good AP vs poor
    // APs, all bonded), real DCF hands out equal TXOPs, so the slow cells'
    // long frames eat the airtime and the fast cell lands far below M×
    // isolated — the inter-cell flavour of the performance anomaly. The
    // paper itself scopes the estimate to saturated, mutually-audible
    // (i.e. comparable) cells.
    let wlan = fig11();
    let est = LinkQualityEstimator::default();
    let assoc = natural_assoc(&wlan);
    let all40 = [bonded(0), bonded(0), bonded(0)];
    let analytic = evaluate_analytic(&wlan, &all40, &assoc, &est, 1500, Traffic::Udp);
    let dcf = evaluate_dcf(&wlan, &all40, &assoc, &est, 1500, 5.0, 3);
    // The fast cell (AP 0) is overestimated by the M-model…
    assert!(
        dcf.per_ap_bps[0] < 0.5 * analytic.per_ap_bps[0],
        "expected the M-model to be optimistic for the fast cell: dcf {:.3e} vs model {:.3e}",
        dcf.per_ap_bps[0],
        analytic.per_ap_bps[0]
    );
    // …and the aggressive-CB configuration is therefore even *worse* in
    // the DCF than the model predicts — strengthening Fig. 11's message.
    assert!(dcf.total_bps < analytic.total_bps);
}

#[test]
fn fig11_isolated_agrees() {
    compare(&fig11(), &[bonded(0), single(2), single(3)], 0.1, 4);
}

#[test]
fn enterprise_grid_total_agrees() {
    let wlan = enterprise_grid(2, 2, 55.0, 10, 5);
    let est = LinkQualityEstimator::default();
    let assoc = natural_assoc(&wlan);
    let assignments = vec![bonded(0), bonded(2), bonded(4), bonded(6)];
    let analytic = evaluate_analytic(&wlan, &assignments, &assoc, &est, 1500, Traffic::Udp);
    let dcf = evaluate_dcf(&wlan, &assignments, &assoc, &est, 1500, 5.0, 6);
    let err = (analytic.total_bps - dcf.total_bps).abs() / analytic.total_bps;
    assert!(
        err < 0.15,
        "total: analytic {:.3e} vs DCF {:.3e} (err {err:.3})",
        analytic.total_bps,
        dcf.total_bps
    );
}

#[test]
fn contention_shares_match_the_m_estimate_for_comparable_cells() {
    // Two co-channel cells with *equal-quality* clients (the regime the
    // paper's M-estimate targets): the DCF gives each ≈ M = 1/2 of its
    // isolated throughput.
    use acorn::sim::scenario::{distance_for_snr20, GOOD_SNR_DB};
    use acorn::topology::pathloss::LogDistance;
    use acorn::topology::wlan::RadioParams;
    use acorn::topology::Point;

    let radio = RadioParams::default();
    let pl = LogDistance::indoor_5ghz(0);
    let d = distance_for_snr20(&radio, &pl, GOOD_SNR_DB);
    let mut wlan = Wlan::new(
        vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)],
        vec![Point::new(-d, 0.0), Point::new(50.0 + d, 0.0)],
        1,
    );
    wlan.pathloss.shadowing_sigma_db = 0.0;
    let est = LinkQualityEstimator::default();
    let assoc = natural_assoc(&wlan);
    let shared = vec![single(0), single(0)];
    let isolated = vec![single(0), single(1)];
    let dcf_shared = evaluate_dcf(&wlan, &shared, &assoc, &est, 1500, 5.0, 7);
    let dcf_isolated = evaluate_dcf(&wlan, &isolated, &assoc, &est, 1500, 5.0, 7);
    for i in 0..2 {
        let share = dcf_shared.per_ap_bps[i] / dcf_isolated.per_ap_bps[i];
        assert!(
            share > 0.38 && share < 0.58,
            "AP {i}: measured share {share:.3} vs M = 0.5"
        );
    }
}
