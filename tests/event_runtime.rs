//! Port-fidelity guards for the event runtime.
//!
//! `sim::churn` and `sim::mobility` were rewired from hand-rolled time
//! loops onto the `acorn-events` kernel. The fingerprints below were
//! captured from the *pre-port* implementations (FNV-1a over every f64
//! bit pattern in the outputs) and are hard-coded here: the kernel-based
//! adapters must reproduce the old loops bit-for-bit for the default
//! scenarios. If a change to the kernel or the adapters moves any output
//! bit, these hashes move and the diff is intentional-or-bust.

use acorn_core::{AcornConfig, AcornController};
use acorn_phy::ChannelWidth;
use acorn_sim::churn::{run_churn, ChurnConfig, ChurnReport};
use acorn_sim::mobility::{paper_walk, MobilitySample, WidthPolicy};
use acorn_sim::scenario::enterprise_grid;
use acorn_traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fnv(h: &mut u64, bits: u64) {
    *h ^= bits;
    *h = h.wrapping_mul(0x100000001b3);
}

fn churn_fingerprint(report: &ChurnReport) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for s in &report.snapshots {
        fnv(&mut h, s.t_s.to_bits());
        fnv(&mut h, s.active_clients as u64);
        fnv(&mut h, s.before_bps.to_bits());
        fnv(&mut h, s.after_bps.to_bits());
        fnv(&mut h, s.switches as u64);
    }
    for a in &report.final_state.assoc {
        fnv(&mut h, a.map(|ap| ap.0 as u64 + 1).unwrap_or(0));
    }
    h
}

fn mobility_fingerprint(trace: &[MobilitySample]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for s in trace {
        fnv(&mut h, s.t_s.to_bits());
        fnv(&mut h, matches!(s.width, ChannelWidth::Ht40) as u64);
        fnv(&mut h, s.cell_bps.to_bits());
        fnv(&mut h, s.mobile_snr20_db.to_bits());
    }
    h
}

#[test]
fn churn_port_is_bit_identical_to_the_preport_loop() {
    // (adapt_widths, churn seed) -> pre-port fingerprint. The adapt and
    // no-adapt fingerprints coincide for these seeds: every re-allocation
    // resets operating widths, and the hysteretic adaptation holds them
    // between epochs on this deployment.
    let golden = [
        (false, 3u64, 0xdba288a6604ac383u64),
        (false, 9, 0x793b1057822a08cd),
        (true, 3, 0xdba288a6604ac383),
        (true, 9, 0x793b1057822a08cd),
    ];
    let mut rng = StdRng::seed_from_u64(1);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 7200.0);
    let wlan = enterprise_grid(2, 2, 50.0, sessions.len().max(1), 2);
    let ctl = AcornController::new(AcornConfig::default());
    for (adapt, seed, expect) in golden {
        let cfg = ChurnConfig {
            horizon_s: 7200.0,
            reallocation_period_s: 1800.0,
            restarts: 2,
            adapt_widths: adapt,
        };
        let report = run_churn(&wlan, &ctl, &sessions, &cfg, seed);
        assert_eq!(report.snapshots.len(), 3);
        assert_eq!(
            churn_fingerprint(&report),
            expect,
            "churn adapt={adapt} seed={seed}: output bits diverged from the pre-port loop"
        );
    }
}

#[test]
fn mobility_port_is_bit_identical_to_the_preport_loop() {
    // (outbound, policy) -> pre-port fingerprint over the 51-sample walk.
    let golden: [(bool, WidthPolicy, u64); 6] = [
        (true, WidthPolicy::AcornAdaptive, 0x7b87a421694c051c),
        (
            true,
            WidthPolicy::Fixed(ChannelWidth::Ht20),
            0x96754cf1cc76f973,
        ),
        (
            true,
            WidthPolicy::Fixed(ChannelWidth::Ht40),
            0x8a3c2e72a8837ac7,
        ),
        (false, WidthPolicy::AcornAdaptive, 0xadfeefb24b2b690e),
        (
            false,
            WidthPolicy::Fixed(ChannelWidth::Ht20),
            0xc7b4c4b2e7a434dc,
        ),
        (
            false,
            WidthPolicy::Fixed(ChannelWidth::Ht40),
            0x7e5ddefbccbb5ab3,
        ),
    ];
    for (outbound, policy, expect) in golden {
        let trace = paper_walk(outbound).run(policy);
        assert_eq!(trace.len(), 51);
        assert_eq!(
            mobility_fingerprint(&trace),
            expect,
            "mobility outbound={outbound} policy={policy:?}: trace bits diverged"
        );
    }
}

#[test]
fn composite_scenario_exports_a_telemetry_snapshot() {
    use acorn_events::{CompositeScenario, DriftSpec, MobilitySpec};
    use acorn_topology::{ClientId, Point, Trajectory};

    let mut rng = StdRng::seed_from_u64(5);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 3600.0);
    let wlan = enterprise_grid(2, 2, 50.0, sessions.len().max(2), 7);
    let ctl = AcornController::new(AcornConfig::default());
    let mobile = ClientId(wlan.clients.len() - 1);
    let from = wlan.clients[mobile.0].pos;
    let report = CompositeScenario {
        wlan,
        sessions,
        horizon_s: 3600.0,
        reallocation_period_s: 1200.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 30.0, from.y),
                speed_mps: 0.01,
            },
            sample_period_s: 300.0,
        }),
        drift: Some(DriftSpec {
            period_s: 900.0,
            phase_step_rad: 0.02,
        }),
        faults: None,
        seed: 11,
        record_log: true,
    }
    .run(&ctl);

    // Two re-allocations (1200, 2400), 13 mobility samples, 4 drift steps.
    assert_eq!(report.realloc.len(), 2);
    let json = report.telemetry.to_json();
    for metric in [
        "network_bps.after",
        "switches",
        "association.delay_s",
        "mobility.snr20_db",
        "drift.phase_rad",
    ] {
        assert!(json.contains(metric), "snapshot is missing {metric}");
    }
    // The log's dispatch order is strictly (time, seq)-sorted.
    let log = report.log.unwrap();
    for w in log.entries.windows(2) {
        let a = (f64::from_bits(w[0].time_bits), w[0].seq);
        let b = (f64::from_bits(w[1].time_bits), w[1].seq);
        assert!(a < b, "log out of order: {a:?} !< {b:?}");
    }
}
