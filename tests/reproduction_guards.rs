//! Regression guards for the headline numbers recorded in EXPERIMENTS.md.
//!
//! These tests re-derive (from library calls, not the experiment binaries)
//! the claims the README's "headline reproduction results" table makes, so
//! a model change that silently breaks the reproduction fails CI rather
//! than being discovered at the next manual `scripts/reproduce.sh` run.

use acorn::mac::airtime::{CellAirtime, ClientLink};
use acorn::phy::estimator::LinkQualityEstimator;
use acorn::phy::link::{sigma_crossover_snr, sigma_for};
use acorn::phy::{ChannelWidth, CodeRate, Modulation};
use acorn::sim::traffic::{cell_goodput_bps, Traffic};
use acorn::topology::corpus::{testbed_links, MAX_TX_DBM};

fn corpus_goodput(est: &LinkQualityEstimator, snr20: f64, width: ChannelWidth, t: Traffic) -> f64 {
    let e = est.estimate(snr20, ChannelWidth::Ht20);
    let p = e.rate_point(width);
    let link = ClientLink {
        rate_bps: p.mcs.mcs().rate_bps(width, est.gi),
        per: p.per,
    };
    cell_goodput_bps(&CellAirtime::new(&[link], 1500), &[link], 1.0, t)
}

#[test]
fn guard_per_subcarrier_energy_drop_is_about_3db() {
    // Fig. 1 headline: 10·log10(108/52) = 3.17 dB.
    let d = -ChannelWidth::Ht40.per_subcarrier_energy_shift_db();
    assert!((d - 3.17).abs() < 0.01, "drop {d}");
}

#[test]
fn guard_table1_thresholds_are_monotone_with_paper_like_span() {
    let t = |m, r| sigma_crossover_snr(m, r, 1500).expect("crossover");
    let xs = [
        t(Modulation::Qpsk, CodeRate::R34),
        t(Modulation::Qam16, CodeRate::R34),
        t(Modulation::Qam64, CodeRate::R34),
        t(Modulation::Qam64, CodeRate::R56),
    ];
    for w in xs.windows(2) {
        assert!(w[0] < w[1], "{xs:?}");
    }
    // Paper's span between first and last modcod: 15 dB; ours ~14.3.
    let span = xs[3] - xs[0];
    assert!((span - 15.0).abs() < 3.0, "span {span}");
}

#[test]
fn guard_fig6_preference_fractions() {
    // Fig. 6a: ~10 % of UDP trials and ~30 % of TCP trials prefer 20 MHz
    // (we measure 12 % / 21 % — guard the bands, with TCP > UDP).
    let est = LinkQualityEstimator::default();
    let links = testbed_links();
    let count = |t: Traffic| {
        links
            .iter()
            .filter(|l| {
                let snr = l.snr_db(MAX_TX_DBM, ChannelWidth::Ht20);
                corpus_goodput(&est, snr, ChannelWidth::Ht20, t)
                    > corpus_goodput(&est, snr, ChannelWidth::Ht40, t)
            })
            .count() as f64
            / links.len() as f64
    };
    let udp = count(Traffic::Udp);
    let tcp = count(Traffic::tcp_default());
    assert!((0.05..=0.25).contains(&udp), "UDP prefer-20 fraction {udp}");
    assert!((0.12..=0.40).contains(&tcp), "TCP prefer-20 fraction {tcp}");
    assert!(tcp > udp, "TCP must be more CB-averse: {tcp} vs {udp}");
}

#[test]
fn guard_cb_never_doubles_udp_throughput() {
    // Fig. 6a: every corpus link sits right of y = 2x.
    let est = LinkQualityEstimator::default();
    for l in testbed_links() {
        let snr = l.snr_db(MAX_TX_DBM, ChannelWidth::Ht20);
        let g20 = corpus_goodput(&est, snr, ChannelWidth::Ht20, Traffic::Udp);
        let g40 = corpus_goodput(&est, snr, ChannelWidth::Ht40, Traffic::Udp);
        assert!(g40 < 2.0 * g20 + 1.0, "link {}: {g40} vs 2×{g20}", l.id);
    }
}

#[test]
fn guard_sigma_cap_band_exists_for_every_table1_modcod() {
    // Fig. 5: each modcod has SNRs with σ ≥ 2 and the high-SNR limit is 1.
    for (m, r) in [
        (Modulation::Qpsk, CodeRate::R34),
        (Modulation::Qam16, CodeRate::R34),
        (Modulation::Qam64, CodeRate::R34),
        (Modulation::Qam64, CodeRate::R56),
    ] {
        let peak = (-100..450)
            .map(|i| sigma_for(m, r, i as f64 * 0.1, 1500))
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        assert!(peak >= 2.0, "{m:?}/{r:?}");
        assert!((sigma_for(m, r, 45.0, 1500) - 1.0).abs() < 1e-6);
    }
}

#[test]
fn guard_mobility_endgame_gain() {
    // Fig. 13a headline: "almost ten times" over fixed 40 MHz. Guard ≥ 5×.
    use acorn::sim::{paper_walk, WidthPolicy};
    let exp = paper_walk(true);
    let acorn = exp.run(WidthPolicy::AcornAdaptive);
    let fixed = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht40));
    let gain = acorn.last().unwrap().cell_bps / fixed.last().unwrap().cell_bps.max(1.0);
    assert!(gain >= 5.0 && gain <= 20.0, "gain {gain}");
}

#[test]
fn guard_duration_trace_statistics() {
    // Fig. 9 headline: median ≈ 31 min, >88 % under 40 min.
    use acorn::traces::{AssociationDurations, Ecdf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(4242);
    let e = Ecdf::new(AssociationDurations::default().sample_n(&mut rng, 60_000))
        .expect("60k finite samples form a valid ECDF");
    assert!(
        (e.median() / 60.0 - 31.0).abs() < 2.0,
        "median {}",
        e.median() / 60.0
    );
    assert!(e.eval(40.0 * 60.0) > 0.88);
}
