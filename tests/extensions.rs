//! Integration tests for the extension modules: IAPP-driven contention
//! estimation, per-channel scanning, the closed churn loop, and the
//! Bianchi cross-check — each composed with the core ACORN machinery.

use acorn::core::iapp::{IappAgent, IappBus};
use acorn::core::scanning::{HashSounding, ScanningModel};
use acorn::core::{AcornConfig, AcornController, ThroughputModel};
use acorn::mac::{bianchi_solve, saturation_throughput_bps};
use acorn::phy::ChannelWidth;
use acorn::sim::{enterprise_grid, run_churn, ChurnConfig};
use acorn::topology::{ApId, ChannelPlan, ClientId};
use acorn::traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn iapp_reproduces_the_controller_access_shares() {
    // Configure a floor with ACORN, then run one IAPP round and check the
    // distributed agents learn the same access shares the controller's
    // genie graph produces.
    let wlan = enterprise_grid(2, 2, 50.0, 8, 21);
    let ctl = AcornController::new(AcornConfig::default());
    let mut state = ctl.new_state(&wlan, 3);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(&wlan, &mut state, 4, 5);

    let mut agents: Vec<IappAgent> = (0..wlan.aps.len())
        .map(|i| IappAgent::new(ApId(i)))
        .collect();
    // Decode floor matched to the CS range so IAPP reach == genie reach.
    let cs = wlan.radio.carrier_sense_range_m;
    let floor =
        wlan.radio.tx_power_dbm + wlan.radio.antenna_gains_dbi - wlan.pathloss.median_db(cs);
    let bus = IappBus {
        decode_floor_dbm: floor,
        ..IappBus::new(&wlan)
    };
    let counts: Vec<usize> = (0..wlan.aps.len())
        .map(|i| state.cell_clients(ApId(i)).len())
        .collect();
    bus.round(&mut agents, &state.assignments, &counts, 0.0);

    // Compare against the AP-only genie graph (IAPP frames travel AP→AP;
    // the client-relay edges of footnote 5 need client reports, which the
    // protocol does not carry — a documented fidelity boundary).
    let genie = wlan.ap_only_interference_graph();
    for i in 0..wlan.aps.len() {
        let via_iapp = agents[i].access_share(state.assignments[i]);
        let via_genie = acorn::mac::access_share(&genie, &state.assignments, ApId(i));
        // Shadowing can put a borderline AP pair on opposite sides of the
        // CS-range vs decode-floor cut; allow one step of disagreement.
        let steps = [1.0, 0.5, 1.0 / 3.0, 0.25, 0.2, 1.0 / 6.0];
        let idx = |v: f64| steps.iter().position(|s| (s - v).abs() < 1e-9).unwrap();
        assert!(
            (idx(via_iapp) as i64 - idx(via_genie) as i64).abs() <= 1,
            "AP {i}: iapp {via_iapp} vs genie {via_genie}"
        );
    }
}

#[test]
fn iapp_tracks_channel_switches() {
    let wlan = enterprise_grid(1, 2, 40.0, 0, 9);
    let mut agents: Vec<IappAgent> = (0..2).map(|i| IappAgent::new(ApId(i))).collect();
    let bus = IappBus::new(&wlan);
    let plan = ChannelPlan::full_5ghz();
    let a0: Vec<_> = plan.all_assignments();
    // Round 1: both on the first bond.
    bus.round(&mut agents, &[a0[12], a0[12]], &[0, 0], 0.0);
    assert_eq!(agents[0].contender_count(a0[12]), 1);
    // Round 2: neighbour moves to a disjoint single channel.
    bus.round(&mut agents, &[a0[12], a0[4]], &[0, 0], 1.0);
    assert_eq!(
        agents[0].contender_count(a0[12]),
        0,
        "cache must track the switch"
    );
}

#[test]
fn scanning_model_composes_with_the_controller() {
    // Build the controller's model, wrap it with scanning, and verify
    // allocation over the scanned model is still legal and no worse under
    // the scanned truth than the blind plan.
    let wlan = enterprise_grid(2, 2, 55.0, 8, 31);
    let ctl = AcornController::new(AcornConfig::default());
    let mut state = ctl.new_state(&wlan, 7);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    let base = ctl.build_model(&wlan, &state);
    let truth = ScanningModel::new(
        base.clone(),
        HashSounding {
            sigma_db: 2.0,
            seed: 3,
        },
    );

    let plan = ctl.config.plan;
    let cfg = acorn::core::AllocationConfig::default();
    let blind = acorn::core::allocate_with_restarts(&base, &plan, &cfg, 6, 1);
    let aware = acorn::core::allocate_with_restarts(&truth, &plan, &cfg, 6, 1);
    assert!(blind.assignments.iter().all(|a| plan.contains(*a)));
    assert!(aware.assignments.iter().all(|a| plan.contains(*a)));
    assert!(truth.total_bps(&aware.assignments) + 1e-6 >= truth.total_bps(&blind.assignments));
}

#[test]
fn churn_loop_sustains_throughput_over_a_workday() {
    let mut rng = StdRng::seed_from_u64(12);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 6.0 * 3600.0);
    let wlan = enterprise_grid(2, 2, 50.0, sessions.len(), 13);
    let ctl = AcornController::new(AcornConfig::default());
    let report = run_churn(
        &wlan,
        &ctl,
        &sessions,
        &ChurnConfig {
            horizon_s: 6.0 * 3600.0,
            restarts: 2,
            adapt_widths: true,
            ..ChurnConfig::default()
        },
        17,
    );
    assert_eq!(report.snapshots.len(), 11);
    // With steady-state occupancy, the network should be carrying real
    // traffic at most epochs.
    let busy = report
        .snapshots
        .iter()
        .filter(|s| s.after_bps > 10e6)
        .count();
    assert!(busy >= 8, "only {busy}/11 epochs carried >10 Mb/s");
    // And re-allocation never regresses the predicted objective.
    for s in &report.snapshots {
        assert!(s.after_bps + 1.0 >= s.before_bps);
    }
}

#[test]
fn bianchi_brackets_the_m_share_estimate() {
    // The paper's M = 1/n is an optimistic bound on the per-station
    // share; Bianchi (with collisions) sits just below it; both shrink
    // with n.
    for n in [2usize, 3, 4, 6] {
        let m = 1.0 / n as f64;
        let share = {
            let alone = saturation_throughput_bps(1, 1500, 65e6, 0.0, 4);
            saturation_throughput_bps(n, 1500, 65e6, 0.0, 4) / (n as f64 * alone)
        };
        assert!(share < m);
        assert!(share > 0.7 * m, "n={n}: share {share}");
        let pt = bianchi_solve(n);
        assert!(pt.p > 0.0 && pt.p < 1.0);
    }
}

#[test]
fn fading_aware_estimator_composes_with_allocation() {
    // Switching the controller's estimator to the fading-averaged mode
    // must keep the whole pipeline working and produce (weakly) more
    // conservative bonding on borderline cells.
    let wlan = enterprise_grid(2, 2, 55.0, 8, 41);
    let mut faded_cfg = AcornConfig::default();
    faded_cfg.estimator.fading_sigma_db = 3.0;
    for cfg in [AcornConfig::default(), faded_cfg] {
        let ctl = AcornController::new(cfg);
        let mut state = ctl.new_state(&wlan, 5);
        for c in 0..wlan.clients.len() {
            ctl.associate(&wlan, &mut state, ClientId(c));
        }
        let r = ctl.reallocate_with_restarts(&wlan, &mut state, 4, 3);
        assert!(r.total_bps > 0.0);
        assert!(state
            .assignments
            .iter()
            .all(|a| ctl.config.plan.contains(*a)));
    }
}

#[test]
fn sgi_rates_flow_through_the_stack() {
    // Short guard interval raises nominal rates by 10/9 end to end.
    use acorn::phy::estimator::LinkQualityEstimator;
    use acorn::phy::GuardInterval;
    let long = LinkQualityEstimator::default();
    let short = LinkQualityEstimator {
        gi: GuardInterval::Short,
        ..LinkQualityEstimator::default()
    };
    let l = long.best_rate_point(35.0, ChannelWidth::Ht40);
    let s = short.best_rate_point(35.0, ChannelWidth::Ht40);
    assert!((s.goodput_bps / l.goodput_bps - 10.0 / 9.0).abs() < 1e-6);
}

#[test]
fn association_works_over_the_wire() {
    // Serialize every AP's beacon to 802.11 bytes, parse them back, build
    // the candidate set from the *parsed* beacons, and verify Algorithm 1
    // reaches the same decision as the in-memory path — i.e. the wire
    // format carries everything the association algorithm needs.
    use acorn::core::association::{choose_ap, Candidate};
    use acorn::core::wire::{parse_beacon, serialize_beacon};
    use acorn::mac::timing::delivery_delay_s;

    let wlan = enterprise_grid(2, 2, 55.0, 6, 61);
    let ctl = AcornController::new(AcornConfig::default());
    let mut state = ctl.new_state(&wlan, 3);
    for c in 0..4 {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    let arriving = ClientId(5);

    // In-memory decision.
    let reference = ctl.candidates_for(&wlan, &state, arriving);
    let expect = choose_ap(&reference).map(|i| reference[i].ap);

    // Over-the-wire decision.
    let mut candidates = Vec::new();
    for (i, b) in ctl.beacons(&wlan, &state).iter().enumerate() {
        let frame = serialize_beacon(b, [i as u8; 6], 1000 + i as u64).unwrap();
        let parsed = parse_beacon(&frame).expect("own frames must parse");
        let snr20 = wlan.snr_db(ApId(i), arriving, ChannelWidth::Ht20);
        if snr20 < ctl.config.association_snr_floor_db {
            continue;
        }
        // The client probes its own delay at the AP's advertised width.
        let est = ctl.config.estimator.estimate(snr20, ChannelWidth::Ht20);
        let point = est.rate_point(parsed.assignment.width());
        let d_u = delivery_delay_s(
            ctl.config.payload_bytes,
            point
                .mcs
                .mcs()
                .rate_bps(parsed.assignment.width(), ctl.config.estimator.gi),
            point.per,
        );
        candidates.push(Candidate {
            ap: parsed.ap,
            k_including_u: parsed.n_clients + 1,
            access_share: parsed.access_share,
            atd_including_u_s: parsed.atd_s + d_u,
            delay_u_s: d_u,
        });
    }
    let got = choose_ap(&candidates).map(|i| candidates[i].ap);
    assert_eq!(got, expect, "wire path must agree with the in-memory path");
}
