//! Exactness of the spatial-index fast paths.
//!
//! The grid-backed [`Wlan::interference_graph`] is advertised as *exactly*
//! the footnote-5 graph — not an approximation — because the grid only
//! prunes candidates and the final test is the same crisp
//! `distance <= carrier_sense_range_m` predicate the O(n²) pair loop
//! applies (shadowing never enters the relation). These properties pin
//! that claim on seeded random topologies, including APs placed exactly
//! on grid-cell boundaries and radii crossing cell sizes.

use acorn::topology::{ApId, Point, SpatialGrid, Wlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random positions in `[0, extent)²`; with probability ~1/2 each
/// coordinate is snapped onto a 40 m lattice, so many points land exactly
/// on cell boundaries of typical grid sizes (40/80/120 m cells).
fn random_points(rng: &mut StdRng, n: usize, extent: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let coord = |rng: &mut StdRng| {
                let x: f64 = rng.gen_range(0.0..extent);
                if rng.gen::<bool>() {
                    (x / 40.0).round() * 40.0
                } else {
                    x
                }
            };
            let x = coord(rng);
            let y = coord(rng);
            Point::new(x, y)
        })
        .collect()
}

/// A seeded random deployment with a random partial association.
fn random_topology(seed: u64, n_aps: usize, n_clients: usize, r: f64) -> (Wlan, Vec<Option<ApId>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let aps = random_points(&mut rng, n_aps, 600.0);
    let clients = random_points(&mut rng, n_clients, 600.0);
    let assoc = (0..n_clients)
        .map(|_| {
            if rng.gen::<bool>() {
                Some(ApId(rng.gen_range(0..n_aps)))
            } else {
                None
            }
        })
        .collect();
    let mut w = Wlan::new(aps, clients, seed ^ 0x5eed);
    w.radio.carrier_sense_range_m = r;
    (w, assoc)
}

proptest! {
    /// The grid-backed build equals the brute-force oracle edge for edge
    /// on random topologies: random AP/client positions (about half the
    /// coordinates snapped onto 40 m lattice lines, i.e. exactly on cell
    /// boundaries), random carrier-sense radii and random partial
    /// associations.
    #[test]
    fn grid_graph_equals_brute_force(
        seed in 0u64..1_000_000,
        n_aps in 1usize..40,
        n_clients in 0usize..60,
        r in 20.0f64..200.0,
    ) {
        let (w, assoc) = random_topology(seed, n_aps, n_clients, r);
        prop_assert_eq!(
            w.interference_graph(&assoc),
            w.interference_graph_brute(&assoc)
        );
    }

    /// The index's range query is exact for any positive cell size, not
    /// just the canonical cell == radius choice: results match the naive
    /// scan with the same crisp `<=` predicate, in ascending order.
    #[test]
    fn range_query_is_exact_for_any_cell_size(
        seed in 0u64..1_000_000,
        n in 0usize..80,
        r in 0.0f64..250.0,
        cell in 0.5f64..300.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = random_points(&mut rng, n, 400.0);
        let query = random_points(&mut rng, 1, 400.0)[0];
        let grid = SpatialGrid::build(&points, cell);
        let naive: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].distance(&query) <= r)
            .collect();
        prop_assert_eq!(grid.within(&query, r), naive);
    }

    /// Radius exactly equal to the inter-point distance keeps the pair —
    /// the crisp boundary case the brute loop also includes.
    #[test]
    fn exact_radius_boundary_is_inclusive(
        d in 1.0f64..200.0,
        cell in 0.5f64..300.0,
    ) {
        let points = vec![Point::new(0.0, 0.0), Point::new(d, 0.0)];
        let grid = SpatialGrid::build(&points, cell);
        prop_assert_eq!(grid.within(&Point::new(0.0, 0.0), d), vec![0, 1]);
    }
}
