//! Cross-validation: the Monte-Carlo baseband (acorn-baseband) against
//! the closed-form PHY models (acorn-phy) that ACORN's estimator uses.
//! This is the §3.1 "experimental curves fit well with the theoretical
//! plots" check, run in CI.

use acorn::baseband::frame::{run_trial, Equalization, FrameConfig, SyncMode};
use acorn::baseband::ChannelModel;
use acorn::phy::coding::per_from_ber_bytes;
use acorn::phy::{ChannelWidth, CodeRate, Modulation};
use acorn::sim::stats::r_squared;

fn genie(width: ChannelWidth) -> FrameConfig {
    FrameConfig {
        packet_bytes: 1000,
        equalization: Equalization::Genie,
        ..FrameConfig::baseline(width)
    }
}

#[test]
fn uncoded_qpsk_ber_fits_theory_with_high_r2() {
    // The Fig. 3a validation: measured log-BER vs theory across an SNR
    // sweep, both widths, R² near 1 (the paper reports 0.8 / 0.89 over
    // the air; our channel is exactly AWGN, so the fit is tighter).
    for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
        let mut measured = Vec::new();
        let mut theory = Vec::new();
        for snr_i in 2..=10 {
            let snr = snr_i as f64;
            let cfg = genie(width).with_target_snr(snr);
            let ber = run_trial(&cfg, 40, 9000 + snr_i as u64).ber();
            if ber > 0.0 {
                measured.push(ber.log10());
                theory.push(Modulation::Qpsk.ber_awgn(snr).log10());
            }
        }
        let r2 = r_squared(&measured, &theory);
        assert!(r2 > 0.98, "{width:?}: R² = {r2}");
    }
}

#[test]
fn width_does_not_matter_at_equal_snr() {
    // "for a fixed SNR, the BER does not depend on the channel width."
    let snr = 7.0;
    let b20 = run_trial(&genie(ChannelWidth::Ht20).with_target_snr(snr), 40, 11).ber();
    let b40 = run_trial(&genie(ChannelWidth::Ht40).with_target_snr(snr), 40, 12).ber();
    assert!(
        (b20 / b40 - 1.0).abs() < 0.2,
        "BER20 {b20:.3e} vs BER40 {b40:.3e}"
    );
}

#[test]
fn uncoded_per_matches_eq6() {
    // PER = 1 − (1 − BER)^L, the paper's Eq. 6 assumption, holds for the
    // simulated frames (independent AWGN bit errors).
    let snr = 9.0;
    let cfg = genie(ChannelWidth::Ht20).with_target_snr(snr);
    let r = run_trial(&cfg, 200, 13);
    let predicted = per_from_ber_bytes(Modulation::Qpsk.ber_awgn(snr), 1000);
    assert!(
        (r.per() - predicted).abs() < 0.07,
        "measured PER {:.3} vs Eq.6 {:.3}",
        r.per(),
        predicted
    );
}

#[test]
fn coded_per_is_bounded_by_the_union_bound() {
    // The analytic coded BER is an upper bound; Monte-Carlo coded PER
    // must not exceed the PER implied by it (within noise).
    for snr in [5.0, 6.0, 7.0] {
        let cfg = FrameConfig {
            code_rate: Some(CodeRate::R12),
            ..genie(ChannelWidth::Ht20)
        }
        .with_target_snr(snr);
        let r = run_trial(&cfg, 60, 17 + snr as u64);
        let channel_ber = Modulation::Qpsk.ber_awgn(snr);
        let bound_ber = acorn::phy::coding::coded_ber(CodeRate::R12, channel_ber);
        let bound_per = per_from_ber_bytes(bound_ber, 1000);
        assert!(
            r.per() <= bound_per + 0.08,
            "snr {snr}: measured {:.3} above bound {:.3}",
            r.per(),
            bound_per
        );
    }
}

#[test]
fn stbc_monte_carlo_beats_siso_under_fading() {
    // The MimoMode::STBC_GAIN_DB modelling choice, validated end-to-end:
    // Alamouti 2×2 over flat Rayleigh outperforms SISO at equal SNR.
    let mk = |stbc| {
        FrameConfig {
            stbc,
            channel: ChannelModel::FlatRayleigh,
            packet_bytes: 400,
            equalization: Equalization::Training { symbols: 4 },
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(13.0)
    };
    let siso = run_trial(&mk(false), 80, 23);
    let stbc = run_trial(&mk(true), 80, 23);
    assert!(
        stbc.ber() < 0.5 * siso.ber(),
        "STBC {:.3e} vs SISO {:.3e}",
        stbc.ber(),
        siso.ber()
    );
}

#[test]
fn preamble_sync_only_fails_at_very_low_snr() {
    let mk = |snr: f64| {
        FrameConfig {
            sync: SyncMode::Preamble { threshold: 0.55 },
            packet_bytes: 200,
            ..genie(ChannelWidth::Ht20)
        }
        .with_target_snr(snr)
    };
    let good = run_trial(&mk(12.0), 25, 31);
    assert_eq!(good.sync_failures, 0);
    let terrible = run_trial(&mk(-12.0), 25, 37);
    assert!(
        terrible.sync_failures > 0,
        "sync should fail sometimes at −12 dB"
    );
}

#[test]
fn fixed_power_cb_penalty_shows_up_in_monte_carlo() {
    // The crate-crossing version of the headline: same Tx power, the
    // 40 MHz frames see ~3 dB less per-subcarrier SNR and more errors.
    let mk = |w| FrameConfig {
        tx_power: 1.0,
        noise_density: 0.15,
        packet_bytes: 500,
        equalization: Equalization::Genie,
        ..FrameConfig::baseline(w)
    };
    let c20 = mk(ChannelWidth::Ht20);
    let c40 = mk(ChannelWidth::Ht40);
    assert!((c20.snr_per_subcarrier_db() - c40.snr_per_subcarrier_db() - 3.17).abs() < 0.05);
    let r20 = run_trial(&c20, 30, 41);
    let r40 = run_trial(&c40, 30, 42);
    assert!(r40.ber() > 1.5 * r20.ber());
}
