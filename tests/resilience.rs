//! Acceptance tests for the fault-injection layer and the
//! graceful-degradation controller: a realistic enterprise scenario with
//! heavy control-plane faults must complete without panics, detect and
//! ride out an AP crash, and retain most of the fault-free throughput.

use acorn_core::{AcornConfig, AcornController};
use acorn_events::{
    CompositeReport, CompositeScenario, DriftSpec, FaultPlan, MobilitySpec, ResilienceReport,
};
use acorn_sim::scenario::enterprise_grid;
use acorn_topology::{ClientId, Point, Trajectory};
use acorn_traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ISSUE acceptance scenario: churn + mobility + drift with 20%
/// control-message loss, corruption, delay, measurement faults, and one
/// AP crash/restart cycle.
fn faulty_scenario(seed: u64) -> CompositeScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 3600.0);
    let n_clients = sessions.len().max(2) + 1;
    let wlan = enterprise_grid(3, 3, 50.0, n_clients, seed);
    let mobile = ClientId(n_clients - 1);
    let from = wlan.clients[mobile.0].pos;
    CompositeScenario {
        wlan,
        sessions,
        horizon_s: 3600.0,
        // Dense epochs so the outage window always overlaps several.
        reallocation_period_s: 300.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 40.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 120.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.02,
        }),
        faults: Some(FaultPlan {
            seed: seed ^ 0xFA17,
            control_period_s: 30.0,
            ap_mttf_s: Some(400.0), // virtually certain to crash in 3600 s
            ap_mttr_s: 600.0,       // long enough to span re-allocation epochs
            max_crashes: 1,
            loss: 0.2,
            corruption: 0.05,
            delay_prob: 0.1,
            delay_max_s: 45.0,
            meas_nan: 0.02,
            meas_outlier: 0.05,
            meas_freeze: 0.05,
            ..FaultPlan::default()
        }),
        seed,
        record_log: false,
    }
}

fn resilience(report: &CompositeReport) -> ResilienceReport {
    report
        .resilience
        .expect("a faulty scenario must carry a resilience report")
}

#[test]
fn faulty_composite_completes_and_retains_most_throughput() {
    let ctl = AcornController::new(AcornConfig::default());
    let report = faulty_scenario(7).run_resilience(&ctl);
    let r = resilience(&report);

    // The crash/restart cycle actually happened and was ridden out.
    assert_eq!(r.crashes, 1, "{r:?}");
    assert_eq!(r.restarts, 1, "{r:?}");
    assert!(r.mean_downtime_s > 0.0, "{r:?}");

    // The fault gauntlet actually fired: losses, corruptions, delays, and
    // measurement faults all left marks, and every corrupted frame that
    // reached a parser failed *typed* (the run not panicking is itself
    // the no-unwrap guarantee; the counter shows the path was exercised).
    assert!(r.frames_sent > 100, "{r:?}");
    assert!(r.frames_lost > 0, "{r:?}");
    assert!(r.frames_corrupted > 0, "{r:?}");
    assert!(r.frames_delayed > 0, "{r:?}");
    assert!(r.parse_errors > 0, "{r:?}");
    assert!(r.measurement_faults > 0, "{r:?}");

    // Loss rate is in the right ballpark for p = 0.2.
    let loss_rate = r.frames_lost as f64 / r.frames_sent as f64;
    assert!(
        (0.1..0.3).contains(&loss_rate),
        "loss rate {loss_rate:.3} implausible for p=0.2: {r:?}"
    );

    // Clients detected the dead AP and re-scanned off it, and the
    // controller ran degraded epochs while the network had a hole.
    assert!(r.rescans > 0, "{r:?}");
    assert!(r.mean_detection_delay_s > 0.0, "{r:?}");
    assert!(r.safe_mode_epochs > 0, "{r:?}");
    assert!(
        report.realloc.iter().any(|e| e.degraded),
        "no re-allocation epoch recorded as degraded"
    );
    assert!(
        report.realloc.iter().any(|e| !e.degraded),
        "healthy epochs should still re-optimize"
    );

    // The headline number: ≥ 70% of fault-free throughput retained.
    assert!(r.golden_mean_bps > 0.0, "{r:?}");
    assert!(
        r.throughput_retained >= 0.70,
        "retained only {:.1}% of golden throughput: {r:?}",
        r.throughput_retained * 100.0
    );
    // Detection-triggered re-association can slightly *improve* on the
    // golden twin's stale associations, so allow a small overshoot.
    assert!(
        r.throughput_retained <= 1.10,
        "faulty run should not beat golden by >10%: {r:?}"
    );
}

#[test]
fn benign_fault_plan_changes_nothing_but_the_bookkeeping() {
    // A benign plan runs the whole control plane on the wire — frames,
    // trackers, CSA — but injects nothing, so nothing is lost, nothing
    // fails to parse, and no epoch degrades.
    let ctl = AcornController::new(AcornConfig::default());
    let mut sc = faulty_scenario(11);
    sc.faults = Some(sc.faults.unwrap().benign_twin());
    let report = sc.run(&ctl);
    let r = resilience(&report);
    assert_eq!(r.crashes, 0);
    assert_eq!(r.frames_lost, 0);
    assert_eq!(r.frames_corrupted, 0);
    assert_eq!(r.frames_delayed, 0);
    assert_eq!(r.parse_errors, 0, "clean frames must parse: {r:?}");
    assert_eq!(r.measurement_faults, 0);
    assert_eq!(r.csa_orphans, 0);
    assert_eq!(r.safe_mode_epochs, 0);
    assert!(r.frames_sent > 100, "the wire path still runs: {r:?}");
    assert!(report.realloc.iter().all(|e| !e.degraded));
}

#[test]
fn resilience_report_serializes_to_json() {
    let ctl = AcornController::new(AcornConfig::default());
    let mut sc = faulty_scenario(3);
    sc.horizon_s = 600.0;
    sc.faults = Some(FaultPlan {
        ap_mttf_s: Some(120.0),
        ap_mttr_s: 120.0,
        loss: 0.3,
        ..sc.faults.unwrap()
    });
    let report = sc.run(&ctl);
    let json = serde_json::to_string_pretty(&resilience(&report)).expect("report serializes");
    for key in ["crashes", "throughput_retained", "mean_detection_delay_s"] {
        assert!(json.contains(key), "JSON is missing {key}: {json}");
    }
}

#[test]
fn crash_without_restart_before_horizon_leaves_the_hole_open() {
    // MTTR longer than the remaining horizon: the AP stays down, the
    // controller stays in safe mode to the end, and the final state still
    // has every surviving client on a live AP.
    let ctl = AcornController::new(AcornConfig::default());
    let mut sc = faulty_scenario(5);
    sc.faults = Some(FaultPlan {
        ap_mttf_s: Some(200.0),
        ap_mttr_s: 1e9,
        ..sc.faults.unwrap()
    });
    let report = sc.run(&ctl);
    let r = resilience(&report);
    assert_eq!(r.crashes, 1, "{r:?}");
    assert_eq!(r.restarts, 0, "{r:?}");
    assert_eq!(r.mean_downtime_s, 0.0, "downtime closes only on restart");
}
