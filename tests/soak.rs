//! System-level gates for the chaos-soak harness: the thread count must
//! not move a bit of a faulty soak (event log, telemetry bytes, sketch
//! fingerprints), sketch/series telemetry must stay bounded as the
//! horizon grows, sabotage must trip the watchdog with coordinates that
//! replay, and the distributed control plane must heal back to its
//! centralized twin under *periodic* partition and crash windows.

use acorn_core::{AcornConfig, AcornController};
use acorn_ctrlplane::{DistributedPlane, PlaneConfig};
use acorn_events::FaultPlan;
use acorn_obs::DEFAULT_SERIES_CAP;
use acorn_phy::{GoodputTable, LinkQualityEstimator};
use acorn_sim::{city_grid, zoned_city};
use acorn_soak::{
    periodic_crashes, periodic_partitions, FlashCrowd, SoakScenario, WatchdogSpec, WorkloadSpec,
};
use std::sync::{Arc, Mutex};

/// The thread-sweep test mutates the process-global `ACORN_THREADS`
/// variable; anything sharing the binary must serialize on this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn table_ctl() -> AcornController {
    AcornController::with_table(
        AcornConfig::default(),
        Arc::new(GoodputTable::build(
            LinkQualityEstimator::default(),
            -12.0,
            48.0,
            0.25,
        )),
    )
}

/// A debug-test-sized soak: 16-AP city grid, 48 clients, diurnal +
/// flash workload, watchdog on a tight period.
fn short_soak(seed: u64, horizon_s: f64) -> SoakScenario {
    let wlan = city_grid(2, 2, 48, seed);
    let mut s = SoakScenario::new(wlan, horizon_s, seed);
    s.reallocation_period_s = 900.0;
    s.probe_period_s = 20.0;
    s.workload = WorkloadSpec {
        base_rate_per_s: 1.0 / 15.0,
        diurnal_amplitude: 0.5,
        day_period_s: 1500.0,
        flash: vec![FlashCrowd {
            at_s: 800.0,
            duration_s: 250.0,
            rate_multiplier: 4.0,
        }],
        ..WorkloadSpec::default()
    };
    s.watchdog = Some(WatchdogSpec {
        period_s: 30.0,
        graph_check_every: 4,
        fail_fast: true,
    });
    s
}

/// A chaos soak — streaming workload, drift, AP crash/repair cycles,
/// measurement faults — must be bit-identical at `ACORN_THREADS` 1, 2
/// and 8: same executed-event log, same telemetry snapshot bytes (which
/// cover every sketch fingerprint), same final controller state.
#[test]
fn chaos_soak_is_bit_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let thread_counts = ["1", "2", "8"];
    let mut runs = Vec::new();
    for threads in thread_counts {
        std::env::set_var("ACORN_THREADS", threads);
        let mut s = short_soak(0x50AC, 2500.0);
        s.drift = Some(acorn_events::DriftSpec {
            period_s: 400.0,
            phase_step_rad: 0.02,
        });
        s.faults = Some(FaultPlan {
            seed: 0x50AC ^ 0xFA17,
            control_period_s: 25.0,
            ap_mttf_s: Some(600.0),
            ap_mttr_s: 300.0,
            max_crashes: 2,
            loss: 0.1,
            meas_nan: 0.02,
            meas_outlier: 0.05,
            ..FaultPlan::default()
        });
        s.record_log = true;
        let r = s.run(&table_ctl());
        assert_eq!(r.violations, 0, "{threads} threads: watchdog tripped");
        let client = r
            .sketch(acorn_soak::probe::CLIENT_BPS)
            .expect("client sketch present");
        assert!(client.fingerprint != 0 && client.count > 0);
        runs.push((
            r.log.clone().expect("log recorded"),
            r.telemetry.to_json(),
            r.final_state.clone(),
            r.stats,
        ));
    }
    std::env::remove_var("ACORN_THREADS");
    for (t, threads) in thread_counts.iter().enumerate().skip(1) {
        assert_eq!(
            runs[0].0, runs[t].0,
            "event log differs at {threads} threads"
        );
        assert_eq!(
            runs[0].1, runs[t].1,
            "telemetry snapshot bytes differ at {threads} threads"
        );
        assert_eq!(
            runs[0].2, runs[t].2,
            "final state differs at {threads} threads"
        );
        assert_eq!(
            runs[0].3, runs[t].3,
            "run stats differ at {threads} threads"
        );
    }
}

/// Quadrupling the virtual horizon must grow the observation count
/// roughly linearly but the *retained* telemetry only logarithmically:
/// the sketches compact and the ring-buffered series never exceed their
/// cap. This is the system-level form of the O(1)-in-horizon memory
/// claim (`peak_rss_kb` is too noisy to gate on in a shared test
/// runner; retained items are exact).
#[test]
fn telemetry_stays_bounded_as_the_horizon_grows() {
    let short = short_soak(21, 2500.0).run(&table_ctl());
    let long = short_soak(21, 10_000.0).run(&table_ctl());
    for r in [&short, &long] {
        assert_eq!(r.violations, 0);
    }
    let (cs, cl) = (
        short.sketch(acorn_soak::probe::CLIENT_BPS).expect("sketch"),
        long.sketch(acorn_soak::probe::CLIENT_BPS).expect("sketch"),
    );
    assert!(
        cl.count >= 3 * cs.count,
        "the long run must observe ~4x as much: {} vs {}",
        cl.count,
        cs.count
    );
    // O(k·log2(n/k)): each level holds < k items and there are about
    // log2(n/k) levels (+ slack for the partially-filled ones).
    let k = acorn_obs::DEFAULT_SKETCH_K as u64;
    let level_bound = |count: u64| k * (((count.max(k) / k) as f64).log2() as u64 + 3);
    assert!(
        cl.retained <= level_bound(cl.count),
        "retained items must grow logarithmically, not linearly: {} items for {} obs",
        cl.retained,
        cl.count
    );
    assert!(4 * cl.retained < cl.count, "compaction must actually run");
    assert!(
        cl.rank_error_bound < 0.25,
        "quantiles stay usable: {}",
        cl.rank_error_bound
    );
    for r in [&short, &long] {
        let series = r.series(acorn_soak::probe::NETWORK_BPS).expect("series");
        assert!(series.values.len() <= DEFAULT_SERIES_CAP);
        assert_eq!(
            series.values.len() as u64,
            series.total.min(DEFAULT_SERIES_CAP as u64)
        );
    }
}

/// Sabotage must trip the watchdog with replayable coordinates: the
/// trip gauges name the seed, check index, virtual time, and event
/// sequence — and re-running the same scenario reproduces the identical
/// trip, which is what makes a multi-day soak failure debuggable.
#[test]
fn sabotage_trips_the_watchdog_and_the_trip_replays() {
    let run = || {
        let mut s = short_soak(33, 2500.0);
        s.sabotage_at_s = Some(1200.0);
        s.run(&table_ctl())
    };
    let a = run();
    assert!(a.violations >= 1, "watchdog must catch the corruption");
    assert_eq!(a.gauge("watchdog.trip.code"), Some(2.0), "cells invariant");
    assert_eq!(a.gauge("watchdog.trip.seed"), Some(33.0));
    let t = a.gauge("watchdog.trip.t_s").expect("trip time");
    assert!(t >= 1200.0, "tripped after the sabotage: {t}");
    assert!(a.gauge("watchdog.trip.event_seq").is_some());
    assert!(
        a.stats.end_time_s < 2500.0,
        "fail-fast must stop the run: {:?}",
        a.stats
    );
    let b = run();
    assert_eq!(a.gauge("watchdog.trip.t_s"), b.gauge("watchdog.trip.t_s"));
    assert_eq!(
        a.gauge("watchdog.trip.event_seq"),
        b.gauge("watchdog.trip.event_seq")
    );
    assert_eq!(a.stats, b.stats, "the trip must replay exactly");
}

/// Continuous control-plane chaos: periodic partition windows cycling
/// over the zones plus scheduled zone-controller crashes. Every window
/// heals, catch-up replay runs, and the final allocation still lands on
/// the centralized twin bit for bit.
#[test]
fn plane_chaos_windows_heal_back_to_the_centralized_twin() {
    let wlan = zoned_city(2, 2, 250.0, 16, 5);
    let ctl = AcornController::new(AcornConfig::default());
    let horizon_s = 10.0 + 11.0 * 100.0; // 12 epochs at 100 s
                                         // Chaos stops at 860 s: the final clean epochs are what let every
                                         // zone catch back up to the twin before the run drains.
    let chaos_until_s = 860.0;
    let cfg = PlaneConfig {
        seed: 5,
        epoch_period_s: 100.0,
        first_epoch_at_s: 10.0,
        horizon_s,
        restarts: 2,
        stale_epochs: 1,
        partitions: periodic_partitions(4, 150.0, 300.0, 220.0, chaos_until_s),
        crashes: periodic_crashes(4, 380.0, 400.0, 60.0, chaos_until_s),
        ..PlaneConfig::default()
    };
    assert!(cfg.partitions.len() >= 3, "{:?}", cfg.partitions);
    assert!(cfg.crashes.len() >= 2, "{:?}", cfg.crashes);
    let epochs = cfg.n_epochs();
    let mut plane = DistributedPlane::new(wlan, ctl, cfg);
    let n_zones = plane.sim.world.zones.len();
    assert_eq!(n_zones, 4);
    plane.run_to_quiescence();
    let twin = plane.centralized_twin();
    assert_eq!(
        plane.state().assignments,
        twin.assignments,
        "chaos run must still land on the centralized twin"
    );
    assert_eq!(plane.state().operating_width, twin.operating_width);
    assert_eq!(
        plane.sim.world.applied_epoch,
        vec![epochs; n_zones],
        "every zone must catch up to every epoch"
    );
    let r = plane.report();
    // A zone that crashes while in safe mode loses its volatile
    // safe-mode flag with the rest of its protocol state, so a
    // detection may end in a crash instead of a counted heal —
    // detections bound heals from above, and at least one partition
    // must heal the ordinary way.
    assert!(r.partition_detections >= 2, "{r:?}");
    assert!(r.partition_heals >= 1, "{r:?}");
    assert!(r.partition_detections >= r.partition_heals, "{r:?}");
    assert!(r.epochs_replayed >= 1, "healing needs catch-up: {r:?}");
    assert!(r.msgs_partition_dropped > 0, "windows must sever frames");
    assert!(r.safe_mode_epochs >= 2, "{r:?}");
}
