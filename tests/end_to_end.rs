//! End-to-end integration tests: the full ACORN pipeline (association +
//! allocation + evaluation) against the baselines, across the paper's
//! scenarios. These tests span acorn-core, acorn-baselines, acorn-sim and
//! acorn-topology.

use acorn::baselines::{allocate_aggressive_cb, associate_rssi, fixed_width, random_config};
use acorn::core::{AcornConfig, AcornController};
use acorn::phy::ChannelWidth;
use acorn::sim::runner::evaluate_analytic;
use acorn::sim::{enterprise_grid, fig11, topology1, topology2, Traffic};
use acorn::topology::{ChannelPlan, ClientId, Wlan};

fn acorn_configure(
    wlan: &Wlan,
    plan: ChannelPlan,
    seed: u64,
) -> (AcornController, acorn::core::NetworkState) {
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });
    let mut state = ctl.new_state(wlan, seed);
    for c in 0..wlan.clients.len() {
        ctl.associate(wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(wlan, &mut state, 8, seed + 1);
    for c in 0..wlan.clients.len() {
        ctl.deassociate(&mut state, ClientId(c));
        ctl.associate(wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(wlan, &mut state, 8, seed + 2);
    (ctl, state)
}

#[test]
fn acorn_beats_aggressive_cb_on_topology1() {
    let wlan = topology1();
    let plan = ChannelPlan::full_5ghz();
    let (ctl, state) = acorn_configure(&wlan, plan, 3);
    let acorn = evaluate_analytic(
        &wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    let aggressive =
        allocate_aggressive_cb(&wlan, &wlan.interference_graph(&state.assoc), &plan, 8);
    let base = evaluate_analytic(
        &wlan,
        &aggressive,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    // The poor cell must gain substantially (paper: ~4x).
    assert!(
        acorn.per_ap_bps[0] > 2.0 * base.per_ap_bps[0],
        "poor cell: acorn {:.3e} vs aggressive {:.3e}",
        acorn.per_ap_bps[0],
        base.per_ap_bps[0]
    );
    // The poor cell ends on 20 MHz.
    assert_eq!(state.assignments[0].width(), ChannelWidth::Ht20);
    assert!(acorn.total_bps >= base.total_bps);
}

#[test]
fn acorn_beats_every_baseline_on_fig11() {
    let wlan = fig11();
    let plan = ChannelPlan::restricted(4);
    let (ctl, state) = acorn_configure(&wlan, plan, 5);
    let score = |assignments: &[acorn::topology::ChannelAssignment]| {
        evaluate_analytic(
            &wlan,
            assignments,
            &state.assoc,
            &ctl.config.estimator,
            1500,
            Traffic::Udp,
        )
        .total_bps
    };
    let acorn = score(&state.assignments);
    let graph = wlan.interference_graph(&state.assoc);
    assert!(acorn >= score(&allocate_aggressive_cb(&wlan, &graph, &plan, 8)));
    assert!(acorn >= score(&fixed_width(&plan, 3, ChannelWidth::Ht20)));
    assert!(acorn >= score(&fixed_width(&plan, 3, ChannelWidth::Ht40)));
}

#[test]
fn acorn_beats_random_configs_on_an_enterprise_floor() {
    let wlan = enterprise_grid(2, 2, 55.0, 10, 77);
    let plan = ChannelPlan::full_5ghz();
    let (ctl, state) = acorn_configure(&wlan, plan, 9);
    let acorn = evaluate_analytic(
        &wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    )
    .total_bps;
    for seed in 0..25 {
        let cfg = random_config(&wlan, &plan, -3.0, seed);
        let y = evaluate_analytic(
            &wlan,
            &cfg.assignments,
            &cfg.assoc,
            &ctl.config.estimator,
            1500,
            Traffic::Udp,
        )
        .total_bps;
        assert!(
            acorn + 1.0 >= y,
            "random config {seed} beats ACORN: {y:.3e} vs {acorn:.3e}"
        );
    }
}

#[test]
fn acorn_helps_tcp_as_well() {
    // The Table 3 claim: gains carry over to (unsaturated) TCP traffic.
    let wlan = topology2();
    let plan = ChannelPlan::full_5ghz();
    let (ctl, state) = acorn_configure(&wlan, plan, 11);
    let graph = wlan.interference_graph(&state.assoc);
    let aggressive = allocate_aggressive_cb(&wlan, &graph, &plan, 8);
    for traffic in [Traffic::Udp, Traffic::tcp_default()] {
        let acorn = evaluate_analytic(
            &wlan,
            &state.assignments,
            &state.assoc,
            &ctl.config.estimator,
            1500,
            traffic,
        )
        .total_bps;
        let base = evaluate_analytic(
            &wlan,
            &aggressive,
            &state.assoc,
            &ctl.config.estimator,
            1500,
            traffic,
        )
        .total_bps;
        assert!(
            acorn > base,
            "{traffic:?}: acorn {acorn:.3e} !> aggressive {base:.3e}"
        );
    }
}

#[test]
fn rssi_association_is_never_better_on_the_grouping_topology() {
    let wlan = topology2();
    let plan = ChannelPlan::full_5ghz();
    let (ctl, state) = acorn_configure(&wlan, plan, 13);
    let acorn = evaluate_analytic(
        &wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    )
    .total_bps;

    // RSSI association with the same (ACORN) channels.
    let rssi_assoc: Vec<_> = (0..wlan.clients.len())
        .map(|c| associate_rssi(&wlan, ClientId(c), -3.0))
        .collect();
    let rssi = evaluate_analytic(
        &wlan,
        &state.assignments,
        &rssi_assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    )
    .total_bps;
    assert!(
        acorn + 1.0 >= rssi,
        "rssi {rssi:.3e} beats acorn {acorn:.3e}"
    );
}

#[test]
fn reallocation_is_stable_once_converged() {
    // Running Algorithm 2 twice in a row from its own output must not
    // change the assignment (idempotence at a local optimum).
    let wlan = topology2();
    let (ctl, mut state) = acorn_configure(&wlan, ChannelPlan::full_5ghz(), 17);
    let before = state.assignments.clone();
    let r = ctl.reallocate(&wlan, &mut state);
    assert_eq!(state.assignments, before, "allocation not stable");
    assert_eq!(r.switches, 0);
}

#[test]
fn mobility_adaptation_composes_with_allocation() {
    // A bonded AP with a degraded client falls back; after the client
    // leaves, adaptation returns to the full width.
    use acorn::sim::scenario::{distance_for_snr20, GOOD_SNR_DB, POOR_SNR_DB};
    use acorn::topology::pathloss::LogDistance;
    use acorn::topology::wlan::RadioParams;
    use acorn::topology::Point;

    let radio = RadioParams::default();
    let pl = LogDistance::indoor_5ghz(0);
    let d_good = distance_for_snr20(&radio, &pl, GOOD_SNR_DB);
    let d_poor = distance_for_snr20(&radio, &pl, POOR_SNR_DB);
    let mut wlan = Wlan::new(
        vec![Point::new(0.0, 0.0)],
        vec![Point::new(d_good, 0.0), Point::new(0.0, d_poor)],
        1,
    );
    wlan.pathloss.shadowing_sigma_db = 0.0;

    let ctl = AcornController::new(AcornConfig::default());
    let mut state = ctl.new_state(&wlan, 1);
    ctl.associate(&wlan, &mut state, ClientId(0));
    ctl.reallocate_with_restarts(&wlan, &mut state, 4, 2);
    // One good client → the AP bonds.
    assert_eq!(state.assignments[0].width(), ChannelWidth::Ht40);
    ctl.adapt_widths(&wlan, &mut state);
    assert_eq!(state.operating_width[0], ChannelWidth::Ht40);

    // The poor client joins: fallback to 20 MHz.
    ctl.associate(&wlan, &mut state, ClientId(1));
    ctl.adapt_widths(&wlan, &mut state);
    assert_eq!(state.operating_width[0], ChannelWidth::Ht20);

    // It leaves: back to the full width.
    ctl.deassociate(&mut state, ClientId(1));
    ctl.adapt_widths(&wlan, &mut state);
    assert_eq!(state.operating_width[0], ChannelWidth::Ht40);
}
