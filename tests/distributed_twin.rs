//! The golden-twin contract of the distributed control plane: a benign
//! distributed run — zone controllers exchanging real wire frames on the
//! event runtime — must converge to **exactly** the allocation the
//! centralized controller computes, bit for bit, on every seeded
//! multi-zone topology. Under a partition the isolated zone (and only
//! it) degrades to safe mode, and catch-up replay restores twin
//! equality after the heal.

use acorn_core::{AcornConfig, AcornController};
use acorn_ctrlplane::{DistributedPlane, PartitionWindow, PlaneConfig};
use acorn_obs::names;
use acorn_phy::{GoodputTable, LinkQualityEstimator};
use acorn_sim::{city_grid, zoned_city};
use acorn_topology::Wlan;
use std::sync::Arc;

fn fast_cfg(seed: u64, epochs: u64) -> PlaneConfig {
    PlaneConfig {
        seed,
        epoch_period_s: 100.0,
        first_epoch_at_s: 10.0,
        horizon_s: 10.0 + (epochs - 1) as f64 * 100.0,
        restarts: 2,
        ..PlaneConfig::default()
    }
}

fn assert_twin_equality(wlan: Wlan, ctl: AcornController, cfg: PlaneConfig, label: &str) {
    let epochs = cfg.n_epochs();
    let mut plane = DistributedPlane::new(wlan, ctl, cfg);
    let n_zones = plane.sim.world.zones.len();
    assert!(n_zones >= 2, "{label}: expected a multi-zone topology");
    plane.run_to_quiescence();
    let twin = plane.centralized_twin();
    assert_eq!(
        plane.state().assignments,
        twin.assignments,
        "{label}: distributed assignments diverge from the centralized twin"
    );
    assert_eq!(
        plane.state().operating_width,
        twin.operating_width,
        "{label}: operating widths diverge from the centralized twin"
    );
    assert_eq!(
        plane.state().assoc,
        twin.assoc,
        "{label}: associations diverge from the centralized twin"
    );
    assert_eq!(
        plane.sim.world.applied_epoch,
        vec![epochs; n_zones],
        "{label}: every zone must have applied every epoch"
    );
    let r = plane.report();
    assert_eq!(
        r.safe_mode_epochs, 0,
        "{label}: benign run entered safe mode"
    );
    assert_eq!(r.epochs_replayed, 0, "{label}: benign run needed catch-up");
    assert_eq!(r.parse_errors, 0, "{label}: benign run dropped frames");
    assert!(r.msgs_acked > 0, "{label}: gossip must flow between zones");
}

#[test]
fn benign_distributed_runs_match_the_centralized_twin() {
    let ctl = || AcornController::new(AcornConfig::default());

    // Three seeded multi-zone topologies across both city generators.
    assert_twin_equality(
        zoned_city(2, 2, 250.0, 16, 5),
        ctl(),
        fast_cfg(5, 3),
        "zoned_city 2x2",
    );
    assert_twin_equality(
        city_grid(2, 2, 12, 9),
        ctl(),
        fast_cfg(9, 3),
        "city_grid 2x2",
    );
    // The memoized-table controller path, on a 9-zone city.
    let table = Arc::new(GoodputTable::build(
        LinkQualityEstimator::default(),
        -12.0,
        48.0,
        0.25,
    ));
    assert_twin_equality(
        zoned_city(3, 2, 300.0, 18, 13),
        AcornController::with_table(AcornConfig::default(), table),
        fast_cfg(13, 4),
        "zoned_city 3x3 with table",
    );
}

/// A partition isolating one zone: only that zone enters safe mode
/// (peers each lose a minority and stay healthy), and after the window
/// closes catch-up replay reconverges the whole network to the twin.
#[test]
fn partition_degrades_one_zone_then_heals_to_the_twin() {
    let wlan = zoned_city(2, 2, 250.0, 16, 5);
    let ctl = AcornController::new(AcornConfig::default());
    let isolated = 3usize;
    let cfg = PlaneConfig {
        stale_epochs: 1,
        partitions: vec![PartitionWindow {
            zone: isolated,
            from_s: 150.0,
            until_s: 360.0,
        }],
        ..fast_cfg(5, 6)
    };
    let epochs = cfg.n_epochs();
    assert_eq!(epochs, 6);
    let mut plane = DistributedPlane::new(wlan, ctl, cfg);
    let n_zones = plane.sim.world.zones.len();
    assert_eq!(n_zones, 4);

    // Stage 1: run into the partition, past epoch 4 (t = 310) where the
    // isolated zone has been deaf for > stale_epochs epochs.
    plane.run_until(320.0);
    let tel = plane.telemetry();
    assert!(
        tel.counter(&format!("ctrl.zone.{isolated}.safe_mode_epochs")) >= 1,
        "isolated zone must be in safe mode during the partition"
    );
    for z in 0..n_zones {
        if z != isolated {
            assert_eq!(
                tel.counter(&format!("ctrl.zone.{z}.safe_mode_epochs")),
                0,
                "zone {z} lost only a minority of peers and must stay healthy"
            );
        }
    }
    assert_eq!(tel.counter(names::CTRL_PARTITION_DETECTIONS), 1);
    assert!(
        tel.counter(names::CTRL_MSGS_PARTITION_DROPPED) > 0,
        "the window must actually sever frames"
    );
    assert!(
        plane.sim.world.applied_epoch[isolated] < 4,
        "safe mode must freeze the isolated zone's applied epoch"
    );

    // Stage 2: heal and drain. Catch-up replay must restore exact twin
    // equality as if the partition never happened.
    plane.run_to_quiescence();
    let twin = plane.centralized_twin();
    assert_eq!(plane.state().assignments, twin.assignments);
    assert_eq!(plane.state().operating_width, twin.operating_width);
    assert_eq!(plane.sim.world.applied_epoch, vec![epochs; n_zones]);
    let r = plane.report();
    assert_eq!(r.partition_heals, 1, "the isolated zone must heal once");
    assert!(
        r.epochs_replayed >= 1,
        "healing must catch up via replayed epochs: {r:?}"
    );
    let zone_safe: Vec<u64> = (0..n_zones)
        .map(|z| {
            plane
                .telemetry()
                .counter(&format!("ctrl.zone.{z}.safe_mode_epochs"))
        })
        .collect();
    for (z, &s) in zone_safe.iter().enumerate() {
        if z == isolated {
            assert!(s >= 1, "isolated zone safe epochs: {zone_safe:?}");
        } else {
            assert_eq!(s, 0, "only the isolated zone may degrade: {zone_safe:?}");
        }
    }
    assert_eq!(r.safe_mode_epochs, zone_safe.iter().sum::<u64>());
}

/// Heavy wire faults without a partition: retransmission and dedup keep
/// the protocol exactly-once, so the plan still lands on the twin.
#[test]
fn faulty_wire_still_lands_on_the_twin() {
    let wlan = city_grid(2, 2, 12, 9);
    let ctl = AcornController::new(AcornConfig::default());
    let mut cfg = fast_cfg(9, 3);
    cfg.faults.loss = 0.3;
    cfg.faults.corruption = 0.1;
    cfg.faults.delay_prob = 0.2;
    cfg.faults.delay_max_s = 8.0;
    let mut plane = DistributedPlane::new(wlan, ctl, cfg);
    plane.run_to_quiescence();
    let twin = plane.centralized_twin();
    assert_eq!(plane.state().assignments, twin.assignments);
    assert_eq!(plane.state().operating_width, twin.operating_width);
    let r = plane.report();
    assert!(r.frames_lost > 0 && r.msgs_retransmitted > 0, "{r:?}");
    assert_eq!(
        r.parse_errors, r.frames_corrupted,
        "every corrupted frame must die at the FCS, not in a panic: {r:?}"
    );
}
