//! Property-based tests (proptest) over the workspace's core invariants.

use acorn::baseband::convcode::Codec;
use acorn::baseband::modem::{demodulate, modulate};
use acorn::core::allocation::{allocate, random_initial, AllocationConfig};
use acorn::core::model::{ClientSnr, NetworkModel, ThroughputModel};
use acorn::phy::coding::{coded_ber, per_from_ber};
use acorn::phy::estimator::LinkQualityEstimator;
use acorn::phy::link::sigma_for;
use acorn::phy::{ChannelWidth, CodeRate, Modulation};
use acorn::topology::{Channel20, ChannelAssignment, ChannelPlan, InterferenceGraph};
use acorn::traces::Ecdf;
use proptest::prelude::*;

fn any_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

fn any_code_rate() -> impl Strategy<Value = CodeRate> {
    prop_oneof![
        Just(CodeRate::R12),
        Just(CodeRate::R23),
        Just(CodeRate::R34),
        Just(CodeRate::R56),
    ]
}

fn any_assignment() -> impl Strategy<Value = ChannelAssignment> {
    prop_oneof![
        (0u8..12).prop_map(|c| ChannelAssignment::Single(Channel20(c))),
        (0u8..6).prop_map(|c| ChannelAssignment::Bonded(Channel20(2 * c))),
    ]
}

proptest! {
    #[test]
    fn ber_stays_in_range_and_decreases_with_snr(
        m in any_modulation(),
        snr in -30.0f64..50.0,
        delta in 0.1f64..10.0,
    ) {
        let lo = m.ber_awgn(snr);
        let hi = m.ber_awgn(snr + delta);
        prop_assert!((0.0..=0.5).contains(&lo));
        prop_assert!(hi <= lo + 1e-12);
    }

    #[test]
    fn coded_ber_never_exceeds_half_and_is_monotone(
        r in any_code_rate(),
        p in 0.0f64..0.5,
        dp in 0.0f64..0.1,
    ) {
        let a = coded_ber(r, p);
        let b = coded_ber(r, (p + dp).min(0.5));
        prop_assert!((0.0..=0.5).contains(&a));
        prop_assert!(b + 1e-12 >= a);
    }

    #[test]
    fn per_is_a_probability_and_monotone_in_length(
        ber in 0.0f64..0.2,
        bits in 1u32..100_000,
    ) {
        let p = per_from_ber(ber, bits);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(per_from_ber(ber, bits + 1000) + 1e-12 >= p);
    }

    #[test]
    fn sigma_is_positive_and_one_when_clean(snr in 25.0f64..60.0) {
        // At very high SNR both widths are clean and σ → 1.
        let s = sigma_for(Modulation::Qpsk, CodeRate::R12, snr, 1500);
        prop_assert!(s > 0.0);
        prop_assert!((s - 1.0).abs() < 0.01);
    }

    #[test]
    fn conflicts_are_symmetric_and_reflexive(
        a in any_assignment(),
        b in any_assignment(),
    ) {
        prop_assert_eq!(a.conflicts(b), b.conflicts(a));
        prop_assert!(a.conflicts(a));
    }

    #[test]
    fn estimator_never_predicts_more_than_the_nominal_rate(
        snr in -10.0f64..45.0,
    ) {
        let est = LinkQualityEstimator::default();
        for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let p = est.best_rate_point(snr, width);
            let nominal = p.mcs.mcs().rate_bps(width, est.gi);
            prop_assert!(p.goodput_bps <= nominal + 1e-6);
            prop_assert!((0.0..=1.0).contains(&p.per));
        }
    }

    #[test]
    fn calibration_roundtrips(snr in -20.0f64..50.0) {
        let est = LinkQualityEstimator::default();
        let there = est.calibrate_snr(snr, ChannelWidth::Ht20, ChannelWidth::Ht40);
        let back = est.calibrate_snr(there, ChannelWidth::Ht40, ChannelWidth::Ht20);
        prop_assert!((back - snr).abs() < 1e-9);
    }

    #[test]
    fn modem_roundtrips_any_bits(
        m in any_modulation(),
        bits in proptest::collection::vec(any::<bool>(), 1..256),
    ) {
        let rx = demodulate(m, &modulate(m, &bits));
        prop_assert_eq!(&rx[..bits.len()], &bits[..]);
    }

    #[test]
    fn codec_roundtrips_any_payload(
        r in any_code_rate(),
        bits in proptest::collection::vec(any::<bool>(), 30..400),
    ) {
        let codec = Codec::new(r);
        let tx = codec.encode(&bits);
        prop_assert_eq!(tx.len(), codec.coded_len(bits.len()));
        prop_assert_eq!(codec.decode(&tx, bits.len()), bits);
    }

    #[test]
    fn allocation_never_decreases_throughput(
        seed in 0u64..500,
        n_aps in 1usize..5,
        n_channels in 2u8..=12,
    ) {
        let cells = (0..n_aps)
            .map(|a| {
                vec![ClientSnr {
                    client: a,
                    snr20_db: 2.0 + (seed as f64 * 7.3 + a as f64 * 11.1) % 30.0,
                }]
            })
            .collect();
        let model = NetworkModel::new(InterferenceGraph::complete(n_aps), cells);
        let plan = ChannelPlan::restricted(n_channels);
        let initial = random_initial(&plan, n_aps, seed);
        let y0 = model.total_bps(&initial);
        let r = allocate(&model, &plan, initial, &AllocationConfig::default());
        prop_assert!(r.total_bps + 1e-6 >= y0);
        // And the outcome is legal.
        prop_assert!(r.assignments.iter().all(|a| plan.contains(*a)));
    }

    #[test]
    fn ecdf_is_a_distribution_function(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        probe in -1e6f64..1e6,
    ) {
        let e = Ecdf::new(xs.clone()).expect("non-empty finite samples");
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        // F is monotone.
        prop_assert!(e.eval(probe + 1.0) + 1e-12 >= f);
        // Quantile inverts within the sample range.
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(e.quantile(0.0), xs[0]);
        prop_assert_eq!(e.quantile(1.0), *xs.last().unwrap());
    }

    #[test]
    fn access_shares_partition_sensibly(
        n_aps in 1usize..6,
        same_channel in any::<bool>(),
    ) {
        let g = InterferenceGraph::complete(n_aps);
        let assignments: Vec<ChannelAssignment> = (0..n_aps)
            .map(|i| {
                let c = if same_channel { 0 } else { (i % 12) as u8 };
                ChannelAssignment::Single(Channel20(c))
            })
            .collect();
        for i in 0..n_aps {
            let m = acorn::mac::access_share(&g, &assignments, acorn::topology::ApId(i));
            prop_assert!(m > 0.0 && m <= 1.0);
            if same_channel {
                prop_assert!((m - 1.0 / n_aps as f64).abs() < 1e-12);
            }
        }
    }
}

proptest! {
    #[test]
    fn beacon_wire_roundtrip(
        ap in 0usize..1000,
        channel in 0u8..12,
        bond in any::<bool>(),
        share in 0.05f64..1.0,
        delays in proptest::collection::vec(1e-6f64..10.0, 0..20),
    ) {
        use acorn::core::wire::{parse_beacon, serialize_beacon};
        use acorn::core::Beacon;
        use acorn::topology::{ApId, Channel20, ChannelAssignment};
        let assignment = if bond {
            ChannelAssignment::Bonded(Channel20(2 * (channel / 2)))
        } else {
            ChannelAssignment::Single(Channel20(channel))
        };
        let b = Beacon {
            ap: ApId(ap),
            assignment,
            n_clients: delays.len(),
            atd_s: delays.iter().sum(),
            client_delays_s: delays,
            access_share: share,
        };
        let frame = serialize_beacon(&b, [7; 6], 42).unwrap();
        let parsed = parse_beacon(&frame).unwrap();
        prop_assert_eq!(parsed.ap, b.ap);
        prop_assert_eq!(parsed.assignment, b.assignment);
        prop_assert_eq!(parsed.n_clients, b.n_clients);
        prop_assert!((parsed.access_share - b.access_share).abs() < 1e-4);
        for (x, y) in parsed.client_delays_s.iter().zip(&b.client_delays_s) {
            prop_assert!((x - y).abs() < 2e-6);
        }
    }

    #[test]
    fn beacon_parser_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = acorn::core::wire::parse_beacon(&bytes);
    }

    #[test]
    fn beacon_parser_never_panics_on_corrupted_valid_frames(
        flip_at in 0usize..120,
        flip_to in any::<u8>(),
    ) {
        use acorn::core::wire::{parse_beacon, serialize_beacon};
        use acorn::core::Beacon;
        use acorn::topology::{ApId, Channel20, ChannelAssignment};
        let b = Beacon {
            ap: ApId(3),
            assignment: ChannelAssignment::Single(Channel20(4)),
            n_clients: 2,
            client_delays_s: vec![0.001, 0.002],
            atd_s: 0.003,
            access_share: 0.5,
        };
        let mut frame = serialize_beacon(&b, [1; 6], 7).unwrap();
        if flip_at < frame.len() {
            frame[flip_at] = flip_to;
        }
        let _ = parse_beacon(&frame);
    }

    #[test]
    fn wire_roundtrip_under_bit_flips_never_panics_or_lies(
        n_flips in 1usize..=3,
        positions in proptest::collection::vec(0usize..4096, 3),
        seed in any::<u64>(),
        beacon_side in any::<bool>(),
    ) {
        // CRC-32 has Hamming distance ≥ 4 at these frame lengths, so a
        // frame with 1–3 flipped bits (possibly coincident, i.e. weight
        // 0–3) either parses back to the original fields or fails typed.
        // Panics and silently-wrong decodes are both bugs.
        use acorn::core::wire::{
            parse_announcement, parse_beacon, serialize_announcement, serialize_beacon,
        };
        use acorn::core::iapp::Announcement;
        use acorn::core::Beacon;
        use acorn::topology::{ApId, Channel20, ChannelAssignment};
        let assignment = ChannelAssignment::Single(Channel20((seed % 12) as u8));
        let mut frame = if beacon_side {
            let b = Beacon {
                ap: ApId(3),
                assignment,
                n_clients: 2,
                client_delays_s: vec![0.001, 0.002],
                atd_s: 0.003,
                access_share: 0.5,
            };
            serialize_beacon(&b, [1; 6], 7).unwrap()
        } else {
            let a = Announcement {
                from: ApId(9),
                assignment,
                n_clients: 4,
                seq: 21,
                sent_at_s: 3.0,
            };
            serialize_announcement(&a, [2; 6])
        };
        let original = frame.clone();
        let bits = frame.len() * 8;
        for p in positions.iter().take(n_flips) {
            let pos = p % bits;
            frame[pos / 8] ^= 1 << (pos % 8);
        }
        if beacon_side {
            if let Ok(parsed) = parse_beacon(&frame) {
                prop_assert_eq!(&frame, &original, "corrupted beacon decoded");
                prop_assert_eq!(parsed.ap, ApId(3));
            }
        } else if let Ok(parsed) = parse_announcement(&frame) {
            prop_assert_eq!(&frame, &original, "corrupted announcement decoded");
            prop_assert_eq!(parsed.from, ApId(9));
        }
    }

    #[test]
    fn iapp_never_undercounts_contenders_beyond_one_hold_down(
        seed in any::<u64>(),
        loss in 0.0f64..0.9,
        rounds in 10usize..80,
    ) {
        // A neighbour on a conflicting channel announces once a second;
        // each frame is lost independently, and each delivered frame is
        // sometimes the *previous* round's (reordered, stale seq). The
        // pessimism contract: from first contact until `expiry_s +
        // hold_down_s` past the last delivery, the agent must keep
        // counting that contender — loss may only ever make `M_a`
        // smaller, never larger (share 1.0 with a live contender would
        // be optimistic).
        use acorn::core::iapp::{Announcement, IappAgent};
        use acorn::topology::{ApId, Channel20, ChannelAssignment};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let chan = ChannelAssignment::Single(Channel20(0));
        let mut agent = IappAgent::new(ApId(0));
        let mut peer = IappAgent::new(ApId(1));
        let mut last_delivery: Option<f64> = None;
        let mut previous: Option<Announcement> = None;
        for round in 0..rounds {
            let now = round as f64;
            let fresh = peer.announce(chan, 1, now);
            if rng.gen::<f64>() >= loss {
                // 1-in-4 delivered frames arrive reordered: the stale
                // predecessor shows up instead of the fresh frame.
                let stale = rng.gen::<f64>() < 0.25;
                let msg = match (&previous, stale) {
                    (Some(p), true) => *p,
                    _ => fresh,
                };
                agent.handle(&msg, -60.0, now);
                last_delivery = Some(now);
            }
            previous = Some(fresh);
            agent.prune(now);
            if let Some(t) = last_delivery {
                if now - t <= agent.expiry_s + agent.hold_down_s {
                    prop_assert_eq!(
                        agent.contender_count(chan), 1,
                        "round {}: contender forgotten only {}s after last \
                         delivery (expiry {} + hold {})",
                        round, now - t, agent.expiry_s, agent.hold_down_s
                    );
                    prop_assert!(agent.access_share(chan) <= 0.5);
                }
            }
        }
    }

    #[test]
    fn tracker_estimate_stays_within_sample_range(
        samples in proptest::collection::vec(-5.0f64..40.0, 1..50),
    ) {
        use acorn::core::tracker::{ClientTracker, TrackerConfig};
        let mut t = ClientTracker::new(TrackerConfig::default(), 0.0).unwrap();
        for (i, s) in samples.iter().enumerate() {
            t.observe_snr(*s, i as f64).unwrap();
        }
        if let Some(est) = t.snr_db() {
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }
}

proptest! {
    // Algorithm 1's NaN policy, exercised adversarially: for ANY
    // candidate field (NaN access shares included) the chosen AP's
    // screened utility is the `total_cmp` maximum, and the choice is
    // invariant under reordering of the candidate list (modulo the index
    // remap) whenever the argmax is unique.
    #[test]
    fn choose_ap_is_permutation_invariant_even_with_nans(
        seed in any::<u64>(),
        n in 1usize..8,
        nan_mask in any::<u8>(),
        rotate_by in 0usize..8,
    ) {
        use acorn::core::{choose_ap, screen_score, utility, Candidate};
        use acorn::topology::ApId;
        // Derive candidate fields from the seed with a splitmix64-style
        // mixer, poisoning the access share of every mask-selected slot.
        let mix = |i: u64, salt: u64| -> f64 {
            let mut z = seed
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z >> 11) as f64 / (1u64 << 53) as f64 // uniform in [0, 1)
        };
        let cands: Vec<Candidate> = (0..n)
            .map(|i| {
                let share = if nan_mask & (1 << i) != 0 {
                    f64::NAN
                } else {
                    0.05 + 0.95 * mix(i as u64, 1)
                };
                let atd = 0.005 + 0.095 * mix(i as u64, 2);
                Candidate {
                    ap: ApId(i),
                    k_including_u: 1 + (mix(i as u64, 3) * 5.0) as usize,
                    access_share: share,
                    atd_including_u_s: atd,
                    delay_u_s: atd * 0.9 * mix(i as u64, 4),
                }
            })
            .collect();

        let winner = choose_ap(&cands).expect("non-empty candidate list");
        let screened: Vec<f64> = (0..cands.len())
            .map(|i| screen_score(utility(&cands, i)))
            .collect();
        let max = screened
            .iter()
            .copied()
            .max_by(f64::total_cmp)
            .unwrap();
        prop_assert_eq!(
            screened[winner].to_bits(),
            max.to_bits(),
            "winner must carry the total_cmp-max screened utility"
        );

        // Rotate the list: a unique argmax must keep winning.
        let r = rotate_by % cands.len();
        let mut rotated = cands.clone();
        rotated.rotate_left(r);
        let w2 = choose_ap(&rotated).expect("non-empty candidate list");
        let unique = screened
            .iter()
            .filter(|s| s.to_bits() == max.to_bits())
            .count()
            == 1;
        if unique {
            prop_assert_eq!(
                rotated[w2].ap, cands[winner].ap,
                "unique argmax must survive reordering"
            );
        } else {
            prop_assert_eq!(
                screen_score(utility(&rotated, w2)).to_bits(),
                max.to_bits()
            );
        }
    }

    // The histogram ingestion path must never panic, whatever bit
    // pattern arrives: NaN is counted and dropped, infinities land in
    // the under-/overflow bins, everything else is binned.
    #[test]
    fn histograms_never_panic_on_any_f64(
        bits in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        use acorn::obs::Histogram;
        let mut h = Histogram::linear(0.0, 10.0, 8).expect("static bounds");
        let mut nans = 0u64;
        for b in &bits {
            let x = f64::from_bits(*b);
            if x.is_nan() {
                nans += 1;
            }
            h.observe(x);
        }
        prop_assert_eq!(h.nan_rejected, nans);
        let binned: u64 = h.counts.iter().sum::<u64>() + h.underflow + h.overflow;
        prop_assert_eq!(binned + nans, bits.len() as u64);
    }

    // Constructor misuse is a typed error, never a panic.
    #[test]
    fn histogram_constructors_never_panic(
        lo_bits in any::<u64>(),
        hi_bits in any::<u64>(),
        n in 0usize..40,
        edge_bits in proptest::collection::vec(any::<u64>(), 0..10),
    ) {
        use acorn::obs::Histogram;
        let _ = Histogram::linear(f64::from_bits(lo_bits), f64::from_bits(hi_bits), n);
        let edges: Vec<f64> = edge_bits.iter().map(|b| f64::from_bits(*b)).collect();
        let _ = Histogram::with_edges(edges);
    }
}

proptest! {
    // The Monte-Carlo engine's core contract: the parallel chunked
    // fan-out (whatever the ambient thread count) folds to exactly the
    // report the sequential single-workspace loop produces, for any
    // packet count — including the 0- and 1-packet edges and counts
    // that don't divide evenly into chunks.
    #[test]
    fn parallel_frame_trials_match_the_sequential_fold(
        packets in 0usize..=20,
        seed in any::<u64>(),
        coded in any::<bool>(),
    ) {
        use acorn::baseband::frame::{
            run_trial_with, try_run_trial, Equalization, FrameConfig, FrameWorkspace,
        };
        let cfg = FrameConfig {
            packet_bytes: 60,
            code_rate: if coded { Some(CodeRate::R12) } else { None },
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(7.0);
        let mut ws = FrameWorkspace::new();
        let sequential = run_trial_with(&cfg, packets, seed, &mut ws).unwrap();
        let parallel = try_run_trial(&cfg, packets, seed).unwrap();
        prop_assert_eq!(&parallel, &sequential);
        prop_assert_eq!(
            parallel.evm_rms.to_bits(),
            sequential.evm_rms.to_bits(),
            "EVM bit patterns diverge: the fold order must not depend on scheduling"
        );
    }
}

/// The vendored proptest shim has no tuple strategies, so the control
/// message and envelope strategies are hand-rolled [`Strategy`] impls
/// composing the existing samplers.
struct AnyCtrlMsg;

impl Strategy for AnyCtrlMsg {
    type Value = acorn::ctrlplane::CtrlMsg;
    fn sample(&self, rng: &mut proptest::TestRng) -> Self::Value {
        use acorn::ctrlplane::CtrlMsg;
        match (0u8..4).sample(rng) {
            0 => CtrlMsg::BeaconDigest {
                ap: any::<u16>().sample(rng),
                assignment: any_assignment().sample(rng),
                n_clients: any::<u16>().sample(rng),
            },
            1 => CtrlMsg::IappState {
                zone: any::<u16>().sample(rng),
                epoch: any::<u64>().sample(rng),
                fingerprint: any::<u64>().sample(rng),
                safe_mode: any::<bool>().sample(rng),
            },
            2 => CtrlMsg::ProposedSwitch {
                ap: any::<u16>().sample(rng),
                assignment: any_assignment().sample(rng),
                epoch: any::<u64>().sample(rng),
            },
            _ => CtrlMsg::Ack {
                ack_of: any::<u64>().sample(rng),
            },
        }
    }
}

struct AnyEnvelope;

impl Strategy for AnyEnvelope {
    type Value = acorn::ctrlplane::CtrlEnvelope;
    fn sample(&self, rng: &mut proptest::TestRng) -> Self::Value {
        acorn::ctrlplane::CtrlEnvelope {
            from: any::<u16>().sample(rng),
            to: any::<u16>().sample(rng),
            msg_id: any::<u64>().sample(rng),
            msgs: proptest::collection::vec(AnyCtrlMsg, 0..5).sample(rng),
        }
    }
}

proptest! {
    // The control-plane wire contract: every envelope the protocol can
    // construct survives encode -> parse bit-exactly, and the codec is
    // canonical (re-encoding the parse reproduces the frame bytes).
    #[test]
    fn ctrl_envelopes_round_trip_the_wire(env in AnyEnvelope) {
        use acorn::ctrlplane::{encode_envelope, parse_envelope};
        let frame = encode_envelope(&env);
        let back = parse_envelope(&frame).expect("clean frame must parse");
        prop_assert_eq!(&back, &env);
        prop_assert_eq!(encode_envelope(&back), frame);
    }

    // Any 1-3-bit corruption of a control frame is caught -- by the FCS
    // (CRC-32 detects all errors of weight <= 3 at these lengths) or by
    // a structural check -- and surfaces as a typed error, never a
    // panic and never a silently wrong envelope. Positions are deduped,
    // so every surviving flip genuinely corrupts the frame.
    #[test]
    fn bit_corruption_yields_a_typed_error_not_a_panic(
        env in AnyEnvelope,
        picks in proptest::collection::vec(any::<u64>(), 1..=3),
    ) {
        use acorn::ctrlplane::{encode_envelope, parse_envelope};
        let clean = encode_envelope(&env);
        let positions: std::collections::BTreeSet<usize> =
            picks.iter().map(|&b| b as usize % (clean.len() * 8)).collect();
        let mut frame = clean.clone();
        for p in &positions {
            frame[p / 8] ^= 1 << (p % 8);
        }
        prop_assert!(frame != clean);
        prop_assert!(parse_envelope(&frame).is_err(), "corrupted frame parsed");
    }

    // Truncation at every possible length is a typed error too.
    #[test]
    fn truncation_is_always_a_typed_error(env in AnyEnvelope, cut in any::<u64>()) {
        use acorn::ctrlplane::{encode_envelope, parse_envelope};
        let frame = encode_envelope(&env);
        let keep = cut as usize % frame.len();
        prop_assert!(parse_envelope(&frame[..keep]).is_err());
    }
}
