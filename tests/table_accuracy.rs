//! Accuracy gate for the memoized goodput table.
//!
//! The table trades the exact union-bound PER evaluation for a quantized
//! SNR lookup; the price must stay inside the documented budget
//! ([`GoodputTable::GOODPUT_TOLERANCE_BPS`]) and must never change an
//! allocation decision. `scripts/ci.sh` runs this file as an explicit
//! gate.

use acorn::core::allocation::{
    allocate_sharded_with_restarts, allocate_with_restarts, AllocationConfig,
};
use acorn::core::{AcornConfig, AcornController};
use acorn::phy::{ChannelWidth, GoodputTable, LinkQualityEstimator};
use acorn::sim::scenario::{enterprise_grid, fig11, topology1, topology2};
use acorn::topology::{ClientId, Wlan};
use std::sync::Arc;

/// Full-range sweep: at every tabulated bin and at off-bin offsets (the
/// worst cases for linear interpolation), on both widths, the memoized
/// best-rate goodput stays within the documented tolerance of the exact
/// union-bound search. The offsets cover the interpolation interior;
/// the exact bin centres must agree almost exactly.
#[test]
fn table_goodput_error_is_within_documented_tolerance() {
    let est = LinkQualityEstimator::default();
    let table = GoodputTable::new(est);
    let (lo, step) = (
        GoodputTable::DEFAULT_SNR_MIN_DB,
        GoodputTable::DEFAULT_SNR_STEP_DB,
    );
    let n_bins = ((GoodputTable::DEFAULT_SNR_MAX_DB - lo) / step) as usize;
    let mut max_err = 0.0f64;
    for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
        for b in 0..n_bins {
            for off in [0.0, 0.25, 0.5, 0.75] {
                let snr = lo + (b as f64 + off) * step;
                let approx = table.rate_point(snr, width).goodput_bps;
                let exact = est.best_rate_point(snr, width).goodput_bps;
                max_err = max_err.max((approx - exact).abs());
            }
        }
    }
    assert!(
        max_err <= GoodputTable::GOODPUT_TOLERANCE_BPS,
        "max goodput error {max_err} b/s exceeds the documented budget"
    );
    // The build-time self-check must have recorded the same bound.
    assert!(table.max_check_error_bps() <= GoodputTable::GOODPUT_TOLERANCE_BPS);
    // Everything above was in range: all hits, no misses.
    let stats = table.stats();
    assert_eq!(stats.misses, 0, "sweep left the tabulated range");
    assert!(stats.hits > 0);
}

/// Outside the tabulated range the table falls back to the exact
/// estimator, so the error there is identically zero.
#[test]
fn out_of_range_lookups_are_exact() {
    let est = LinkQualityEstimator::default();
    let table = GoodputTable::new(est);
    for snr in [-60.0, 75.0, 120.0] {
        for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let a = table.rate_point(snr, width);
            let b = est.best_rate_point(snr, width);
            assert_eq!(a.goodput_bps.to_bits(), b.goodput_bps.to_bits());
            assert_eq!(a.mcs, b.mcs);
        }
    }
    assert!(table.stats().misses > 0);
}

/// Runs Algorithm 2 on a golden topology twice — once on the exact model,
/// once on the table-backed model — from identical associations, and
/// demands identical colorings.
fn assert_coloring_unchanged(wlan: &Wlan, label: &str) {
    let exact = AcornController::new(AcornConfig::default());
    let table = AcornController::with_table(
        AcornConfig::default(),
        Arc::new(GoodputTable::new(LinkQualityEstimator::default())),
    );
    let mut state = exact.new_state(wlan, 1);
    for c in 0..wlan.clients.len() {
        exact.associate(wlan, &mut state, ClientId(c));
    }
    let model_exact = exact.build_model(wlan, &state);
    let model_table = table.build_model(wlan, &state);
    let plan = AcornConfig::default().plan;
    let cfg = AllocationConfig::default();
    let r_exact = allocate_with_restarts(&model_exact, &plan, &cfg, 4, 2010);
    let r_table = allocate_with_restarts(&model_table, &plan, &cfg, 4, 2010);
    assert_eq!(
        r_exact.assignments, r_table.assignments,
        "{label}: the table changed the coloring"
    );
    // The sharded path on the table model agrees with the plain path too.
    let r_sharded = allocate_sharded_with_restarts(
        &model_table,
        &plan,
        r_table.assignments.clone(),
        &cfg,
        4,
        2010,
    );
    assert!(
        r_sharded.total_bps >= r_table.total_bps * (1.0 - 1e-9),
        "{label}: sharding lost goodput"
    );
}

#[test]
fn golden_topology_colorings_are_unchanged_by_the_table() {
    assert_coloring_unchanged(&topology1(), "topology1");
    assert_coloring_unchanged(&topology2(), "topology2");
    assert_coloring_unchanged(&fig11(), "fig11");
    assert_coloring_unchanged(&enterprise_grid(3, 3, 45.0, 24, 7), "enterprise_grid 3x3");
}
