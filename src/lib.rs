//! # acorn — reproduction of "Auto-configuration of 802.11n WLANs" (CoNEXT 2010)
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`phy`] | analytic 802.11n PHY (OFDM, MCS, noise, BER/PER, σ, estimator) |
//! | [`baseband`] | software OFDM/MIMO baseband — the WARP-board substitute |
//! | [`topology`] | geometry, path loss, 5 GHz channel plan, interference graph |
//! | [`mac`] | DCF airtime/anomaly model, contention, rate control, DCF simulator |
//! | [`traces`] | association-duration traces, ECDF, arrival workloads |
//! | [`core`] | ACORN itself: Algorithms 1 & 2, estimator, controller, theory |
//! | [`dcb`] | per-transmission dynamic bonding: policies, CTMC check, exact optimum |
//! | [`obs`] | observability: metric sinks, spans, deterministic telemetry |
//! | [`events`] | deterministic discrete-event runtime + telemetry recorder |
//! | [`ctrlplane`] | distributed zone-controller control plane over [`events`] |
//! | [`baselines`] | \[17\]-style greedy CB, RSSI, random/fixed configs, optimal |
//! | [`sim`] | scenarios, traffic models, statistics, mobility, eval runner |
//! | [`soak`] | chaos soak: streaming workloads, sketch telemetry, watchdogs |
//!
//! ## Quickstart
//!
//! ```
//! use acorn::core::{AcornConfig, AcornController};
//! use acorn::topology::ClientId;
//!
//! // A 2×2 enterprise floor with 8 clients.
//! let wlan = acorn::sim::enterprise_grid(2, 2, 50.0, 8, 42);
//! let ctl = AcornController::new(AcornConfig::default());
//! let mut state = ctl.new_state(&wlan, 42);
//! for c in 0..wlan.clients.len() {
//!     ctl.associate(&wlan, &mut state, ClientId(c));
//! }
//! let result = ctl.reallocate(&wlan, &mut state);
//! assert!(result.total_bps > 0.0);
//! ```

pub mod calibration;

pub use acorn_baseband as baseband;
pub use acorn_baselines as baselines;
pub use acorn_core as core;
pub use acorn_ctrlplane as ctrlplane;
pub use acorn_dcb as dcb;
pub use acorn_events as events;
pub use acorn_mac as mac;
pub use acorn_obs as obs;
pub use acorn_phy as phy;
pub use acorn_sim as sim;
pub use acorn_soak as soak;
pub use acorn_topology as topology;
pub use acorn_traces as traces;
