//! Cross-validation of the analytic link-quality estimator (§4.2) against
//! the baseband Monte-Carlo engine.
//!
//! The estimator predicts per-link PER from closed-form AWGN BER curves
//! plus the −3 dB CB calibration shift; the [`crate::baseband`] engine
//! *measures* the same quantities by pushing coded OFDM frames through the
//! full Tx → channel → Rx pipeline. This module runs both over one SNR
//! grid — the batched [`run_trials`] sweep on the measurement side, the
//! batched [`LinkQualityEstimator::estimate_grid`] on the prediction side
//! — and reports them point by point, the software analogue of
//! calibrating the paper's estimator against its WARP measurements.

use acorn_baseband::{run_trials, ChannelModel, Equalization, FrameConfig, FrameError, SyncMode};
use acorn_phy::coding::{coded_ber, per_from_ber_bytes};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::{ChannelWidth, CodeRate, GuardInterval, Modulation};

/// One SNR grid point of the estimator-vs-Monte-Carlo comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Per-subcarrier SNR on the 20 MHz channel (dB).
    pub snr20_db: f64,
    /// Calibrated 40 MHz SNR the estimator predicts for this link (dB).
    pub snr40_db: f64,
    /// Analytic PER prediction at 20 MHz.
    pub predicted_per20: f64,
    /// Analytic PER prediction at the calibrated 40 MHz SNR.
    pub predicted_per40: f64,
    /// Measured PER at 20 MHz from the baseband engine.
    pub measured_per20: f64,
    /// Measured PER at 40 MHz (same transmit power — the engine produces
    /// the CB penalty physically rather than via the calibration shift).
    pub measured_per40: f64,
}

impl CalibrationPoint {
    /// Whether prediction and measurement agree on which side of a PER
    /// threshold this point falls, at both widths — the coarse
    /// classification ACORN actually needs ("a reasonable classification
    /// of good and poor links").
    pub fn agrees_at(&self, per_threshold: f64) -> bool {
        (self.predicted_per20 > per_threshold) == (self.measured_per20 > per_threshold)
            && (self.predicted_per40 > per_threshold) == (self.measured_per40 > per_threshold)
    }
}

/// The modulation/code-rate operating point and Monte-Carlo depth of a
/// calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Subcarrier modulation of the probe frames.
    pub modulation: Modulation,
    /// Code rate of the probe frames.
    pub code_rate: CodeRate,
    /// Payload size in bytes (the paper uses 1500).
    pub packet_bytes: usize,
    /// Packets simulated per (SNR, width) cell.
    pub packets: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            modulation: Modulation::Qpsk,
            code_rate: CodeRate::R12,
            packet_bytes: 1500,
            packets: 100,
        }
    }
}

fn frame_config(cal: &CalibrationConfig, width: ChannelWidth, snr20_db: f64) -> FrameConfig {
    // Pin the 20 MHz SNR; the 40 MHz config reuses the same tx_power and
    // noise density, so its per-subcarrier SNR lands ~3 dB lower through
    // the pipeline's physics alone.
    let mut cfg = FrameConfig {
        width: ChannelWidth::Ht20,
        modulation: cal.modulation,
        code_rate: Some(cal.code_rate),
        stbc: false,
        tx_power: 1.0,
        noise_density: 1.0,
        channel: ChannelModel::Awgn,
        packet_bytes: cal.packet_bytes,
        sync: SyncMode::Genie,
        equalization: Equalization::Genie,
        gi: GuardInterval::Long,
    }
    .with_target_snr(snr20_db);
    cfg.width = width;
    cfg
}

/// Runs the estimator and the Monte-Carlo engine over `snrs` (20 MHz
/// per-subcarrier SNRs, dB) and pairs predictions with measurements.
///
/// Deterministic in `seed` at any thread count (both the sweep and each
/// trial inherit the engine's determinism contract).
pub fn calibrate(
    estimator: &LinkQualityEstimator,
    cal: &CalibrationConfig,
    snrs: &[f64],
    seed: u64,
) -> Result<Vec<CalibrationPoint>, FrameError> {
    // Measurement side: one batched sweep over the whole (SNR × width) grid.
    let mut grid = Vec::with_capacity(2 * snrs.len());
    for &snr in snrs {
        grid.push(frame_config(cal, ChannelWidth::Ht20, snr));
        grid.push(frame_config(cal, ChannelWidth::Ht40, snr));
    }
    let reports = run_trials(&grid, cal.packets, seed);

    // Prediction side: the batched estimator pass supplies the calibrated
    // 40 MHz SNR per point.
    let measurements: Vec<(f64, ChannelWidth)> =
        snrs.iter().map(|&s| (s, ChannelWidth::Ht20)).collect();
    let estimates = estimator.estimate_grid(&measurements);

    let predict = |snr_db: f64| {
        per_from_ber_bytes(
            coded_ber(cal.code_rate, cal.modulation.ber_awgn(snr_db)),
            cal.packet_bytes as u32,
        )
    };
    let mut points = Vec::with_capacity(snrs.len());
    for (i, &snr) in snrs.iter().enumerate() {
        let r20 = match &reports[2 * i] {
            Ok(r) => r.per(),
            Err(e) => return Err(*e),
        };
        let r40 = match &reports[2 * i + 1] {
            Ok(r) => r.per(),
            Err(e) => return Err(*e),
        };
        let est = &estimates[i];
        points.push(CalibrationPoint {
            snr20_db: snr,
            snr40_db: est.snr40_db,
            predicted_per20: predict(est.snr20_db),
            predicted_per40: predict(est.snr40_db),
            measured_per20: r20,
            measured_per40: r40,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_and_engine_agree_on_link_classification() {
        // A coarse grid spanning dead → transition → clean links. Small
        // packets keep the Monte-Carlo affordable in a unit test; the PER
        // model is parameterized on the same size, so the comparison stays
        // apples-to-apples.
        let estimator = LinkQualityEstimator::default();
        let cal = CalibrationConfig {
            packet_bytes: 200,
            packets: 40,
            ..CalibrationConfig::default()
        };
        let snrs = [1.0, 6.0, 12.0];
        let points = calibrate(&estimator, &cal, &snrs, 20_260_806).unwrap();
        assert_eq!(points.len(), snrs.len());
        for p in &points {
            // The calibration shift the estimator applies is the CB
            // penalty the engine produces physically.
            assert!((p.snr20_db - p.snr40_db - 3.0103).abs() < 0.2);
            // Both the model and the engine must show the penalty: the
            // bonded width is never the more reliable one.
            assert!(p.predicted_per40 >= p.predicted_per20);
            assert!(p.measured_per40 >= p.measured_per20 - 1e-9);
        }
        // Outside the transition band (where the union-bound BER model is
        // intentionally conservative — "ACORN does not require the exact
        // PER values"), prediction and measurement must agree on the
        // good/poor side of the fence: dead at 1 dB, clean at 12 dB.
        for p in [&points[0], &points[2]] {
            assert!(
                p.agrees_at(0.5),
                "estimator and Monte-Carlo disagree at {} dB: \
                 predicted ({:.3}, {:.3}) vs measured ({:.3}, {:.3})",
                p.snr20_db,
                p.predicted_per20,
                p.predicted_per40,
                p.measured_per20,
                p.measured_per40
            );
        }
        assert!(points[0].measured_per40 > 0.5);
        assert!(points[2].measured_per20 < 0.5);
    }

    #[test]
    fn calibration_is_deterministic() {
        let estimator = LinkQualityEstimator::default();
        let cal = CalibrationConfig {
            packet_bytes: 100,
            packets: 10,
            ..CalibrationConfig::default()
        };
        let a = calibrate(&estimator, &cal, &[6.0], 7).unwrap();
        let b = calibrate(&estimator, &cal, &[6.0], 7).unwrap();
        assert_eq!(a, b);
        assert!(calibrate(&estimator, &cal, &[], 7).unwrap().is_empty());
    }
}
