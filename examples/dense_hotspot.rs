//! Dense hotspot: channel scarcity and why aggressive bonding backfires
//! (the paper's Fig. 11 scenario as a runnable demo).
//!
//! Three mutually contending APs, only four 20 MHz channels. ACORN,
//! the [17]-style aggressive-CB baseline, and the two fixed-width plans
//! are configured on the same deployment and scored side by side.
//!
//! ```text
//! cargo run --release --example dense_hotspot
//! ```

use acorn::baselines::{allocate_aggressive_cb, fixed_width};
use acorn::core::{AcornConfig, AcornController};
use acorn::phy::ChannelWidth;
use acorn::sim::runner::evaluate_analytic;
use acorn::sim::Traffic;
use acorn::topology::{ChannelPlan, ClientId};

fn main() {
    let wlan = acorn::sim::fig11();
    let plan = ChannelPlan::restricted(4);
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });

    // Natural association (one client per AP here).
    let mut state = ctl.new_state(&wlan, 1);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }

    // ACORN (run first: `score` borrows the settled association below).
    ctl.reallocate_with_restarts(&wlan, &mut state, 8, 3);

    let score = |assignments: &[acorn::topology::ChannelAssignment]| {
        evaluate_analytic(
            &wlan,
            assignments,
            &state.assoc,
            &ctl.config.estimator,
            1500,
            Traffic::Udp,
        )
    };
    let acorn = score(&state.assignments);
    let acorn_widths: Vec<_> = state.assignments.iter().map(|a| a.width()).collect();

    // Aggressive CB ([17]-style).
    let graph = wlan.interference_graph(&state.assoc);
    let aggressive = allocate_aggressive_cb(&wlan, &graph, &plan, 8);
    let agg = score(&aggressive);

    // Fixed-width strawmen.
    let all20 = fixed_width(&plan, wlan.aps.len(), ChannelWidth::Ht20);
    let all40 = fixed_width(&plan, wlan.aps.len(), ChannelWidth::Ht40);
    let f20 = score(&all20);
    let f40 = score(&all40);

    println!("3 contending APs, 4 channels (2 possible bonds):");
    println!();
    let row = |name: &str, e: &acorn::sim::Evaluation| {
        println!(
            "{name:<22} per-AP [{}] Mb/s   total {:>6.1} Mb/s",
            e.per_ap_bps
                .iter()
                .map(|b| format!("{:>5.1}", b / 1e6))
                .collect::<Vec<_>>()
                .join(", "),
            e.total_bps / 1e6
        );
    };
    println!("ACORN widths: {acorn_widths:?}");
    row("ACORN", &acorn);
    row("aggressive CB ([17])", &agg);
    row("fixed all-20 MHz", &f20);
    row("fixed all-40 MHz", &f40);
    println!();
    println!(
        "ACORN vs aggressive CB: {:.2}x (paper: ~2x in this scenario)",
        acorn.total_bps / agg.total_bps
    );
}
