//! Enterprise floor: a day in the life of an ACORN-managed WLAN.
//!
//! Drives a 3×3 AP grid with a Poisson client-session workload (arrival
//! durations fit to the paper's CRAWDAD statistics), re-running channel
//! allocation every T = 30 minutes — the period the paper derives from
//! Fig. 9 — and reporting the network throughput before/after each
//! re-allocation.
//!
//! ```text
//! cargo run --release --example enterprise_floor
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::topology::ClientId;
use acorn::traces::{SessionGenerator, REALLOCATION_PERIOD_S};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let horizon_s = 4.0 * 3600.0; // four simulated hours
    let mut rng = StdRng::seed_from_u64(99);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, horizon_s);
    println!(
        "workload: {} sessions over {:.0} h",
        sessions.len(),
        horizon_s / 3600.0
    );

    // Place one (potential) client position per session on the floor.
    let wlan = acorn::sim::enterprise_grid(3, 3, 50.0, sessions.len(), 123);
    let ctl = AcornController::new(AcornConfig::default());
    let mut state = ctl.new_state(&wlan, 5);

    // Event loop: arrivals, departures, periodic re-allocation.
    #[derive(Debug)]
    enum Event {
        Arrive(usize),
        Depart(usize),
        Reallocate,
    }
    let mut events: Vec<(f64, Event)> = Vec::new();
    for s in &sessions {
        events.push((s.start_s, Event::Arrive(s.client)));
        events.push((s.end_s(), Event::Depart(s.client)));
    }
    let mut t = REALLOCATION_PERIOD_S;
    while t < horizon_s {
        events.push((t, Event::Reallocate));
        t += REALLOCATION_PERIOD_S;
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut seed = 1000u64;
    for (time, ev) in events {
        match ev {
            Event::Arrive(c) => {
                ctl.associate(&wlan, &mut state, ClientId(c));
            }
            Event::Depart(c) => {
                ctl.deassociate(&mut state, ClientId(c));
            }
            Event::Reallocate => {
                let active = state.assoc.iter().filter(|a| a.is_some()).count();
                let before = ctl.total_throughput_bps(&wlan, &state);
                let r = ctl.reallocate_with_restarts(&wlan, &mut state, 4, seed);
                seed += 1;
                println!(
                    "t={:>5.0} min: {active:>2} active clients, Y {:>6.1} -> {:>6.1} Mb/s ({} switches)",
                    time / 60.0,
                    before / 1e6,
                    r.total_bps / 1e6,
                    r.switches
                );
            }
        }
    }

    println!();
    println!("final channel plan:");
    for (i, a) in state.assignments.iter().enumerate() {
        println!("  AP {i}: {a:?}");
    }
}
