//! Mobile client: ACORN's opportunistic width fallback in action
//! (the paper's §5.2 pedestrian experiment, Figs. 12–13).
//!
//! A laptop walks away from its AP while two static clients keep
//! downloading. Watch ACORN ride the bonded channel while the link is
//! strong, then fall back to 20 MHz the moment the mobile link would drag
//! the whole cell down via the 802.11 performance anomaly.
//!
//! ```text
//! cargo run --release --example mobile_client
//! ```

use acorn::phy::ChannelWidth;
use acorn::sim::{paper_walk, WidthPolicy};

fn bar(bps: f64, scale: f64) -> String {
    let n = ((bps / 1e6) / scale).round() as usize;
    "#".repeat(n.min(60))
}

fn main() {
    let exp = paper_walk(true); // outbound: strong -> weak
    let acorn = exp.run(WidthPolicy::AcornAdaptive);
    let fixed40 = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht40));

    println!("outbound walk: cell throughput, ACORN vs fixed 40 MHz");
    println!(
        "{:>4} {:>9} {:>6}  {:<32} {}",
        "t(s)", "SNR(dB)", "width", "ACORN", "fixed-40"
    );
    for (a, f) in acorn.iter().zip(&fixed40).step_by(3) {
        println!(
            "{:>4.0} {:>9.1} {:>6}  {:<32} {}",
            a.t_s,
            a.mobile_snr20_db,
            match a.width {
                ChannelWidth::Ht40 => "40MHz",
                ChannelWidth::Ht20 => "20MHz",
            },
            format!("{:>6.1} {}", a.cell_bps / 1e6, bar(a.cell_bps, 2.5)),
            format!("{:>6.1} {}", f.cell_bps / 1e6, bar(f.cell_bps, 2.5)),
        );
    }

    let switch = acorn
        .windows(2)
        .find(|w| w[0].width != w[1].width)
        .map(|w| w[1].t_s);
    let last_gain = acorn.last().unwrap().cell_bps / fixed40.last().unwrap().cell_bps.max(1.0);
    println!();
    match switch {
        Some(t) => println!("ACORN fell back to 20 MHz at t = {t:.0} s"),
        None => println!("no width switch occurred"),
    }
    println!("end-of-walk gain over fixed 40 MHz: {last_gain:.1}x (paper: ~10x)");
}
