//! Quickstart: auto-configure a small enterprise WLAN with ACORN.
//!
//! Builds a 2×2 AP grid with 8 clients, runs Algorithm 1 (association)
//! for each arriving client, then Algorithm 2 (channel-bonding-aware
//! allocation), and prints the resulting configuration and per-cell
//! throughputs. A [`RecordingSink`] rides along, so the run also shows
//! what the observability layer sees — and saves the full snapshot under
//! `results/`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::obs::{RecordingSink, Sink};
use acorn::phy::{GoodputTable, LinkQualityEstimator};
use acorn::sim::runner::evaluate_analytic;
use acorn::sim::Traffic;
use acorn::topology::{ApId, ClientId};
use std::sync::Arc;

fn main() {
    // A 2×2 floor, 55 m AP spacing, 8 clients scattered with shadowing.
    let wlan = acorn::sim::enterprise_grid(2, 2, 55.0, 8, 42);
    // The controller runs its SNR→PER→goodput evaluations through the
    // memoized table (the city-scale fast path); drop `with_table` for
    // the exact per-call union-bound evaluation.
    let table = Arc::new(GoodputTable::new(LinkQualityEstimator::default()));
    let ctl = AcornController::with_table(AcornConfig::default(), table);

    // Every decision below reports into this sink; swap in `NullSink`
    // (or call the un-suffixed methods) to run with observability off.
    let sink = RecordingSink::new();

    // Clients arrive one by one and associate per Algorithm 1.
    let mut state = ctl.new_state(&wlan, 42);
    for c in 0..wlan.clients.len() {
        match ctl.associate_obs(&wlan, &mut state, ClientId(c), &sink) {
            Some(ap) => println!("client {c} -> AP {}", ap.0),
            None => println!("client {c} is out of range"),
        }
    }

    // Channel allocation per Algorithm 2 (with random restarts), sharded
    // over the conflict graph's connected components — the snapshot below
    // reports the shard count (`alloc.shards`) and the table's hit/miss
    // counters (`phy.table.*`) alongside the association metrics.
    let result = ctl.reallocate_sharded_with_restarts_obs(&wlan, &mut state, 8, 7, &sink);
    println!();
    println!(
        "allocation converged after {} iterations, {} switches",
        result.iterations, result.switches
    );
    for (i, a) in state.assignments.iter().enumerate() {
        println!(
            "AP {i}: {:?} ({:?}), serving {} clients",
            a,
            a.width(),
            state.cell_clients(ApId(i)).len()
        );
    }

    // Score the final configuration.
    let eval = evaluate_analytic(
        &wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    println!();
    for (i, bps) in eval.per_ap_bps.iter().enumerate() {
        println!("AP {i}: {:.1} Mb/s", bps / 1e6);
    }
    println!("network total: {:.1} Mb/s", eval.total_bps / 1e6);

    // What the observability layer recorded: every counter the decision
    // paths emitted, in deterministic (lexicographic) order.
    sink.gauge("quickstart.total_bps", eval.total_bps);
    let snap = sink.snapshot();
    println!();
    println!("observability counters:");
    for c in &snap.counters {
        println!("  {:<28} {}", c.name, c.value);
    }
    println!("observability gauges:");
    for g in &snap.gauges {
        println!("  {:<28} {:.3}", g.name, g.value);
    }
    let path = std::path::Path::new("results").join("quickstart_observability.json");
    match snap.save(&path) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
