//! Quickstart: auto-configure a small enterprise WLAN with ACORN.
//!
//! Builds a 2×2 AP grid with 8 clients, runs Algorithm 1 (association)
//! for each arriving client, then Algorithm 2 (channel-bonding-aware
//! allocation), and prints the resulting configuration and per-cell
//! throughputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::sim::runner::evaluate_analytic;
use acorn::sim::Traffic;
use acorn::topology::{ApId, ClientId};

fn main() {
    // A 2×2 floor, 55 m AP spacing, 8 clients scattered with shadowing.
    let wlan = acorn::sim::enterprise_grid(2, 2, 55.0, 8, 42);
    let ctl = AcornController::new(AcornConfig::default());

    // Clients arrive one by one and associate per Algorithm 1.
    let mut state = ctl.new_state(&wlan, 42);
    for c in 0..wlan.clients.len() {
        match ctl.associate(&wlan, &mut state, ClientId(c)) {
            Some(ap) => println!("client {c} -> AP {}", ap.0),
            None => println!("client {c} is out of range"),
        }
    }

    // Channel allocation per Algorithm 2 (with random restarts).
    let result = ctl.reallocate_with_restarts(&wlan, &mut state, 8, 7);
    println!();
    println!(
        "allocation converged after {} iterations, {} switches",
        result.iterations, result.switches
    );
    for (i, a) in state.assignments.iter().enumerate() {
        println!(
            "AP {i}: {:?} ({:?}), serving {} clients",
            a,
            a.width(),
            state.cell_clients(ApId(i)).len()
        );
    }

    // Score the final configuration.
    let eval = evaluate_analytic(
        &wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    println!();
    for (i, bps) in eval.per_ap_bps.iter().enumerate() {
        println!("AP {i}: {:.1} Mb/s", bps / 1e6);
    }
    println!("network total: {:.1} Mb/s", eval.total_bps / 1e6);
}
