//! Distributed ACORN: the operational loop with no genie.
//!
//! The other examples hand the controller a god's-eye interference graph.
//! Here everything the allocator consumes is *learned and transported*:
//!
//! 1. APs exchange IAPP announcements (§4.2's alternative to the
//!    administrative authority) to discover contenders;
//! 2. the interference graph is rebuilt from the protocol caches;
//! 3. Algorithm 2 plans a new channel assignment on that learned graph;
//! 4. the switches deploy via 802.11h-style CSA countdowns, clients
//!    following from beacon announcements;
//! 5. the modified beacons themselves travel as real 802.11 frames
//!    (serialize → parse) before clients use them.
//!
//! ```text
//! cargo run --release --example distributed_acorn
//! ```

use acorn::core::csa::{switch_plans, ApCsa, CsaAction};
use acorn::core::iapp::{IappAgent, IappBus};
use acorn::core::wire::{parse_beacon, serialize_beacon};
use acorn::core::{
    allocate, AcornConfig, AcornController, AllocationConfig, ClientSnr, NetworkModel,
};
use acorn::phy::ChannelWidth;
use acorn::topology::{ApId, ClientId, InterferenceGraph};

fn main() {
    let wlan = acorn::sim::enterprise_grid(2, 2, 55.0, 10, 77);
    let ctl = AcornController::new(AcornConfig::default());
    let mut state = ctl.new_state(&wlan, 1);

    // Clients arrive and associate — consuming beacons off the wire.
    for c in 0..wlan.clients.len() {
        let beacons = ctl.beacons(&wlan, &state);
        for (i, b) in beacons.iter().enumerate() {
            let frame = serialize_beacon(b, [i as u8; 6], c as u64).expect("fits one IE");
            let parsed = parse_beacon(&frame).expect("own frame parses");
            assert_eq!(parsed.n_clients, b.n_clients);
        }
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    println!(
        "associated {} clients across {} APs",
        state.assoc.iter().filter(|a| a.is_some()).count(),
        wlan.aps.len()
    );

    // IAPP discovery: two announcement rounds.
    let mut agents: Vec<IappAgent> = (0..wlan.aps.len())
        .map(|i| IappAgent::new(ApId(i)))
        .collect();
    let bus = IappBus::new(&wlan);
    let counts: Vec<usize> = (0..wlan.aps.len())
        .map(|i| state.cell_clients(ApId(i)).len())
        .collect();
    for round in 0..2 {
        bus.round(&mut agents, &state.assignments, &counts, round as f64);
    }
    for a in &agents {
        println!(
            "AP {} hears {} neighbours over IAPP",
            a.ap.0,
            a.neighbors().len()
        );
    }

    // Rebuild the interference graph from protocol state only.
    let mut learned = InterferenceGraph::new(wlan.aps.len());
    for a in &agents {
        for (nb, _) in a.neighbors() {
            learned.add_edge(a.ap, nb);
        }
    }

    // Plan on the learned graph.
    let cells: Vec<Vec<ClientSnr>> = (0..wlan.aps.len())
        .map(|i| {
            state
                .cell_clients(ApId(i))
                .into_iter()
                .map(|c| ClientSnr {
                    client: c.0,
                    snr20_db: wlan.snr_db(ApId(i), c, ChannelWidth::Ht20),
                })
                .collect()
        })
        .collect();
    let model = NetworkModel::new(learned, cells);
    let result = allocate(
        &model,
        &ctl.config.plan,
        state.assignments.clone(),
        &AllocationConfig::default(),
    );
    println!(
        "allocation on the learned graph: {:.1} Mb/s after {} switches",
        result.total_bps / 1e6,
        result.switches
    );

    // Deploy via CSA: 4-beacon countdown, everyone hops together.
    let plans = switch_plans(&state.assignments, &result.assignments)
        .expect("old/new assignments come from the same deployment");
    println!("{} APs need to switch channels:", plans.len());
    let mut csa: Vec<ApCsa> = vec![ApCsa::default(); wlan.aps.len()];
    for p in &plans {
        println!("  AP {}: {:?} -> {:?}", p.ap.0, p.from, p.to);
        csa[p.ap.0]
            .schedule(p.to, 4)
            .expect("countdown of 4 beacons is non-zero");
    }
    let mut current = state.assignments.clone();
    for epoch in 0..=4 {
        for (i, machine) in csa.iter_mut().enumerate() {
            match machine.tick() {
                CsaAction::Announce { remaining, .. } if i == 0 => {
                    println!("epoch {epoch}: AP 0 announces switch in {remaining}");
                }
                CsaAction::SwitchNow(to) => {
                    current[i] = to;
                    println!("epoch {epoch}: AP {i} switched");
                }
                _ => {}
            }
        }
    }
    assert_eq!(current, result.assignments);
    println!("network deployed the new plan in lockstep.");
}
