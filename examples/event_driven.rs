//! Event-driven composite scenario: session churn + a walking client +
//! slow shadowing drift in one deterministic simulation, with the
//! telemetry snapshot printed at the end.
//!
//! ```text
//! cargo run --release --example event_driven
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::events::{CompositeScenario, DriftSpec, MobilitySpec};
use acorn::topology::{ClientId, Point, Trajectory};
use acorn::traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 3×3 enterprise floor and two hours of trace-driven sessions.
    let mut rng = StdRng::seed_from_u64(7);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 7200.0);
    let wlan = acorn::sim::enterprise_grid(3, 3, 50.0, sessions.len().max(1) + 1, 7);
    let ctl = AcornController::new(AcornConfig::default());

    // The last client slot walks 60 m across the floor while everything
    // else churns; the environment slowly drifts underneath.
    let mobile = ClientId(wlan.clients.len() - 1);
    let from = wlan.clients[mobile.0].pos;
    let report = CompositeScenario {
        wlan,
        sessions,
        horizon_s: 7200.0,
        reallocation_period_s: 1800.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 60.0, from.y),
                speed_mps: 0.01,
            },
            sample_period_s: 300.0,
        }),
        drift: Some(DriftSpec {
            period_s: 900.0,
            phase_step_rad: 0.02,
        }),
        faults: None,
        seed: 7,
        record_log: false,
    }
    .run(&ctl);

    println!(
        "{} events over {:.0} s of virtual time, {} re-allocation epochs",
        report.stats.events,
        report.stats.end_time_s,
        report.realloc.len()
    );
    for r in &report.realloc {
        println!(
            "  t={:>6.0}s  active={:>2}  {:>7.2} -> {:>7.2} Mbit/s  ({} switches)",
            r.t_s,
            r.active_clients,
            r.before_bps / 1e6,
            r.after_bps / 1e6,
            r.switches
        );
    }
    println!("\ntelemetry snapshot:\n{}", report.telemetry.to_json());
}
