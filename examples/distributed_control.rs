//! Distributed control plane: four zone controllers gossiping over a
//! faulty wire, driven through a network partition and its recovery.
//!
//! One zone is cut off mid-run. It detects the silence (majority of
//! peers stale), drops into safe mode — keep the last-known-good plan,
//! force border cells to 20 MHz — and, once the partition heals, its
//! retransmitted gossip comes through and catch-up replay reconverges
//! the whole city to exactly the centralized allocation.
//!
//! ```text
//! cargo run --release --example distributed_control
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::ctrlplane::{DistributedPlane, PartitionWindow, PlaneConfig};
use acorn::sim::scenario::zoned_city;

fn main() {
    // A 2×2-district city: four interference-isolated zones, each with
    // its own controller process on the shared virtual clock.
    let wlan = zoned_city(2, 2, 250.0, 16, 5);
    let ctl = AcornController::new(AcornConfig::default());
    let isolated = 3;
    let cfg = PlaneConfig {
        seed: 5,
        epoch_period_s: 100.0,
        first_epoch_at_s: 10.0,
        horizon_s: 510.0,
        restarts: 2,
        stale_epochs: 1,
        partitions: vec![PartitionWindow {
            zone: isolated,
            from_s: 150.0,
            until_s: 360.0,
        }],
        ..PlaneConfig::default()
    };
    let epochs = cfg.n_epochs();
    let mut plane = DistributedPlane::new(wlan, ctl, cfg);
    let n_zones = plane.sim.world.zones.len();
    println!("deployment: {n_zones} zones, {epochs} reallocation epochs");
    for z in 0..n_zones {
        println!(
            "  zone {z}: {} APs ({} border)",
            plane.sim.world.zones[z].len(),
            plane.sim.world.borders[z].len()
        );
    }
    println!("partition: zone {isolated} severed from t=150 s to t=360 s\n");

    // Run into the partition: epoch 4 fires at t=310 with zone 3 deaf
    // for two full epochs — a majority of its peers are stale.
    plane.run_until(320.0);
    let tel = plane.telemetry();
    println!("t=320 s (epoch 4 done):");
    for z in 0..n_zones {
        let safe = tel.counter(&format!("ctrl.zone.{z}.safe_mode_epochs"));
        println!(
            "  zone {z}: applied epoch {} | safe-mode epochs {safe}{}",
            plane.sim.world.applied_epoch[z],
            if safe > 0 {
                "  <- last-known-good plan, borders forced to 20 MHz"
            } else {
                ""
            }
        );
    }
    println!(
        "  dropped at the partition boundary: {} messages\n",
        tel.counter("ctrl.msgs.partition_dropped")
    );

    // Heal and drain: surviving retransmit timers push the blocked
    // gossip through after t=360, and the isolated zone replays every
    // missed epoch against its zone model.
    plane.run_to_quiescence();
    let report = plane.report();
    println!("after heal and quiescence:");
    for zr in &report.zones {
        println!(
            "  zone {}: applied epoch {} | fingerprint {:#018x}",
            zr.zone, zr.applied_epoch, zr.fingerprint
        );
    }
    println!(
        "  heals: {} | epochs replayed: {} | retransmits: {} | deduped: {}",
        report.partition_heals,
        report.epochs_replayed,
        report.msgs_retransmitted,
        report.msgs_deduped
    );

    // The acid test: the distributed plan equals the centralized twin.
    let twin = plane.centralized_twin();
    let equal = plane.state().assignments == twin.assignments
        && plane.state().operating_width == twin.operating_width;
    println!(
        "\ncentralized twin match: {} | total throughput {:.1} Mbit/s",
        if equal { "EXACT" } else { "DIVERGED" },
        report.total_bps / 1e6
    );
    assert!(equal, "distributed plan must equal the centralized twin");
}
