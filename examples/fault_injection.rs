//! Fault injection and graceful degradation: an enterprise floor rides
//! out 20% control-message loss, corrupted frames, delayed deliveries,
//! flaky measurements, and a full AP crash/restart cycle — then reports
//! how much of the fault-free throughput survived.
//!
//! The faults are injected *under* the real control plane: beacons and
//! IAPP announcements travel as serialized 802.11 frames (corruption must
//! fail in the parser, never panic), SNR readings feed the driver-style
//! per-client trackers (NaN and outliers must die in the gates), and a
//! crashed AP goes silent until its clients notice and re-scan.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::events::{CompositeScenario, DriftSpec, FaultPlan, MobilitySpec};
use acorn::topology::{ClientId, Point, Trajectory};
use acorn::traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 3×3 enterprise floor with an hour of trace-driven sessions and a
    // walking client — the same world as `event_driven`, plus faults.
    let mut rng = StdRng::seed_from_u64(7);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 3600.0);
    let n_clients = sessions.len().max(2) + 1;
    let wlan = acorn::sim::enterprise_grid(3, 3, 50.0, n_clients, 7);
    let ctl = AcornController::new(AcornConfig::default());
    let mobile = ClientId(n_clients - 1);
    let from = wlan.clients[mobile.0].pos;

    let report = CompositeScenario {
        wlan,
        sessions,
        horizon_s: 3600.0,
        reallocation_period_s: 300.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 40.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 120.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.02,
        }),
        faults: Some(FaultPlan {
            seed: 0xFA17,
            control_period_s: 30.0,
            ap_mttf_s: Some(400.0), // one crash, almost surely
            ap_mttr_s: 600.0,
            max_crashes: 1,
            loss: 0.2,
            corruption: 0.05,
            delay_prob: 0.1,
            delay_max_s: 45.0,
            meas_nan: 0.02,
            meas_outlier: 0.05,
            meas_freeze: 0.05,
            ..FaultPlan::default()
        }),
        seed: 7,
        record_log: false,
    }
    // Runs the faulty scenario AND its fault-free golden twin.
    .run_resilience(&ctl);

    let r = report.resilience.expect("faulty runs carry a report");
    println!("control plane under fire:");
    println!(
        "  {} frames sent, {} lost, {} corrupted ({} typed parse errors), {} delayed",
        r.frames_sent, r.frames_lost, r.frames_corrupted, r.parse_errors, r.frames_delayed
    );
    println!(
        "  {} NaN measurements rejected, {} outliers gated, {} IAPP solicitations",
        r.measurement_faults, r.outliers_rejected, r.solicits
    );
    println!("failure and recovery:");
    println!(
        "  {} crash(es), {} restart(s), mean downtime {:.0} s",
        r.crashes, r.restarts, r.mean_downtime_s
    );
    println!(
        "  {} client re-scans, mean detection delay {:.0} s, {} safe-mode epochs",
        r.rescans, r.mean_detection_delay_s, r.safe_mode_epochs
    );
    for e in report.realloc.iter().filter(|e| e.degraded) {
        println!(
            "  t={:>5.0}s  degraded epoch: kept last-known-good plan, {:.1} Mbit/s",
            e.t_s,
            e.after_bps / 1e6
        );
    }
    println!("verdict:");
    println!(
        "  {:.1} of {:.1} Mbit/s retained -> {:.1}% of fault-free throughput",
        r.faulty_mean_bps / 1e6,
        r.golden_mean_bps / 1e6,
        r.throughput_retained * 100.0
    );
}
