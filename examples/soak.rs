//! Chaos soak at city scale: a 1024-AP deployment streamed through two
//! virtual days of diurnal, flash-crowded workload under continuous
//! faults — AP crash/repair cycles, lossy control messages, NaN and
//! outlier measurements — with the invariant watchdog checking the
//! world every five minutes and all telemetry held in bounded memory
//! (KLL quantile sketches + ring-buffered series).
//!
//! ```text
//! cargo run --release --example soak
//! ```

use acorn::core::{AcornConfig, AcornController};
use acorn::events::FaultPlan;
use acorn::phy::{GoodputTable, LinkQualityEstimator};
use acorn::sim::scenario::city_grid;
use acorn::soak::{probe, FlashCrowd, SoakScenario, WatchdogSpec, WorkloadSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    const SEED: u64 = 0x50AC;
    const HORIZON_S: f64 = 2.0 * 86_400.0;

    // 8×8 districts × 16 APs = 1024 APs, 2500 roaming clients.
    let wlan = city_grid(8, 4, 2500, SEED);
    let n_aps = wlan.aps.len();
    let n_clients = wlan.clients.len();

    let mut sc = SoakScenario::new(wlan, HORIZON_S, SEED);
    sc.workload = WorkloadSpec {
        base_rate_per_s: 1.0 / 8.0,
        diurnal_amplitude: 0.6,
        day_period_s: 86_400.0,
        // A lunch-hour flash crowd each day.
        flash: (0..2)
            .map(|day| FlashCrowd {
                at_s: day as f64 * 86_400.0 + 43_200.0,
                duration_s: 3_600.0,
                rate_multiplier: 5.0,
            })
            .collect(),
        ..WorkloadSpec::default()
    };
    sc.faults = Some(FaultPlan {
        seed: SEED ^ 0xFA17,
        control_period_s: 10.0,
        ap_mttf_s: Some(4_000.0),
        ap_mttr_s: 900.0,
        max_crashes: 1_000,
        loss: 0.1,
        corruption: 0.02,
        delay_prob: 0.05,
        delay_max_s: 30.0,
        meas_nan: 0.01,
        meas_outlier: 0.02,
        meas_freeze: 0.02,
        ..FaultPlan::default()
    });
    sc.watchdog = Some(WatchdogSpec {
        period_s: 300.0,
        graph_check_every: 16,
        fail_fast: true,
    });

    println!(
        "soak: {n_aps} APs, {n_clients} clients, {:.0} virtual days under continuous faults",
        HORIZON_S / 86_400.0
    );

    // The memoized SNR→goodput table is what makes a multi-day horizon
    // at this scale affordable.
    let table = Arc::new(GoodputTable::new(LinkQualityEstimator::default()));
    let ctl = AcornController::with_table(AcornConfig::default(), table);
    let t0 = Instant::now();
    let r = sc.run(&ctl);
    let wall = t0.elapsed().as_secs_f64();

    println!(
        "\n{} events in {:.1} s wall ({:.0} events/s), end t = {:.0} s",
        r.stats.events,
        wall,
        r.stats.events as f64 / wall.max(1e-9),
        r.stats.end_time_s
    );
    println!(
        "sessions: {} arrivals / {} departures; crashes survived: {}",
        r.counter("sessions.arrivals"),
        r.counter("sessions.departures"),
        r.counter("faults.crashes"),
    );

    println!("\nsketch-backed goodput quantiles (bounded memory, whole run):");
    println!(
        "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "metric", "p50", "p95", "p99", "max", "samples", "retained"
    );
    for name in [probe::CLIENT_BPS, probe::NETWORK_BPS] {
        if let Some(s) = r.sketch(name) {
            let mbps = |v: Option<f64>| {
                v.map(|x| format!("{:.1}", x / 1e6))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
                s.name,
                mbps(s.p50),
                mbps(s.p95),
                mbps(s.p99),
                mbps(s.max),
                s.count,
                s.retained
            );
        }
    }
    println!("  (values in Mbit/s; retained items bound the memory, not the stream)");

    println!(
        "\nwatchdog: {} checks, {} violations",
        r.checks, r.violations
    );
    if r.violations == 0 {
        println!("  every epoch passed the graph-twin, cell, width, and liveness invariants");
    } else if let (Some(code), Some(t)) =
        (r.gauge("watchdog.trip.code"), r.gauge("watchdog.trip.t_s"))
    {
        println!("  FIRST TRIP: invariant code {code} at t = {t:.0} s (seed {SEED}) — replayable");
    }
    if let Some(kb) = r.peak_rss_kb {
        println!("peak RSS: {:.1} MB", kb as f64 / 1024.0);
    }
    println!(
        "mean network goodput {:.1} Mbit/s, quality drift {}",
        r.mean_network_bps() / 1e6,
        r.quality_drift()
            .map(|d| format!("{:.3}", d))
            .unwrap_or_else(|| "n/a".into())
    );
}
