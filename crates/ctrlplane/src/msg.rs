//! The control-plane message taxonomy and its 802.11-style wire format.
//!
//! Zone controllers exchange four message kinds, batched into one
//! [`CtrlEnvelope`] per peer per epoch:
//!
//! * [`CtrlMsg::BeaconDigest`] — a border AP's current channel/width/load,
//!   the IAPP neighbour report distilled to what a foreign zone can act on;
//! * [`CtrlMsg::IappState`] — the sender zone's epoch counter, plan
//!   fingerprint, and safe-mode flag (the liveness heartbeat);
//! * [`CtrlMsg::ProposedSwitch`] — an AP the sender re-assigned this epoch
//!   (the CSA the neighbour zone would observe over the air);
//! * [`CtrlMsg::Ack`] — cumulative acknowledgement of one envelope id.
//!
//! The wire encoding mirrors `acorn_core::wire`: a management-frame
//! header, little-endian fields, and a CRC-32 FCS trailer. Parsing is
//! defensive — every malformed input maps to a typed [`CtrlWireError`],
//! never a panic, because envelopes cross the same loss/corruption
//! gauntlet as data-plane beacons.

use acorn_core::wire::crc32;
use acorn_topology::{Channel20, ChannelAssignment};
use serde::Serialize;
use std::fmt;

/// 802.11 frame control bytes for a management/action frame — the same
/// two bytes the beacon codec uses for announcements.
pub const FC_ACTION: [u8; 2] = [0xD0, 0x00];

/// Vendor action subtype distinguishing control-plane envelopes from the
/// CSA announcements (`0x01`/`0x02`) of `acorn_core::wire`.
pub const CTRL_SUBTYPE: u8 = 0x03;

/// Wire-format version of the envelope encoding.
pub const CTRL_VERSION: u8 = 1;

/// `FaultRng` salt for the control-plane frame gauntlet, disjoint from
/// the data-plane salts `0x01..=0x04` used by `acorn_events::faults`.
pub const SALT_CTRL: u64 = 0x05;

const TAG_DIGEST: u8 = 0x01;
const TAG_IAPP: u8 = 0x02;
const TAG_SWITCH: u8 = 0x03;
const TAG_ACK: u8 = 0x04;

/// Header bytes before the message list: FC (2) + subtype (1) +
/// version (1) + from (2) + to (2) + msg id (8) + count (2).
const HEADER_LEN: usize = 18;
const FCS_LEN: usize = 4;

/// A typed parse failure. Like `acorn_core::wire::WireError`, corruption
/// is *detected*, not tolerated: a flipped bit lands in [`BadFcs`]
/// (or an earlier structural variant) and the frame is dropped for the
/// retransmit timer to recover.
///
/// [`BadFcs`]: CtrlWireError::BadFcs
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlWireError {
    /// Frame shorter than its fixed or declared layout.
    Truncated,
    /// Frame-control/subtype bytes are not a control-plane envelope.
    NotControl,
    /// Unknown encoding version.
    BadVersion(u8),
    /// Unknown message tag byte.
    BadTag(u8),
    /// Width byte is neither 20 nor 40.
    BadWidth(u8),
    /// A 40 MHz bond anchored on an odd channel index.
    IllegalBond(u8),
    /// Declared message count disagrees with the frame length.
    LengthMismatch,
    /// CRC-32 trailer does not match the body.
    BadFcs,
}

impl fmt::Display for CtrlWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlWireError::Truncated => write!(f, "control frame truncated"),
            CtrlWireError::NotControl => write!(f, "not a control-plane envelope"),
            CtrlWireError::BadVersion(v) => write!(f, "unknown control version {v}"),
            CtrlWireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CtrlWireError::BadWidth(w) => write!(f, "illegal width byte {w}"),
            CtrlWireError::IllegalBond(c) => write!(f, "illegal bond anchor {c}"),
            CtrlWireError::LengthMismatch => write!(f, "message count disagrees with length"),
            CtrlWireError::BadFcs => write!(f, "FCS check failed"),
        }
    }
}

impl std::error::Error for CtrlWireError {}

/// One control-plane message. Channel assignments ride as
/// `(primary index, width)` pairs — the same two bytes the beacon vendor
/// IE uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlMsg {
    /// A border AP's current operating point, gossiped so the
    /// neighbouring zone's interference view stays warm.
    BeaconDigest {
        /// Global AP id.
        ap: u16,
        /// The AP's channel assignment.
        assignment: ChannelAssignment,
        /// Associated client count.
        n_clients: u16,
    },
    /// The sender zone's liveness heartbeat and plan summary.
    IappState {
        /// Sender zone index.
        zone: u16,
        /// Last epoch the sender applied (global, 1-based).
        epoch: u64,
        /// FNV-1a fingerprint of the sender's assignment slice.
        fingerprint: u64,
        /// Whether the sender is in partition safe mode.
        safe_mode: bool,
    },
    /// An AP the sender re-assigned this epoch.
    ProposedSwitch {
        /// Global AP id.
        ap: u16,
        /// The new assignment.
        assignment: ChannelAssignment,
        /// Epoch the switch deploys in.
        epoch: u64,
    },
    /// Acknowledges receipt of the envelope with id `ack_of`.
    Ack {
        /// The acknowledged envelope's `msg_id`.
        ack_of: u64,
    },
}

impl CtrlMsg {
    /// Whether this message demands reliable delivery. Pure-ack envelopes
    /// are fire-and-forget — acking an ack would never terminate.
    pub fn needs_ack(&self) -> bool {
        !matches!(self, CtrlMsg::Ack { .. })
    }
}

/// A batched, uniquely identified unit of transmission between two zone
/// controllers. `msg_id` is monotonic per sender and is what receivers
/// dedup and ack on; a retransmission reuses the id verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlEnvelope {
    /// Sender zone index.
    pub from: u16,
    /// Receiver zone index.
    pub to: u16,
    /// Sender-monotonic envelope id.
    pub msg_id: u64,
    /// The batched payload.
    pub msgs: Vec<CtrlMsg>,
}

impl CtrlEnvelope {
    /// Whether any payload message requires acknowledgement.
    pub fn needs_ack(&self) -> bool {
        self.msgs.iter().any(CtrlMsg::needs_ack)
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_assignment(out: &mut Vec<u8>, a: ChannelAssignment) {
    out.push(a.primary().0);
    out.push(match a.width() {
        acorn_phy::ChannelWidth::Ht20 => 20,
        acorn_phy::ChannelWidth::Ht40 => 40,
    });
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CtrlWireError> {
        let end = self.at.checked_add(n).ok_or(CtrlWireError::Truncated)?;
        if end > self.buf.len() {
            return Err(CtrlWireError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CtrlWireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CtrlWireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Result<u64, CtrlWireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn assignment(&mut self) -> Result<ChannelAssignment, CtrlWireError> {
        let channel = self.u8()?;
        let width = self.u8()?;
        match width {
            20 => Ok(ChannelAssignment::Single(Channel20(channel))),
            40 => ChannelAssignment::bonded(Channel20(channel))
                .ok_or(CtrlWireError::IllegalBond(channel)),
            w => Err(CtrlWireError::BadWidth(w)),
        }
    }
}

/// Encodes an envelope into its wire frame, FCS included.
pub fn encode_envelope(env: &CtrlEnvelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 20 * env.msgs.len() + FCS_LEN);
    out.extend_from_slice(&FC_ACTION);
    out.push(CTRL_SUBTYPE);
    out.push(CTRL_VERSION);
    push_u16(&mut out, env.from);
    push_u16(&mut out, env.to);
    push_u64(&mut out, env.msg_id);
    push_u16(&mut out, env.msgs.len() as u16);
    for m in &env.msgs {
        match *m {
            CtrlMsg::BeaconDigest {
                ap,
                assignment,
                n_clients,
            } => {
                out.push(TAG_DIGEST);
                push_u16(&mut out, ap);
                push_assignment(&mut out, assignment);
                push_u16(&mut out, n_clients);
            }
            CtrlMsg::IappState {
                zone,
                epoch,
                fingerprint,
                safe_mode,
            } => {
                out.push(TAG_IAPP);
                push_u16(&mut out, zone);
                push_u64(&mut out, epoch);
                push_u64(&mut out, fingerprint);
                out.push(safe_mode as u8);
            }
            CtrlMsg::ProposedSwitch {
                ap,
                assignment,
                epoch,
            } => {
                out.push(TAG_SWITCH);
                push_u16(&mut out, ap);
                push_assignment(&mut out, assignment);
                push_u64(&mut out, epoch);
            }
            CtrlMsg::Ack { ack_of } => {
                out.push(TAG_ACK);
                push_u64(&mut out, ack_of);
            }
        }
    }
    let fcs = crc32(&out);
    out.extend_from_slice(&fcs.to_le_bytes());
    out
}

/// Parses a wire frame back into an envelope, verifying the FCS first —
/// a corrupted frame fails [`CtrlWireError::BadFcs`] (or an earlier
/// structural check) before any field is interpreted.
pub fn parse_envelope(frame: &[u8]) -> Result<CtrlEnvelope, CtrlWireError> {
    if frame.len() < HEADER_LEN + FCS_LEN {
        return Err(CtrlWireError::Truncated);
    }
    let (body, trailer) = frame.split_at(frame.len() - FCS_LEN);
    let fcs = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    if crc32(body) != fcs {
        return Err(CtrlWireError::BadFcs);
    }
    let mut c = Cursor { buf: body, at: 0 };
    if c.take(2)? != FC_ACTION || c.u8()? != CTRL_SUBTYPE {
        return Err(CtrlWireError::NotControl);
    }
    let version = c.u8()?;
    if version != CTRL_VERSION {
        return Err(CtrlWireError::BadVersion(version));
    }
    let from = c.u16()?;
    let to = c.u16()?;
    let msg_id = c.u64()?;
    let count = c.u16()? as usize;
    let mut msgs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let tag = c.u8()?;
        let msg = match tag {
            TAG_DIGEST => CtrlMsg::BeaconDigest {
                ap: c.u16()?,
                assignment: c.assignment()?,
                n_clients: c.u16()?,
            },
            TAG_IAPP => CtrlMsg::IappState {
                zone: c.u16()?,
                epoch: c.u64()?,
                fingerprint: c.u64()?,
                safe_mode: c.u8()? != 0,
            },
            TAG_SWITCH => CtrlMsg::ProposedSwitch {
                ap: c.u16()?,
                assignment: c.assignment()?,
                epoch: c.u64()?,
            },
            TAG_ACK => CtrlMsg::Ack { ack_of: c.u64()? },
            t => return Err(CtrlWireError::BadTag(t)),
        };
        msgs.push(msg);
    }
    if c.at != body.len() {
        return Err(CtrlWireError::LengthMismatch);
    }
    Ok(CtrlEnvelope {
        from,
        to,
        msg_id,
        msgs,
    })
}

/// FNV-1a over an assignment slice's `(primary, width)` byte pairs — the
/// plan fingerprint zones gossip in [`CtrlMsg::IappState`] so peers can
/// detect divergence without shipping the full slice.
pub fn fingerprint_slice(assignments: &[ChannelAssignment]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for a in assignments {
        for byte in [
            a.primary().0,
            match a.width() {
                acorn_phy::ChannelWidth::Ht20 => 20,
                acorn_phy::ChannelWidth::Ht40 => 40,
            },
        ] {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn assignment_fields(a: ChannelAssignment) -> (u8, u8) {
    (
        a.primary().0,
        match a.width() {
            acorn_phy::ChannelWidth::Ht20 => 20,
            acorn_phy::ChannelWidth::Ht40 => 40,
        },
    )
}

// The vendored serde derive handles structs only, so the enum's tagged
// encoding (`"type"` discriminant first, then the variant fields) is
// written by hand against the same `write_object` runtime the derive
// emits — snapshots stay byte-stable alongside derived neighbours.
impl Serialize for CtrlMsg {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match *self {
            CtrlMsg::BeaconDigest {
                ap,
                assignment,
                n_clients,
            } => {
                let (channel, width_mhz) = assignment_fields(assignment);
                serde::write_object(
                    out,
                    indent,
                    &[
                        ("type", &"beacon_digest"),
                        ("ap", &ap),
                        ("channel", &channel),
                        ("width_mhz", &width_mhz),
                        ("n_clients", &n_clients),
                    ],
                );
            }
            CtrlMsg::IappState {
                zone,
                epoch,
                fingerprint,
                safe_mode,
            } => {
                serde::write_object(
                    out,
                    indent,
                    &[
                        ("type", &"iapp_state"),
                        ("zone", &zone),
                        ("epoch", &epoch),
                        ("fingerprint", &fingerprint),
                        ("safe_mode", &safe_mode),
                    ],
                );
            }
            CtrlMsg::ProposedSwitch {
                ap,
                assignment,
                epoch,
            } => {
                let (channel, width_mhz) = assignment_fields(assignment);
                serde::write_object(
                    out,
                    indent,
                    &[
                        ("type", &"proposed_switch"),
                        ("ap", &ap),
                        ("channel", &channel),
                        ("width_mhz", &width_mhz),
                        ("epoch", &epoch),
                    ],
                );
            }
            CtrlMsg::Ack { ack_of } => {
                serde::write_object(out, indent, &[("type", &"ack"), ("ack_of", &ack_of)]);
            }
        }
    }
}

impl Serialize for CtrlEnvelope {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        serde::write_object(
            out,
            indent,
            &[
                ("from", &self.from),
                ("to", &self.to),
                ("msg_id", &self.msg_id),
                ("msgs", &self.msgs),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CtrlEnvelope {
        CtrlEnvelope {
            from: 2,
            to: 5,
            msg_id: 0xDEAD_BEEF_0042,
            msgs: vec![
                CtrlMsg::IappState {
                    zone: 2,
                    epoch: 17,
                    fingerprint: 0x1234_5678_9ABC_DEF0,
                    safe_mode: false,
                },
                CtrlMsg::BeaconDigest {
                    ap: 301,
                    assignment: ChannelAssignment::Bonded(Channel20(4)),
                    n_clients: 9,
                },
                CtrlMsg::ProposedSwitch {
                    ap: 302,
                    assignment: ChannelAssignment::Single(Channel20(7)),
                    epoch: 17,
                },
                CtrlMsg::Ack { ack_of: 41 },
            ],
        }
    }

    #[test]
    fn envelope_round_trips_the_wire() {
        let env = sample();
        let frame = encode_envelope(&env);
        assert_eq!(parse_envelope(&frame).expect("parse"), env);
    }

    #[test]
    fn empty_envelope_round_trips() {
        let env = CtrlEnvelope {
            from: 0,
            to: 1,
            msg_id: 0,
            msgs: vec![],
        };
        let frame = encode_envelope(&env);
        assert_eq!(frame.len(), 22);
        assert_eq!(parse_envelope(&frame).expect("parse"), env);
        assert!(!env.needs_ack());
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error() {
        let frame = encode_envelope(&sample());
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                parse_envelope(&bad).is_err(),
                "bit {bit} slipped through the FCS"
            );
        }
    }

    #[test]
    fn truncation_and_foreign_frames_are_rejected() {
        let frame = encode_envelope(&sample());
        assert_eq!(parse_envelope(&frame[..10]), Err(CtrlWireError::Truncated));
        assert_eq!(parse_envelope(&[]), Err(CtrlWireError::Truncated));
        let mut foreign = frame.clone();
        foreign[2] = 0x01; // a CSA announcement subtype, valid FCS
        let body_len = foreign.len() - FCS_LEN;
        let fcs = crc32(&foreign[..body_len]);
        foreign[body_len..].copy_from_slice(&fcs.to_le_bytes());
        assert_eq!(parse_envelope(&foreign), Err(CtrlWireError::NotControl));
    }

    #[test]
    fn illegal_bond_and_width_are_structural_errors() {
        let mut env = sample();
        env.msgs = vec![CtrlMsg::BeaconDigest {
            ap: 1,
            assignment: ChannelAssignment::Single(Channel20(3)),
            n_clients: 0,
        }];
        let mut frame = encode_envelope(&env);
        let width_at = HEADER_LEN + 1 + 2 + 1;
        frame[width_at] = 40; // odd channel 3 now claims a bond
        let body_len = frame.len() - FCS_LEN;
        let fcs = crc32(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&fcs.to_le_bytes());
        assert_eq!(parse_envelope(&frame), Err(CtrlWireError::IllegalBond(3)));

        frame[width_at] = 80;
        let fcs = crc32(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&fcs.to_le_bytes());
        assert_eq!(parse_envelope(&frame), Err(CtrlWireError::BadWidth(80)));
    }

    #[test]
    fn fingerprint_distinguishes_width_from_channel() {
        let a = [ChannelAssignment::Single(Channel20(4))];
        let b = [ChannelAssignment::Bonded(Channel20(4))];
        let c = [ChannelAssignment::Single(Channel20(5))];
        assert_ne!(fingerprint_slice(&a), fingerprint_slice(&b));
        assert_ne!(fingerprint_slice(&a), fingerprint_slice(&c));
        assert_eq!(fingerprint_slice(&a), fingerprint_slice(&a));
    }

    #[test]
    fn tagged_json_is_stable() {
        let mut out = String::new();
        CtrlMsg::Ack { ack_of: 7 }.serialize_json(&mut out, 0);
        assert_eq!(out, "{\n  \"type\": \"ack\",\n  \"ack_of\": 7\n}");
    }
}
