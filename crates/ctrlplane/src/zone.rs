//! The [`ZoneController`] process: one control-plane node per
//! interference-graph zone.
//!
//! Each controller runs the full protocol stack on the virtual clock:
//!
//! * **Epochs.** A self-chained `Epoch(k)` timer (global, 1-based `k`)
//!   fires every re-allocation period. A healthy controller *catch-up
//!   replays* every epoch it has not yet applied —
//!   `applied_epoch+1 ..= k` — through
//!   [`AcornController::reallocate_zone_obs`] with the per-epoch seed
//!   `cfg.seed + e`. One mechanism covers the normal single-step advance,
//!   crash recovery, and partition healing, and it is what makes the
//!   benign trajectory bit-identical to the centralized golden twin.
//! * **Reliable gossip.** After applying, the zone batches one
//!   [`CtrlEnvelope`] per peer (heartbeat + border digests + switches)
//!   and tracks it in a per-peer unacked map with a retransmit timer
//!   under capped exponential [`backoff_for`]. Acks cancel the timer
//!   (an [`EventQueue`] tombstone); duplicate envelopes are deduped by
//!   `(from, msg_id)` and re-acked without reprocessing.
//! * **Failure handling.** Every frame crosses the loss/corruption/delay
//!   gauntlet; a corrupted frame fails its FCS at parse and is dropped
//!   for the retransmit timer to recover. When a majority of peers go
//!   quiet the zone enters *safe mode*: it freezes its last-known-good
//!   plan, forces border APs down to 20 MHz, and stops advancing its
//!   applied epoch until quorum returns.
//!
//! [`AcornController::reallocate_zone_obs`]: acorn_core::AcornController::reallocate_zone_obs
//! [`EventQueue`]: acorn_events::EventQueue

use crate::msg::{
    encode_envelope, fingerprint_slice, parse_envelope, CtrlEnvelope, CtrlMsg, SALT_CTRL,
};
use crate::plane::{PlaneConfig, PlaneEvent, PlaneWorld, CTRL_GAUNTLET};
use acorn_events::{Ctx, FaultRng, Process};
use acorn_obs::{names, RecordingSink};
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment};
use std::collections::{BTreeMap, BTreeSet};

/// Retransmit backoff for the `attempt`-th resend (0-based): `base·2^a`,
/// capped at `cap`.
pub fn backoff_for(base_s: f64, cap_s: f64, attempt: u32) -> f64 {
    (base_s * f64::powi(2.0, attempt.min(63) as i32)).min(cap_s)
}

/// An envelope awaiting acknowledgement.
struct Pending {
    to: usize,
    msgs: Vec<CtrlMsg>,
    attempt: u32,
    resend: acorn_events::EventId,
}

/// One zone's control-plane node. Volatile protocol state (unacked map,
/// dedup sets, peer liveness) lives here and is wiped by a crash; the
/// deployed plan and its generation counter live in [`PlaneWorld`] —
/// they persist across controller restarts the way a deployed radio
/// configuration does.
pub struct ZoneController {
    zone: usize,
    peers: Vec<usize>,
    cfg: PlaneConfig,
    up: bool,
    safe_mode: bool,
    next_msg_id: u64,
    unacked: BTreeMap<u64, Pending>,
    seen: BTreeMap<usize, BTreeSet<u64>>,
    last_heard: BTreeMap<usize, u64>,
}

impl ZoneController {
    /// A controller for `zone` among `n_zones` total.
    pub fn new(zone: usize, n_zones: usize, cfg: PlaneConfig) -> ZoneController {
        ZoneController {
            zone,
            peers: (0..n_zones).filter(|&p| p != zone).collect(),
            cfg,
            up: true,
            safe_mode: false,
            next_msg_id: 0,
            unacked: BTreeMap::new(),
            seen: BTreeMap::new(),
            last_heard: BTreeMap::new(),
        }
    }

    /// Whether any partition window severs `zone`'s links at time `t`.
    fn partitioned(&self, zone: usize, t: f64) -> bool {
        self.cfg
            .partitions
            .iter()
            .any(|w| w.zone == zone && t >= w.from_s && t < w.until_s)
    }

    /// Pushes one envelope through the wire: encode → partition check →
    /// fault gauntlet → schedule delivery. Loss and partition drops are
    /// silent here; the retransmit timer owns recovery.
    fn transmit(&mut self, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>, env: &CtrlEnvelope) {
        let now = ctx.now();
        let to = env.to as usize;
        if self.partitioned(self.zone, now) || self.partitioned(to, now) {
            ctx.telemetry.inc(names::CTRL_MSGS_PARTITION_DROPPED);
            return;
        }
        let bytes = encode_envelope(env);
        let (frame_id, target) = {
            let w = &mut *ctx.world;
            let id = w.net.next_frame_id;
            w.net.next_frame_id += 1;
            (id, w.zone_pids[to])
        };
        let mut rng = FaultRng::new(self.cfg.faults.seed, frame_id, SALT_CTRL);
        let rolled = self
            .cfg
            .faults
            .roll_copy(ctx.telemetry, &mut rng, &bytes, &CTRL_GAUNTLET);
        if let Some((frame, delay)) = rolled {
            ctx.world.net.pending.insert(frame_id, frame);
            let t = now + self.cfg.link_latency_s + delay.unwrap_or(0.0);
            ctx.send_at(t, target, PlaneEvent::Deliver(frame_id));
        }
    }

    /// Originates a fresh envelope to `to`, arming the retransmit timer
    /// when the payload demands acknowledgement.
    fn send_new(
        &mut self,
        ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>,
        to: usize,
        msgs: Vec<CtrlMsg>,
    ) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        ctx.telemetry.inc(names::CTRL_MSGS_SENT);
        let env = CtrlEnvelope {
            from: self.zone as u16,
            to: to as u16,
            msg_id,
            msgs,
        };
        self.transmit(ctx, &env);
        if env.needs_ack() {
            let rto = backoff_for(self.cfg.rto_base_s, self.cfg.rto_cap_s, 0);
            let resend = ctx.schedule_after(rto, PlaneEvent::Resend(msg_id));
            self.unacked.insert(
                msg_id,
                Pending {
                    to,
                    msgs: env.msgs,
                    attempt: 0,
                    resend,
                },
            );
        }
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>, to: usize, ack_of: u64) {
        self.send_new(ctx, to, vec![CtrlMsg::Ack { ack_of }]);
    }

    /// A safe-mode epoch: hold the last-known-good plan, force border
    /// cells to their 20 MHz fallback, keep heartbeating, and do *not*
    /// advance the applied epoch — the healing catch-up replays the gap.
    fn safe_epoch(&mut self, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>, k: u64) {
        if !self.safe_mode {
            self.safe_mode = true;
            ctx.telemetry.inc(names::CTRL_PARTITION_DETECTIONS);
        }
        let zone = self.zone;
        {
            let w = &mut *ctx.world;
            for i in 0..w.borders[zone].len() {
                let ap = w.borders[zone][i];
                w.state.operating_width[ap] = ChannelWidth::Ht20;
            }
        }
        ctx.telemetry.inc(names::CTRL_SAFE_MODE_EPOCHS);
        let per_zone = format!("ctrl.zone.{zone}.safe_mode_epochs");
        ctx.telemetry.inc(&per_zone);
        let heartbeat = CtrlMsg::IappState {
            zone: zone as u16,
            epoch: k,
            fingerprint: ctx.world.fingerprints[zone],
            safe_mode: true,
        };
        for p in self.peers.clone() {
            self.send_new(ctx, p, vec![heartbeat]);
        }
    }

    fn on_epoch(&mut self, k: u64, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>) {
        // Chain the next epoch even while crashed or partitioned — a
        // zone keeps a live timer chain so epoch indices stay global —
        // but stop at the horizon so a drained queue means quiescence.
        let next_t = self.cfg.first_epoch_at_s + k as f64 * self.cfg.epoch_period_s;
        if next_t <= self.cfg.horizon_s {
            ctx.schedule_at(next_t, PlaneEvent::Epoch(k + 1));
        }
        if !self.up {
            return;
        }
        let stale = self
            .peers
            .iter()
            .filter(|&&p| {
                k.saturating_sub(self.last_heard.get(&p).copied().unwrap_or(0))
                    > self.cfg.stale_epochs
            })
            .count();
        if !self.peers.is_empty() && 2 * stale > self.peers.len() {
            self.safe_epoch(ctx, k);
            return;
        }
        if self.safe_mode {
            self.safe_mode = false;
            ctx.telemetry.inc(names::CTRL_PARTITION_HEALS);
        }
        let zone = self.zone;
        let nodes: Vec<usize> = ctx.world.zones[zone].clone();
        let before: Vec<ChannelAssignment> = nodes
            .iter()
            .map(|&n| ctx.world.state.assignments[n])
            .collect();
        let from_e = ctx.world.applied_epoch[zone] + 1;
        for e in from_e..=k {
            let sink = RecordingSink::new();
            {
                let w = &mut *ctx.world;
                w.ctl.reallocate_zone_obs(
                    &w.zone_models[zone],
                    &mut w.state,
                    &nodes,
                    zone,
                    self.cfg.restarts,
                    self.cfg.seed.wrapping_add(e),
                    &sink,
                );
            }
            sink.drain_into(ctx.telemetry);
            ctx.telemetry.inc(names::CTRL_EPOCHS);
            if e < k {
                ctx.telemetry.inc(names::CTRL_EPOCHS_REPLAYED);
            }
        }
        ctx.world.applied_epoch[zone] = k;
        let after: Vec<ChannelAssignment> = nodes
            .iter()
            .map(|&n| ctx.world.state.assignments[n])
            .collect();
        let fp = fingerprint_slice(&after);
        ctx.world.fingerprints[zone] = fp;
        let changed: Vec<(usize, ChannelAssignment)> = nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| before[i] != after[i])
            .map(|(i, &n)| (n, after[i]))
            .collect();
        if !changed.is_empty() {
            let w = &mut *ctx.world;
            w.last_change_epoch = w.last_change_epoch.max(k);
        }
        let digests: Vec<CtrlMsg> = {
            let w = &*ctx.world;
            w.borders[zone]
                .iter()
                .map(|&ap| CtrlMsg::BeaconDigest {
                    ap: ap as u16,
                    assignment: w.state.assignments[ap],
                    n_clients: w
                        .state
                        .assoc
                        .iter()
                        .filter(|a| **a == Some(ApId(ap)))
                        .count() as u16,
                })
                .collect()
        };
        let heartbeat = CtrlMsg::IappState {
            zone: zone as u16,
            epoch: k,
            fingerprint: fp,
            safe_mode: false,
        };
        let switches: Vec<CtrlMsg> = changed
            .iter()
            .map(|&(ap, a)| CtrlMsg::ProposedSwitch {
                ap: ap as u16,
                assignment: a,
                epoch: k,
            })
            .collect();
        for p in self.peers.clone() {
            let mut msgs = Vec::with_capacity(1 + digests.len() + switches.len());
            msgs.push(heartbeat);
            msgs.extend(digests.iter().copied());
            msgs.extend(switches.iter().copied());
            self.send_new(ctx, p, msgs);
        }
    }

    fn on_deliver(&mut self, frame_id: u64, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>) {
        let Some(frame) = ctx.world.net.pending.remove(&frame_id) else {
            return;
        };
        if !self.up {
            return;
        }
        let now = ctx.now();
        if self.partitioned(self.zone, now) {
            ctx.telemetry.inc(names::CTRL_MSGS_PARTITION_DROPPED);
            return;
        }
        let env = match parse_envelope(&frame) {
            Ok(env) => env,
            Err(_) => {
                // Corruption lands here as a typed error — never a panic.
                ctx.telemetry.inc(names::CTRL_PARSE_ERRORS);
                return;
            }
        };
        let from = env.from as usize;
        if self.partitioned(from, now) {
            // In flight when the window closed around its sender.
            ctx.telemetry.inc(names::CTRL_MSGS_PARTITION_DROPPED);
            return;
        }
        let needs_ack = env.needs_ack();
        if !self.seen.entry(from).or_default().insert(env.msg_id) {
            ctx.telemetry.inc(names::CTRL_MSGS_DEDUPED);
            if needs_ack {
                self.send_ack(ctx, from, env.msg_id);
            }
            return;
        }
        for msg in &env.msgs {
            match *msg {
                CtrlMsg::BeaconDigest { .. } => ctx.telemetry.inc(names::CTRL_DIGESTS_RX),
                CtrlMsg::IappState { zone, epoch, .. } => {
                    let heard = self.last_heard.entry(zone as usize).or_insert(0);
                    *heard = (*heard).max(epoch);
                }
                CtrlMsg::ProposedSwitch { .. } => ctx.telemetry.inc(names::CTRL_SWITCHES_RX),
                CtrlMsg::Ack { ack_of } => {
                    if let Some(p) = self.unacked.remove(&ack_of) {
                        ctx.telemetry.inc(names::CTRL_MSGS_ACKED);
                        if ctx.cancel(p.resend) {
                            ctx.telemetry.inc(names::CTRL_RESEND_CANCELLED);
                        }
                    }
                }
            }
        }
        if needs_ack {
            self.send_ack(ctx, from, env.msg_id);
        }
    }

    fn on_resend(&mut self, msg_id: u64, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>) {
        if !self.up {
            return;
        }
        let Some((to, msgs, attempt)) = self
            .unacked
            .get(&msg_id)
            .map(|p| (p.to, p.msgs.clone(), p.attempt))
        else {
            return;
        };
        if attempt + 1 > self.cfg.max_attempts {
            self.unacked.remove(&msg_id);
            ctx.telemetry.inc(names::CTRL_MSGS_EXPIRED);
            return;
        }
        ctx.telemetry.inc(names::CTRL_MSGS_RETRANSMITTED);
        let env = CtrlEnvelope {
            from: self.zone as u16,
            to: to as u16,
            msg_id,
            msgs,
        };
        self.transmit(ctx, &env);
        let rto = backoff_for(self.cfg.rto_base_s, self.cfg.rto_cap_s, attempt + 1);
        let resend = ctx.schedule_after(rto, PlaneEvent::Resend(msg_id));
        let p = self.unacked.get_mut(&msg_id).expect("checked above");
        p.attempt = attempt + 1;
        p.resend = resend;
    }
}

impl Process<PlaneWorld, PlaneEvent> for ZoneController {
    fn start(&mut self, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>) {
        ctx.schedule_at(self.cfg.first_epoch_at_s, PlaneEvent::Epoch(1));
        for cw in &self.cfg.crashes {
            if cw.zone == self.zone {
                ctx.schedule_at(cw.at_s, PlaneEvent::Crash);
                ctx.schedule_at(cw.restart_at_s, PlaneEvent::Restart);
            }
        }
    }

    fn handle(&mut self, event: &PlaneEvent, ctx: &mut Ctx<'_, PlaneWorld, PlaneEvent>) {
        match *event {
            PlaneEvent::Epoch(k) => self.on_epoch(k, ctx),
            PlaneEvent::Deliver(frame_id) => self.on_deliver(frame_id, ctx),
            PlaneEvent::Resend(msg_id) => self.on_resend(msg_id, ctx),
            PlaneEvent::Crash => {
                self.up = false;
                // Volatile protocol state dies with the process; the
                // deployed plan and its generation in the world persist.
                for (_, p) in std::mem::take(&mut self.unacked) {
                    ctx.cancel(p.resend);
                }
                self.seen.clear();
                self.last_heard.clear();
                self.safe_mode = false;
            }
            PlaneEvent::Restart => {
                self.up = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap() {
        let rtos: Vec<f64> = (0..8).map(|a| backoff_for(5.0, 60.0, a)).collect();
        assert_eq!(rtos, vec![5.0, 10.0, 20.0, 40.0, 60.0, 60.0, 60.0, 60.0]);
        // Huge attempt counts must not overflow into NaN/inf.
        assert_eq!(backoff_for(5.0, 60.0, u32::MAX), 60.0);
    }
}
