//! # acorn-ctrlplane — the distributed control plane
//!
//! Production ACORN does not run as one process: a city-scale deployment
//! splits into interference *zones* (connected components of the
//! conflict graph), each owned by a zone controller that runs
//! Algorithms 1/2 locally and coordinates with its peers over an
//! IAPP-style message protocol. This crate builds that plane on the
//! deterministic event runtime of `acorn-events`:
//!
//! * [`msg`] — the typed message taxonomy ([`CtrlMsg`],
//!   [`CtrlEnvelope`]) and its 802.11-style wire codec with CRC-32 FCS
//!   and defensive, typed-error parsing ([`CtrlWireError`]).
//! * [`zone`] — the [`ZoneController`] process: epoch catch-up replay,
//!   reliable batched gossip (per-peer unacked maps, capped exponential
//!   backoff, dedup-on-receive), and partition safe mode.
//! * [`plane`] — assembly and oracle: [`DistributedPlane`] wires one
//!   controller per zone over a shared world; its
//!   [`centralized_twin`] recomputes the allocation a single
//!   centralized controller would deploy.
//!
//! ## The golden-twin contract
//!
//! The centralized allocator already shards Algorithm 2 by connected
//! component with a per-shard restart schedule. Each zone controller
//! replays exactly its shard's schedule
//! ([`AcornController::reallocate_zone_obs`]) against a bit-exact
//! restricted submodel, so a **benign** distributed run converges to
//! the centralized allocation bit-for-bit — not approximately. Faults
//! (loss, corruption, delay, duplication, controller crashes) are
//! absorbed by the reliable-delivery layer and epoch catch-up replay;
//! a *partition* degrades the isolated zone to safe mode (last-known-
//! good plan, border cells at 20 MHz) until quorum heals, after which
//! catch-up replay restores twin equality.
//!
//! All randomness — restart schedules, fault draws — is keyed through
//! `mix_seed` streams, so every run is a pure function of its
//! [`PlaneConfig`] at any thread count.
//!
//! [`AcornController::reallocate_zone_obs`]: acorn_core::AcornController::reallocate_zone_obs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msg;
pub mod plane;
pub mod zone;

pub use msg::{
    encode_envelope, fingerprint_slice, parse_envelope, CtrlEnvelope, CtrlMsg, CtrlWireError,
    CTRL_SUBTYPE, CTRL_VERSION, SALT_CTRL,
};
pub use plane::{
    centralized_twin, CrashWindow, DistributedPlane, NetState, PartitionWindow, PlaneConfig,
    PlaneEvent, PlaneReport, PlaneWorld, ZoneReport, CTRL_GAUNTLET,
};
pub use zone::{backoff_for, ZoneController};
