//! Assembly of the distributed control plane: configuration, the shared
//! world, the [`DistributedPlane`] driver, and its centralized golden
//! twin.
//!
//! The plane decomposes a deployment into the connected components of
//! its interference graph ([`AcornController::zones`]), builds one
//! bit-exact submodel per zone **once** at startup
//! ([`NetworkModel::restrict`] — the model depends on topology and
//! association, never on channel assignments), and runs one
//! [`ZoneController`] process per zone on the deterministic event
//! runtime. Because each zone replays exactly the per-shard attempt
//! schedule of [`AcornController::reallocate_sharded_with_restarts`],
//! the benign distributed run converges to the centralized allocation
//! *bit-identically* — [`DistributedPlane::centralized_twin`] is the
//! oracle the golden-twin tests compare against.
//!
//! [`AcornController::zones`]: acorn_core::AcornController::zones
//! [`AcornController::reallocate_sharded_with_restarts`]: acorn_core::AcornController::reallocate_sharded_with_restarts
//! [`NetworkModel::restrict`]: acorn_core::NetworkModel::restrict
//! [`ZoneController`]: crate::zone::ZoneController

use crate::zone::ZoneController;
use acorn_core::{AcornController, NetworkModel, NetworkState};
use acorn_events::{
    EventLog, FaultPlan, GauntletCounters, ProcessId, RunStats, Simulation, Telemetry,
};
use acorn_obs::names;
use acorn_topology::{ClientId, Wlan};
use serde::Serialize;
use std::collections::BTreeMap;

/// Telemetry names for the control-plane frame gauntlet (`ctrl.frames.*`),
/// keeping the distributed plane's wire statistics separate from the AP
/// control round's `faults.frames_*`.
pub const CTRL_GAUNTLET: GauntletCounters = GauntletCounters {
    sent: names::CTRL_FRAMES_SENT,
    lost: names::CTRL_FRAMES_LOST,
    corrupted: names::CTRL_FRAMES_CORRUPTED,
    delayed: names::CTRL_FRAMES_DELAYED,
};

/// The control plane's event alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneEvent {
    /// The `k`-th re-allocation epoch (global, 1-based). Every zone
    /// chains its own `Epoch` timer so indices agree network-wide.
    Epoch(u64),
    /// A wire frame (by in-flight frame id) reaches its target zone.
    Deliver(u64),
    /// The retransmit timer for an unacked envelope (by msg id) fires.
    Resend(u64),
    /// The zone's controller node crashes (volatile state lost).
    Crash,
    /// The crashed controller comes back up.
    Restart,
}

/// A network partition window: while active, every link touching `zone`
/// drops frames at both the send and the deliver hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// The isolated zone.
    pub zone: usize,
    /// Window start (inclusive), seconds.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub until_s: f64,
}

/// A scheduled controller crash/restart for one zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The crashing zone.
    pub zone: usize,
    /// Crash time, seconds.
    pub at_s: f64,
    /// Restart time, seconds.
    pub restart_at_s: f64,
}

/// Full configuration of a distributed run. [`Default`] is a benign
/// 5-epoch scenario at the paper's T = 30 min re-allocation period.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// Master seed: the initial random assignment and, via
    /// `seed + epoch`, every epoch's restart schedule.
    pub seed: u64,
    /// Re-allocation period T (seconds).
    pub epoch_period_s: f64,
    /// Virtual time of epoch 1.
    pub first_epoch_at_s: f64,
    /// Run horizon for [`DistributedPlane::run`] and the twin's epoch
    /// count.
    pub horizon_s: f64,
    /// Random restarts per zone per epoch (Algorithm 2 hedging).
    pub restarts: usize,
    /// One-way control-link latency (seconds).
    pub link_latency_s: f64,
    /// Initial retransmit timeout (seconds).
    pub rto_base_s: f64,
    /// Retransmit backoff cap (seconds).
    pub rto_cap_s: f64,
    /// Resend attempts before an envelope expires.
    pub max_attempts: u32,
    /// Peer heartbeats may lag this many epochs before the peer counts
    /// as unheard for the safe-mode quorum.
    pub stale_epochs: u64,
    /// APs within this distance of a foreign zone's AP count as border
    /// cells (gossiped in digests, forced to 20 MHz in safe mode).
    pub border_margin_m: f64,
    /// The wire fault gauntlet for control frames.
    pub faults: FaultPlan,
    /// Partition windows. Windows may repeat or overlap; a zone is
    /// severed at `t` when *any* window covers it. Empty = no partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled zone-controller crashes. A zone may crash any number of
    /// times over a long soak; each window is an independent
    /// crash/restart pair. Empty = no crashes.
    pub crashes: Vec<CrashWindow>,
    /// Record the executed-event log (determinism tests).
    pub record_log: bool,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            seed: 7,
            epoch_period_s: 1800.0,
            first_epoch_at_s: 60.0,
            horizon_s: 60.0 + 4.0 * 1800.0,
            restarts: 2,
            link_latency_s: 0.05,
            rto_base_s: 5.0,
            rto_cap_s: 60.0,
            max_attempts: 8,
            stale_epochs: 2,
            border_margin_m: 600.0,
            faults: FaultPlan::default(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            record_log: false,
        }
    }
}

impl PlaneConfig {
    /// Number of epochs that fire within the horizon.
    pub fn n_epochs(&self) -> u64 {
        if self.horizon_s < self.first_epoch_at_s {
            return 0;
        }
        ((self.horizon_s - self.first_epoch_at_s) / self.epoch_period_s).floor() as u64 + 1
    }

    /// The fault-free, partition-free, crash-free twin of this config —
    /// same seeds, same epoch schedule, nothing ever goes wrong.
    pub fn benign_twin(&self) -> PlaneConfig {
        PlaneConfig {
            faults: self.faults.benign_twin(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            ..self.clone()
        }
    }
}

/// In-flight wire frames, keyed by frame id.
#[derive(Debug, Default)]
pub struct NetState {
    /// Encoded frames awaiting their `Deliver` event.
    pub pending: BTreeMap<u64, Vec<u8>>,
    /// Next frame id (also the `FaultRng` gauntlet key).
    pub next_frame_id: u64,
}

/// The shared world: ground-truth deployment plus the per-zone deployed
/// state that survives controller crashes (a zone's applied-epoch
/// generation and plan fingerprint persist with the radios, like NVRAM;
/// protocol state in [`ZoneController`] does not).
pub struct PlaneWorld {
    /// The deployment.
    pub wlan: Wlan,
    /// The (cloned-per-zone-conceptually, shared-here) ACORN controller.
    pub ctl: AcornController,
    /// Ground-truth network state; zones write disjoint slices.
    pub state: NetworkState,
    /// Zone decomposition: connected components, ascending, ordered by
    /// smallest vertex — the shard order of the centralized allocator.
    pub zones: Vec<Vec<usize>>,
    /// Zone index of each AP.
    pub zone_of_ap: Vec<usize>,
    /// Per-zone submodels, restricted once at startup — bit-exact rows
    /// of the full model.
    pub zone_models: Vec<NetworkModel>,
    /// Per-zone border APs (global ids, ascending).
    pub borders: Vec<Vec<usize>>,
    /// Process id of each zone's controller.
    pub zone_pids: Vec<ProcessId>,
    /// Last epoch each zone applied to its slice.
    pub applied_epoch: Vec<u64>,
    /// Each zone's current plan fingerprint.
    pub fingerprints: Vec<u64>,
    /// Wire frames in flight.
    pub net: NetState,
    /// Last epoch in which any zone's slice changed (convergence metric).
    pub last_change_epoch: u64,
}

/// Per-zone slice of the final [`PlaneReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ZoneReport {
    /// Zone index.
    pub zone: usize,
    /// APs in the zone.
    pub n_aps: usize,
    /// Border APs gossiped to neighbours.
    pub border_aps: usize,
    /// Last applied epoch.
    pub applied_epoch: u64,
    /// Final plan fingerprint.
    pub fingerprint: u64,
    /// Epochs this zone spent in partition safe mode.
    pub safe_mode_epochs: u64,
}

/// What a distributed run did, aggregated from telemetry and the world.
#[derive(Debug, Clone, Serialize)]
pub struct PlaneReport {
    /// Number of zones.
    pub n_zones: usize,
    /// Epochs scheduled within the horizon.
    pub epochs_scheduled: u64,
    /// Epoch applications across all zones (`ctrl.epochs`).
    pub epochs_applied: u64,
    /// Catch-up replays within those (`ctrl.epochs.replayed`).
    pub epochs_replayed: u64,
    /// Last epoch any slice changed — the convergence epoch.
    pub last_change_epoch: u64,
    /// Envelopes originated (`ctrl.msgs.sent`).
    pub msgs_sent: u64,
    /// Envelopes acknowledged (`ctrl.msgs.acked`).
    pub msgs_acked: u64,
    /// Retransmissions (`ctrl.msgs.retransmitted`).
    pub msgs_retransmitted: u64,
    /// Duplicates discarded (`ctrl.msgs.deduped`).
    pub msgs_deduped: u64,
    /// Envelopes that exhausted retries (`ctrl.msgs.expired`).
    pub msgs_expired: u64,
    /// Sends/deliveries severed by a partition window.
    pub msgs_partition_dropped: u64,
    /// Wire frames pushed through the gauntlet (`ctrl.frames.sent`).
    pub frames_sent: u64,
    /// Frames the gauntlet dropped (`ctrl.frames.lost`).
    pub frames_lost: u64,
    /// Frames the gauntlet corrupted (`ctrl.frames.corrupted`).
    pub frames_corrupted: u64,
    /// Frames the gauntlet delayed (`ctrl.frames.delayed`).
    pub frames_delayed: u64,
    /// Frames rejected by the defensive parser (`ctrl.parse_errors`).
    pub parse_errors: u64,
    /// Safe-mode epochs across all zones (`ctrl.safe_mode_epochs`).
    pub safe_mode_epochs: u64,
    /// Safe-mode entries (`ctrl.partition.detections`).
    pub partition_detections: u64,
    /// Safe-mode exits (`ctrl.partition.heals`).
    pub partition_heals: u64,
    /// Final network throughput under the deployed plan.
    pub total_bps: f64,
    /// Per-zone details.
    pub zones: Vec<ZoneReport>,
}

/// A running distributed control plane: the simulation plus its
/// configuration-derived epoch schedule.
pub struct DistributedPlane {
    /// The underlying event simulation (world and telemetry are public
    /// for scenario drivers and tests).
    pub sim: Simulation<PlaneWorld, PlaneEvent>,
    cfg: PlaneConfig,
}

impl DistributedPlane {
    /// Builds the plane: associates every client (Algorithm 1, arrival
    /// order), decomposes into zones, restricts the shared model per
    /// zone, and registers one [`ZoneController`] per zone (ascending —
    /// registration order fixes event sequence numbers).
    pub fn new(wlan: Wlan, ctl: AcornController, cfg: PlaneConfig) -> DistributedPlane {
        let mut state = ctl.new_state(&wlan, cfg.seed);
        for c in 0..wlan.clients.len() {
            ctl.associate(&wlan, &mut state, ClientId(c));
        }
        let zones = ctl.zones(&wlan, &state);
        let n_zones = zones.len();
        let mut zone_of_ap = vec![0usize; wlan.aps.len()];
        for (z, nodes) in zones.iter().enumerate() {
            for &n in nodes {
                zone_of_ap[n] = z;
            }
        }
        let model = ctl.build_model(&wlan, &state);
        let zone_models: Vec<NetworkModel> = zones.iter().map(|z| model.restrict(z)).collect();
        let borders: Vec<Vec<usize>> = zones
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&a| {
                        wlan.aps.iter().enumerate().any(|(b, ap_b)| {
                            zone_of_ap[b] != zone_of_ap[a]
                                && wlan.aps[a].pos.distance(&ap_b.pos) <= cfg.border_margin_m
                        })
                    })
                    .collect()
            })
            .collect();
        let world = PlaneWorld {
            state,
            zone_of_ap,
            zone_models,
            borders,
            zone_pids: (0..n_zones).map(ProcessId).collect(),
            applied_epoch: vec![0; n_zones],
            fingerprints: vec![0; n_zones],
            net: NetState::default(),
            last_change_epoch: 0,
            zones,
            wlan,
            ctl,
        };
        let mut sim = Simulation::new(world);
        sim.record_events(cfg.record_log);
        for z in 0..n_zones {
            let pid = sim.add_process(Box::new(ZoneController::new(z, n_zones, cfg.clone())));
            debug_assert_eq!(pid, sim.world.zone_pids[z]);
        }
        DistributedPlane { sim, cfg }
    }

    /// Runs (or resumes) the plane up to absolute time `t`.
    pub fn run_until(&mut self, t: f64) -> RunStats {
        self.sim.run(t)
    }

    /// Runs the plane to its configured horizon. Epoch timers stop
    /// chaining past the horizon, but gossip and retransmits scheduled
    /// by the final epoch may still be in flight afterwards — use
    /// [`DistributedPlane::run_to_quiescence`] to drain them.
    pub fn run(&mut self) -> RunStats {
        self.sim.run(self.cfg.horizon_s)
    }

    /// Runs every epoch within the horizon *and* drains all remaining
    /// deliveries, acks, and retransmit timers. Terminates because the
    /// epoch chain is horizon-bounded and unacked envelopes expire
    /// after `max_attempts` resends.
    pub fn run_to_quiescence(&mut self) -> RunStats {
        self.sim.run_to_completion()
    }

    /// The configuration the plane was built with.
    pub fn config(&self) -> &PlaneConfig {
        &self.cfg
    }

    /// The deployed ground-truth state.
    pub fn state(&self) -> &NetworkState {
        &self.sim.world.state
    }

    /// The telemetry recorder.
    pub fn telemetry(&self) -> &Telemetry {
        &self.sim.telemetry
    }

    /// The executed-event log, when recording was enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.sim.event_log()
    }

    /// The centralized golden twin: the allocation a single controller
    /// computes by running the same association and
    /// `reallocate_sharded_with_restarts` schedule over the full
    /// deployment. A benign distributed run must match it bit-for-bit.
    pub fn centralized_twin(&self) -> NetworkState {
        let w = &self.sim.world;
        centralized_twin(&w.wlan, &w.ctl, &self.cfg)
    }

    /// Aggregates the run's outcome.
    pub fn report(&self) -> PlaneReport {
        let tel = &self.sim.telemetry;
        let w = &self.sim.world;
        let zones = (0..w.zones.len())
            .map(|z| ZoneReport {
                zone: z,
                n_aps: w.zones[z].len(),
                border_aps: w.borders[z].len(),
                applied_epoch: w.applied_epoch[z],
                fingerprint: w.fingerprints[z],
                safe_mode_epochs: tel.counter(&format!("ctrl.zone.{z}.safe_mode_epochs")),
            })
            .collect();
        PlaneReport {
            n_zones: w.zones.len(),
            epochs_scheduled: self.cfg.n_epochs(),
            epochs_applied: tel.counter(names::CTRL_EPOCHS),
            epochs_replayed: tel.counter(names::CTRL_EPOCHS_REPLAYED),
            last_change_epoch: w.last_change_epoch,
            msgs_sent: tel.counter(names::CTRL_MSGS_SENT),
            msgs_acked: tel.counter(names::CTRL_MSGS_ACKED),
            msgs_retransmitted: tel.counter(names::CTRL_MSGS_RETRANSMITTED),
            msgs_deduped: tel.counter(names::CTRL_MSGS_DEDUPED),
            msgs_expired: tel.counter(names::CTRL_MSGS_EXPIRED),
            msgs_partition_dropped: tel.counter(names::CTRL_MSGS_PARTITION_DROPPED),
            frames_sent: tel.counter(names::CTRL_FRAMES_SENT),
            frames_lost: tel.counter(names::CTRL_FRAMES_LOST),
            frames_corrupted: tel.counter(names::CTRL_FRAMES_CORRUPTED),
            frames_delayed: tel.counter(names::CTRL_FRAMES_DELAYED),
            parse_errors: tel.counter(names::CTRL_PARSE_ERRORS),
            safe_mode_epochs: tel.counter(names::CTRL_SAFE_MODE_EPOCHS),
            partition_detections: tel.counter(names::CTRL_PARTITION_DETECTIONS),
            partition_heals: tel.counter(names::CTRL_PARTITION_HEALS),
            total_bps: w.ctl.total_throughput_bps(&w.wlan, &w.state),
            zones,
        }
    }
}

/// The centralized allocation trajectory for a deployment under a plane
/// config: Algorithm 1 association in client order, then one
/// [`reallocate_sharded_with_restarts`] per scheduled epoch with seed
/// `cfg.seed + e`.
///
/// [`reallocate_sharded_with_restarts`]: acorn_core::AcornController::reallocate_sharded_with_restarts
pub fn centralized_twin(wlan: &Wlan, ctl: &AcornController, cfg: &PlaneConfig) -> NetworkState {
    let mut state = ctl.new_state(wlan, cfg.seed);
    for c in 0..wlan.clients.len() {
        ctl.associate(wlan, &mut state, ClientId(c));
    }
    for e in 1..=cfg.n_epochs() {
        ctl.reallocate_sharded_with_restarts(
            wlan,
            &mut state,
            cfg.restarts,
            cfg.seed.wrapping_add(e),
        );
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_core::AcornConfig;
    use acorn_topology::Point;

    /// Two well-separated AP pairs → two zones, one client per AP.
    fn two_zone_wlan() -> Wlan {
        let mut w = Wlan::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(5000.0, 0.0),
                Point::new(5060.0, 0.0),
            ],
            vec![
                Point::new(3.0, 0.0),
                Point::new(57.0, 0.0),
                Point::new(5003.0, 0.0),
                Point::new(5057.0, 0.0),
            ],
            21,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w.radio.tx_power_dbm = 5.0;
        w
    }

    fn controller() -> AcornController {
        AcornController::new(AcornConfig::default())
    }

    fn short_cfg() -> PlaneConfig {
        PlaneConfig {
            seed: 11,
            epoch_period_s: 100.0,
            first_epoch_at_s: 10.0,
            horizon_s: 10.0 + 3.0 * 100.0,
            restarts: 2,
            ..PlaneConfig::default()
        }
    }

    #[test]
    fn benign_run_matches_the_centralized_twin() {
        let cfg = short_cfg();
        assert_eq!(cfg.n_epochs(), 4);
        let mut plane = DistributedPlane::new(two_zone_wlan(), controller(), cfg);
        plane.run();
        let twin = plane.centralized_twin();
        assert_eq!(plane.state().assignments, twin.assignments);
        assert_eq!(plane.state().operating_width, twin.operating_width);
        assert_eq!(plane.state().assoc, twin.assoc);
        let r = plane.report();
        assert_eq!(r.n_zones, 2);
        assert_eq!(plane.sim.world.applied_epoch, vec![4, 4]);
        assert_eq!(r.epochs_applied, 8, "2 zones x 4 epochs");
        assert_eq!(r.epochs_replayed, 0);
        assert_eq!(r.safe_mode_epochs, 0);
        assert_eq!(r.parse_errors, 0);
    }

    #[test]
    fn acks_cancel_every_retransmit_timer_on_a_clean_wire() {
        let mut plane = DistributedPlane::new(two_zone_wlan(), controller(), short_cfg());
        plane.run_to_quiescence();
        let r = plane.report();
        assert!(r.msgs_acked > 0);
        assert_eq!(r.msgs_retransmitted, 0, "no loss, no delay, no resends");
        assert_eq!(r.msgs_expired, 0);
        assert_eq!(
            plane.telemetry().counter(names::CTRL_RESEND_CANCELLED),
            r.msgs_acked,
            "every ack must tombstone a live resend timer"
        );
    }

    #[test]
    fn lossy_corrupt_wire_still_converges_to_the_twin() {
        let mut cfg = short_cfg();
        cfg.faults.loss = 0.3;
        cfg.faults.corruption = 0.2;
        let mut plane = DistributedPlane::new(two_zone_wlan(), controller(), cfg);
        plane.run_to_quiescence();
        let twin = plane.centralized_twin();
        assert_eq!(plane.state().assignments, twin.assignments);
        let r = plane.report();
        assert!(r.frames_lost > 0, "loss must have fired: {r:?}");
        assert!(r.frames_corrupted > 0, "corruption must have fired: {r:?}");
        assert_eq!(
            r.parse_errors, r.frames_corrupted,
            "every corrupted frame is caught by the FCS, none panic"
        );
        assert!(r.msgs_retransmitted > 0, "lost envelopes must retry");
    }

    #[test]
    fn delayed_acks_trigger_retransmits_that_dedup_exactly_once() {
        let mut cfg = short_cfg();
        // Every frame is delayed past the base RTO: originals arrive,
        // acks lag, the sender retransmits, the receiver dedups.
        cfg.faults.delay_prob = 1.0;
        cfg.faults.delay_max_s = 12.0;
        let mut plane = DistributedPlane::new(two_zone_wlan(), controller(), cfg);
        plane.run_to_quiescence();
        let twin = plane.centralized_twin();
        assert_eq!(plane.state().assignments, twin.assignments);
        let r = plane.report();
        assert!(
            r.msgs_retransmitted > 0,
            "delays past RTO must resend: {r:?}"
        );
        assert!(r.msgs_deduped > 0, "duplicates must be deduped: {r:?}");
        assert_eq!(r.msgs_expired, 0);
        assert_eq!(r.parse_errors, 0);
    }

    #[test]
    fn benign_twin_strips_every_fault() {
        let mut cfg = short_cfg();
        cfg.faults.loss = 0.5;
        cfg.partitions = vec![
            PartitionWindow {
                zone: 0,
                from_s: 0.0,
                until_s: 1.0,
            },
            PartitionWindow {
                zone: 0,
                from_s: 40.0,
                until_s: 50.0,
            },
        ];
        cfg.crashes = vec![CrashWindow {
            zone: 1,
            at_s: 5.0,
            restart_at_s: 6.0,
        }];
        let benign = cfg.benign_twin();
        assert!(benign.faults.is_benign());
        assert!(benign.partitions.is_empty() && benign.crashes.is_empty());
        assert_eq!(benign.seed, cfg.seed);
        assert_eq!(benign.n_epochs(), cfg.n_epochs());
    }
}
