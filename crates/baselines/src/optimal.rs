//! Exhaustive optimal channel allocation for small instances.
//!
//! The allocation problem is NP-complete, but Fig. 14's experiments use
//! 3 APs and ≤ 6 channels — small enough for brute force over all
//! `|colours|^n` assignments. This gives the true optimum against which
//! ACORN's greedy is measured (alongside the looser `Y*` bound).

use acorn_core::model::ThroughputModel;
use acorn_topology::{ChannelAssignment, ChannelPlan};

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalResult {
    /// The best assignment found.
    pub assignments: Vec<ChannelAssignment>,
    /// Its aggregate throughput (bits/s).
    pub total_bps: f64,
    /// Number of assignments evaluated.
    pub evaluated: usize,
}

/// Exhaustively maximizes `Σ X_i` over every assignment in the plan.
/// Panics if the search space exceeds `limit` evaluations (guard against
/// accidentally brute-forcing a large network).
pub fn optimal_allocation<M: ThroughputModel>(
    model: &M,
    plan: &ChannelPlan,
    limit: usize,
) -> OptimalResult {
    let colours = plan.all_assignments();
    let n = model.n_aps();
    let space = colours
        .len()
        .checked_pow(n as u32)
        .expect("search space overflow");
    assert!(
        space <= limit,
        "search space {space} exceeds limit {limit}; use the greedy instead"
    );
    assert!(n > 0, "empty network");

    let mut assignment = vec![colours[0]; n];
    let mut best = assignment.clone();
    let mut best_y = model.total_bps(&assignment);
    let mut evaluated = 1usize;
    let mut idx = vec![0usize; n];
    loop {
        // Increment the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == n {
                return OptimalResult {
                    assignments: best,
                    total_bps: best_y,
                    evaluated,
                };
            }
            idx[pos] += 1;
            if idx[pos] < colours.len() {
                assignment[pos] = colours[idx[pos]];
                break;
            }
            idx[pos] = 0;
            assignment[pos] = colours[0];
            pos += 1;
        }
        let y = model.total_bps(&assignment);
        evaluated += 1;
        if y > best_y {
            best_y = y;
            best = assignment.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_core::allocation::{allocate_with_restarts, AllocationConfig};
    use acorn_core::model::{ClientSnr, NetworkModel};
    use acorn_topology::InterferenceGraph;

    fn model(snrs_per_ap: &[&[f64]], graph: InterferenceGraph) -> NetworkModel {
        let cells = snrs_per_ap
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        NetworkModel::new(graph, cells)
    }

    #[test]
    fn optimum_separates_two_contenders() {
        let m = model(&[&[28.0], &[27.0]], InterferenceGraph::complete(2));
        let plan = ChannelPlan::restricted(4);
        let r = optimal_allocation(&m, &plan, 100);
        assert!(!r.assignments[0].conflicts(r.assignments[1]));
        assert_eq!(r.evaluated, 36); // (4 singles + 2 bonds)²
    }

    #[test]
    fn greedy_with_restarts_matches_optimum_on_small_instances() {
        // The Fig. 14 sanity: on 3-AP instances the greedy (with
        // restarts) should land at or very near the brute-force optimum.
        let m = model(&[&[28.0], &[10.0], &[2.0]], InterferenceGraph::complete(3));
        for ch in [2u8, 4, 6] {
            let plan = ChannelPlan::restricted(ch);
            let opt = optimal_allocation(&m, &plan, 2000);
            let cfg = AllocationConfig {
                epsilon: 1.0,
                max_rounds: 64,
            };
            let greedy = allocate_with_restarts(&m, &plan, &cfg, 8, 3);
            assert!(
                greedy.total_bps >= 0.97 * opt.total_bps,
                "{ch} channels: greedy {:.4e} vs optimal {:.4e}",
                greedy.total_bps,
                opt.total_bps
            );
        }
    }

    #[test]
    fn optimum_bonds_the_good_ap_in_the_fig11_setting() {
        let m = model(&[&[28.0], &[0.0], &[0.0]], InterferenceGraph::complete(3));
        let plan = ChannelPlan::restricted(4);
        let r = optimal_allocation(&m, &plan, 2000);
        use acorn_phy::ChannelWidth::*;
        let widths: Vec<_> = r.assignments.iter().map(|a| a.width()).collect();
        assert_eq!(widths, vec![Ht40, Ht20, Ht20], "{:?}", r.assignments);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn oversized_search_panics() {
        let m = model(
            &[&[20.0], &[20.0], &[20.0], &[20.0], &[20.0]],
            InterferenceGraph::complete(5),
        );
        optimal_allocation(&m, &ChannelPlan::full_5ghz(), 1000);
    }
}
