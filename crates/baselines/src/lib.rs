//! # acorn-baselines — the comparison schemes ACORN is evaluated against
//!
//! * [`kauffmann`] — "\[17\]" (Kauffmann et al.) as modified by the paper:
//!   selfish delay-based association plus greedy *aggressive* 40 MHz
//!   channel selection minimizing noise+interference. CB-agnostic by
//!   design — the paper's main head-to-head.
//! * [`simple`] — RSSI association, Table 3's random manual
//!   configurations, and fixed all-20/all-40 plans.
//! * [`optimal`] — exhaustive joint channel search for small instances
//!   (the Fig. 14 reference point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kauffmann;
pub mod optimal;
pub mod simple;

pub use kauffmann::{allocate_aggressive_cb, associate as associate_kauffmann};
pub use optimal::{optimal_allocation, OptimalResult};
pub use simple::{associate_rssi, fixed_width, random_config, RandomConfig};
