//! Simple baselines: RSSI association, random configurations, and fixed
//! channel-width plans.
//!
//! * RSSI association is the strawman §4.1 argues against: "affiliation
//!   decisions that are based on the received signal strength (RSS) of the
//!   beacons ... can lead to configurations with a few overloaded APs and
//!   other underloaded APs".
//! * Random configurations are the comparison set of Table 3: "we
//!   configure APs with random channels (both 20 and 40 MHz) and let each
//!   client associate with one of the APs in range with equal
//!   probability."
//! * Fixed-width plans (all-20 / all-40 with round-robin channel reuse)
//!   are the static strawmen of Figs. 11 and 13.

use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment, ChannelPlan, ClientId, Wlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RSSI (strongest-beacon) association: the client picks the AP with the
/// highest received signal power, provided it clears `snr_floor_db` at
/// 20 MHz. Returns `None` when nothing is in range.
pub fn associate_rssi(wlan: &Wlan, client: ClientId, snr_floor_db: f64) -> Option<ApId> {
    (0..wlan.aps.len())
        .map(ApId)
        .filter(|&ap| wlan.snr_db(ap, client, ChannelWidth::Ht20) >= snr_floor_db)
        .max_by(|&a, &b| {
            wlan.link_budget(a, client)
                .rx_power_dbm()
                .total_cmp(&wlan.link_budget(b, client).rx_power_dbm())
        })
}

/// One random manual configuration (Table 3): random channels (both
/// widths) for every AP and uniform-random association for every client
/// among its in-range APs.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomConfig {
    /// Channel per AP.
    pub assignments: Vec<ChannelAssignment>,
    /// Association per client (`None` when no AP is in range).
    pub assoc: Vec<Option<ApId>>,
}

/// Draws a random configuration.
pub fn random_config(
    wlan: &Wlan,
    plan: &ChannelPlan,
    snr_floor_db: f64,
    seed: u64,
) -> RandomConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let all = plan.all_assignments();
    let assignments = (0..wlan.aps.len())
        .map(|_| all[rng.gen_range(0..all.len())])
        .collect();
    let assoc = (0..wlan.clients.len())
        .map(|c| {
            let in_range: Vec<ApId> = (0..wlan.aps.len())
                .map(ApId)
                .filter(|&ap| wlan.snr_db(ap, ClientId(c), ChannelWidth::Ht20) >= snr_floor_db)
                .collect();
            if in_range.is_empty() {
                None
            } else {
                Some(in_range[rng.gen_range(0..in_range.len())])
            }
        })
        .collect();
    RandomConfig { assignments, assoc }
}

/// Fixed-width plan: every AP at the given width, channels assigned
/// round-robin over the plan's non-overlapping options of that width.
pub fn fixed_width(
    plan: &ChannelPlan,
    n_aps: usize,
    width: ChannelWidth,
) -> Vec<ChannelAssignment> {
    let options: Vec<ChannelAssignment> = match width {
        ChannelWidth::Ht20 => plan.singles().collect(),
        ChannelWidth::Ht40 => plan.bonds().collect(),
    };
    assert!(
        !options.is_empty(),
        "plan has no channel of width {width:?}"
    );
    (0..n_aps).map(|i| options[i % options.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::Point;

    fn wlan() -> Wlan {
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(60.0, 0.0)],
            vec![
                Point::new(5.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(3000.0, 0.0),
            ],
            3,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    #[test]
    fn rssi_picks_the_nearest_ap() {
        let w = wlan();
        assert_eq!(associate_rssi(&w, ClientId(0), -3.0), Some(ApId(0)));
        assert_eq!(associate_rssi(&w, ClientId(1), -3.0), Some(ApId(1)));
        assert_eq!(associate_rssi(&w, ClientId(2), -3.0), None);
    }

    #[test]
    fn rssi_ignores_load() {
        // RSSI never considers K or delays — that's its defining flaw; it
        // depends only on geometry, so the answer never changes with load.
        let w = wlan();
        for _ in 0..3 {
            assert_eq!(associate_rssi(&w, ClientId(0), -3.0), Some(ApId(0)));
        }
    }

    #[test]
    fn random_config_is_seeded_and_legal() {
        let w = wlan();
        let plan = ChannelPlan::full_5ghz();
        let a = random_config(&w, &plan, -3.0, 42);
        let b = random_config(&w, &plan, -3.0, 42);
        assert_eq!(a, b);
        assert_ne!(a, random_config(&w, &plan, -3.0, 43));
        assert!(a.assignments.iter().all(|x| plan.contains(*x)));
        // The out-of-range client stays unassociated.
        assert_eq!(a.assoc[2], None);
        assert!(a.assoc[0].is_some() && a.assoc[1].is_some());
    }

    #[test]
    fn random_configs_cover_both_widths() {
        let w = wlan();
        let plan = ChannelPlan::full_5ghz();
        let mut seen20 = false;
        let mut seen40 = false;
        for seed in 0..50 {
            for a in random_config(&w, &plan, -3.0, seed).assignments {
                match a.width() {
                    ChannelWidth::Ht20 => seen20 = true,
                    ChannelWidth::Ht40 => seen40 = true,
                }
            }
        }
        assert!(seen20 && seen40);
    }

    #[test]
    fn fixed_width_round_robins_channels() {
        let plan = ChannelPlan::restricted(4);
        let a20 = fixed_width(&plan, 6, ChannelWidth::Ht20);
        assert!(a20.iter().all(|x| x.width() == ChannelWidth::Ht20));
        assert_eq!(a20[0], a20[4]); // wraps after 4 singles
        assert_ne!(a20[0], a20[1]);
        let a40 = fixed_width(&plan, 3, ChannelWidth::Ht40);
        assert!(a40.iter().all(|x| x.width() == ChannelWidth::Ht40));
        assert_eq!(a40[0], a40[2]); // only 2 bonds in a 4-channel plan
    }

    #[test]
    #[should_panic(expected = "no channel of width")]
    fn fixed_40_needs_a_bond() {
        fixed_width(&ChannelPlan::restricted(1), 2, ChannelWidth::Ht40);
    }
}
