//! The paper's main comparison baseline — "\[17\]" (Kauffmann et al.,
//! INFOCOM 2007) as modified in §5.2.
//!
//! "Each client performs user association ... \[per\] the algorithm
//! described in \[17\]. The APs then perform channel selection ... \[per\] a
//! modified version of \[17\]. We modify the frequency selection algorithm
//! in \[17\] to implement a greedy strategy where APs aggressively use the
//! (single width) 40 MHz channels. Specifically, they scan 40 MHz channels
//! and select the one that minimizes the total noise and interference."
//!
//! Because \[17\] is CB-agnostic (designed for a single channel width), this
//! baseline bonds *everywhere* — precisely the behaviour ACORN's
//! measurements show to be harmful on poor links and in dense deployments.

use acorn_core::association::{choose_ap_selfish, Candidate};
use acorn_topology::{ApId, ChannelAssignment, ChannelPlan, InterferenceGraph, Wlan};

/// \[17\]-style association: the client minimizes its own transmission
/// delay (equivalently maximizes its own per-client throughput) — the
/// "selfish" rule, blind to collateral anomaly damage in other cells.
pub fn associate(candidates: &[Candidate]) -> Option<usize> {
    choose_ap_selfish(candidates)
}

/// Greedy aggressive-CB channel selection: every AP takes the legal
/// 40 MHz bond that minimizes interference, measured as the number of
/// interference-graph neighbours already occupying an overlapping channel
/// (ties broken by received interference power when provided).
///
/// APs decide in index order and iterate until a fixed point (at most
/// `max_sweeps` sweeps), mirroring the distributed best-response dynamics
/// of the Gibbs-sampler original.
pub fn allocate_aggressive_cb(
    wlan: &Wlan,
    graph: &InterferenceGraph,
    plan: &ChannelPlan,
    max_sweeps: usize,
) -> Vec<ChannelAssignment> {
    let bonds: Vec<ChannelAssignment> = plan.bonds().collect();
    assert!(!bonds.is_empty(), "plan has no legal 40 MHz bond");
    let n = graph.len();
    let mut assignments: Vec<ChannelAssignment> = (0..n).map(|i| bonds[i % bonds.len()]).collect();

    for _ in 0..max_sweeps.max(1) {
        let mut changed = false;
        for i in 0..n {
            let ap = ApId(i);
            let mut best = assignments[i];
            let mut best_cost = f64::INFINITY;
            for &b in &bonds {
                // Cost: count of conflicting neighbours, with aggregate
                // received power as tiebreaker (the "total noise and
                // interference" scan).
                let mut conflicts = 0usize;
                let mut power_mw = 0.0f64;
                for nb in graph.neighbors(ap) {
                    if assignments[nb.0].conflicts(b) {
                        conflicts += 1;
                        power_mw += 10f64.powf(wlan.ap_to_ap_rx_dbm(nb, ap) / 10.0);
                    }
                }
                let cost = conflicts as f64 * 1e6 + power_mw;
                if cost < best_cost {
                    best_cost = cost;
                    best = b;
                }
            }
            if best != assignments[i] {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    assignments
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_phy::ChannelWidth;
    use acorn_topology::Point;

    fn wlan(n_aps: usize) -> Wlan {
        let aps = (0..n_aps)
            .map(|i| Point::new(30.0 * i as f64, 0.0))
            .collect();
        let mut w = Wlan::new(aps, vec![], 5);
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    #[test]
    fn everyone_ends_up_bonded() {
        let w = wlan(4);
        let g = w.ap_only_interference_graph();
        let a = allocate_aggressive_cb(&w, &g, &ChannelPlan::full_5ghz(), 8);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|x| x.width() == ChannelWidth::Ht40));
    }

    #[test]
    fn neighbours_avoid_each_other_when_bonds_suffice() {
        // 3 APs, 6 channels → 3 disjoint bonds exist; the greedy should
        // find a conflict-free bonding.
        let w = wlan(3);
        let g = w.ap_only_interference_graph();
        let a = allocate_aggressive_cb(&w, &g, &ChannelPlan::restricted(6), 8);
        for i in 0..3 {
            for j in i + 1..3 {
                if g.interferes(ApId(i), ApId(j)) {
                    assert!(!a[i].conflicts(a[j]), "{a:?}");
                }
            }
        }
    }

    #[test]
    fn scarce_bonds_force_overlap() {
        // 3 mutually interfering APs but only 4 channels (2 bonds): at
        // least two APs must share — the Fig. 11 pathology.
        let w = wlan(3);
        let mut g = InterferenceGraph::complete(3);
        let a = allocate_aggressive_cb(&w, &g, &ChannelPlan::restricted(4), 8);
        let mut any_conflict = false;
        for i in 0..3 {
            for j in i + 1..3 {
                any_conflict |= a[i].conflicts(a[j]);
            }
        }
        assert!(any_conflict, "{a:?}");
        g.add_edge(ApId(0), ApId(1)); // keep mut used, idempotent
    }

    #[test]
    fn association_is_selfish() {
        // Delegates to the selfish chooser: picks the best personal
        // throughput even when Eq. 4 would choose otherwise.
        let d_good = 0.002;
        let d_poor = 0.020;
        let cands = [
            Candidate {
                ap: ApId(0),
                k_including_u: 3,
                access_share: 1.0,
                atd_including_u_s: 2.0 * d_good + d_poor,
                delay_u_s: d_poor,
            },
            Candidate {
                ap: ApId(1),
                k_including_u: 3,
                access_share: 1.0,
                atd_including_u_s: 3.0 * d_poor,
                delay_u_s: d_poor,
            },
        ];
        assert_eq!(associate(&cands), Some(0));
        assert_eq!(acorn_core::association::choose_ap(&cands), Some(1));
    }

    #[test]
    #[should_panic(expected = "no legal 40 MHz bond")]
    fn single_channel_plan_panics() {
        let w = wlan(1);
        let g = w.ap_only_interference_graph();
        allocate_aggressive_cb(&w, &g, &ChannelPlan::restricted(1), 4);
    }

    #[test]
    fn deterministic() {
        let w = wlan(5);
        let g = w.ap_only_interference_graph();
        let a = allocate_aggressive_cb(&w, &g, &ChannelPlan::full_5ghz(), 8);
        let b = allocate_aggressive_cb(&w, &g, &ChannelPlan::full_5ghz(), 8);
        assert_eq!(a, b);
    }
}
