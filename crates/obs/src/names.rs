//! The workspace metric namespace.
//!
//! Every instrumented call site names its metrics through these
//! constants, so events, sim, and bench binaries agree on what a metric
//! is called and DESIGN.md §12 can document the namespace in one place.
//! Names are dotted, lowercase, `layer.metric`; pre-existing
//! `acorn-events` metrics (`controller.*`, `faults.*`, `association.*`)
//! keep their historical names.

/// `choose_ap` invocations (Algorithm 1 rankings performed).
pub const ASSOC_CHOICES: &str = "assoc.choices";
/// Candidates examined across all `choose_ap` calls.
pub const ASSOC_CANDIDATES: &str = "assoc.candidates";
/// Candidates whose utility evaluated to NaN and were screened to the
/// deterministic lowest-preference policy.
pub const ASSOC_NAN_UTILITIES: &str = "assoc.nan_utilities";

/// Greedy allocation runs (Algorithm 2 invocations).
pub const ALLOC_RUNS: &str = "alloc.runs";
/// Greedy rounds executed across all runs.
pub const ALLOC_ROUNDS: &str = "alloc.rounds";
/// Candidate (cell, colour) switches evaluated across all rounds.
pub const ALLOC_ITERATIONS: &str = "alloc.iterations";
/// Switches actually applied (a round found an improving move).
pub const ALLOC_SWITCHES: &str = "alloc.switches";
/// Random-restart allocations fanned out by `allocate_with_restarts`.
pub const ALLOC_RESTARTS: &str = "alloc.restarts";
/// Connected-component shards the sharded allocation path fanned out
/// over (summed per run; 1 when the conflict graph is connected).
pub const ALLOC_SHARDS: &str = "alloc.shards";

/// Full `cell_base_bps` table rebuilds on the throughput model.
pub const MODEL_REBUILDS: &str = "model.cell_base_rebuilds";
/// O(Δ) `delta_bps` evaluations served from the cached table.
pub const MODEL_DELTA_EVALS: &str = "model.delta_evals";
/// Hoisted `best_switch` scans (each replaces a per-colour delta loop).
pub const MODEL_BEST_SWITCH_SCANS: &str = "model.best_switch_scans";

/// Memoized goodput-table lookups answered from the table.
pub const TABLE_HITS: &str = "phy.table.hits";
/// Goodput-table lookups outside the tabulated SNR range (answered by
/// the exact estimator instead).
pub const TABLE_MISSES: &str = "phy.table.misses";
/// Goodput-table (re)builds.
pub const TABLE_REBUILDS: &str = "phy.table.rebuilds";
/// Gauge: max absolute goodput quantization error (bits/s) observed by
/// the table's build-time self-check sweep.
pub const TABLE_MAX_QUANT_ERROR: &str = "phy.table.max_quant_error_bps";

/// Controller reallocation epochs driven through the obs entry points.
pub const CONTROLLER_EPOCHS: &str = "controller.obs_epochs";
/// Reallocation epochs spent in safe mode (historical name, also read
/// by `ResilienceReport`).
pub const CONTROLLER_SAFE_MODE_EPOCHS: &str = "controller.safe_mode_epochs";

/// CSA countdowns scheduled by the fault-layer control round.
pub const CSA_SCHEDULED: &str = "csa.scheduled";
/// CSA announcements ticked out mid-countdown.
pub const CSA_ANNOUNCED: &str = "csa.announced";
/// CSA countdowns that reached SwitchNow.
pub const CSA_SWITCHED: &str = "csa.switched";

/// IAPP conflict entries sitting in hold-down, summed per control round.
pub const IAPP_HOLD_DOWNS: &str = "iapp.hold_downs";

/// Baseband packets pushed through `run_packet`.
pub const BASEBAND_PACKETS: &str = "baseband.packets";
/// Baseband pipeline stage spans (entry counts; wall time only in
/// bench binaries that opt in).
pub const BASEBAND_STAGE_ENCODE: &str = "baseband.stage.encode";
/// Space-time/SISO stream construction stage.
pub const BASEBAND_STAGE_STREAMS: &str = "baseband.stage.streams";
/// Channel convolution + AWGN stage.
pub const BASEBAND_STAGE_CHANNEL: &str = "baseband.stage.channel";
/// Preamble detection / synchronization stage.
pub const BASEBAND_STAGE_SYNC: &str = "baseband.stage.sync";
/// Combining / equalization / EVM stage.
pub const BASEBAND_STAGE_RECEIVE: &str = "baseband.stage.receive";
/// Demodulation + Viterbi decode stage.
pub const BASEBAND_STAGE_DECODE: &str = "baseband.stage.decode";
/// Packets that failed preamble sync (pipeline aborted at stage 6).
pub const BASEBAND_SYNC_FAILURES: &str = "baseband.sync_failures";

/// Distributed-control-plane envelopes sent (originals, not retransmit
/// copies) by zone controllers.
pub const CTRL_MSGS_SENT: &str = "ctrl.msgs.sent";
/// Envelopes confirmed by an `Ack` from the receiving zone.
pub const CTRL_MSGS_ACKED: &str = "ctrl.msgs.acked";
/// Retransmission copies sent after an ack timeout.
pub const CTRL_MSGS_RETRANSMITTED: &str = "ctrl.msgs.retransmitted";
/// Duplicate envelope deliveries suppressed by the receive-side dedup
/// (the duplicate is re-acked but not re-processed).
pub const CTRL_MSGS_DEDUPED: &str = "ctrl.msgs.deduped";
/// Envelopes abandoned after the retransmit-attempt cap.
pub const CTRL_MSGS_EXPIRED: &str = "ctrl.msgs.expired";
/// Envelope copies silently dropped by an active network partition.
pub const CTRL_MSGS_PARTITION_DROPPED: &str = "ctrl.msgs.partition_dropped";
/// Pending retransmit timers cancelled by an arriving ack (the
/// event-queue tombstone path).
pub const CTRL_RESEND_CANCELLED: &str = "ctrl.resend.cancelled";
/// Control-plane frame copies pushed through the fault gauntlet.
pub const CTRL_FRAMES_SENT: &str = "ctrl.frames.sent";
/// Control-plane frame copies dropped by the loss process.
pub const CTRL_FRAMES_LOST: &str = "ctrl.frames.lost";
/// Control-plane frame copies bit-corrupted in flight.
pub const CTRL_FRAMES_CORRUPTED: &str = "ctrl.frames.corrupted";
/// Control-plane frame copies delivered late.
pub const CTRL_FRAMES_DELAYED: &str = "ctrl.frames.delayed";
/// Delivered control-plane frames the parser rejected (typed errors —
/// corruption is caught by the FCS, never by a panic).
pub const CTRL_PARSE_ERRORS: &str = "ctrl.parse_errors";
/// Zone re-allocation epochs applied (including catch-up replays).
pub const CTRL_EPOCHS: &str = "ctrl.epochs";
/// Catch-up epochs replayed after a crash or partition heal.
pub const CTRL_EPOCHS_REPLAYED: &str = "ctrl.epochs.replayed";
/// Zone epochs spent in safe mode (last-known-good plan, border cells
/// forced to 20 MHz). Per-zone counts live under
/// `ctrl.zone.<z>.safe_mode_epochs`.
pub const CTRL_SAFE_MODE_EPOCHS: &str = "ctrl.safe_mode_epochs";
/// Transitions into safe mode (quorum of peers unheard).
pub const CTRL_PARTITION_DETECTIONS: &str = "ctrl.partition.detections";
/// Transitions out of safe mode (peer quorum heard again).
pub const CTRL_PARTITION_HEALS: &str = "ctrl.partition.heals";
/// Border-cell beacon digests received from peer zones.
pub const CTRL_DIGESTS_RX: &str = "ctrl.digests.rx";
/// Proposed channel switches received from peer zones.
pub const CTRL_SWITCHES_RX: &str = "ctrl.switches.rx";
