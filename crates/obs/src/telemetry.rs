//! The workspace telemetry recorder: counters, gauges, time-series, and
//! fixed-bin histograms, all recorded against virtual time and
//! exportable as a byte-stable JSON snapshot.
//!
//! This module moved here from `acorn-events` (which re-exports it for
//! compatibility) so that events, sim, and bench binaries share one set
//! of metric types and one snapshot format. Everything lives in
//! `BTreeMap`s keyed by metric name, so snapshot output order is
//! lexicographic — never hash order — and two deterministic runs produce
//! byte-identical JSON. Histogram `min`/`max` are `Option<f64>` rather
//! than NaN sentinels, which keeps [`TelemetrySnapshot`] meaningfully
//! `PartialEq` (and serializes as `null` for an empty histogram instead
//! of an unparseable NaN).
//!
//! Two behaviours changed in the move, both bugfixes:
//!
//! * [`Histogram::observe`] no longer panics on NaN. The fault layer
//!   deliberately injects NaN measurements, and one unguarded
//!   observation used to abort a whole resilience run; a NaN is now
//!   counted in [`Histogram::nan_rejected`] (surfaced in snapshots) and
//!   otherwise ignored.
//! * [`Histogram::linear`] / [`Histogram::with_edges`] return a typed
//!   [`HistogramError`] instead of asserting on bad bounds.

use crate::sketch::{QuantileSketch, SketchEntry};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Default per-series sample capacity. Generous enough that every
/// short-horizon scenario keeps its full history (the longest series the
/// repo records outside soak runs is a few thousand samples), yet it
/// bounds a multi-day soak's telemetry at ~2 MB per series instead of
/// O(horizon). Opt out per recorder with
/// [`Telemetry::set_series_capacity`]`(None)`.
pub const DEFAULT_SERIES_CAP: usize = 65_536;

/// Why a histogram could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum HistogramError {
    /// `with_edges` needs at least two edges to define one bin.
    TooFewEdges {
        /// How many edges were supplied.
        got: usize,
    },
    /// Edges must be finite and strictly increasing.
    EdgesNotIncreasing,
    /// `linear` needs at least one bin.
    ZeroBins,
    /// `linear` needs a finite range with `lo < hi`.
    InvalidRange {
        /// Requested lower edge.
        lo: f64,
        /// Requested upper edge.
        hi: f64,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::TooFewEdges { got } => {
                write!(f, "histogram needs at least two edges, got {got}")
            }
            HistogramError::EdgesNotIncreasing => {
                write!(f, "histogram edges must be finite and strictly increasing")
            }
            HistogramError::ZeroBins => write!(f, "histogram needs at least one bin"),
            HistogramError::InvalidRange { lo, hi } => {
                write!(
                    f,
                    "histogram range must be finite with lo < hi, got [{lo}, {hi})"
                )
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// A fixed-bin histogram over `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bin edges, strictly increasing; observation `x` lands in bin `i`
    /// iff `edges[i] <= x < edges[i+1]`. Values outside the edge range go
    /// to the under/overflow counts.
    pub edges: Vec<f64>,
    /// One count per bin (`edges.len() - 1` of them).
    pub counts: Vec<u64>,
    /// Observations below `edges[0]`.
    pub underflow: u64,
    /// Observations at or above `edges.last()`.
    pub overflow: u64,
    /// Total observations (including under/overflow, excluding NaN).
    pub count: u64,
    /// Running sum of observations.
    pub sum: f64,
    /// Smallest observation so far, if any.
    pub min: Option<f64>,
    /// Largest observation so far, if any.
    pub max: Option<f64>,
    /// NaN observations rejected (counted, never binned: a NaN carries
    /// no magnitude, but silently dropping it would hide model bugs and
    /// panicking on it lets injected faults abort whole runs).
    pub nan_rejected: u64,
}

impl Histogram {
    /// A histogram with the given bin edges (at least two, strictly
    /// increasing and finite).
    pub fn with_edges(edges: Vec<f64>) -> Result<Histogram, HistogramError> {
        if edges.len() < 2 {
            return Err(HistogramError::TooFewEdges { got: edges.len() });
        }
        if !edges
            .windows(2)
            .all(|w| w[0] < w[1] && w[0].is_finite() && w[1].is_finite())
        {
            return Err(HistogramError::EdgesNotIncreasing);
        }
        let bins = edges.len() - 1;
        Ok(Histogram {
            edges,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            nan_rejected: 0,
        })
    }

    /// `n` equal-width bins spanning `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Result<Histogram, HistogramError> {
        if n < 1 {
            return Err(HistogramError::ZeroBins);
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(HistogramError::InvalidRange { lo, hi });
        }
        let w = (hi - lo) / n as f64;
        Self::with_edges((0..=n).map(|i| lo + w * i as f64).collect())
    }

    /// Records one observation. NaN is counted in
    /// [`nan_rejected`](Histogram::nan_rejected) and otherwise ignored;
    /// ±∞ land in the under/overflow counts like any other out-of-range
    /// value. Never panics.
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
        if x < self.edges[0] {
            self.underflow += 1;
        } else if x >= *self.edges.last().expect("histogram has >= 2 edges") {
            self.overflow += 1;
        } else {
            // Binary search for the bin: first edge strictly above x.
            let i = self.edges.partition_point(|e| *e <= x) - 1;
            self.counts[i] += 1;
        }
    }

    /// Mean of all (non-NaN) observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Folds another histogram into this one. Requires identical edges
    /// (bit-for-bit); returns `false` and leaves `self` untouched when
    /// the edges differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.edges.len() != other.edges.len()
            || !self
                .edges
                .iter()
                .zip(&other.edges)
                .all(|(a, b)| a.to_bits() == b.to_bits())
        {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.nan_rejected += other.nan_rejected;
        true
    }
}

/// One (time, value) series, optionally capacity-capped: with a cap of
/// `c`, the series keeps between `c` and `2c` of the *most recent*
/// samples (eviction drops the oldest half-window in one amortized-O(1)
/// memmove rather than shifting per push), and
/// [`total`](Series::total) keeps counting everything ever recorded —
/// so bounded memory never silently masquerades as a short run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    /// Sample times (s, virtual) — the retained window.
    pub times_s: Vec<f64>,
    /// Sample values — the retained window.
    pub values: Vec<f64>,
    /// Retention cap (`None` = unbounded, the pre-soak behaviour).
    cap: Option<usize>,
    /// Samples ever recorded, including evicted ones.
    total: u64,
}

impl Series {
    /// An empty series with the given retention cap.
    pub fn with_capacity(cap: Option<usize>) -> Series {
        Series {
            cap,
            ..Series::default()
        }
    }

    /// Samples ever recorded (≥ `values.len()` once eviction starts).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// True once eviction has dropped at least one sample.
    pub fn is_truncated(&self) -> bool {
        self.total > self.values.len() as u64
    }

    /// The retention cap.
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    fn set_capacity(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce_cap();
    }

    fn push(&mut self, t_s: f64, value: f64) {
        self.total += 1;
        self.times_s.push(t_s);
        self.values.push(value);
        self.enforce_cap();
    }

    fn enforce_cap(&mut self) {
        if let Some(cap) = self.cap {
            let cap = cap.max(1);
            if self.values.len() >= cap * 2 {
                let drop = self.values.len() - cap;
                self.times_s.drain(..drop);
                self.values.drain(..drop);
                self.times_s.shrink_to(cap * 2);
                self.values.shrink_to(cap * 2);
            }
        }
    }
}

/// The telemetry recorder processes and sinks write into.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Series>,
    histograms: BTreeMap<String, Histogram>,
    sketches: BTreeMap<String, QuantileSketch>,
    /// Retention cap newly-created series inherit.
    series_cap: Option<usize>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            series: BTreeMap::new(),
            histograms: BTreeMap::new(),
            sketches: BTreeMap::new(),
            series_cap: Some(DEFAULT_SERIES_CAP),
        }
    }
}

impl Telemetry {
    /// An empty recorder (series capped at [`DEFAULT_SERIES_CAP`]).
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Sets the retention cap applied to every series, existing and
    /// future (`None` is the explicit opt-out back to unbounded
    /// history). Soak harnesses tighten this; plot-oriented short runs
    /// that need every sample loosen it.
    pub fn set_series_capacity(&mut self, cap: Option<usize>) {
        self.series_cap = cap;
        for s in self.series.values_mut() {
            s.set_capacity(cap);
        }
    }

    /// The retention cap newly-created series inherit.
    pub fn series_capacity(&self) -> Option<usize> {
        self.series_cap
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Appends a (time, value) sample to a series (evicting the oldest
    /// window once the recorder's series cap is exceeded).
    pub fn record(&mut self, name: &str, t_s: f64, value: f64) {
        let cap = self.series_cap;
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::with_capacity(cap));
        s.push(t_s, value);
    }

    /// Reads a series.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Registers a histogram under `name` (replacing any existing one).
    pub fn register_histogram(&mut self, name: &str, hist: Histogram) {
        self.histograms.insert(name.to_string(), hist);
    }

    /// Records an observation into a registered histogram; auto-registers
    /// a default one (64 linear bins over `[0, 1)`) if the name is new,
    /// so ad-hoc metrics still land somewhere visible.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                Histogram::linear(0.0, 1.0, 64).expect("static default histogram bounds")
            })
            .observe(x);
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Registers a quantile sketch under `name` (replacing any existing
    /// one).
    pub fn register_sketch(&mut self, name: &str, sketch: QuantileSketch) {
        self.sketches.insert(name.to_string(), sketch);
    }

    /// Records an observation into a registered sketch; auto-registers a
    /// default-capacity one when the name is new. NaN is counted in the
    /// sketch's `nan_rejected`, matching the histogram policy.
    pub fn sketch_observe(&mut self, name: &str, x: f64) {
        self.sketches
            .entry(name.to_string())
            .or_default()
            .observe(x);
    }

    /// Reads a sketch.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.get(name)
    }

    /// True when nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.series.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
    }

    /// Folds another recorder into this one: counters add, gauges take
    /// the incoming (latest) value, series append, histograms merge when
    /// the edges match bit-for-bit and are replaced otherwise. Used to
    /// drain an ephemeral [`RecordingSink`](crate::RecordingSink) into a
    /// long-lived recorder.
    pub fn absorb(&mut self, other: Telemetry) {
        for (name, n) in other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, s) in other.series {
            let cap = self.series_cap;
            let dst = self
                .series
                .entry(name)
                .or_insert_with(|| Series::with_capacity(cap));
            dst.times_s.extend_from_slice(&s.times_s);
            dst.values.extend_from_slice(&s.values);
            dst.total += s.total;
            dst.enforce_cap();
        }
        for (name, h) in other.histograms {
            let merged = self
                .histograms
                .get_mut(&name)
                .is_some_and(|dst| dst.merge(&h));
            if !merged {
                self.histograms.insert(name, h);
            }
        }
        for (name, s) in other.sketches {
            let merged = self
                .sketches
                .get_mut(&name)
                .is_some_and(|dst| dst.merge(&s));
            if !merged {
                self.sketches.insert(name, s);
            }
        }
    }

    /// Freezes the recorder into a serializable snapshot (metrics in
    /// lexicographic name order).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| CounterEntry {
                    name: k.clone(),
                    value: *v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| GaugeEntry {
                    name: k.clone(),
                    value: *v,
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|(k, s)| SeriesEntry {
                    name: k.clone(),
                    times_s: s.times_s.clone(),
                    values: s.values.clone(),
                    total: s.total,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| HistogramEntry {
                    name: k.clone(),
                    edges: h.edges.clone(),
                    counts: h.counts.clone(),
                    underflow: h.underflow,
                    overflow: h.overflow,
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    nan_rejected: h.nan_rejected,
                })
                .collect(),
            sketches: self.sketches.iter().map(|(k, s)| s.entry(k)).collect(),
        }
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Latest value.
    pub value: f64,
}

/// Snapshot of one time-series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesEntry {
    /// Metric name.
    pub name: String,
    /// Sample times (s) — the retained window.
    pub times_s: Vec<f64>,
    /// Sample values — the retained window.
    pub values: Vec<f64>,
    /// Samples ever recorded (> `values.len()` once the series cap
    /// evicted history).
    pub total: u64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Bin edges.
    pub edges: Vec<f64>,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Observations below the first edge.
    pub underflow: u64,
    /// Observations at or above the last edge.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`null` when empty).
    pub min: Option<f64>,
    /// Largest observation (`null` when empty).
    pub max: Option<f64>,
    /// NaN observations rejected instead of binned.
    pub nan_rejected: u64,
}

/// A frozen, serializable view of a [`Telemetry`] recorder. Field order
/// and metric order are deterministic, so two identical runs produce
/// byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, by name.
    pub gauges: Vec<GaugeEntry>,
    /// All series, by name.
    pub series: Vec<SeriesEntry>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramEntry>,
    /// All quantile sketches, by name.
    pub sketches: Vec<SketchEntry>,
}

impl TelemetrySnapshot {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Writes the snapshot as JSON to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Telemetry::new();
        t.inc("events");
        t.add("events", 4);
        assert_eq!(t.counter("events"), 5);
        assert_eq!(t.counter("never"), 0);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut t = Telemetry::new();
        t.set_gauge("bps", 1.0);
        t.set_gauge("bps", 2.5);
        assert_eq!(t.gauge("bps"), Some(2.5));
    }

    #[test]
    fn series_append_in_order() {
        let mut t = Telemetry::new();
        t.record("thr", 1.0, 10.0);
        t.record("thr", 2.0, 20.0);
        let s = t.series("thr").unwrap();
        assert_eq!(s.times_s, vec![1.0, 2.0]);
        assert_eq!(s.values, vec![10.0, 20.0]);
    }

    #[test]
    fn histogram_binning_and_overflow() {
        let mut h = Histogram::linear(0.0, 10.0, 5).unwrap(); // bins of width 2
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 100.0] {
            h.observe(x);
        }
        assert_eq!(h.counts, vec![2, 1, 0, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.count, 7);
        assert_eq!(h.min, Some(-1.0));
        assert_eq!(h.max, Some(100.0));
    }

    #[test]
    fn histogram_edge_boundaries_are_half_open() {
        let mut h = Histogram::with_edges(vec![0.0, 1.0, 2.0]).unwrap();
        h.observe(1.0); // belongs to the second bin, not the first
        assert_eq!(h.counts, vec![0, 1]);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::linear(0.0, 1.0, 4).unwrap();
        assert_eq!(h.min, None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn nan_observation_is_counted_not_fatal() {
        let mut h = Histogram::linear(0.0, 1.0, 2).unwrap();
        h.observe(f64::NAN);
        h.observe(0.5);
        h.observe(f64::NAN);
        assert_eq!(h.nan_rejected, 2);
        assert_eq!(h.count, 1);
        assert_eq!(h.counts, vec![0, 1]);
        assert_eq!(h.min, Some(0.5));
        assert_eq!(h.mean(), Some(0.5));
    }

    #[test]
    fn infinities_land_in_overflow_counts() {
        let mut h = Histogram::linear(0.0, 1.0, 2).unwrap();
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn bad_bounds_are_typed_errors_not_panics() {
        assert_eq!(
            Histogram::linear(0.0, 1.0, 0).unwrap_err(),
            HistogramError::ZeroBins
        );
        assert!(matches!(
            Histogram::linear(1.0, 1.0, 4).unwrap_err(),
            HistogramError::InvalidRange { .. }
        ));
        assert!(matches!(
            Histogram::linear(0.0, f64::NAN, 4).unwrap_err(),
            HistogramError::InvalidRange { .. }
        ));
        assert_eq!(
            Histogram::with_edges(vec![1.0]).unwrap_err(),
            HistogramError::TooFewEdges { got: 1 }
        );
        assert_eq!(
            Histogram::with_edges(vec![0.0, 0.0]).unwrap_err(),
            HistogramError::EdgesNotIncreasing
        );
        assert_eq!(
            Histogram::with_edges(vec![0.0, f64::INFINITY]).unwrap_err(),
            HistogramError::EdgesNotIncreasing
        );
    }

    #[test]
    fn absorb_merges_all_metric_kinds() {
        let mut a = Telemetry::new();
        a.add("n", 2);
        a.set_gauge("g", 1.0);
        a.record("s", 0.0, 1.0);
        a.register_histogram("h", Histogram::linear(0.0, 4.0, 2).unwrap());
        a.observe("h", 1.0);

        let mut b = Telemetry::new();
        b.add("n", 3);
        b.set_gauge("g", 9.0);
        b.record("s", 1.0, 2.0);
        b.register_histogram("h", Histogram::linear(0.0, 4.0, 2).unwrap());
        b.observe("h", 3.0);
        b.observe("h", f64::NAN);

        a.absorb(b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.series("s").unwrap().times_s, vec![0.0, 1.0]);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.count, 2);
        assert_eq!(h.nan_rejected, 1);
    }

    #[test]
    fn absorb_replaces_histograms_with_different_edges() {
        let mut a = Telemetry::new();
        a.register_histogram("h", Histogram::linear(0.0, 4.0, 2).unwrap());
        a.observe("h", 1.0);
        let mut b = Telemetry::new();
        b.register_histogram("h", Histogram::linear(0.0, 8.0, 4).unwrap());
        b.observe("h", 5.0);
        a.absorb(b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.edges.len(), 5);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn snapshot_is_deterministic_json() {
        let mut t = Telemetry::new();
        // Insert in non-lexicographic order; snapshot must sort.
        t.inc("zeta");
        t.inc("alpha");
        t.set_gauge("g", 1.5);
        t.record("s", 0.5, 2.0);
        t.register_histogram("h", Histogram::linear(0.0, 4.0, 2).unwrap());
        t.observe("h", 1.0);
        let a = t.snapshot();
        let b = t.snapshot();
        assert_eq!(a, b);
        let json = a.to_json();
        assert!(json.find("\"alpha\"").unwrap() < json.find("\"zeta\"").unwrap());
        // Empty histogram min/max serialize as null, not NaN.
        t.register_histogram("empty", Histogram::linear(0.0, 1.0, 2).unwrap());
        assert!(t.snapshot().to_json().contains("null"));
    }

    #[test]
    fn series_cap_keeps_recent_window_and_counts_total() {
        let mut t = Telemetry::new();
        t.set_series_capacity(Some(4));
        for i in 0..100 {
            t.record("s", i as f64, 2.0 * i as f64);
        }
        let s = t.series("s").unwrap();
        assert_eq!(s.total(), 100);
        assert!(s.is_truncated());
        assert!(
            (4..8).contains(&s.len()),
            "len {} out of [cap, 2cap)",
            s.len()
        );
        // The retained window is the most recent samples, in order.
        let last = *s.times_s.last().unwrap();
        assert_eq!(last, 99.0);
        assert!(s.times_s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.values.last().unwrap(), 198.0);
    }

    #[test]
    fn series_opt_out_is_unbounded() {
        let mut t = Telemetry::new();
        t.set_series_capacity(None);
        for i in 0..(DEFAULT_SERIES_CAP * 2 / 64) {
            t.record("s", i as f64, 0.0);
        }
        let s = t.series("s").unwrap();
        assert_eq!(s.len() as u64, s.total());
        assert!(!s.is_truncated());
        assert_eq!(s.capacity(), None);
    }

    #[test]
    fn series_cap_applies_to_existing_series() {
        let mut t = Telemetry::new();
        for i in 0..100 {
            t.record("s", i as f64, 0.0);
        }
        t.set_series_capacity(Some(8));
        let s = t.series("s").unwrap();
        assert!(s.len() < 100);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn absorb_preserves_series_totals_under_cap() {
        let mut a = Telemetry::new();
        a.set_series_capacity(Some(4));
        for i in 0..50 {
            a.record("s", i as f64, 0.0);
        }
        let mut b = Telemetry::new();
        b.set_series_capacity(Some(4));
        for i in 50..100 {
            b.record("s", i as f64, 0.0);
        }
        a.absorb(b);
        let s = a.series("s").unwrap();
        assert_eq!(s.total(), 100);
        assert!(s.len() < 100);
    }

    #[test]
    fn sketches_record_merge_and_snapshot() {
        let mut a = Telemetry::new();
        for i in 0..100 {
            a.sketch_observe("lat", i as f64);
        }
        a.sketch_observe("lat", f64::NAN);
        let mut b = Telemetry::new();
        for i in 100..200 {
            b.sketch_observe("lat", i as f64);
        }
        a.absorb(b);
        let s = a.sketch("lat").unwrap();
        assert_eq!(s.count(), 200);
        assert_eq!(s.nan_rejected(), 1);
        let snap = a.snapshot();
        assert_eq!(snap.sketches.len(), 1);
        assert_eq!(snap.sketches[0].name, "lat");
        assert_eq!(snap.sketches[0].count, 200);
        assert!(snap.to_json().contains("\"p99\""));
    }

    #[test]
    fn snapshot_roundtrips_equability() {
        let mut t = Telemetry::new();
        t.observe("lat", 0.25);
        let s1 = t.snapshot();
        t.observe("lat", 0.75);
        let s2 = t.snapshot();
        assert_ne!(s1, s2);
    }
}
