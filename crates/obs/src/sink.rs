//! Metric sinks: where instrumented code reports to.
//!
//! Hot paths are generic over [`Sink`] so the disabled configuration
//! compiles down to nothing: [`NullSink`] is a unit type whose methods
//! are empty `#[inline]` bodies, and `acorn_bench::alloc_counter`
//! verifies the baseband steady state stays at 0 allocs/packet with it
//! attached. [`RecordingSink`] is the enabled configuration — a
//! `Mutex<Telemetry>` that is `Sync` (restart fan-outs share one sink
//! across `par_map` threads) and **never reads the wall clock** unless
//! explicitly built with [`RecordingSink::with_wall_time`], which only
//! bench binaries may do.
//!
//! # Determinism rules
//!
//! Instrumented code must keep the `ACORN_THREADS=1/2/8` bit-identity
//! contract. Two rules make that automatic:
//!
//! 1. From **parallel regions** (inside `par_map`/`par_map_n` closures)
//!    emit only counter increments ([`Sink::add`]/[`Sink::inc`] or
//!    [`Sink::span`] entry counts). `u64` addition commutes, so totals
//!    are invariant to thread interleaving.
//! 2. Gauges, histogram observations, and series samples carry ordered
//!    or last-write-wins state — emit them only from sequential
//!    contexts (controller level, event handlers).
//!
//! A default-constructed `RecordingSink` records span *entry counts*
//! instead of durations — monotonic sequence information, not time — so
//! a recorded run snapshots byte-identically at any thread count.

use crate::telemetry::{Telemetry, TelemetrySnapshot};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// A destination for metrics emitted by instrumented code.
///
/// All methods take `&self` so one sink can be shared across the
/// parallel fan-outs in `allocate_with_restarts`; implementations that
/// actually record therefore need interior mutability (see
/// [`RecordingSink`]).
pub trait Sink {
    /// True when this sink records anything. Lets call sites skip
    /// building metric inputs (formatting, counting) that only matter
    /// when observability is on.
    fn enabled(&self) -> bool;

    /// Adds `n` to the counter `name`.
    fn add(&self, name: &str, n: u64);

    /// Increments the counter `name` by 1.
    #[inline]
    fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `value` (last write wins — sequential
    /// contexts only, per the module-level determinism rules).
    fn gauge(&self, name: &str, value: f64);

    /// Records `x` into the histogram `name` (sequential contexts only).
    fn observe(&self, name: &str, x: f64);

    /// Records `x` into the bounded-memory quantile sketch `name`
    /// (sequential contexts only — sketch state is order-sensitive under
    /// compaction, like series samples). Default is a no-op so existing
    /// sinks stay source-compatible.
    #[inline]
    fn sketch_observe(&self, _name: &str, _x: f64) {}

    /// True when this sink wants wall-clock span durations. Defaults to
    /// `false`; deterministic sinks must never return `true` inside
    /// simulations.
    #[inline]
    fn wants_wall_time(&self) -> bool {
        false
    }

    /// Receives a wall-clock span duration (seconds). Only called when
    /// [`wants_wall_time`](Sink::wants_wall_time) is true.
    #[inline]
    fn span_wall_s(&self, _name: &str, _secs: f64) {}

    /// Opens a span: increments the counter `name` now, and — only if
    /// the sink opted into wall time — measures the elapsed duration
    /// until the guard drops and reports it via
    /// [`span_wall_s`](Sink::span_wall_s).
    #[inline]
    fn span<'a>(&'a self, name: &'a str) -> Span<'a>
    where
        Self: Sized,
    {
        Span::open(self, name)
    }
}

impl<S: Sink + ?Sized> Sink for &S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn add(&self, name: &str, n: u64) {
        (**self).add(name, n)
    }
    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn observe(&self, name: &str, x: f64) {
        (**self).observe(name, x)
    }
    #[inline]
    fn sketch_observe(&self, name: &str, x: f64) {
        (**self).sketch_observe(name, x)
    }
    #[inline]
    fn wants_wall_time(&self) -> bool {
        (**self).wants_wall_time()
    }
    #[inline]
    fn span_wall_s(&self, name: &str, secs: f64) {
        (**self).span_wall_s(name, secs)
    }
}

/// RAII guard returned by [`Sink::span`]. Entry is counted when the
/// span opens; wall-clock duration is reported on drop only for sinks
/// that asked for it.
pub struct Span<'a> {
    sink: &'a dyn Sink,
    name: &'a str,
    started: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Opens a span against `sink` (normally via [`Sink::span`]).
    #[inline]
    pub fn open(sink: &'a dyn Sink, name: &'a str) -> Span<'a> {
        if !sink.enabled() {
            return Span {
                sink,
                name,
                started: None,
            };
        }
        sink.inc(name);
        Span {
            sink,
            name,
            started: sink.wants_wall_time().then(Instant::now),
        }
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            self.sink.span_wall_s(self.name, t0.elapsed().as_secs_f64());
        }
    }
}

/// The disabled sink: every method is an empty inlineable body, so
/// instrumented hot paths compiled against it cost nothing and allocate
/// nothing (gated in CI via `acorn_bench::alloc_counter`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn add(&self, _name: &str, _n: u64) {}
    #[inline]
    fn gauge(&self, _name: &str, _value: f64) {}
    #[inline]
    fn observe(&self, _name: &str, _x: f64) {}
}

/// The enabled sink: records into an interior [`Telemetry`] behind a
/// `Mutex` so it is `Sync` and shareable across restart fan-outs.
///
/// Built with [`new`](RecordingSink::new) it is fully deterministic —
/// it never reads the wall clock, and spans record entry counts only.
/// [`with_wall_time`](RecordingSink::with_wall_time) additionally
/// accumulates real span durations into `<name>.wall_s` counters-like
/// histogram observations; that mode is **explicitly non-deterministic**
/// and reserved for bench binaries outside any bit-identity contract.
#[derive(Debug, Default)]
pub struct RecordingSink {
    inner: Mutex<Telemetry>,
    wall: bool,
}

impl RecordingSink {
    /// A deterministic recording sink (no wall-clock access, ever).
    pub fn new() -> RecordingSink {
        RecordingSink {
            inner: Mutex::new(Telemetry::new()),
            wall: false,
        }
    }

    /// A recording sink that also measures wall-clock span durations.
    /// Non-deterministic by construction — bench binaries only, never
    /// inside the determinism-swept simulations.
    pub fn with_wall_time() -> RecordingSink {
        RecordingSink {
            inner: Mutex::new(Telemetry::new()),
            wall: true,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Telemetry> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Freezes the recorded metrics into a byte-stable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.lock().snapshot()
    }

    /// Moves everything recorded so far into `dst` (leaving this sink
    /// empty), merging via [`Telemetry::absorb`]. This is how event
    /// handlers fold an ephemeral sink into the run-wide recorder.
    pub fn drain_into(&self, dst: &mut Telemetry) {
        let taken = std::mem::take(&mut *self.lock());
        dst.absorb(taken);
    }

    /// Runs `f` with a read lock on the recorded telemetry.
    pub fn with_telemetry<R>(&self, f: impl FnOnce(&Telemetry) -> R) -> R {
        f(&self.lock())
    }
}

impl Sink for RecordingSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
    fn add(&self, name: &str, n: u64) {
        self.lock().add(name, n);
    }
    fn gauge(&self, name: &str, value: f64) {
        self.lock().set_gauge(name, value);
    }
    fn observe(&self, name: &str, x: f64) {
        self.lock().observe(name, x);
    }
    fn sketch_observe(&self, name: &str, x: f64) {
        self.lock().sketch_observe(name, x);
    }
    fn wants_wall_time(&self) -> bool {
        self.wall
    }
    fn span_wall_s(&self, name: &str, secs: f64) {
        let mut t = self.lock();
        let key = format!("{name}.wall_s");
        t.observe(&key, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let s = NullSink;
        assert!(!s.enabled());
        s.inc("x");
        s.add("x", 5);
        s.gauge("g", 1.0);
        s.observe("h", 0.5);
        let _span = s.span("stage");
    }

    #[test]
    fn recording_sink_counts_and_snapshots() {
        let s = RecordingSink::new();
        assert!(s.enabled());
        s.inc("a");
        s.add("a", 2);
        s.gauge("g", 4.0);
        s.observe("h", 0.25);
        {
            let _span = s.span("stage");
        }
        let snap = s.snapshot();
        assert!(snap.counters.iter().any(|c| c.name == "a" && c.value == 3));
        assert!(snap
            .counters
            .iter()
            .any(|c| c.name == "stage" && c.value == 1));
        assert!(snap.gauges.iter().any(|g| g.name == "g" && g.value == 4.0));
        // Deterministic sink: spans count entries, never record wall time.
        assert!(!snap.histograms.iter().any(|h| h.name.ends_with(".wall_s")));
    }

    #[test]
    fn wall_time_mode_records_span_durations() {
        let s = RecordingSink::with_wall_time();
        {
            let _span = s.span("work");
        }
        let snap = s.snapshot();
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "work.wall_s" && h.count == 1));
    }

    #[test]
    fn drain_into_moves_and_merges() {
        let s = RecordingSink::new();
        s.add("n", 2);
        let mut t = Telemetry::new();
        t.add("n", 1);
        s.drain_into(&mut t);
        assert_eq!(t.counter("n"), 3);
        // Sink is now empty; a second drain adds nothing.
        s.drain_into(&mut t);
        assert_eq!(t.counter("n"), 3);
    }

    #[test]
    fn sink_works_through_references() {
        fn takes_sink<S: Sink>(s: S) {
            s.inc("via_ref");
        }
        let s = RecordingSink::new();
        takes_sink(&s);
        takes_sink(&&s);
        assert_eq!(s.with_telemetry(|t| t.counter("via_ref")), 2);
    }

    #[test]
    fn recording_sink_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<RecordingSink>();
    }
}
