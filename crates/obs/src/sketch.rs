//! Fixed-memory mergeable quantile sketches (KLL-style).
//!
//! Long soak runs observe hundreds of millions of per-client goodput
//! samples; materializing them (or even histogramming them with enough
//! resolution for p99) is either unbounded or lossy in the wrong way.
//! [`QuantileSketch`] keeps a cascade of weighted buffers — level `i`
//! holds items that each stand for `2^i` original observations — with a
//! uniform per-level capacity `k`, so memory is `O(k·log2(n/k))` items
//! regardless of the stream length, and every quantile query carries a
//! *deterministic worst-case* rank-error bound the sketch tracks as it
//! compacts ([`QuantileSketch::rank_error_bound`]).
//!
//! Three properties are load-bearing for the soak harness:
//!
//! * **Deterministic.** Compaction parity comes from a counter-keyed
//!   splitmix64 draw, not an RNG with hidden state: the same observation
//!   sequence produces the same sketch, bit for bit, at any
//!   `ACORN_THREADS`.
//! * **Mergeable, commutatively.** [`merge`](QuantileSketch::merge)
//!   canonicalizes (concatenate per level, sort by `total_cmp`, compact,
//!   re-sort every level), so `merge(a, b)` and `merge(b, a)` produce
//!   bit-identical state. Associativity holds within the tracked rank
//!   error (exact associativity is impossible for any compacting
//!   summary; the proptests in `tests/sketch_props.rs` pin both claims).
//! * **Never panics.** NaN observations are counted in
//!   [`nan_rejected`](QuantileSketch::nan_rejected) and otherwise
//!   ignored — the same policy [`Histogram`](crate::Histogram) adopted
//!   when the fault layer started injecting NaN measurements. Any other
//!   f64 bit pattern (±∞, subnormals, -0.0) is accepted and ordered by
//!   `total_cmp`.

use serde::Serialize;

/// Default per-level capacity: ~0.6 kB per level, worst-case rank error
/// around `levels/k` of the stream — ≲ 5 % at a billion observations,
/// far tighter in practice with pseudorandom compaction parity.
pub const DEFAULT_SKETCH_K: usize = 256;

/// Why a sketch could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchError {
    /// `k` must be an even number ≥ 8 (odd capacities cannot halve a
    /// full buffer weight-exactly; tiny ones cannot bound error).
    BadCapacity {
        /// The rejected capacity.
        k: usize,
    },
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::BadCapacity { k } => {
                write!(f, "sketch capacity must be an even number >= 8, got {k}")
            }
        }
    }
}

impl std::error::Error for SketchError {}

/// The splitmix64 finalizer (same constants as `acorn_events::mix_seed`;
/// duplicated here so `acorn-obs` stays dependency-free below the
/// events layer).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A mergeable streaming quantile sketch with bounded memory and a
/// deterministic worst-case rank-error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Per-level buffer capacity (even, ≥ 8).
    k: usize,
    /// `levels[i]` holds items of weight `2^i`. Level 0 is insertion
    /// order; higher levels are sorted ascending by `total_cmp` (and all
    /// levels are sorted after a merge).
    levels: Vec<Vec<f64>>,
    /// Non-NaN observations absorbed (equals the total item weight).
    count: u64,
    /// NaN observations rejected (counted, never stored).
    nan_rejected: u64,
    /// Smallest / largest non-NaN observation (exact, never compacted
    /// away).
    min: Option<f64>,
    /// Largest observation.
    max: Option<f64>,
    /// Compactions performed (keys the parity stream).
    compactions: u64,
    /// Accumulated worst-case rank error in *weight* units: each
    /// compaction at level `i` can shift any rank estimate by at most
    /// `2^i`.
    rank_err: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        // DEFAULT_SKETCH_K is even and >= 8, so this literal upholds the
        // same invariant `new` checks.
        QuantileSketch {
            k: DEFAULT_SKETCH_K,
            levels: vec![Vec::new()],
            count: 0,
            nan_rejected: 0,
            min: None,
            max: None,
            compactions: 0,
            rank_err: 0,
        }
    }
}

impl QuantileSketch {
    /// A sketch with per-level capacity `k` (even, ≥ 8).
    pub fn new(k: usize) -> Result<QuantileSketch, SketchError> {
        if k < 8 || k % 2 != 0 {
            return Err(SketchError::BadCapacity { k });
        }
        Ok(QuantileSketch {
            k,
            ..QuantileSketch::default()
        })
    }

    /// The per-level capacity.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Non-NaN observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN observations rejected.
    pub fn nan_rejected(&self) -> u64 {
        self.nan_rejected
    }

    /// Smallest observation (`None` when empty). Exact.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation (`None` when empty). Exact.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// True when nothing (non-NaN) has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Items currently retained across all levels — the memory bound the
    /// soak regression test asserts is `O(k·log2(n/k))`, not `O(n)`.
    pub fn retained(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Worst-case rank error of any [`rank`](QuantileSketch::rank) /
    /// [`quantile`](QuantileSketch::quantile) answer, as a fraction of
    /// the stream (`0.0` for an uncompacted sketch: answers are exact).
    /// Deterministic — accumulated from the compaction schedule actually
    /// executed, not a probabilistic bound.
    pub fn rank_error_bound(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.rank_err as f64 / self.count as f64
        }
    }

    /// Records one observation. NaN is counted and ignored; every other
    /// bit pattern is absorbed. Never panics.
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_rejected += 1;
            return;
        }
        self.count += 1;
        self.min = Some(match self.min {
            Some(m) if m.total_cmp(&x).is_le() => m,
            _ => x,
        });
        self.max = Some(match self.max {
            Some(m) if m.total_cmp(&x).is_ge() => m,
            _ => x,
        });
        if let Some(l0) = self.levels.first_mut() {
            l0.push(x);
        }
        if self.levels.first().is_some_and(|l| l.len() >= self.k) {
            self.compact_cascade(0);
        }
    }

    /// Compacts level `from` upward while any level is at capacity:
    /// sort, promote every other item (pseudorandom parity) at doubled
    /// weight, keep an odd leftover in place so total weight is
    /// preserved exactly.
    fn compact_cascade(&mut self, from: usize) {
        let mut i = from;
        while i < self.levels.len() && self.levels[i].len() >= self.k {
            self.levels[i].sort_by(f64::total_cmp);
            let len = self.levels[i].len();
            let even = len & !1;
            let parity = (splitmix(self.compactions) & 1) as usize;
            self.compactions += 1;
            // Rank-error accounting: promoting weight-2^i pairs can move
            // any rank estimate by at most one item weight.
            self.rank_err = self.rank_err.saturating_add(1u64 << i);
            let mut promoted = Vec::with_capacity(even / 2);
            let leftover = (even < len).then(|| self.levels[i][len - 1]);
            for j in (parity..even).step_by(2) {
                promoted.push(self.levels[i][j]);
            }
            self.levels[i].clear();
            if let Some(x) = leftover {
                self.levels[i].push(x);
            }
            if self.levels.len() == i + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[i + 1].extend_from_slice(&promoted);
            // Keep higher levels sorted so compaction order never
            // depends on arrival order more than it must.
            self.levels[i + 1].sort_by(f64::total_cmp);
            i += 1;
        }
    }

    /// Estimated number of observations `<= x` (weighted rank). Within
    /// `rank_err` of the true rank, deterministically.
    pub fn rank(&self, x: f64) -> u64 {
        if x.is_nan() {
            return 0;
        }
        let mut r = 0u64;
        for (i, level) in self.levels.iter().enumerate() {
            let w = 1u64 << i;
            for v in level {
                if v.total_cmp(&x).is_le() {
                    r += w;
                }
            }
        }
        r
    }

    /// Estimated CDF at `x` (`rank(x) / count`); `0.0` when empty.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.rank(x) as f64 / self.count as f64
        }
    }

    /// The estimated `q`-quantile (`q ∈ [0, 1]`, nearest-rank over the
    /// weighted items, matching `acorn_traces::Ecdf::quantile`). `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (i, level) in self.levels.iter().enumerate() {
            let w = 1u64 << i;
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let target = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (v, w) in &items {
            cum += w;
            if cum >= target {
                return Some(*v);
            }
        }
        items.last().map(|(v, _)| *v)
    }

    /// Folds `other` into `self`, canonically: per-level concatenation,
    /// then compaction, then a per-level sort — so the merged state is a
    /// symmetric function of the two inputs and `merge` commutes bit for
    /// bit. Returns `false` (leaving `self` untouched) when the
    /// capacities differ, mirroring
    /// [`Histogram::merge`](crate::Histogram::merge)'s edge check.
    pub fn merge(&mut self, other: &QuantileSketch) -> bool {
        if self.k != other.k {
            return false;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (i, level) in other.levels.iter().enumerate() {
            self.levels[i].extend_from_slice(level);
        }
        self.count += other.count;
        self.nan_rejected += other.nan_rejected;
        self.rank_err = self.rank_err.saturating_add(other.rank_err);
        self.compactions += other.compactions;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(if a.total_cmp(&b).is_le() { a } else { b }),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(if a.total_cmp(&b).is_ge() { a } else { b }),
            (a, b) => a.or(b),
        };
        // Canonical form: sort every level (erasing concatenation
        // order), then compact any over-full level.
        for level in &mut self.levels {
            level.sort_by(f64::total_cmp);
        }
        self.compact_cascade(0);
        true
    }

    /// FNV-1a fingerprint of the full sketch state (levels, counts,
    /// extremes) — the compact bit-identity witness the thread-sweep
    /// gates compare through snapshots.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.k as u64);
        eat(self.count);
        eat(self.nan_rejected);
        eat(self.rank_err);
        eat(self.min.map_or(u64::MAX, f64::to_bits));
        eat(self.max.map_or(u64::MAX, f64::to_bits));
        for level in &self.levels {
            eat(level.len() as u64);
            for v in level {
                eat(v.to_bits());
            }
        }
        h
    }

    /// Freezes the sketch into its snapshot row.
    pub fn entry(&self, name: &str) -> SketchEntry {
        SketchEntry {
            name: name.to_string(),
            k: self.k as u64,
            count: self.count,
            nan_rejected: self.nan_rejected,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            rank_error_bound: self.rank_error_bound(),
            retained: self.retained() as u64,
            fingerprint: self.fingerprint(),
        }
    }
}

/// Snapshot of one quantile sketch: the summary quantiles plus an exact
/// state fingerprint, so snapshot equality implies bit-identical sketch
/// state without serializing every retained item.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SketchEntry {
    /// Metric name.
    pub name: String,
    /// Per-level capacity.
    pub k: u64,
    /// Observations absorbed.
    pub count: u64,
    /// NaN observations rejected.
    pub nan_rejected: u64,
    /// Smallest observation (exact; `null` when empty).
    pub min: Option<f64>,
    /// Largest observation (exact; `null` when empty).
    pub max: Option<f64>,
    /// Estimated median.
    pub p50: Option<f64>,
    /// Estimated 90th percentile.
    pub p90: Option<f64>,
    /// Estimated 95th percentile.
    pub p95: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
    /// Deterministic worst-case rank error (fraction of the stream).
    pub rank_error_bound: f64,
    /// Items currently retained (the memory actually held).
    pub retained: u64,
    /// FNV-1a fingerprint of the full internal state.
    pub fingerprint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, k: usize) -> QuantileSketch {
        let mut s = QuantileSketch::new(k).expect("valid k");
        for i in 0..n {
            s.observe(i as f64);
        }
        s
    }

    #[test]
    fn bad_capacities_are_typed_errors() {
        assert_eq!(
            QuantileSketch::new(7).unwrap_err(),
            SketchError::BadCapacity { k: 7 }
        );
        assert_eq!(
            QuantileSketch::new(9).unwrap_err(),
            SketchError::BadCapacity { k: 9 }
        );
        assert!(QuantileSketch::new(8).is_ok());
        assert!(SketchError::BadCapacity { k: 7 }.to_string().contains("7"));
    }

    #[test]
    fn small_streams_are_exact() {
        let s = filled(100, 256);
        assert_eq!(s.count(), 100);
        assert_eq!(s.rank_error_bound(), 0.0);
        assert_eq!(s.quantile(0.5), Some(49.0));
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(99.0));
        assert_eq!(s.rank(49.0), 50);
    }

    #[test]
    fn memory_is_bounded_and_error_tracked() {
        let k = 64;
        let s = filled(1_000_000, k);
        assert_eq!(s.count(), 1_000_000);
        // log2(1e6/64) ~ 14 levels, each < k items.
        assert!(
            s.retained() <= k * 40,
            "retained {} items for 1M stream",
            s.retained()
        );
        let bound = s.rank_error_bound();
        assert!(bound > 0.0 && bound < 0.5, "bound {bound}");
        // The bound must actually hold for the uniform stream.
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = s.quantile(q).expect("non-empty");
            let true_rank = est + 1.0; // value i has exact rank i+1
            let est_rank = 1_000_000.0 * q;
            assert!(
                (true_rank - est_rank).abs() <= bound * 1_000_000.0 + 1.0,
                "q={q}: est {est}, bound {bound}"
            );
        }
    }

    #[test]
    fn nan_is_counted_never_stored() {
        let mut s = QuantileSketch::default();
        s.observe(f64::NAN);
        s.observe(1.0);
        s.observe(f64::NAN);
        assert_eq!(s.nan_rejected(), 2);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn infinities_and_negative_zero_are_ordered() {
        let mut s = QuantileSketch::default();
        for x in [f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0] {
            s.observe(x);
        }
        assert_eq!(s.min(), Some(f64::NEG_INFINITY));
        assert_eq!(s.max(), Some(f64::INFINITY));
        // total_cmp orders -0.0 < 0.0.
        assert_eq!(s.quantile(0.5).map(f64::to_bits), Some((-0.0f64).to_bits()));
    }

    #[test]
    fn merge_commutes_bit_for_bit() {
        let a = filled(10_000, 32);
        let mut b = QuantileSketch::new(32).expect("valid k");
        for i in 0..5_000 {
            b.observe((i * 7 % 1000) as f64);
        }
        let mut ab = a.clone();
        assert!(ab.merge(&b));
        let mut ba = b.clone();
        assert!(ba.merge(&a));
        assert_eq!(ab, ba);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        assert_eq!(ab.count(), 15_000);
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = filled(10, 32);
        let b = filled(10, 64);
        let before = a.clone();
        assert!(!a.merge(&b));
        assert_eq!(a, before);
    }

    #[test]
    fn determinism_same_stream_same_fingerprint() {
        let a = filled(100_000, 64);
        let b = filled(100_000, 64);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_sketch_answers_are_none() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.cdf(1.0), 0.0);
        assert_eq!(s.entry("e").p99, None);
    }

    #[test]
    fn entry_is_a_faithful_summary() {
        let s = filled(1000, 256);
        let e = s.entry("goodput");
        assert_eq!(e.name, "goodput");
        assert_eq!(e.count, 1000);
        assert_eq!(e.fingerprint, s.fingerprint());
        assert_eq!(e.retained as usize, s.retained());
    }
}
