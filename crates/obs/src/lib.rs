//! # acorn-obs — first-class observability for the ACORN workspace
//!
//! Every layer of the reproduction — `choose_ap` candidate ranking,
//! Algorithm 2's greedy rounds and restart fan-out, the throughput
//! model's cache, the controller's epochs, the fault layer's CSA/IAPP
//! machinery, and the baseband packet pipeline — reports into one small
//! [`Sink`] trait instead of ad-hoc printlns or nothing at all. Three
//! properties are load-bearing:
//!
//! 1. **Zero cost when off.** [`NullSink`] is a unit type whose methods
//!    are empty `#[inline]` bodies; instrumented hot paths compiled
//!    against it keep their zero-allocation steady state (checked with
//!    `acorn_bench::alloc_counter`, gated in `scripts/ci.sh`).
//! 2. **Deterministic when on.** [`RecordingSink`] never reads the wall
//!    clock: span "timing" is an entry *count* by default (monotonic
//!    sequence numbers), and only commutative `u64` counter increments
//!    may be emitted from parallel regions — so instrumented runs stay
//!    bit-identical at `ACORN_THREADS=1/2/8`. Wall-clock span durations
//!    exist behind an explicit opt-in
//!    ([`RecordingSink::with_wall_time`]) for bench binaries only.
//! 3. **One namespace.** The metric names in [`names`] are shared by
//!    events, sim, and bench consumers; [`Telemetry`] (moved here from
//!    `acorn-events`, which now re-exports it) is the single recorder
//!    type behind every byte-stable JSON snapshot under `results/`.
//!
//! See DESIGN.md §12 for the sink model and the determinism rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
pub mod sink;
pub mod sketch;
pub mod telemetry;

pub use sink::{NullSink, RecordingSink, Sink, Span};
pub use sketch::{QuantileSketch, SketchEntry, SketchError, DEFAULT_SKETCH_K};
pub use telemetry::{
    CounterEntry, GaugeEntry, Histogram, HistogramEntry, HistogramError, Series, SeriesEntry,
    Telemetry, TelemetrySnapshot, DEFAULT_SERIES_CAP,
};
