//! Property tests pinning the three load-bearing [`QuantileSketch`]
//! claims the soak harness stands on:
//!
//! * **merge commutes bit for bit** (and is associative within the
//!   tracked rank error — exact associativity is impossible for any
//!   compacting summary),
//! * **rank answers respect the deterministic error bound** against an
//!   exact ECDF of the same stream, including adversarial sorted /
//!   reversed / constant orderings,
//! * **no f64 bit pattern panics**: NaN is counted and rejected,
//!   everything else (±∞, subnormals, -0.0) is absorbed and ordered by
//!   `total_cmp`.

use acorn_obs::QuantileSketch;
use proptest::collection::vec;
use proptest::prelude::*;

fn sketch_of(k: usize, xs: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(k).expect("test capacities are valid");
    for &x in xs {
        s.observe(x);
    }
    s
}

/// Exact weighted rank: observations `<= x` under `total_cmp`.
fn exact_rank(data: &[f64], x: f64) -> u64 {
    data.iter().filter(|v| v.total_cmp(&x).is_le()).count() as u64
}

fn any_k() -> impl Strategy<Value = usize> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64)]
}

/// Capacities large enough that the tracked error bound stays
/// informative (< 1) on the stream lengths below.
fn roomy_k() -> impl Strategy<Value = usize> {
    prop_oneof![Just(32usize), Just(64), Just(128)]
}

proptest! {
    #[test]
    fn any_bit_pattern_is_absorbed_without_panicking(
        bits in vec(any::<u64>(), 0..300),
        k in any_k(),
        q in 0.0f64..1.0,
    ) {
        let xs: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let s = sketch_of(k, &xs);
        let nans = xs.iter().filter(|x| x.is_nan()).count() as u64;
        prop_assert_eq!(s.nan_rejected(), nans, "every NaN counted");
        prop_assert_eq!(s.count() + s.nan_rejected(), xs.len() as u64);
        // Extremes are exact and NaN-free, ordered by total_cmp.
        let finite = || xs.iter().copied().filter(|x| !x.is_nan());
        prop_assert_eq!(
            s.min().map(f64::to_bits),
            finite().min_by(|a, b| a.total_cmp(b)).map(f64::to_bits)
        );
        prop_assert_eq!(
            s.max().map(f64::to_bits),
            finite().max_by(|a, b| a.total_cmp(b)).map(f64::to_bits)
        );
        // Queries never panic, whatever was absorbed.
        prop_assert_eq!(s.quantile(q).is_some(), s.count() > 0);
        prop_assert_eq!(s.rank(f64::NAN), 0, "NaN queries are inert");
        let _ = s.cdf(0.0);
        let _ = s.entry("prop");
    }

    #[test]
    fn merge_commutes_bit_for_bit(
        a in vec(-1e9f64..1e9, 0..400),
        b in vec(-1e9f64..1e9, 0..400),
        k in any_k(),
    ) {
        let (sa, sb) = (sketch_of(k, &a), sketch_of(k, &b));
        let mut ab = sa.clone();
        prop_assert!(ab.merge(&sb));
        let mut ba = sb.clone();
        prop_assert!(ba.merge(&sa));
        prop_assert_eq!(&ab, &ba, "merge must be a symmetric function");
        prop_assert_eq!(ab.fingerprint(), ba.fingerprint());
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn merge_is_associative_within_the_tracked_rank_error(
        a in vec(-1e6f64..1e6, 1..250),
        b in vec(-1e6f64..1e6, 1..250),
        c in vec(-1e6f64..1e6, 1..250),
        k in roomy_k(),
    ) {
        let (sa, sb, sc) = (sketch_of(k, &a), sketch_of(k, &b), sketch_of(k, &c));
        let mut left = sa.clone();
        prop_assert!(left.merge(&sb));
        prop_assert!(left.merge(&sc));
        let mut bc = sb.clone();
        prop_assert!(bc.merge(&sc));
        let mut right = sa;
        prop_assert!(right.merge(&bc));
        // The exact parts agree exactly...
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min().map(f64::to_bits), right.min().map(f64::to_bits));
        prop_assert_eq!(left.max().map(f64::to_bits), right.max().map(f64::to_bits));
        // ...and both groupings answer every rank query within their own
        // tracked bound of the ground truth, so grouping order never
        // changes what the sketch is *for*.
        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let n = all.len() as f64;
        let probes = [a[0], b[0], c[0], 0.0, -1e6, 1e6];
        for s in [&left, &right] {
            let slack = (s.rank_error_bound() * n).ceil() as i64 + 1;
            for &x in &probes {
                let truth = exact_rank(&all, x) as i64;
                let got = s.rank(x) as i64;
                prop_assert!(
                    (got - truth).abs() <= slack,
                    "rank({x}) = {got}, exact {truth}, slack {slack}"
                );
            }
        }
    }

    #[test]
    fn rank_answers_respect_the_deterministic_error_bound(
        raw in vec(-1e9f64..1e9, 1..600),
        mode in 0u8..4,
        k in roomy_k(),
    ) {
        let mut xs = raw;
        match mode {
            1 => xs.sort_by(f64::total_cmp),
            2 => {
                xs.sort_by(f64::total_cmp);
                xs.reverse();
            }
            3 => {
                let v = xs[0];
                xs.iter_mut().for_each(|x| *x = v);
            }
            _ => {}
        }
        let s = sketch_of(k, &xs);
        let bound = s.rank_error_bound();
        prop_assert!(bound < 1.0, "bound stays informative: {bound}");
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let slack = (bound * xs.len() as f64).ceil() as i64;
        for i in [0, sorted.len() / 4, sorted.len() / 2, sorted.len() - 1] {
            let x = sorted[i];
            let truth = exact_rank(&sorted, x) as i64;
            let got = s.rank(x) as i64;
            prop_assert!(
                (got - truth).abs() <= slack,
                "mode {mode}, k {k}: rank({x}) = {got}, exact {truth}, slack {slack}"
            );
        }
        // Quantiles always land inside the exact extremes.
        let (lo, hi) = (s.min().expect("non-empty"), s.max().expect("non-empty"));
        for q in [0.0, 0.5, 0.95, 1.0] {
            let v = s.quantile(q).expect("non-empty");
            prop_assert!(lo.total_cmp(&v).is_le() && v.total_cmp(&hi).is_le());
        }
    }
}
