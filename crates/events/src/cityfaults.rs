//! Continuous fault injection for [`CityScenario`](crate::CityScenario)
//! — the incremental counterpart of [`FaultProcess`](crate::FaultProcess).
//!
//! City mode exists because network-wide recomputation is too expensive
//! per event, and the fault layer keeps that discipline: every reaction
//! is localized. An AP crash touches only its own cell's clients (who
//! detect beacon silence and re-scan through the spatial index), a
//! measurement fault touches one cached SNR entry behind an outlier/NaN
//! gate, and a beacon copy goes through the real `wire` encode →
//! (corrupt) → parse path — so chaos at 1 000 APs costs O(faults), not
//! O(network).
//!
//! The process reports under the same `faults.*` telemetry namespace as
//! the composite fault layer, so [`ResilienceReport`] aggregates both
//! scenario classes identically. Differences from the composite layer
//! (documented, not accidental):
//!
//! * No per-client [`ClientTracker`](acorn_core::ClientTracker) — the
//!   city world's measurement state *is* the `client_snr20` cache, so
//!   the NaN/outlier gates live here and write through
//!   [`CityWorld::set_client_snr20`].
//! * No IAPP/CSA machinery — city re-allocation deploys instantly
//!   through the sharded allocator; beacons are the only wire path.
//! * A client whose re-scan finds no live AP stays unassociated until
//!   its session departs (counted in `faults.rescan_failures`); retrying
//!   would risk resurrecting departed clients.
//!
//! Determinism: every draw derives from [`mix_seed`](crate::sim::mix_seed)
//! keyed on the firing event's sequence number plus a stream salt (the
//! same derivation as the composite layer), and all handlers are
//! sequential — bit-identical at any `ACORN_THREADS`.

use crate::acorn::AcornEvent;
use crate::city::CityWorld;
use crate::faults::{FaultPlan, FaultRng, FAULT_GAUNTLET};
use crate::sim::{Ctx, Process};
use crate::telemetry::Histogram;
use acorn_core::{parse_beacon, serialize_beacon, Beacon};
use acorn_obs::RecordingSink;
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ClientId};
use std::collections::HashMap;

/// Stream salts (matching the composite fault layer's discipline; crash
/// and measurement streams share the composite's constants so plans
/// transplant between scenario classes without re-tuning).
const SALT_CRASH: u64 = 0x01;
const SALT_MEAS: u64 = 0x02;
const SALT_BEACON: u64 = 0x03;

/// A beacon copy in flight (delayed by the fault layer).
struct DelayedBeacon {
    frame: Vec<u8>,
    ap: usize,
    client: usize,
}

/// The city fault process. Register it *last* on a scenario so the
/// benign event schedule (and therefore every pre-existing golden
/// fingerprint) is untouched when it is absent.
pub struct CityFaultProcess {
    /// The plan.
    pub plan: FaultPlan,
    /// Horizon (s); rounds at or past it never fire.
    pub horizon_s: f64,
    round: u64,
    last_heard_round: Vec<u64>,
    /// The AP each client's liveness clock is bound to; rebinding (any
    /// association change) resets the clock.
    heard_ap: Vec<Option<u32>>,
    pending: HashMap<u32, DelayedBeacon>,
    next_msg_id: u32,
    crash_count: usize,
    down_since: Vec<Option<f64>>,
}

impl CityFaultProcess {
    /// Creates the process for `plan` over a given horizon.
    pub fn new(plan: FaultPlan, horizon_s: f64) -> CityFaultProcess {
        CityFaultProcess {
            plan,
            horizon_s,
            round: 0,
            last_heard_round: Vec::new(),
            heard_ap: Vec::new(),
            pending: HashMap::new(),
            next_msg_id: 0,
            crash_count: 0,
            down_since: Vec::new(),
        }
    }

    fn bssid(ap: usize) -> [u8; 6] {
        let b = ap as u64;
        [
            0x02,
            (b >> 32) as u8,
            (b >> 24) as u8,
            (b >> 16) as u8,
            (b >> 8) as u8,
            b as u8,
        ]
    }

    fn schedule_next_crash(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>, from_s: f64) {
        let Some(mttf) = self.plan.ap_mttf_s else {
            return;
        };
        if self.crash_count >= self.plan.max_crashes {
            return;
        }
        let n_aps = ctx.world.wlan.aps.len();
        if n_aps == 0 {
            return;
        }
        let mut rng = FaultRng::new(self.plan.seed, ctx.event_seq(), SALT_CRASH);
        let t = from_s - mttf * rng.u01_open().ln();
        let ap = (rng.next_u64() % n_aps as u64) as usize;
        if t < self.horizon_s {
            ctx.schedule_at(t, AcornEvent::ApCrash(ap));
        }
    }

    fn handle_crash(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>, ap: usize) {
        if !ctx.world.ap_up[ap] {
            return; // already down
        }
        self.crash_count += 1;
        ctx.world.ap_up[ap] = false;
        self.down_since[ap] = Some(ctx.now());
        ctx.telemetry.inc("faults.crashes");
        ctx.telemetry
            .set_gauge("faults.aps_down", ctx.world.down_count() as f64);
        let restart_at = ctx.now() + self.plan.ap_mttr_s;
        if restart_at < self.horizon_s {
            ctx.schedule_at(restart_at, AcornEvent::ApRestart(ap));
        }
    }

    fn handle_restart(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>, ap: usize) {
        if ctx.world.ap_up[ap] {
            return;
        }
        ctx.world.ap_up[ap] = true;
        if let Some(t0) = self.down_since[ap].take() {
            ctx.telemetry.observe("faults.downtime_s", ctx.now() - t0);
        }
        ctx.telemetry.inc("faults.restarts");
        ctx.telemetry
            .set_gauge("faults.aps_down", ctx.world.down_count() as f64);
        self.schedule_next_crash(ctx, ctx.now());
    }

    /// Delivers one beacon copy: only a frame the real parser decodes
    /// counts as "heard".
    fn deliver_beacon(
        &mut self,
        tel: &mut crate::telemetry::Telemetry,
        frame: &[u8],
        client: usize,
    ) {
        match parse_beacon(frame) {
            Ok(_) => self.last_heard_round[client] = self.round,
            Err(_) => tel.inc("faults.parse_errors"),
        }
    }

    /// Deassociates `client` from its (presumed-dead) AP and re-scans
    /// through the spatial index; dead APs are filtered inside
    /// [`CityWorld::associate_obs`].
    fn rescan(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>, client: usize) {
        let w = &mut *ctx.world;
        w.deassociate(client);
        let sink = RecordingSink::new();
        let found = w.associate_obs(client, &sink).is_some();
        sink.drain_into(ctx.telemetry);
        self.heard_ap[client] = ctx.world.state.assoc[client].map(|a| a.0 as u32);
        self.last_heard_round[client] = self.round;
        ctx.telemetry.inc("faults.rescans");
        if !found {
            ctx.telemetry.inc("faults.rescan_failures");
        }
    }

    /// One control round: measurements → beacons → detection →
    /// throughput sample.
    fn control_round(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        self.round += 1;
        let now = ctx.now();
        let seq = ctx.event_seq();
        let n_aps = ctx.world.wlan.aps.len();
        let n_clients = ctx.world.wlan.clients.len();

        // --- 0. Rebind liveness clocks on association changes (the churn
        // layer moves clients without telling us).
        for c in 0..n_clients {
            let assoc = ctx.world.state.assoc[c].map(|a| a.0 as u32);
            if assoc != self.heard_ap[c] {
                self.heard_ap[c] = assoc;
                self.last_heard_round[c] = self.round;
            }
        }

        // --- 1. Measurements: each live AP re-measures its own clients;
        // the NaN/outlier gates decide what reaches the cached SNRs the
        // beacon delays and the width adaptation read.
        let mut meas_rng = FaultRng::new(self.plan.seed, seq, SALT_MEAS);
        for ap in 0..n_aps {
            if !ctx.world.ap_up[ap] {
                continue; // a dead AP measures nothing
            }
            for i in 0..ctx.world.cell_clients(ap).len() {
                let c = ctx.world.cell_clients(ap)[i] as usize;
                if self.plan.meas_freeze > 0.0 && meas_rng.u01() < self.plan.meas_freeze {
                    continue; // stuck sensor: the cache keeps its last value
                }
                let true_snr = ctx
                    .world
                    .wlan
                    .snr_db(ApId(ap), ClientId(c), ChannelWidth::Ht20);
                let reported = if self.plan.meas_nan > 0.0 && meas_rng.u01() < self.plan.meas_nan {
                    f64::NAN
                } else if self.plan.meas_outlier > 0.0 && meas_rng.u01() < self.plan.meas_outlier {
                    let sign = if meas_rng.next_u64() & 1 == 0 {
                        1.0
                    } else {
                        -1.0
                    };
                    true_snr + sign * self.plan.outlier_db
                } else {
                    true_snr
                };
                if !reported.is_finite() {
                    ctx.telemetry.inc("faults.measurement_faults");
                    continue;
                }
                // Outlier gate: a jump of more than half the injected
                // spike magnitude against the cached value is rejected
                // (shadowing drift moves links by a few dB per step; a
                // 25 dB spike is physically implausible between rounds).
                let cached = ctx.world.client_snr20_cached(c);
                if cached.is_finite() && (reported - cached).abs() > 0.5 * self.plan.outlier_db {
                    ctx.telemetry.inc("faults.outliers_rejected");
                    continue;
                }
                ctx.world.set_client_snr20(c, reported);
            }
        }

        // --- 2. Beacons: each live AP serializes ONE frame; every client
        // in its cell gets an independent copy through the gauntlet.
        let mut beacon_rng = FaultRng::new(self.plan.seed, seq, SALT_BEACON);
        for ap in 0..n_aps {
            if !ctx.world.ap_up[ap] {
                continue;
            }
            if ctx.world.cell_clients(ap).is_empty() {
                continue;
            }
            let w = &*ctx.world;
            let width = w.state.operating_width[ap];
            let clients: Vec<usize> = w.cell_clients(ap).iter().map(|&c| c as usize).collect();
            let delays: Vec<f64> = clients
                .iter()
                .map(|&c| w.ctl.delay_from_snr(w.client_snr20_cached(c), width))
                .collect();
            let beacon = Beacon {
                ap: ApId(ap),
                assignment: w.state.effective_assignment(ApId(ap)),
                n_clients: clients.len(),
                atd_s: delays.iter().sum(),
                client_delays_s: delays,
                access_share: w.access_share_up(ap),
            };
            let Ok(frame) = serialize_beacon(&beacon, Self::bssid(ap), self.round) else {
                continue; // cell too large for one IE: skip this round
            };
            for c in clients {
                match self
                    .plan
                    .roll_copy(ctx.telemetry, &mut beacon_rng, &frame, &FAULT_GAUNTLET)
                {
                    None => {}
                    Some((f, Some(dt))) => {
                        let id = self.next_msg_id;
                        self.next_msg_id = self.next_msg_id.wrapping_add(1);
                        self.pending.insert(
                            id,
                            DelayedBeacon {
                                frame: f,
                                ap,
                                client: c,
                            },
                        );
                        ctx.schedule_after(dt, AcornEvent::DeliverMsg(id));
                    }
                    Some((f, None)) => self.deliver_beacon(ctx.telemetry, &f, c),
                }
            }
        }

        // --- 3. Detection: miss_limit rounds of beacon silence and the
        // client declares its AP dead and re-scans.
        for c in 0..n_clients {
            if ctx.world.state.assoc[c].is_none() {
                continue;
            }
            let silent_rounds = self.round.saturating_sub(self.last_heard_round[c]);
            if silent_rounds > self.plan.miss_limit {
                ctx.telemetry.observe(
                    "faults.detection_delay_s",
                    silent_rounds as f64 * self.plan.control_period_s,
                );
                self.rescan(ctx, c);
            }
        }

        // --- 4. Per-round live-network throughput.
        let bps = ctx.world.network_bps_up();
        ctx.telemetry.record("resilience.network_bps", now, bps);

        let next = now + self.plan.control_period_s;
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::ControlRound);
        }
    }
}

impl Process<CityWorld, AcornEvent> for CityFaultProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        let n_aps = ctx.world.wlan.aps.len();
        let n_clients = ctx.world.wlan.clients.len();
        self.last_heard_round = vec![0; n_clients];
        self.heard_ap = vec![None; n_clients];
        self.down_since = vec![None; n_aps];
        ctx.telemetry.register_histogram(
            "faults.detection_delay_s",
            Histogram::linear(0.0, 600.0, 60).expect("static histogram bounds"),
        );
        ctx.telemetry.register_histogram(
            "faults.downtime_s",
            Histogram::linear(0.0, 1200.0, 60).expect("static histogram bounds"),
        );
        if self.plan.control_period_s < self.horizon_s {
            ctx.schedule_at(self.plan.control_period_s, AcornEvent::ControlRound);
        }
        self.schedule_next_crash(ctx, 0.0);
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        match *event {
            AcornEvent::ControlRound => self.control_round(ctx),
            AcornEvent::ApCrash(ap) => self.handle_crash(ctx, ap),
            AcornEvent::ApRestart(ap) => self.handle_restart(ctx, ap),
            AcornEvent::DeliverMsg(id) => {
                if let Some(d) = self.pending.remove(&id) {
                    // Late beacons still prove liveness — if the client
                    // is still bound to the sender.
                    if ctx.world.state.assoc[d.client] == Some(ApId(d.ap)) {
                        self.deliver_beacon(ctx.telemetry, &d.frame, d.client);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityScenario;
    use crate::DriftSpec;
    use acorn_core::{AcornConfig, AcornController};
    use acorn_topology::{Point, Wlan};
    use acorn_traces::Session;

    fn wlan() -> Wlan {
        let mut w = Wlan::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(400.0, 0.0),
                Point::new(450.0, 0.0),
            ],
            vec![
                Point::new(10.0, 5.0),
                Point::new(40.0, -5.0),
                Point::new(410.0, 5.0),
                Point::new(440.0, -5.0),
                Point::new(25.0, 10.0),
                Point::new(425.0, 10.0),
            ],
            17,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    fn scenario(faults: Option<FaultPlan>) -> CityScenario {
        CityScenario {
            wlan: wlan(),
            sessions: (0..6)
                .map(|c| Session {
                    client: c,
                    start_s: 5.0 + 10.0 * c as f64,
                    duration_s: 2000.0,
                })
                .collect(),
            horizon_s: 1800.0,
            reallocation_period_s: 300.0,
            restarts: 1,
            candidate_radius_m: 120.0,
            adapt_widths: true,
            drift: Some(DriftSpec {
                period_s: 250.0,
                phase_step_rad: 0.05,
            }),
            faults,
            seed: 11,
            record_log: false,
        }
    }

    #[test]
    fn city_crash_is_detected_and_clients_rescan() {
        let ctl = AcornController::new(AcornConfig::default());
        let plan = FaultPlan {
            seed: 5,
            ap_mttf_s: Some(100.0),
            ap_mttr_s: 400.0,
            max_crashes: 1,
            ..FaultPlan::default()
        };
        let r = scenario(Some(plan)).run(&ctl);
        let res = r.resilience.expect("faults were set");
        assert_eq!(res.crashes, 1);
        assert!(res.rescans > 0, "silence detection never fired");
        // Every client that survived the crash sits on a live AP at the
        // end (sessions outlive the horizon, so all 6 stay active).
        assert!(res.frames_sent > 0);
    }

    #[test]
    fn city_faults_are_deterministic() {
        let ctl = AcornController::new(AcornConfig::default());
        let plan = FaultPlan {
            seed: 5,
            ap_mttf_s: Some(300.0),
            loss: 0.1,
            corruption: 0.05,
            delay_prob: 0.1,
            delay_max_s: 15.0,
            meas_nan: 0.02,
            meas_outlier: 0.05,
            meas_freeze: 0.02,
            ..FaultPlan::default()
        };
        let a = scenario(Some(plan)).run(&ctl);
        let b = scenario(Some(plan)).run(&ctl);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn benign_city_plan_changes_nothing_structural() {
        let ctl = AcornController::new(AcornConfig::default());
        let plan = FaultPlan {
            seed: 5,
            ..FaultPlan::default()
        };
        let r = scenario(Some(plan)).run(&ctl);
        let res = r.resilience.expect("faults were set");
        assert_eq!(res.crashes, 0);
        assert_eq!(res.frames_lost, 0);
        assert_eq!(res.parse_errors, 0);
        assert_eq!(res.safe_mode_epochs, 0);
        assert!(res.frames_sent > 0, "benign plans still run the wire path");
    }

    #[test]
    fn city_resilience_twin_fills_retention() {
        let ctl = AcornController::new(AcornConfig::default());
        let plan = FaultPlan {
            seed: 5,
            ap_mttf_s: Some(200.0),
            ap_mttr_s: 300.0,
            loss: 0.05,
            ..FaultPlan::default()
        };
        let r = scenario(Some(plan)).run_resilience(&ctl);
        let res = r.resilience.expect("faults were set");
        assert!(res.golden_mean_bps > 0.0);
        assert!(res.throughput_retained > 0.0 && res.throughput_retained <= 1.5);
    }
}
