//! Deterministic fault injection for ACORN scenarios.
//!
//! The robustness layer: a [`FaultProcess`] drives a periodic *control
//! round* over an [`AcornWorld`](crate::acorn::AcornWorld) that exercises
//! the real control-plane machinery — beacons and IAPP announcements go
//! through the actual `wire` encode → (corrupt) → parse path, SNR
//! measurements feed real [`ClientTracker`]s, channel switches ride the
//! real CSA state machines — while injecting seeded faults:
//!
//! * **AP crash/restart** — exponential inter-failure times (MTTF) with a
//!   fixed repair time (MTTR). A down AP stops beaconing and announcing;
//!   its clients detect the silence, deassociate, and re-scan.
//! * **Control-message faults** — per-copy loss, delay (reordering falls
//!   out naturally), and bit corruption. Corrupted frames reach the
//!   parser and must fail *typed* (`BadFcs`, never a panic).
//! * **Measurement faults** — NaN readings, ±outlier spikes, and frozen
//!   (stuck-sensor) SNR feeds into the per-client trackers; the
//!   staleness/outlier gates decide what reaches the advertised delays.
//!
//! Every random draw derives from [`mix_seed`] keyed on the firing
//! event's sequence number plus a stream salt, so a scenario is
//! bit-identical at any `ACORN_THREADS` — the same contract as the rest
//! of the runtime.

use crate::acorn::{AcornEvent, AcornWorld};
use crate::sim::{mix_seed, Ctx, Process};
use crate::telemetry::{Histogram, Telemetry};
use acorn_core::csa::CsaAction;
use acorn_core::iapp::IappAgent;
use acorn_core::{
    parse_announcement, parse_beacon, serialize_announcement, serialize_beacon, switch_plans,
    ApCsa, Beacon, ClientCsa, ClientTracker, ControlError, TrackerConfig,
};
use acorn_obs::{names, RecordingSink};
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment, ClientId};
use serde::Serialize;
use std::collections::HashMap;

/// Stream salts: each fault decision draws from its own independent
/// splitmix64 stream keyed `(plan.seed, event_seq, salt, counter)`.
const SALT_CRASH: u64 = 0x01;
const SALT_MEAS: u64 = 0x02;
const SALT_BEACON: u64 = 0x03;
const SALT_IAPP: u64 = 0x04;

/// What faults to inject, and how hard. `Default` is fully benign (no
/// crashes, no message faults, no measurement faults) — useful as the
/// golden twin of a faulty plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault stream.
    pub seed: u64,
    /// Control-round period (s): beacons, IAPP announcements, measurement
    /// reports, CSA ticks, and failure detection all advance once per
    /// round.
    pub control_period_s: f64,
    /// Mean time to failure for AP crashes (s); `None` disables crashes.
    pub ap_mttf_s: Option<f64>,
    /// Repair time after a crash (s).
    pub ap_mttr_s: f64,
    /// Hard cap on the number of crashes injected over the run.
    pub max_crashes: usize,
    /// Per-copy control-message loss probability in `[0, 1)`.
    pub loss: f64,
    /// Per-copy bit-corruption probability in `[0, 1)` (1–3 seeded bit
    /// flips; the FCS must catch them as typed parse errors).
    pub corruption: f64,
    /// Per-copy delay probability in `[0, 1)`.
    pub delay_prob: f64,
    /// Maximum injected delay (s); the actual delay is uniform in
    /// `(0, delay_max_s]`, so delayed copies can reorder across rounds.
    pub delay_max_s: f64,
    /// Per-sample probability of a NaN SNR reading.
    pub meas_nan: f64,
    /// Per-sample probability of a ±outlier spike.
    pub meas_outlier: f64,
    /// Outlier spike magnitude (dB).
    pub outlier_db: f64,
    /// Per-sample probability the sensor is frozen (no fresh reading this
    /// round — drives the staleness gate).
    pub meas_freeze: f64,
    /// CSA countdown (beacon rounds) used when deploying switches.
    pub csa_countdown: u8,
    /// Rounds of beacon silence before a client declares its AP dead.
    pub miss_limit: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            control_period_s: 10.0,
            ap_mttf_s: None,
            ap_mttr_s: 60.0,
            max_crashes: 1,
            loss: 0.0,
            corruption: 0.0,
            delay_prob: 0.0,
            delay_max_s: 0.0,
            meas_nan: 0.0,
            meas_outlier: 0.0,
            outlier_db: 25.0,
            meas_freeze: 0.0,
            csa_countdown: 4,
            miss_limit: 3,
        }
    }
}

impl FaultPlan {
    /// The fault-free twin of this plan: same seed, cadence, and
    /// detection thresholds, but nothing ever goes wrong. Running it
    /// yields the golden baseline a [`ResilienceReport`] compares
    /// against.
    pub fn benign_twin(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            control_period_s: self.control_period_s,
            csa_countdown: self.csa_countdown,
            miss_limit: self.miss_limit,
            ..FaultPlan::default()
        }
    }

    /// Whether this plan injects any fault at all.
    pub fn is_benign(&self) -> bool {
        self.ap_mttf_s.is_none()
            && self.loss == 0.0
            && self.corruption == 0.0
            && self.delay_prob == 0.0
            && self.meas_nan == 0.0
            && self.meas_outlier == 0.0
            && self.meas_freeze == 0.0
    }

    /// Rolls the per-copy message-fault gauntlet. Returns `None` if the
    /// copy is lost, `Some((frame, Some(dt)))` if it is delayed by `dt`,
    /// and `Some((frame, None))` for immediate delivery. Corruption
    /// mutates the frame (and breaks its FCS — deliberately *not*
    /// repaired). Counters are reported under `counters`' names, so the
    /// AP control round and the distributed control plane share one
    /// pipeline with distinct namespaces.
    pub fn roll_copy(
        &self,
        tel: &mut Telemetry,
        rng: &mut FaultRng,
        frame: &[u8],
        counters: &GauntletCounters,
    ) -> Option<(Vec<u8>, Option<f64>)> {
        tel.inc(counters.sent);
        if self.loss > 0.0 && rng.u01() < self.loss {
            tel.inc(counters.lost);
            return None;
        }
        let mut frame = frame.to_vec();
        if self.corruption > 0.0 && rng.u01() < self.corruption {
            tel.inc(counters.corrupted);
            corrupt_frame(&mut frame, rng);
        }
        if self.delay_prob > 0.0 && rng.u01() < self.delay_prob {
            tel.inc(counters.delayed);
            let dt = rng.u01_open() * self.delay_max_s;
            return Some((frame, Some(dt)));
        }
        Some((frame, None))
    }
}

/// What a faulty run did to the network, aggregated from telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// AP crashes injected.
    pub crashes: u64,
    /// AP restarts completed.
    pub restarts: u64,
    /// Control frames (beacon + IAPP copies) sent.
    pub frames_sent: u64,
    /// Copies dropped by the loss process.
    pub frames_lost: u64,
    /// Copies bit-corrupted before delivery.
    pub frames_corrupted: u64,
    /// Copies delivered late.
    pub frames_delayed: u64,
    /// Delivered frames the parser rejected (all typed errors).
    pub parse_errors: u64,
    /// Non-finite measurement reports rejected by the trackers.
    pub measurement_faults: u64,
    /// Outlier samples the trackers' median gate rejected.
    pub outliers_rejected: u64,
    /// Clients orphaned mid-CSA-countdown by a dead AP.
    pub csa_orphans: u64,
    /// Re-scans (deassociate + re-associate) triggered by detection.
    pub rescans: u64,
    /// IAPP hold-down solicitations issued.
    pub solicits: u64,
    /// Re-allocation epochs the controller ran in safe mode.
    pub safe_mode_epochs: u64,
    /// Mean time from an AP's last heard beacon to its clients declaring
    /// it dead (s); 0 when nothing was detected.
    pub mean_detection_delay_s: f64,
    /// Mean AP downtime per crash (s); 0 when nothing crashed.
    pub mean_downtime_s: f64,
    /// Mean of the per-round network throughput series (bits/s).
    pub faulty_mean_bps: f64,
    /// Same mean for the fault-free golden twin (bits/s); 0 until
    /// [`CompositeScenario::run_resilience`](crate::acorn::CompositeScenario::run_resilience)
    /// fills it in.
    pub golden_mean_bps: f64,
    /// `faulty_mean_bps / golden_mean_bps` (0 until the golden twin ran).
    pub throughput_retained: f64,
}

impl ResilienceReport {
    /// Aggregates the fault-layer telemetry of one run. The golden
    /// comparison fields stay zero until a golden twin fills them.
    pub fn from_telemetry(tel: &Telemetry) -> ResilienceReport {
        let hist_mean = |n: &str| tel.histogram(n).and_then(|h| h.mean()).unwrap_or(0.0);
        let series_mean = |n: &str| {
            tel.series(n)
                .filter(|s| !s.values.is_empty())
                .map(|s| s.values.iter().sum::<f64>() / s.values.len() as f64)
                .unwrap_or(0.0)
        };
        ResilienceReport {
            crashes: tel.counter("faults.crashes"),
            restarts: tel.counter("faults.restarts"),
            frames_sent: tel.counter("faults.frames_sent"),
            frames_lost: tel.counter("faults.frames_lost"),
            frames_corrupted: tel.counter("faults.frames_corrupted"),
            frames_delayed: tel.counter("faults.frames_delayed"),
            parse_errors: tel.counter("faults.parse_errors"),
            measurement_faults: tel.counter("faults.measurement_faults"),
            outliers_rejected: tel.counter("faults.outliers_rejected"),
            csa_orphans: tel.counter("faults.csa_orphans"),
            rescans: tel.counter("faults.rescans"),
            solicits: tel.counter("faults.solicits"),
            safe_mode_epochs: tel.counter(names::CONTROLLER_SAFE_MODE_EPOCHS),
            mean_detection_delay_s: hist_mean("faults.detection_delay_s"),
            mean_downtime_s: hist_mean("faults.downtime_s"),
            faulty_mean_bps: series_mean("resilience.network_bps"),
            golden_mean_bps: 0.0,
            throughput_retained: 0.0,
        }
    }
}

/// One independent fault stream: successive draws are
/// `mix_seed(mix_seed(seed, key), 0..)`.
///
/// Public so that other fault-routed layers (the distributed control
/// plane in `acorn-ctrlplane`) can key their own per-frame streams off
/// [`mix_seed`] with the same derivation discipline.
pub struct FaultRng {
    base: u64,
    n: u64,
}

impl FaultRng {
    /// A stream keyed `(seed, key, salt)` — typically the plan seed, the
    /// firing event's sequence number (or a frame id), and a stream salt.
    pub fn new(seed: u64, key: u64, salt: u64) -> FaultRng {
        FaultRng {
            base: mix_seed(mix_seed(seed, key), salt),
            n: 0,
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let x = mix_seed(self.base, self.n);
        self.n += 1;
        x
    }

    /// Uniform in `[0, 1)`.
    pub fn u01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `(0, 1]` — safe under `ln`.
    pub fn u01_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

/// Flips 1–3 seeded bits somewhere in the frame — the corruption model
/// every fault-routed message path shares. The FCS is deliberately *not*
/// repaired: parsers must catch the damage as a typed error.
pub fn corrupt_frame(frame: &mut [u8], rng: &mut FaultRng) {
    let bits = frame.len() * 8;
    if bits == 0 {
        return;
    }
    let flips = 1 + (rng.next_u64() % 3) as usize;
    for _ in 0..flips {
        let pos = (rng.next_u64() % bits as u64) as usize;
        frame[pos / 8] ^= 1 << (pos % 8);
    }
}

/// The counter names a message gauntlet reports under. The AP control
/// round uses the historical `faults.*` set; the distributed control
/// plane reports the same physical pipeline under `ctrl.frames.*`.
#[derive(Debug, Clone, Copy)]
pub struct GauntletCounters {
    /// Copies pushed through the gauntlet.
    pub sent: &'static str,
    /// Copies dropped by the loss process.
    pub lost: &'static str,
    /// Copies bit-corrupted in flight.
    pub corrupted: &'static str,
    /// Copies delivered late.
    pub delayed: &'static str,
}

/// The `faults.*` counter set the AP control round reports under.
pub const FAULT_GAUNTLET: GauntletCounters = GauntletCounters {
    sent: "faults.frames_sent",
    lost: "faults.frames_lost",
    corrupted: "faults.frames_corrupted",
    delayed: "faults.frames_delayed",
};

/// A frame copy in flight (delayed by the fault layer).
enum Delivery {
    /// A beacon copy addressed to one client of `ap`.
    Beacon {
        frame: Vec<u8>,
        ap: usize,
        client: usize,
    },
    /// An IAPP announcement copy addressed to AP `to`.
    Iapp {
        frame: Vec<u8>,
        to: usize,
        rx_dbm: f64,
    },
}

/// The fault-injection process. Register it *last* on a scenario so the
/// benign event schedule (and therefore every pre-existing golden
/// fingerprint) is untouched when it is absent.
pub struct FaultProcess {
    /// The plan.
    pub plan: FaultPlan,
    /// Horizon (s); rounds at or past it never fire.
    pub horizon_s: f64,
    round: u64,
    agents: Vec<IappAgent>,
    ap_csa: Vec<ApCsa>,
    client_csa: Vec<ClientCsa>,
    trackers: Vec<Option<ClientTracker>>,
    tracker_ap: Vec<Option<ApId>>,
    last_heard_round: Vec<u64>,
    last_assignments: Vec<ChannelAssignment>,
    pending: HashMap<u32, Delivery>,
    next_msg_id: u32,
    crash_count: usize,
    down_since: Vec<Option<f64>>,
}

impl FaultProcess {
    /// Creates the process for `plan` over a given horizon.
    pub fn new(plan: FaultPlan, horizon_s: f64) -> FaultProcess {
        FaultProcess {
            plan,
            horizon_s,
            round: 0,
            agents: Vec::new(),
            ap_csa: Vec::new(),
            client_csa: Vec::new(),
            trackers: Vec::new(),
            tracker_ap: Vec::new(),
            last_heard_round: Vec::new(),
            last_assignments: Vec::new(),
            pending: HashMap::new(),
            next_msg_id: 0,
            crash_count: 0,
            down_since: Vec::new(),
        }
    }

    fn bssid(ap: usize) -> [u8; 6] {
        let b = ap as u64;
        [
            0x02, // locally administered
            (b >> 32) as u8,
            (b >> 24) as u8,
            (b >> 16) as u8,
            (b >> 8) as u8,
            b as u8,
        ]
    }

    /// The per-copy gauntlet under the historical `faults.*` names.
    fn roll_copy(
        &self,
        tel: &mut Telemetry,
        rng: &mut FaultRng,
        frame: &[u8],
    ) -> Option<(Vec<u8>, Option<f64>)> {
        self.plan.roll_copy(tel, rng, frame, &FAULT_GAUNTLET)
    }

    fn queue_delayed(
        &mut self,
        ctx: &mut Ctx<'_, AcornWorld, AcornEvent>,
        dt: f64,
        delivery: Delivery,
    ) {
        let id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        self.pending.insert(id, delivery);
        ctx.schedule_after(dt, AcornEvent::DeliverMsg(id));
    }

    /// Delivers one beacon copy to a client: the frame goes through the
    /// real parser; only a decodable frame counts as "heard".
    fn deliver_beacon(
        &mut self,
        tel: &mut Telemetry,
        frame: &[u8],
        ap: usize,
        client: usize,
        announce: Option<(ChannelAssignment, u8)>,
    ) {
        match parse_beacon(frame) {
            Ok(_) => {
                self.last_heard_round[client] = self.round;
                self.client_csa[client].note_heard(self.round);
                if let Some((to, remaining)) = announce {
                    self.client_csa[client].on_announcement(to, remaining, self.round);
                }
                let _ = ap;
            }
            Err(_) => tel.inc("faults.parse_errors"),
        }
    }

    /// Delivers one IAPP announcement copy to an AP's agent.
    fn deliver_iapp(
        &mut self,
        tel: &mut Telemetry,
        frame: &[u8],
        to: usize,
        rx_dbm: f64,
        now: f64,
    ) {
        match parse_announcement(frame) {
            Ok(a) => self.agents[to].handle(&a, rx_dbm, now),
            Err(_) => tel.inc("faults.parse_errors"),
        }
    }

    /// Deassociates `client` and immediately re-scans for a live AP.
    fn rescan(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>, client: usize) {
        let w = &mut *ctx.world;
        w.state.assoc[client] = None;
        let mut candidates = w.ctl.candidates_for(&w.wlan, &w.state, ClientId(client));
        candidates.retain(|c| w.ap_up[c.ap.0]);
        let sink = RecordingSink::new();
        if let Some(i) = acorn_core::choose_ap_obs(&candidates, &sink) {
            w.state.assoc[client] = Some(candidates[i].ap);
        }
        sink.drain_into(ctx.telemetry);
        self.client_csa[client] = ClientCsa::default();
        self.trackers[client] = None;
        self.tracker_ap[client] = w.state.assoc[client];
        self.last_heard_round[client] = self.round;
        ctx.telemetry.inc("faults.rescans");
    }

    fn schedule_next_crash(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>, from_s: f64) {
        let Some(mttf) = self.plan.ap_mttf_s else {
            return;
        };
        if self.crash_count >= self.plan.max_crashes {
            return;
        }
        let n_aps = ctx.world.wlan.aps.len();
        if n_aps == 0 {
            return;
        }
        let mut rng = FaultRng::new(self.plan.seed, ctx.event_seq(), SALT_CRASH);
        let t = from_s - mttf * rng.u01_open().ln();
        let ap = (rng.next_u64() % n_aps as u64) as usize;
        if t < self.horizon_s {
            ctx.schedule_at(t, AcornEvent::ApCrash(ap));
        }
    }

    fn handle_crash(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>, ap: usize) {
        if !ctx.world.ap_up[ap] {
            return; // already down
        }
        self.crash_count += 1;
        ctx.world.ap_up[ap] = false;
        self.down_since[ap] = Some(ctx.now());
        // The dead AP forgets its own control-plane state: a restarted AP
        // comes back cold.
        self.ap_csa[ap] = ApCsa::default();
        self.agents[ap] = self.fresh_agent(ap);
        ctx.telemetry.inc("faults.crashes");
        ctx.telemetry
            .set_gauge("faults.aps_down", ctx.world.down_count() as f64);
        let restart_at = ctx.now() + self.plan.ap_mttr_s;
        if restart_at < self.horizon_s {
            ctx.schedule_at(restart_at, AcornEvent::ApRestart(ap));
        }
    }

    fn handle_restart(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>, ap: usize) {
        if ctx.world.ap_up[ap] {
            return;
        }
        ctx.world.ap_up[ap] = true;
        if let Some(t0) = self.down_since[ap].take() {
            ctx.telemetry.observe("faults.downtime_s", ctx.now() - t0);
        }
        ctx.telemetry.inc("faults.restarts");
        ctx.telemetry
            .set_gauge("faults.aps_down", ctx.world.down_count() as f64);
        self.schedule_next_crash(ctx, ctx.now());
    }

    fn fresh_agent(&self, ap: usize) -> IappAgent {
        let mut a = IappAgent::new(ApId(ap));
        // Cache lifetimes track the control cadence: ~2.5 rounds of
        // silence expire an entry into hold-down, retries start one round
        // later.
        a.expiry_s = 2.5 * self.plan.control_period_s;
        a.hold_down_s = 2.5 * self.plan.control_period_s;
        a.retry_backoff_s = self.plan.control_period_s;
        a
    }

    /// One control round: measurements → beacons (+CSA) → IAPP →
    /// detection → throughput sample.
    fn control_round(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        self.round += 1;
        let now = ctx.now();
        let seq = ctx.event_seq();
        let n_aps = ctx.world.wlan.aps.len();
        let n_clients = ctx.world.wlan.clients.len();

        // --- 0. Track association changes: (re)bind trackers/CSA state.
        for c in 0..n_clients {
            let assoc = ctx.world.state.assoc[c];
            if assoc != self.tracker_ap[c] {
                self.tracker_ap[c] = assoc;
                self.trackers[c] = None;
                self.client_csa[c] = ClientCsa::default();
                self.last_heard_round[c] = self.round;
            }
        }

        // --- 1. Deploy new channel switches over CSA.
        if let Ok(plans) = switch_plans(&self.last_assignments, &ctx.world.state.assignments) {
            for p in &plans {
                if ctx.world.ap_up[p.ap.0]
                    && self.ap_csa[p.ap.0]
                        .schedule(p.to, self.plan.csa_countdown)
                        .is_ok()
                {
                    ctx.telemetry.inc(names::CSA_SCHEDULED);
                }
            }
        }
        self.last_assignments = ctx.world.state.assignments.clone();

        // Tick the AP-side countdowns (live APs only — a dead AP's
        // countdown dies with it).
        let mut round_announce: Vec<Option<(ChannelAssignment, u8)>> = vec![None; n_aps];
        for ap in 0..n_aps {
            if !ctx.world.ap_up[ap] {
                continue;
            }
            match self.ap_csa[ap].tick() {
                CsaAction::Announce { to, remaining } => {
                    ctx.telemetry.inc(names::CSA_ANNOUNCED);
                    round_announce[ap] = Some((to, remaining));
                }
                CsaAction::SwitchNow(_) => ctx.telemetry.inc(names::CSA_SWITCHED),
                CsaAction::Idle => {}
            }
        }

        // --- 2. Measurements: the AP-side driver reports each associated
        // client's SNR into its tracker, through the fault gauntlet.
        let mut meas_rng = FaultRng::new(self.plan.seed, seq, SALT_MEAS);
        for c in 0..n_clients {
            let Some(ap) = ctx.world.state.assoc[c] else {
                continue;
            };
            if !ctx.world.ap_up[ap.0] {
                continue; // a dead AP measures nothing
            }
            if self.plan.meas_freeze > 0.0 && meas_rng.u01() < self.plan.meas_freeze {
                continue; // stuck sensor: no fresh sample, staleness grows
            }
            let true_snr = ctx.world.wlan.snr_db(ap, ClientId(c), ChannelWidth::Ht20);
            let reported = if self.plan.meas_nan > 0.0 && meas_rng.u01() < self.plan.meas_nan {
                f64::NAN
            } else if self.plan.meas_outlier > 0.0 && meas_rng.u01() < self.plan.meas_outlier {
                let sign = if meas_rng.next_u64() & 1 == 0 {
                    1.0
                } else {
                    -1.0
                };
                true_snr + sign * self.plan.outlier_db
            } else {
                true_snr
            };
            let tracker = self.trackers[c].get_or_insert_with(|| {
                ClientTracker::new(TrackerConfig::default(), now)
                    .unwrap_or_else(|_| unreachable!("default tracker config is valid"))
            });
            match tracker.observe_snr(reported, now) {
                Ok(true) => {}
                Ok(false) => ctx.telemetry.inc("faults.outliers_rejected"),
                Err(ControlError::NonFiniteMeasurement(_)) => {
                    ctx.telemetry.inc("faults.measurement_faults")
                }
                Err(_) => ctx.telemetry.inc("faults.measurement_faults"),
            }
        }

        // --- 3. Beacons: each live AP serializes ONE frame, every
        // associated client gets an independent copy through the gauntlet.
        let mut beacon_rng = FaultRng::new(self.plan.seed, seq, SALT_BEACON);
        for ap in 0..n_aps {
            if !ctx.world.ap_up[ap] {
                continue;
            }
            let clients = ctx.world.state.cell_clients(ApId(ap));
            if clients.is_empty() {
                continue;
            }
            let width = ctx.world.state.operating_width[ap];
            let delays: Vec<f64> = clients
                .iter()
                .map(|c| match &self.trackers[c.0] {
                    Some(t) => ctx.world.ctl.tracked_delay_s(t, now, width),
                    None => f64::INFINITY, // no confirmed sample yet
                })
                .collect();
            let beacon = Beacon {
                ap: ApId(ap),
                assignment: ctx.world.state.effective_assignment(ApId(ap)),
                n_clients: clients.len(),
                atd_s: delays.iter().sum(),
                client_delays_s: delays,
                access_share: self.agents[ap]
                    .access_share(ctx.world.state.effective_assignment(ApId(ap))),
            };
            let Ok(frame) = serialize_beacon(&beacon, Self::bssid(ap), self.round) else {
                continue; // cell too large for one IE: skip this round
            };
            for c in clients {
                match self.roll_copy(ctx.telemetry, &mut beacon_rng, &frame) {
                    None => {}
                    Some((f, Some(dt))) => self.queue_delayed(
                        ctx,
                        dt,
                        Delivery::Beacon {
                            frame: f,
                            ap,
                            client: c.0,
                        },
                    ),
                    Some((f, None)) => {
                        self.deliver_beacon(ctx.telemetry, &f, ap, c.0, round_announce[ap])
                    }
                }
            }
        }

        // --- 4. IAPP: live APs announce to every live AP in decode
        // range; the caches then age, and hold-down entries re-solicit.
        let mut iapp_rng = FaultRng::new(self.plan.seed, seq, SALT_IAPP);
        let decode_floor_dbm = -85.0;
        for ap in 0..n_aps {
            if !ctx.world.ap_up[ap] {
                continue;
            }
            let eff = ctx.world.state.effective_assignment(ApId(ap));
            let n_cl = ctx.world.state.cell_clients(ApId(ap)).len();
            let ann = self.agents[ap].announce(eff, n_cl, now);
            let frame = serialize_announcement(&ann, Self::bssid(ap));
            for to in 0..n_aps {
                if to == ap || !ctx.world.ap_up[to] {
                    continue;
                }
                let rx = ctx.world.wlan.ap_to_ap_rx_dbm(ApId(ap), ApId(to));
                if rx < decode_floor_dbm {
                    continue;
                }
                match self.roll_copy(ctx.telemetry, &mut iapp_rng, &frame) {
                    None => {}
                    Some((f, Some(dt))) => self.queue_delayed(
                        ctx,
                        dt,
                        Delivery::Iapp {
                            frame: f,
                            to,
                            rx_dbm: rx,
                        },
                    ),
                    Some((f, None)) => self.deliver_iapp(ctx.telemetry, &f, to, rx, now),
                }
            }
        }
        for ap in 0..n_aps {
            if !ctx.world.ap_up[ap] {
                continue;
            }
            self.agents[ap].prune(now);
            let held = self.agents[ap].held_down().len() as u64;
            if held > 0 {
                ctx.telemetry.add(names::IAPP_HOLD_DOWNS, held);
            }
            for target in self.agents[ap].due_solicits(now) {
                ctx.telemetry.inc("faults.solicits");
                if !ctx.world.ap_up[target.0] {
                    continue; // genuinely dead: the hold-down will lapse
                }
                // The probed neighbour answers with a fresh unicast
                // announcement, through the same gauntlet.
                let eff = ctx.world.state.effective_assignment(target);
                let n_cl = ctx.world.state.cell_clients(target).len();
                let reply = self.agents[target.0].announce(eff, n_cl, now);
                let frame = serialize_announcement(&reply, Self::bssid(target.0));
                let rx = ctx.world.wlan.ap_to_ap_rx_dbm(target, ApId(ap));
                match self.roll_copy(ctx.telemetry, &mut iapp_rng, &frame) {
                    None => {}
                    Some((f, Some(dt))) => self.queue_delayed(
                        ctx,
                        dt,
                        Delivery::Iapp {
                            frame: f,
                            to: ap,
                            rx_dbm: rx,
                        },
                    ),
                    Some((f, None)) => self.deliver_iapp(ctx.telemetry, &f, ap, rx, now),
                }
            }
        }

        // --- 5. Detection: CSA orphans and dead-AP silence.
        for c in 0..n_clients {
            let Some(ap) = ctx.world.state.assoc[c] else {
                continue;
            };
            let _ = self.client_csa[c].poll(self.round);
            if self.client_csa[c].check_orphan(self.round, self.plan.miss_limit) {
                ctx.telemetry.inc("faults.csa_orphans");
                let silent_rounds = self.round - self.last_heard_round[c];
                ctx.telemetry.observe(
                    "faults.detection_delay_s",
                    silent_rounds as f64 * self.plan.control_period_s,
                );
                self.rescan(ctx, c);
                continue;
            }
            let silent_rounds = self.round.saturating_sub(self.last_heard_round[c]);
            if silent_rounds > self.plan.miss_limit {
                ctx.telemetry.observe(
                    "faults.detection_delay_s",
                    silent_rounds as f64 * self.plan.control_period_s,
                );
                let _ = ap;
                self.rescan(ctx, c);
            }
        }

        // --- 6. Per-round network throughput (live APs only).
        let w = &*ctx.world;
        let bps = w.ctl.total_throughput_bps_up(&w.wlan, &w.state, &w.ap_up);
        ctx.telemetry.record("resilience.network_bps", now, bps);

        let next = now + self.plan.control_period_s;
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::ControlRound);
        }
    }
}

impl Process<AcornWorld, AcornEvent> for FaultProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        let n_aps = ctx.world.wlan.aps.len();
        let n_clients = ctx.world.wlan.clients.len();
        self.agents = (0..n_aps).map(|i| self.fresh_agent(i)).collect();
        self.ap_csa = vec![ApCsa::default(); n_aps];
        self.client_csa = vec![ClientCsa::default(); n_clients];
        self.trackers = (0..n_clients).map(|_| None).collect();
        self.tracker_ap = vec![None; n_clients];
        self.last_heard_round = vec![0; n_clients];
        self.last_assignments = ctx.world.state.assignments.clone();
        self.down_since = vec![None; n_aps];
        ctx.telemetry.register_histogram(
            "faults.detection_delay_s",
            Histogram::linear(0.0, 600.0, 60).expect("static histogram bounds"),
        );
        ctx.telemetry.register_histogram(
            "faults.downtime_s",
            Histogram::linear(0.0, 1200.0, 60).expect("static histogram bounds"),
        );
        if self.plan.control_period_s < self.horizon_s {
            ctx.schedule_at(self.plan.control_period_s, AcornEvent::ControlRound);
        }
        self.schedule_next_crash(ctx, 0.0);
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        match *event {
            AcornEvent::ControlRound => self.control_round(ctx),
            AcornEvent::ApCrash(ap) => self.handle_crash(ctx, ap),
            AcornEvent::ApRestart(ap) => self.handle_restart(ctx, ap),
            AcornEvent::DeliverMsg(id) => {
                let now = ctx.now();
                match self.pending.remove(&id) {
                    Some(Delivery::Beacon { frame, ap, client }) => {
                        // Late beacons still prove liveness but carry no
                        // CSA payload worth trusting.
                        if ctx.world.state.assoc[client] == Some(ApId(ap)) {
                            self.deliver_beacon(ctx.telemetry, &frame, ap, client, None);
                        }
                    }
                    Some(Delivery::Iapp { frame, to, rx_dbm }) => {
                        if ctx.world.ap_up[to] {
                            self.deliver_iapp(ctx.telemetry, &frame, to, rx_dbm, now);
                        }
                    }
                    None => {}
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_twin_strips_every_fault() {
        let plan = FaultPlan {
            seed: 9,
            ap_mttf_s: Some(100.0),
            loss: 0.2,
            corruption: 0.05,
            delay_prob: 0.1,
            delay_max_s: 5.0,
            meas_nan: 0.01,
            meas_outlier: 0.02,
            meas_freeze: 0.03,
            ..FaultPlan::default()
        };
        assert!(!plan.is_benign());
        let twin = plan.benign_twin();
        assert!(twin.is_benign());
        assert_eq!(twin.seed, 9);
        assert_eq!(twin.control_period_s, plan.control_period_s);
        assert_eq!(twin.miss_limit, plan.miss_limit);
    }

    #[test]
    fn fault_rng_streams_are_deterministic_and_distinct() {
        let mut a = FaultRng::new(1, 2, SALT_MEAS);
        let mut b = FaultRng::new(1, 2, SALT_MEAS);
        let mut c = FaultRng::new(1, 2, SALT_BEACON);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        for _ in 0..1000 {
            let u = a.u01();
            assert!((0.0..1.0).contains(&u));
            let v = a.u01_open();
            assert!(v > 0.0 && v <= 1.0);
            assert!(v.ln().is_finite());
        }
    }

    #[test]
    fn corruption_always_changes_the_frame() {
        let mut rng = FaultRng::new(3, 4, SALT_BEACON);
        for _ in 0..100 {
            let original = vec![0xA5u8; 40];
            let mut copy = original.clone();
            corrupt_frame(&mut copy, &mut rng);
            assert_ne!(copy, original, "1–3 bit flips must change something");
        }
    }

    #[test]
    fn report_from_empty_telemetry_is_all_zero() {
        let tel = Telemetry::new();
        let r = ResilienceReport::from_telemetry(&tel);
        assert_eq!(r.crashes, 0);
        assert_eq!(r.frames_sent, 0);
        assert_eq!(r.faulty_mean_bps, 0.0);
        assert_eq!(r.mean_detection_delay_s, 0.0);
    }
}
