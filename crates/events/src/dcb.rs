//! Per-transmission dynamic channel bonding on the event runtime, and
//! the high-density overlapping-BSS scenario family it runs in.
//!
//! The composite and city scenarios treat a cell's width as
//! epoch-static: whatever the allocator handed out is what every
//! transmission uses until the next reallocation. This module adds the
//! per-transmission layer ROADMAP item 3 calls for: each AP runs an
//! attempt/transmit loop on the shared virtual clock, carrier-senses its
//! allocated channels against the transmissions its interference-graph
//! neighbours currently hold, and asks a [`DcbPolicy`] — always-max,
//! static-primary, probabilistic, or occupancy-aware — which width this
//! one transmission should use, within the epoch allocation's ceiling.
//!
//! The traffic dynamics are deliberately the Faridi-style stochastic
//! model ([`CtmcParams`]): idle APs attempt at exponential rate `λ`
//! (blocked attempts re-arm — memorylessness makes that exactly a
//! censored Poisson process), transmissions complete at `μ₂₀` or
//! `μ₄₀ = 2·μ₂₀`. For the memoryless policy families the run is then an
//! exact sample path of `acorn_dcb::ctmc`'s chain, which is what lets
//! `tests/dcb.rs` gate simulator throughput against the closed-form
//! stationary solution — an independent cross-check in the spirit of
//! PR 2's baseband calibration. The occupancy-aware family (EWMA state)
//! runs on the same machinery but has no chain to compare to.
//!
//! [`OverlappingBssGrid`] is the scenario substrate: a dense grid with
//! kings-move interference adjacency where every interior cell contends
//! with eight neighbours over a handful of channels — unlike
//! `city_grid`'s interference-isolated districts, the spectrum here is
//! *genuinely shared* across the whole deployment (the graph is one
//! connected component), which is exactly the regime dynamic bonding
//! policies differ in.

use crate::faults::FaultRng;
use crate::sim::{Ctx, Process, Simulation};
use acorn_core::allocation::{allocate_with_restarts, AllocationConfig};
use acorn_core::model::{ClientSnr, NetworkModel};
use acorn_dcb::{CtmcParams, DcbPolicy, OccupancyObservation, PolicyKind};
use acorn_topology::{ApId, Channel20, ChannelAssignment, ChannelPlan, InterferenceGraph};

/// Stream salts for the per-event splitmix64 draws.
const SALT_GAP: u64 = 0x11;
const SALT_SERVICE: u64 = 0x12;
const SALT_POLICY: u64 = 0x13;
const SALT_SNR: u64 = 0x14;

/// Events of the DCB transmission loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DcbEvent {
    /// AP's backoff expired: sense, decide a width, maybe transmit.
    Attempt(usize),
    /// AP's in-flight transmission completed.
    TxEnd(usize),
}

/// Shared world of a DCB run: who is transmitting on what, and the
/// occupancy estimates the adaptive policy feeds on.
#[derive(Debug)]
pub struct DcbWorld {
    /// Interference graph (footnote-5 semantics: an edge means the two
    /// APs carrier-sense each other).
    pub graph: InterferenceGraph,
    /// The epoch plan's per-AP allocation — the ceiling every
    /// per-transmission decision narrows from.
    pub alloc: Vec<ChannelAssignment>,
    /// Channelization of each AP's in-flight transmission, if any.
    active: Vec<Option<ChannelAssignment>>,
    /// EWMA busy fraction of each AP's primary channel (NaN before the
    /// first sample — policies must cope, and the proptests check they
    /// do).
    ewma_primary: Vec<f64>,
    /// EWMA busy fraction of each AP's secondary channel (NaN when the
    /// allocation has no secondary).
    ewma_secondary: Vec<f64>,
    /// Completed transmissions per AP at each width.
    completions20: Vec<u64>,
    /// Completed 40 MHz transmissions per AP.
    completions40: Vec<u64>,
    /// Attempts abandoned because the primary was busy.
    blocked: Vec<u64>,
    /// Virtual seconds each AP spent transmitting at 40 MHz.
    tx40_time_s: Vec<f64>,
    /// Start time of the in-flight transmission.
    tx_started_s: Vec<f64>,
}

impl DcbWorld {
    /// A world with no transmissions in flight and cold occupancy
    /// estimates.
    pub fn new(graph: InterferenceGraph, alloc: Vec<ChannelAssignment>) -> DcbWorld {
        let n = graph.len();
        assert_eq!(n, alloc.len(), "one allocation per AP");
        DcbWorld {
            graph,
            alloc,
            active: vec![None; n],
            ewma_primary: vec![f64::NAN; n],
            ewma_secondary: vec![f64::NAN; n],
            completions20: vec![0; n],
            completions40: vec![0; n],
            blocked: vec![0; n],
            tx40_time_s: vec![0.0; n],
            tx_started_s: vec![0.0; n],
        }
    }

    /// Whether any active neighbour of `ap` currently occupies `ch`.
    fn channel_busy(&self, ap: usize, ch: Channel20) -> bool {
        self.graph
            .neighbors(ApId(ap))
            .any(|j| self.active[j.0].map_or(false, |a| a.occupied().any(|c| c == ch)))
    }
}

/// The per-AP attempt/transmit loop, one process driving all APs.
pub struct DcbDriver<P> {
    policy: P,
    params: CtmcParams,
    seed: u64,
    /// EWMA smoothing factor for the occupancy estimates in `(0, 1]`.
    ewma_alpha: f64,
    horizon_s: f64,
}

impl<P: DcbPolicy> DcbDriver<P> {
    /// A driver with the given policy, traffic model and seed.
    pub fn new(policy: P, params: CtmcParams, seed: u64, ewma_alpha: f64, horizon_s: f64) -> Self {
        DcbDriver {
            policy,
            params,
            seed,
            ewma_alpha,
            horizon_s,
        }
    }

    fn exp(&self, rng: &mut FaultRng, rate_hz: f64) -> f64 {
        -rng.u01_open().ln() / rate_hz
    }

    fn schedule_attempt(
        &self,
        ap: usize,
        rng: &mut FaultRng,
        ctx: &mut Ctx<'_, DcbWorld, DcbEvent>,
    ) {
        let t = ctx.now() + self.exp(rng, self.params.attempt_rate_hz);
        if t <= self.horizon_s {
            ctx.schedule_at(t, DcbEvent::Attempt(ap));
        }
    }

    fn update_ewma(slot: &mut f64, alpha: f64, sample: f64) {
        *slot = if slot.is_nan() {
            sample
        } else {
            alpha * sample + (1.0 - alpha) * *slot
        };
    }
}

impl<P: DcbPolicy> Process<DcbWorld, DcbEvent> for DcbDriver<P> {
    fn start(&mut self, ctx: &mut Ctx<'_, DcbWorld, DcbEvent>) {
        for ap in 0..ctx.world.graph.len() {
            let mut rng = FaultRng::new(self.seed, ap as u64, SALT_GAP);
            self.schedule_attempt(ap, &mut rng, ctx);
        }
    }

    fn handle(&mut self, event: &DcbEvent, ctx: &mut Ctx<'_, DcbWorld, DcbEvent>) {
        match *event {
            DcbEvent::Attempt(ap) => {
                let mut rng = FaultRng::new(self.seed, ctx.event_seq(), SALT_POLICY);
                let allocated = ctx.world.alloc[ap];
                let primary = allocated.primary();
                let primary_busy = ctx.world.channel_busy(ap, primary);
                let secondary = match allocated {
                    ChannelAssignment::Bonded(c) => Some(Channel20(c.0 + 1)),
                    ChannelAssignment::Single(_) => None,
                };
                let secondary_busy_now = secondary.map(|ch| ctx.world.channel_busy(ap, ch));
                let alpha = self.ewma_alpha;
                Self::update_ewma(
                    &mut ctx.world.ewma_primary[ap],
                    alpha,
                    if primary_busy { 1.0 } else { 0.0 },
                );
                if let Some(busy) = secondary_busy_now {
                    Self::update_ewma(
                        &mut ctx.world.ewma_secondary[ap],
                        alpha,
                        if busy { 1.0 } else { 0.0 },
                    );
                }
                ctx.telemetry.inc("dcb.attempts");
                if primary_busy {
                    // Censored attempt: the primary is held by a
                    // neighbour. Memorylessness makes re-arming at Exp(λ)
                    // identical to the CTMC's disabled transition.
                    ctx.world.blocked[ap] += 1;
                    ctx.telemetry.inc("dcb.blocked");
                    self.schedule_attempt(ap, &mut rng, ctx);
                    return;
                }
                let obs = OccupancyObservation {
                    primary_busy: ctx.world.ewma_primary[ap],
                    secondary_busy: ctx.world.ewma_secondary[ap],
                    secondary_idle_now: secondary_busy_now == Some(false),
                };
                let mut chosen = self.policy.choose(allocated, &obs, rng.u01());
                // Defence in depth: a policy violating its contract must
                // still never transmit over a busy secondary or outside
                // its allocation.
                let legal = chosen
                    .occupied()
                    .all(|c| allocated.occupied().any(|a| a == c))
                    && (chosen.width() == acorn_phy::ChannelWidth::Ht20
                        || secondary_busy_now == Some(false));
                if !legal {
                    chosen = allocated.fallback_20();
                }
                ctx.world.active[ap] = Some(chosen);
                ctx.world.tx_started_s[ap] = ctx.now();
                let mut srv = FaultRng::new(self.seed, ctx.event_seq(), SALT_SERVICE);
                let rate = match chosen.width() {
                    acorn_phy::ChannelWidth::Ht40 => 2.0 * self.params.service_rate20_hz,
                    acorn_phy::ChannelWidth::Ht20 => self.params.service_rate20_hz,
                };
                ctx.telemetry.inc(match chosen.width() {
                    acorn_phy::ChannelWidth::Ht40 => "dcb.tx40",
                    acorn_phy::ChannelWidth::Ht20 => "dcb.tx20",
                });
                ctx.schedule_after(self.exp(&mut srv, rate), DcbEvent::TxEnd(ap));
            }
            DcbEvent::TxEnd(ap) => {
                let mut rng = FaultRng::new(self.seed, ctx.event_seq(), SALT_GAP);
                match ctx.world.active[ap].take() {
                    Some(a) if a.width() == acorn_phy::ChannelWidth::Ht40 => {
                        ctx.world.completions40[ap] += 1;
                        let dt = ctx.now() - ctx.world.tx_started_s[ap];
                        ctx.world.tx40_time_s[ap] += dt;
                    }
                    Some(_) => ctx.world.completions20[ap] += 1,
                    None => unreachable!("TxEnd without an in-flight transmission"),
                }
                self.schedule_attempt(ap, &mut rng, ctx);
            }
        }
    }
}

/// Result of one DCB run.
#[derive(Debug, Clone, PartialEq)]
pub struct DcbReport {
    /// Long-run per-AP throughput (bits/s): completions × payload over
    /// the horizon.
    pub per_ap_bps: Vec<f64>,
    /// 20 MHz completions per AP.
    pub completions20: Vec<u64>,
    /// 40 MHz completions per AP.
    pub completions40: Vec<u64>,
    /// Attempts censored by a busy primary, per AP.
    pub blocked: Vec<u64>,
    /// Fraction of the horizon each AP spent transmitting at 40 MHz.
    pub tx40_time_fraction: Vec<f64>,
    /// Events dispatched.
    pub events: u64,
}

impl DcbReport {
    /// Aggregate network throughput (bits/s).
    pub fn total_bps(&self) -> f64 {
        self.per_ap_bps.iter().sum()
    }
}

/// A self-contained DCB run: graph + epoch allocation + policy + traffic
/// model, executed on the deterministic event runtime.
#[derive(Debug, Clone)]
pub struct DcbScenario {
    /// Interference graph.
    pub graph: InterferenceGraph,
    /// Epoch allocation (the per-transmission ceiling).
    pub alloc: Vec<ChannelAssignment>,
    /// Width decision policy.
    pub policy: PolicyKind,
    /// Traffic model shared with the CTMC cross-check.
    pub params: CtmcParams,
    /// Virtual horizon (s).
    pub horizon_s: f64,
    /// Seed of every stochastic stream in the run.
    pub seed: u64,
    /// EWMA smoothing factor for occupancy estimates.
    pub ewma_alpha: f64,
}

impl DcbScenario {
    /// A scenario with the default traffic model, a 20 000 s horizon and
    /// `α = 0.05` occupancy smoothing.
    pub fn new(
        graph: InterferenceGraph,
        alloc: Vec<ChannelAssignment>,
        policy: PolicyKind,
        seed: u64,
    ) -> DcbScenario {
        DcbScenario {
            graph,
            alloc,
            policy,
            params: CtmcParams::default(),
            horizon_s: 20_000.0,
            seed,
            ewma_alpha: 0.05,
        }
    }

    /// Runs the scenario to its horizon and reports. Deterministic: the
    /// report is a pure function of the scenario fields (the run is a
    /// single sequential event loop — `ACORN_THREADS` cannot perturb it,
    /// and `tests/determinism.rs` pins that bit-for-bit).
    pub fn run(&self) -> DcbReport {
        let world = DcbWorld::new(self.graph.clone(), self.alloc.clone());
        let mut sim: Simulation<DcbWorld, DcbEvent> = Simulation::new(world);
        sim.add_process(Box::new(DcbDriver::new(
            self.policy,
            self.params,
            self.seed,
            self.ewma_alpha,
            self.horizon_s,
        )));
        let stats = sim.run(self.horizon_s);
        let w = &sim.world;
        let per_ap_bps = (0..w.graph.len())
            .map(|i| {
                (w.completions20[i] + w.completions40[i]) as f64 * self.params.payload_bits
                    / self.horizon_s
            })
            .collect();
        DcbReport {
            per_ap_bps,
            completions20: w.completions20.clone(),
            completions40: w.completions40.clone(),
            blocked: w.blocked.clone(),
            tx40_time_fraction: w.tx40_time_s.iter().map(|&t| t / self.horizon_s).collect(),
            events: stats.events,
        }
    }
}

/// A dense deployment where bonding decisions genuinely interact: `nx ×
/// ny` APs on a grid with kings-move (8-neighbour) interference
/// adjacency and only `n_channels` 20 MHz channels to share. Interior
/// cells contend with eight neighbours, the conflict graph is one
/// connected component (no district isolation to hide behind), and with
/// `n_channels = 4` a 3×3 block already cannot colour itself
/// conflict-free — exactly the high-density overlapping-BSS regime the
/// DCB papers study, and the substrate ROADMAP item 2's cross-zone
/// negotiation asked for.
#[derive(Debug, Clone, Copy)]
pub struct OverlappingBssGrid {
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Clients per AP.
    pub clients_per_ap: usize,
    /// 20 MHz channels available to everyone.
    pub n_channels: u8,
    /// Seed for the deterministic client SNR draws.
    pub seed: u64,
}

impl OverlappingBssGrid {
    /// The kings-move interference graph (one connected component for
    /// any non-degenerate grid).
    pub fn graph(&self) -> InterferenceGraph {
        let n = self.nx * self.ny;
        let mut g = InterferenceGraph::new(n);
        let id = |x: usize, y: usize| y * self.nx + x;
        for y in 0..self.ny {
            for x in 0..self.nx {
                for (dx, dy) in [(1i64, 0i64), (0, 1), (1, 1), (1, -1)] {
                    let (nx2, ny2) = (x as i64 + dx, y as i64 + dy);
                    if nx2 >= 0 && ny2 >= 0 && (nx2 as usize) < self.nx && (ny2 as usize) < self.ny
                    {
                        g.add_edge(ApId(id(x, y)), ApId(id(nx2 as usize, ny2 as usize)));
                    }
                }
            }
        }
        g
    }

    /// The shared channel plan.
    pub fn plan(&self) -> ChannelPlan {
        ChannelPlan::restricted(self.n_channels)
    }

    /// The throughput model: per-AP client SNRs drawn deterministically
    /// in 12–36 dB (a mix of bond-loving strong links and width-averse
    /// weak ones).
    pub fn model(&self) -> NetworkModel {
        let n = self.nx * self.ny;
        let cells = (0..n)
            .map(|ap| {
                let mut rng = FaultRng::new(self.seed, ap as u64, SALT_SNR);
                (0..self.clients_per_ap)
                    .map(|c| ClientSnr {
                        client: ap * self.clients_per_ap + c,
                        snr20_db: 12.0 + 24.0 * rng.u01(),
                    })
                    .collect()
            })
            .collect();
        NetworkModel::new(self.graph(), cells)
    }

    /// The epoch allocation ACORN's greedy (with restarts) hands this
    /// deployment — the ceiling the DCB policies then narrow
    /// per-transmission.
    pub fn epoch_alloc(&self, restarts: usize) -> Vec<ChannelAssignment> {
        let model = self.model();
        allocate_with_restarts(
            &model,
            &self.plan(),
            &AllocationConfig::default(),
            restarts,
            self.seed,
        )
        .assignments
    }

    /// A ready-to-run DCB scenario over this deployment.
    pub fn scenario(&self, policy: PolicyKind, restarts: usize) -> DcbScenario {
        DcbScenario::new(self.graph(), self.epoch_alloc(restarts), policy, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k2_shared() -> (InterferenceGraph, Vec<ChannelAssignment>) {
        // Two neighbours whose 40 MHz allocations overlap on channel 1:
        // bonding is only ever possible while the other is silent.
        let g = InterferenceGraph::complete(2);
        let alloc = vec![
            match ChannelAssignment::bonded(Channel20(0)) {
                Some(b) => b,
                None => unreachable!("even lower"),
            },
            ChannelAssignment::Single(Channel20(1)),
        ];
        (g, alloc)
    }

    #[test]
    fn static_primary_never_transmits_at_40() {
        let (g, alloc) = k2_shared();
        let mut s = DcbScenario::new(g, alloc, PolicyKind::StaticPrimary, 7);
        s.horizon_s = 2_000.0;
        let r = s.run();
        assert_eq!(r.completions40.iter().sum::<u64>(), 0);
        assert!(r.completions20.iter().sum::<u64>() > 0);
        assert!(r.tx40_time_fraction.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn always_max_bonds_when_the_spectrum_allows() {
        let (g, alloc) = k2_shared();
        let mut s = DcbScenario::new(g, alloc, PolicyKind::AlwaysMax, 7);
        s.horizon_s = 2_000.0;
        let r = s.run();
        assert!(r.completions40[0] > 0, "AP 0 must bond sometimes");
        assert_eq!(r.completions40[1], 0, "20 MHz allocation cannot widen");
    }

    #[test]
    fn runs_are_reproducible() {
        let grid = OverlappingBssGrid {
            nx: 3,
            ny: 3,
            clients_per_ap: 2,
            n_channels: 4,
            seed: 42,
        };
        let mut s = grid.scenario(PolicyKind::OccupancyAware(0.3), 4);
        s.horizon_s = 1_000.0;
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
    }

    #[test]
    fn dense_grid_is_one_connected_component() {
        let grid = OverlappingBssGrid {
            nx: 4,
            ny: 4,
            clients_per_ap: 1,
            n_channels: 4,
            seed: 1,
        };
        let g = grid.graph();
        assert_eq!(
            g.connected_components().len(),
            1,
            "spectrum is genuinely shared — no district isolation"
        );
        // Interior cells contend with all eight neighbours.
        assert_eq!(g.degree(ApId(5)), 8);
        // And the epoch plan cannot separate everyone: some edge shares
        // spectrum, so DCB has real work to do.
        let alloc = grid.epoch_alloc(4);
        let conflicted =
            (0..16).any(|i| g.neighbors(ApId(i)).any(|j| alloc[i].conflicts(alloc[j.0])));
        assert!(
            conflicted,
            "4 channels cannot isolate a kings-move 4×4 grid"
        );
    }

    #[test]
    fn probabilistic_interpolates_bonding_usage() {
        let (g, alloc) = k2_shared();
        let run = |p: f64| {
            let mut s =
                DcbScenario::new(g.clone(), alloc.clone(), PolicyKind::Probabilistic(p), 11);
            s.horizon_s = 4_000.0;
            s.run().completions40[0]
        };
        let none = run(0.0);
        let half = run(0.5);
        let full = run(1.0);
        assert_eq!(none, 0);
        assert!(half > 0 && full > half, "{none} {half} {full}");
    }
}
