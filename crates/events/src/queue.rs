//! The event queue: a binary heap under a **total** `(time_bits, seq)`
//! ordering.
//!
//! Two design rules make the queue deterministic where ad-hoc time loops
//! are not:
//!
//! * **No unwrapped `partial_cmp`.** Timestamps are validated once at
//!   scheduling time (finite, non-negative, never in the past) and then
//!   compared as raw `u64` bit patterns — for non-negative finite `f64`s
//!   the IEEE-754 bit order *is* the numeric order, so the heap needs no
//!   floating-point comparison at all and a NaN can never panic a sort.
//! * **No same-timestamp nondeterminism.** Every scheduled event gets a
//!   monotonically increasing sequence number, and ties in time break by
//!   it: simultaneous events fire in exactly the order they were
//!   scheduled, on every run, on every machine.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, returned by the `schedule_*` methods and
/// accepted by [`EventQueue::cancel`]. The wrapped value is the event's
/// global sequence number — the tie-break half of the total ordering —
/// which doubles as a stable per-event seed-derivation point for
/// randomized actors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// A popped event: when it fired, its queue position, and its payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fired<E> {
    /// Firing time (the queue's clock advances to exactly this value).
    pub time: f64,
    /// The event's global sequence number (== its [`EventId`]).
    pub seq: u64,
    /// The scheduled payload.
    pub event: E,
}

/// Max-heap entry; `Ord` is implemented on `(time_bits, seq)` only, so
/// the payload type needs no ordering of its own.
struct Entry<E> {
    time_bits: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_bits == other.time_bits && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) on top.
        (other.time_bits, other.seq).cmp(&(self.time_bits, self.seq))
    }
}

/// Deterministic event queue with a virtual clock and cancellable timers.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers cancelled while still in the heap (lazily dropped
    /// on pop — the standard tombstone scheme).
    cancelled: HashSet<u64>,
    /// Sequence numbers currently pending (scheduled, not yet fired or
    /// cancelled); never iterated, so the hash order is unobservable.
    pending: HashSet<u64>,
    now: f64,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `t = 0`.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            now: 0.0,
            next_seq: 0,
        }
    }

    /// Current virtual time (the firing time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The sequence number the next scheduled event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of pending (scheduled, neither fired nor cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedules `event` at absolute time `t`.
    ///
    /// # Panics
    /// If `t` is NaN/infinite or earlier than the current clock —
    /// timestamps are validated here, once, so the ordering machinery
    /// never has to handle them.
    pub fn schedule_at(&mut self, t: f64, event: E) -> EventId {
        assert!(t.is_finite(), "event time must be finite, got {t}");
        assert!(
            t >= self.now,
            "cannot schedule into the past: t = {t} < now = {}",
            self.now
        );
        // now starts at 0 and only moves forward, so t >= 0 and the bit
        // pattern of t orders exactly like its numeric value.
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry {
            time_bits: t.to_bits(),
            seq,
            event,
        });
        EventId(seq)
    }

    /// Schedules `event` `dt` seconds from now (`dt ≥ 0`).
    pub fn schedule_after(&mut self, dt: f64, event: E) -> EventId {
        self.schedule_at(self.now + dt, event)
    }

    /// Cancels a pending event. Returns `true` if it was still pending
    /// (i.e. this call actually stopped it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Firing time of the next pending event, without popping it.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.skim_cancelled();
        self.heap.peek().map(|e| f64::from_bits(e.time_bits))
    }

    /// Pops the next pending event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        self.skim_cancelled();
        let e = self.heap.pop()?;
        self.pending.remove(&e.seq);
        self.now = f64::from_bits(e.time_bits);
        Some(Fired {
            time: self.now,
            seq: e.seq,
            event: e.event,
        })
    }

    /// Drops cancelled entries sitting on top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.len(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|f| f.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        // All at the same instant — a stable total order must fall back
        // to scheduling order, not heap internals.
        for i in 0..100 {
            q.schedule_at(5.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|f| f.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seq_tiebreak_interleaves_with_distinct_times() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, "late-first");
        q.schedule_at(1.0, "early");
        q.schedule_at(2.0, "late-second");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|f| f.event)).collect();
        assert_eq!(order, vec!["early", "late-first", "late-second"]);
    }

    #[test]
    fn cancellation_suppresses_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|f| f.event), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(1.0, "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    fn relative_scheduling_accumulates_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(1.5, ());
        q.pop();
        let id = q.schedule_after(1.5, ());
        assert_eq!(id, EventId(1));
        assert_eq!(q.pop().map(|f| f.time), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_is_rejected_at_scheduling() {
        EventQueue::new().schedule_at(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    fn bit_order_matches_numeric_order_for_times() {
        // The invariant the whole queue rests on.
        let times: [f64; 7] = [0.0, 1e-300, 0.1, 1.0, 1.5, 1e9, 1e300];
        for w in times.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }
}
