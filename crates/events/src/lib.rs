//! # acorn-events — deterministic discrete-event runtime
//!
//! The simulation kernel the ACORN evaluation scenarios run on: a
//! virtual clock, a binary-heap event queue under a **total**
//! `(time_bits, seq)` ordering, cancellable timers, pluggable
//! [`Process`] actors, and a first-class [`Telemetry`] recorder
//! (counters, gauges, time-series, histograms) with JSON snapshot
//! export.
//!
//! ## Why a kernel
//!
//! The fixed-step and sort-a-vec time loops the simulations grew up with
//! had two structural problems this crate removes at the type level:
//!
//! 1. **Partial orderings.** Sorting event vectors by an unwrapped
//!    `f64::partial_cmp` panics on NaN and, worse, leaves
//!    same-timestamp ordering to the sort's whims. The
//!    [`EventQueue`] validates times once at scheduling and orders by
//!    `(f64::to_bits(t), seq)` — total, NaN-free, and stable: ties fire
//!    in scheduling order, always.
//! 2. **Closed worlds.** A hand-rolled loop hard-codes its event kinds;
//!    composing churn *and* mobility *and* environmental drift meant a
//!    new loop. Here each mechanism is a [`Process`] over a shared
//!    world, and scenarios are compositions ([`CompositeScenario`]).
//!
//! Determinism is the load-bearing property: a run is a pure function of
//! the world and the processes added to it. Randomized actors derive
//! per-event seeds from the event's globally unique sequence number
//! ([`mix_seed`]), and epoch-level fan-out (re-allocation restarts) rides
//! the evaluation engine's order-stable thread pool — so every output
//! bit is identical at any `ACORN_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acorn;
pub mod city;
pub mod cityfaults;
pub mod dcb;
pub mod faults;
pub mod queue;
pub mod sim;
pub mod telemetry;

pub use acorn::{
    AcornEvent, AcornWorld, CompositeReport, CompositeScenario, DriftProcess, DriftSpec,
    MobilityProcess, MobilitySpec, ReallocRecord, ReallocationTimer, SeedPolicy, SessionProcess,
};
pub use city::{
    CityDriftProcess, CityReallocationTimer, CityReport, CityScenario, CitySessionProcess,
    CityWorld,
};
pub use cityfaults::CityFaultProcess;
pub use dcb::{DcbDriver, DcbEvent, DcbReport, DcbScenario, DcbWorld, OverlappingBssGrid};
pub use faults::{
    corrupt_frame, FaultPlan, FaultProcess, FaultRng, GauntletCounters, ResilienceReport,
    FAULT_GAUNTLET,
};
pub use queue::{EventId, EventQueue, Fired};
pub use sim::{
    mix_seed, Ctx, Envelope, EventLog, LogEntry, Process, ProcessId, RunStats, Simulation,
};
pub use telemetry::{Histogram, Series, Telemetry, TelemetrySnapshot};
