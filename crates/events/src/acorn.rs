//! The standard ACORN process library: session churn, periodic
//! re-allocation, pedestrian mobility, and slow shadowing drift as
//! composable [`Process`]es over a shared [`AcornWorld`].
//!
//! Each process owns one real-world mechanism from the paper's operating
//! regime:
//!
//! * [`SessionProcess`] — WLAN session arrivals/departures from a trace
//!   (§3's CRAWDAD analysis), driving Algorithm 1 association.
//! * [`ReallocationTimer`] — the every-`T` Algorithm 2 re-run ("we run
//!   our channel allocation algorithm every 30 minutes", §4.2). Restart
//!   fan-out rides the evaluation engine's thread pool via
//!   `reallocate_with_restarts`, and per-epoch seeds come from a
//!   [`SeedPolicy`], so results are bit-identical at any `ACORN_THREADS`.
//! * [`MobilityProcess`] — a client walking a [`Trajectory`] with
//!   periodic SNR re-sampling and opportunistic width adaptation (§5.2).
//! * [`DriftProcess`] — slow environmental shadowing drift (the
//!   [`drift_phase`](acorn_topology::pathloss::LogDistance::drift_phase)
//!   rotation), a scenario class the fixed-trace simulations could not
//!   express: link gains decorrelate over hours while every draw stays a
//!   pure function of the seed.
//!
//! [`CompositeScenario`] wires any subset of them into one
//! [`Simulation`] and returns the telemetry snapshot plus the executed
//! event log — the object the thread-count determinism tests compare.

use crate::faults::{FaultPlan, FaultProcess, ResilienceReport};
use crate::sim::{mix_seed, Ctx, Process, Simulation};
use crate::telemetry::{Histogram, TelemetrySnapshot};
use acorn_core::{choose_ap_obs, AcornController, NetworkState};
use acorn_obs::RecordingSink;
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment, ClientId, Trajectory, Wlan};
use acorn_traces::Session;

/// The shared world every ACORN process operates on.
pub struct AcornWorld {
    /// The deployment (mutable: mobility moves clients, drift rotates the
    /// shadowing phase).
    pub wlan: Wlan,
    /// The controller.
    pub ctl: AcornController,
    /// Its mutable network state (assignments, associations, widths).
    pub state: NetworkState,
    /// One record per re-allocation epoch, in firing order.
    pub realloc_log: Vec<ReallocRecord>,
    /// Liveness per AP — all `true` unless a fault process crashes one.
    pub ap_up: Vec<bool>,
    /// The last assignment + width vector a *healthy* re-allocation epoch
    /// deployed; safe mode restores it instead of re-optimizing on a
    /// partial view of the network.
    pub last_good: Option<(Vec<ChannelAssignment>, Vec<ChannelWidth>)>,
}

impl AcornWorld {
    /// A world with a fresh controller state seeded from `seed`.
    pub fn new(wlan: Wlan, ctl: AcornController, seed: u64) -> AcornWorld {
        let state = ctl.new_state(&wlan, seed);
        let n_aps = wlan.aps.len();
        AcornWorld {
            wlan,
            ctl,
            state,
            realloc_log: Vec::new(),
            ap_up: vec![true; n_aps],
            last_good: None,
        }
    }

    /// Clients currently associated.
    pub fn active_clients(&self) -> usize {
        self.state.assoc.iter().filter(|a| a.is_some()).count()
    }

    /// Whether every AP is up.
    pub fn all_up(&self) -> bool {
        self.ap_up.iter().all(|&u| u)
    }

    /// APs currently down.
    pub fn down_count(&self) -> usize {
        self.ap_up.iter().filter(|&&u| !u).count()
    }
}

/// What one [`ReallocationTimer`] firing recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReallocRecord {
    /// Firing time (s).
    pub t_s: f64,
    /// Clients associated at that instant.
    pub active_clients: usize,
    /// Predicted network throughput before the re-allocation (bits/s).
    pub before_bps: f64,
    /// Predicted network throughput after (bits/s).
    pub after_bps: f64,
    /// Channel switches performed.
    pub switches: usize,
    /// Whether this epoch ran in safe mode (degraded network: the
    /// controller kept the last-known-good plan instead of re-optimizing).
    pub degraded: bool,
    /// APs down when the epoch fired (the watchdog cross-checks
    /// `degraded == (down_aps > 0)` on safe-mode-enabled runs).
    pub down_aps: usize,
}

/// Event payload shared by the standard processes. Every variant carries
/// plain data, so the whole scenario state is `(world, processes, queue)`
/// and nothing hides in closures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcornEvent {
    /// A session starts: `client` joins the WLAN.
    Arrive(usize),
    /// A session ends: `client` leaves.
    Depart(usize),
    /// Periodic Algorithm 2 re-allocation.
    Reallocate,
    /// Mobility position update + width re-evaluation.
    MobilitySample,
    /// One step of slow shadowing drift.
    DriftStep,
    /// An AP crashes (fault layer).
    ApCrash(usize),
    /// A crashed AP finishes repair and comes back cold (fault layer).
    ApRestart(usize),
    /// One control round: measurements, beacons, IAPP, CSA, detection
    /// (fault layer).
    ControlRound,
    /// A delayed control-message copy arrives (fault layer).
    DeliverMsg(u32),
    /// One streaming workload-generator tick (soak layer): draw the next
    /// arrival window without materializing a trace.
    WorkloadTick,
    /// One telemetry probe sample (soak layer): sketch-record goodput.
    ProbeSample,
    /// One online invariant check (soak layer).
    WatchdogCheck,
}

/// Drives Algorithm 1 association from a session trace.
///
/// At `start`, schedules an [`AcornEvent::Arrive`]/[`AcornEvent::Depart`]
/// pair per session (departures clamped to the horizon), in session
/// order — which fixes the dispatch order of simultaneous events to
/// match the trace order. Telemetry: `sessions.arrivals` /
/// `sessions.departures` counters, a `clients.active` gauge, and an
/// `association.delay_s` histogram of each arriving client's own
/// delivery delay at its chosen AP (the latency term Algorithm 1
/// optimizes).
pub struct SessionProcess {
    /// The session trace.
    pub sessions: Vec<Session>,
    /// Simulated horizon (s); arrivals at or past it never fire.
    pub horizon_s: f64,
    /// Run the §5.2 width adaptation after every association change.
    pub adapt_widths: bool,
}

impl Process<AcornWorld, AcornEvent> for SessionProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        for s in &self.sessions {
            assert!(
                s.client < ctx.world.wlan.clients.len(),
                "session client {} has no position in the deployment",
                s.client
            );
        }
        ctx.telemetry.register_histogram(
            "association.delay_s",
            // Delivery delays for 1500-byte payloads run sub-millisecond
            // at high MCS to a few ms near the floor; overflow catches
            // retry-dominated stragglers.
            Histogram::linear(0.0, 0.01, 50).expect("static histogram bounds"),
        );
        for i in 0..self.sessions.len() {
            let s = self.sessions[i];
            if s.start_s < self.horizon_s {
                ctx.schedule_at(s.start_s, AcornEvent::Arrive(s.client));
                ctx.schedule_at(s.end_s().min(self.horizon_s), AcornEvent::Depart(s.client));
            }
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        match *event {
            AcornEvent::Arrive(c) => {
                // Algorithm 1, unrolled from `AcornController::associate`
                // so the chosen candidate's own delay is available for
                // telemetry without recomputing the candidate set.
                let w = &mut *ctx.world;
                let mut candidates = w.ctl.candidates_for(&w.wlan, &w.state, ClientId(c));
                // Dead APs don't beacon, so clients never see them as
                // candidates. A no-op while every AP is up.
                candidates.retain(|cand| w.ap_up[cand.ap.0]);
                let mut delay = None;
                // Candidate-ranking metrics (assoc.*) go through an
                // ephemeral sink drained into the run-wide recorder —
                // event handlers are sequential, so this is
                // deterministic by construction.
                let sink = RecordingSink::new();
                if let Some(i) = choose_ap_obs(&candidates, &sink) {
                    w.state.assoc[c] = Some(candidates[i].ap);
                    delay = Some(candidates[i].delay_u_s);
                }
                sink.drain_into(ctx.telemetry);
                if self.adapt_widths {
                    w.ctl.adapt_widths(&w.wlan, &mut w.state);
                }
                ctx.telemetry.inc("sessions.arrivals");
                if let Some(d) = delay {
                    ctx.telemetry.observe("association.delay_s", d);
                }
            }
            AcornEvent::Depart(c) => {
                let w = &mut *ctx.world;
                w.ctl.deassociate(&mut w.state, ClientId(c));
                if self.adapt_widths {
                    w.ctl.adapt_widths(&w.wlan, &mut w.state);
                }
                ctx.telemetry.inc("sessions.departures");
            }
            _ => {}
        }
        let active = ctx.world.active_clients() as f64;
        ctx.telemetry.set_gauge("clients.active", active);
    }
}

/// Where a [`ReallocationTimer`] epoch gets its restart seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeedPolicy {
    /// Use `next`, then increment by one — the historical churn-loop
    /// behaviour (`seed + 1`, `seed + 2`, …), kept for bit-compatibility
    /// with pre-kernel outputs.
    Sequential {
        /// The next epoch's seed.
        next: u64,
    },
    /// Derive each epoch's seed as `mix_seed(base, event_seq)` — the
    /// preferred policy for new scenarios: the event's globally unique
    /// sequence number keys an independent splitmix64 stream, so adding
    /// or removing unrelated processes never shifts which stream an
    /// epoch consumes in a structurally unchanged schedule.
    FromEventSeq {
        /// Base seed mixed with the firing event's sequence number.
        base: u64,
    },
}

impl SeedPolicy {
    pub(crate) fn epoch_seed(&mut self, event_seq: u64) -> u64 {
        match self {
            SeedPolicy::Sequential { next } => {
                let s = *next;
                *next = next.wrapping_add(1);
                s
            }
            SeedPolicy::FromEventSeq { base } => mix_seed(*base, event_seq),
        }
    }
}

/// Periodic Algorithm 2 re-allocation (the paper's every-30-minutes
/// controller loop). Fires at `period_s`, `2·period_s`, … strictly below
/// `horizon_s`, self-scheduling each next tick. Each firing records a
/// [`ReallocRecord`] into the world and telemetry series
/// `network_bps.before`/`network_bps.after`, a `switches` histogram, and
/// a `reallocations` counter.
pub struct ReallocationTimer {
    /// Re-allocation period `T` (s).
    pub period_s: f64,
    /// Horizon (s); ticks at or past it never fire.
    pub horizon_s: f64,
    /// Random restarts per epoch (fanned over the thread pool).
    pub restarts: usize,
    /// Run the width adaptation after each re-allocation.
    pub adapt_widths: bool,
    /// Per-epoch seed derivation.
    pub seed_policy: SeedPolicy,
    /// Degrade gracefully when APs are down: keep the last-known-good
    /// plan, skip re-optimization, and force cells bordering a dead AP to
    /// 20 MHz. Off, the timer re-optimizes blindly every epoch (the
    /// pre-fault-layer behaviour).
    pub safe_mode: bool,
}

impl Process<AcornWorld, AcornEvent> for ReallocationTimer {
    fn start(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        ctx.telemetry.register_histogram(
            "switches",
            Histogram::linear(0.0, 32.0, 32).expect("static histogram bounds"),
        );
        if self.period_s < self.horizon_s {
            ctx.schedule_at(self.period_s, AcornEvent::Reallocate);
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::Reallocate);
        let t = ctx.now();
        let seed = self.seed_policy.epoch_seed(ctx.event_seq());
        let w = &mut *ctx.world;
        // With every AP up this is bit-identical to the plain total, so
        // fault-free runs keep their golden fingerprints.
        let before = w.ctl.total_throughput_bps_up(&w.wlan, &w.state, &w.ap_up);
        let active = w.active_clients();
        let degraded = self.safe_mode && !w.all_up();
        let (after, switches) = if degraded {
            // Safe mode: a partial network means a partial view — any
            // re-optimization now would chase phantom interference. Keep
            // the last plan a healthy epoch deployed and shed the risky
            // 40 MHz bonds next to the hole.
            if let Some((assignments, widths)) = w.last_good.clone() {
                w.state.assignments = assignments;
                w.state.operating_width = widths;
            }
            let graph = w.wlan.ap_only_interference_graph();
            for ap in 0..w.wlan.aps.len() {
                if w.ap_up[ap] && graph.neighbors(ApId(ap)).any(|n| !w.ap_up[n.0]) {
                    w.state.operating_width[ap] = ChannelWidth::Ht20;
                }
            }
            ctx.telemetry
                .inc(acorn_obs::names::CONTROLLER_SAFE_MODE_EPOCHS);
            let after = w.ctl.total_throughput_bps_up(&w.wlan, &w.state, &w.ap_up);
            (after, 0)
        } else {
            // The epoch's alloc.*/model.* metrics ride an ephemeral sink
            // shared across the restart fan-out (counter adds commute,
            // so the totals are thread-invariant) and drain into the
            // run-wide recorder here, sequentially.
            let sink = RecordingSink::new();
            let r = w.ctl.reallocate_with_restarts_obs(
                &w.wlan,
                &mut w.state,
                self.restarts,
                seed,
                &sink,
            );
            sink.drain_into(ctx.telemetry);
            if self.adapt_widths {
                w.ctl.adapt_widths(&w.wlan, &mut w.state);
            }
            if self.safe_mode {
                w.last_good = Some((w.state.assignments.clone(), w.state.operating_width.clone()));
            }
            (r.total_bps, r.switches)
        };
        let record = ReallocRecord {
            t_s: t,
            active_clients: active,
            before_bps: before,
            after_bps: after,
            switches,
            degraded,
            down_aps: w.down_count(),
        };
        w.realloc_log.push(record);
        ctx.telemetry.inc("reallocations");
        ctx.telemetry.record("network_bps.before", t, before);
        ctx.telemetry.record("network_bps.after", t, after);
        ctx.telemetry.observe("switches", switches as f64);
        let next = t + self.period_s;
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::Reallocate);
        }
    }
}

/// Walks one client along a [`Trajectory`], re-sampling its position
/// every `sample_period_s` (first sample at `t = 0`) and optionally
/// letting its AP re-evaluate the §5.2 width fallback. Telemetry:
/// `mobility.snr20_db` series (the mobile's best HT20 SNR over all APs)
/// and a `mobility.samples` counter.
pub struct MobilityProcess {
    /// The walking client.
    pub client: ClientId,
    /// Its walk.
    pub trajectory: Trajectory,
    /// Position-update period (s).
    pub sample_period_s: f64,
    /// Horizon (s); samples past it never fire.
    pub horizon_s: f64,
    /// Run the width adaptation after each position update.
    pub adapt_widths: bool,
}

impl Process<AcornWorld, AcornEvent> for MobilityProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        assert!(
            self.client.0 < ctx.world.wlan.clients.len(),
            "mobile client {} has no position in the deployment",
            self.client.0
        );
        ctx.schedule_at(0.0, AcornEvent::MobilitySample);
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::MobilitySample);
        let t = ctx.now();
        let w = &mut *ctx.world;
        w.wlan.clients[self.client.0].pos = self.trajectory.position_at(t);
        if self.adapt_widths {
            w.ctl.adapt_widths(&w.wlan, &mut w.state);
        }
        let snr = (0..w.wlan.aps.len())
            .map(|i| {
                w.wlan
                    .snr_db(ApId(i), self.client, acorn_phy::ChannelWidth::Ht20)
            })
            .fold(f64::NEG_INFINITY, f64::max);
        ctx.telemetry.record("mobility.snr20_db", t, snr);
        ctx.telemetry.inc("mobility.samples");
        let next = t + self.sample_period_s;
        if next <= self.horizon_s {
            ctx.schedule_at(next, AcornEvent::MobilitySample);
        }
    }
}

/// Slow environmental shadowing drift: every `period_s`, advances the
/// path-loss model's
/// [`drift_phase`](acorn_topology::pathloss::LogDistance::drift_phase) by
/// `phase_step_rad`, smoothly decorrelating every link's shadowing draw
/// from its initial value while keeping the marginal distribution — and
/// full determinism — intact. Models the hours-scale environment changes
/// (doors, furniture, crowds) that motivate periodic re-allocation in
/// the first place. Telemetry: `drift.phase_rad` gauge, `drift.steps`
/// counter.
pub struct DriftProcess {
    /// Drift step period (s).
    pub period_s: f64,
    /// Horizon (s); steps past it never fire.
    pub horizon_s: f64,
    /// Phase advance per step (radians).
    pub phase_step_rad: f64,
}

impl Process<AcornWorld, AcornEvent> for DriftProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        if self.period_s <= self.horizon_s {
            ctx.schedule_at(self.period_s, AcornEvent::DriftStep);
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, AcornWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::DriftStep);
        let t = ctx.now();
        ctx.world.wlan.pathloss.drift_phase += self.phase_step_rad;
        let phase = ctx.world.wlan.pathloss.drift_phase;
        ctx.telemetry.set_gauge("drift.phase_rad", phase);
        ctx.telemetry.inc("drift.steps");
        let next = t + self.period_s;
        if next <= self.horizon_s {
            ctx.schedule_at(next, AcornEvent::DriftStep);
        }
    }
}

/// Mobility parameters for a [`CompositeScenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilitySpec {
    /// The walking client.
    pub client: ClientId,
    /// Its walk.
    pub trajectory: Trajectory,
    /// Position-update period (s).
    pub sample_period_s: f64,
}

/// Drift parameters for a [`CompositeScenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Drift step period (s).
    pub period_s: f64,
    /// Phase advance per step (radians).
    pub phase_step_rad: f64,
}

/// A full scenario: session churn + periodic re-allocation, optionally
/// with a mobile client, shadowing drift, and a fault-injection layer,
/// over one deployment. Process registration order is fixed (sessions,
/// timer, mobility, drift, faults), which pins every event's sequence
/// number and therefore the whole dispatch order — the fault process
/// registering *last* keeps fault-free schedules (and their golden
/// fingerprints) byte-identical to pre-fault builds.
#[derive(Clone)]
pub struct CompositeScenario {
    /// The deployment.
    pub wlan: Wlan,
    /// The session trace.
    pub sessions: Vec<Session>,
    /// Simulated horizon (s).
    pub horizon_s: f64,
    /// Re-allocation period `T` (s).
    pub reallocation_period_s: f64,
    /// Restarts per re-allocation epoch.
    pub restarts: usize,
    /// Run the §5.2 width adaptation after association/mobility events.
    pub adapt_widths: bool,
    /// Optional walking client.
    pub mobility: Option<MobilitySpec>,
    /// Optional shadowing drift.
    pub drift: Option<DriftSpec>,
    /// Optional fault-injection layer. Setting it (even to a benign plan)
    /// runs the full control-plane-on-the-wire machinery and switches the
    /// re-allocation timer to safe mode.
    pub faults: Option<FaultPlan>,
    /// Master seed (initial assignment + per-epoch restart streams).
    pub seed: u64,
    /// Record the executed-event log (costs a `String` per event).
    pub record_log: bool,
}

/// What a [`CompositeScenario`] run produced.
pub struct CompositeReport {
    /// Events dispatched and final virtual time.
    pub stats: crate::sim::RunStats,
    /// The frozen telemetry.
    pub telemetry: TelemetrySnapshot,
    /// The executed-event log (present iff `record_log` was set).
    pub log: Option<crate::sim::EventLog>,
    /// One record per re-allocation epoch.
    pub realloc: Vec<ReallocRecord>,
    /// The final controller state.
    pub final_state: NetworkState,
    /// Fault-layer aggregates (present iff `faults` was set). The golden
    /// comparison fields are zero unless
    /// [`run_resilience`](CompositeScenario::run_resilience) produced the
    /// report.
    pub resilience: Option<ResilienceReport>,
}

impl CompositeScenario {
    /// Runs the scenario under `ctl` to its horizon.
    pub fn run(&self, ctl: &AcornController) -> CompositeReport {
        let world = AcornWorld::new(self.wlan.clone(), ctl.clone(), self.seed);
        let mut sim: Simulation<AcornWorld, AcornEvent> = Simulation::new(world);
        sim.record_events(self.record_log);
        sim.add_process(Box::new(SessionProcess {
            sessions: self.sessions.clone(),
            horizon_s: self.horizon_s,
            adapt_widths: self.adapt_widths,
        }));
        sim.add_process(Box::new(ReallocationTimer {
            period_s: self.reallocation_period_s,
            horizon_s: self.horizon_s,
            restarts: self.restarts,
            adapt_widths: self.adapt_widths,
            // With faults on, epoch seeds count epochs rather than events:
            // a faulty run and its golden twin schedule different event
            // interleavings (delayed deliveries consume sequence numbers),
            // and the resilience comparison is only meaningful if both
            // draw identical per-epoch restart streams.
            seed_policy: if self.faults.is_some() {
                SeedPolicy::Sequential {
                    next: self.seed.wrapping_add(1),
                }
            } else {
                SeedPolicy::FromEventSeq { base: self.seed }
            },
            safe_mode: self.faults.is_some(),
        }));
        if let Some(m) = self.mobility {
            sim.add_process(Box::new(MobilityProcess {
                client: m.client,
                trajectory: m.trajectory,
                sample_period_s: m.sample_period_s,
                horizon_s: self.horizon_s,
                adapt_widths: self.adapt_widths,
            }));
        }
        if let Some(d) = self.drift {
            sim.add_process(Box::new(DriftProcess {
                period_s: d.period_s,
                horizon_s: self.horizon_s,
                phase_step_rad: d.phase_step_rad,
            }));
        }
        if let Some(plan) = self.faults {
            sim.add_process(Box::new(FaultProcess::new(plan, self.horizon_s)));
        }
        let stats = sim.run(self.horizon_s);
        let resilience = self
            .faults
            .map(|_| ResilienceReport::from_telemetry(&sim.telemetry));
        CompositeReport {
            stats,
            telemetry: sim.telemetry.snapshot(),
            log: sim.event_log().cloned(),
            realloc: std::mem::take(&mut sim.world.realloc_log),
            final_state: sim.world.state.clone(),
            resilience,
        }
    }

    /// Runs the scenario twice — once with its fault plan, once with the
    /// plan's fault-free twin — and returns the faulty report with its
    /// [`ResilienceReport`] golden-comparison fields filled in
    /// (`golden_mean_bps`, `throughput_retained`). The twin keeps the
    /// same seed, control cadence, and detection thresholds, so the only
    /// difference between the runs is the faults themselves.
    pub fn run_resilience(&self, ctl: &AcornController) -> CompositeReport {
        let plan = self.faults.unwrap_or_default();
        let mut faulty = self.clone();
        faulty.faults = Some(plan);
        let mut report = faulty.run(ctl);
        let mut golden = self.clone();
        golden.faults = Some(plan.benign_twin());
        let golden_report = golden.run(ctl);
        if let (Some(r), Some(g)) = (report.resilience.as_mut(), golden_report.resilience) {
            r.golden_mean_bps = g.faulty_mean_bps;
            r.throughput_retained = if g.faulty_mean_bps > 0.0 {
                r.faulty_mean_bps / g.faulty_mean_bps
            } else {
                0.0
            };
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_core::AcornConfig;
    use acorn_topology::{Point, Wlan};

    fn tiny_wlan(n_clients: usize) -> Wlan {
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(60.0, 0.0)],
            (0..n_clients)
                .map(|i| Point::new(10.0 + 5.0 * i as f64, 5.0))
                .collect(),
            5,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    fn sessions() -> Vec<Session> {
        vec![
            Session {
                client: 0,
                start_s: 10.0,
                duration_s: 500.0,
            },
            Session {
                client: 1,
                start_s: 10.0, // simultaneous with client 0's arrival
                duration_s: 100.0,
            },
            Session {
                client: 2,
                start_s: 400.0,
                duration_s: 10_000.0, // clamped to the horizon
            },
        ]
    }

    fn scenario(seed: u64) -> CompositeScenario {
        CompositeScenario {
            wlan: tiny_wlan(4),
            sessions: sessions(),
            horizon_s: 1000.0,
            reallocation_period_s: 300.0,
            restarts: 1,
            adapt_widths: true,
            mobility: Some(MobilitySpec {
                client: ClientId(3),
                trajectory: Trajectory {
                    from: Point::new(5.0, 0.0),
                    to: Point::new(55.0, 0.0),
                    speed_mps: 0.1,
                },
                sample_period_s: 100.0,
            }),
            drift: Some(DriftSpec {
                period_s: 250.0,
                phase_step_rad: 0.05,
            }),
            faults: None,
            seed,
            record_log: true,
        }
    }

    #[test]
    fn composite_runs_all_processes() {
        let ctl = AcornController::new(AcornConfig::default());
        let r = scenario(7).run(&ctl);
        // 3 arrivals + 3 departures + 3 reallocs (300, 600, 900)
        // + 11 mobility samples (0..=1000) + 4 drift steps (250..=1000).
        assert_eq!(r.stats.events, 3 + 3 + 3 + 11 + 4);
        assert_eq!(r.realloc.len(), 3);
        let tel = &r.telemetry;
        let counter = |n: &str| {
            tel.counters
                .iter()
                .find(|c| c.name == n)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(counter("sessions.arrivals"), 3);
        assert_eq!(counter("sessions.departures"), 3);
        assert_eq!(counter("reallocations"), 3);
        assert_eq!(counter("mobility.samples"), 11);
        assert_eq!(counter("drift.steps"), 4);
        assert!(r.final_state.assoc.iter().all(|a| a.is_none()));
    }

    #[test]
    fn composite_is_reproducible() {
        let ctl = AcornController::new(AcornConfig::default());
        let a = scenario(7).run(&ctl);
        let b = scenario(7).run(&ctl);
        assert_eq!(a.log, b.log);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn seed_changes_the_outcome() {
        let ctl = AcornController::new(AcornConfig::default());
        let a = scenario(7).run(&ctl);
        let b = scenario(8).run(&ctl);
        // Different initial assignments make some recorded quantity move.
        assert!(
            a.telemetry != b.telemetry || a.final_state != b.final_state,
            "seeds 7 and 8 produced identical runs"
        );
    }

    #[test]
    fn simultaneous_arrivals_dispatch_in_trace_order() {
        // Clients 0 and 1 arrive at the same instant; the log must show
        // client 0 first (its events were scheduled first).
        let ctl = AcornController::new(AcornConfig::default());
        let r = scenario(7).run(&ctl);
        let log = r.log.unwrap();
        let arrivals: Vec<&str> = log
            .entries
            .iter()
            .filter(|e| e.kind.starts_with("Arrive"))
            .map(|e| e.kind.as_str())
            .collect();
        assert_eq!(arrivals, vec!["Arrive(0)", "Arrive(1)", "Arrive(2)"]);
    }

    #[test]
    fn drift_decorrelates_links_over_the_run() {
        let ctl = AcornController::new(AcornConfig::default());
        let mut sc = scenario(7);
        sc.wlan.pathloss.shadowing_sigma_db = 6.0;
        let with_drift = sc.run(&ctl);
        sc.drift = None;
        let without = sc.run(&ctl);
        let phase = |r: &CompositeReport| {
            r.telemetry
                .gauges
                .iter()
                .find(|g| g.name == "drift.phase_rad")
                .map(|g| g.value)
        };
        assert_eq!(phase(&with_drift), Some(0.05 * 4.0));
        assert_eq!(phase(&without), None);
        // The drifted run sees different SNR samples once the phase moves.
        let snr = |r: &CompositeReport| {
            r.telemetry
                .series
                .iter()
                .find(|s| s.name == "mobility.snr20_db")
                .unwrap()
                .values
                .clone()
        };
        assert_ne!(snr(&with_drift), snr(&without));
    }
}
