//! City-scale ACORN evaluation: an incrementally-maintained spatial
//! world that keeps every event handler local.
//!
//! [`CompositeScenario`](crate::CompositeScenario) recomputes the
//! interference graph, every cell's SNR list, and every AP's beacon from
//! scratch on each event — exact, but O(network) per event, which caps it
//! at a few hundred APs. [`CityScenario`] is the large-deployment
//! counterpart built on this PR's three optimizations:
//!
//! * an AP [`SpatialGrid`] answers "which APs can hear this point?" in
//!   O(neighbours), so association candidate sets and interference-edge
//!   updates never scan the full AP list;
//! * the conflict graph is maintained *incrementally* — static AP–AP
//!   edges from the grid at build time, client-mediated edges as
//!   reference-counted entries updated on arrival/departure — and only
//!   materialized (O(V+E)) when a re-allocation epoch needs a model;
//! * re-allocation runs through the sharded Algorithm 2 fan-out
//!   ([`allocate_sharded_with_restarts_obs`]) over the graph's connected
//!   components, with SNR→goodput queries served by the controller's
//!   memoized [`GoodputTable`](acorn_phy::GoodputTable) when one is
//!   attached.
//!
//! Semantics deliberately localized relative to the exact composite
//! (documented, not accidental):
//!
//! * A client probes only APs within [`CityScenario::candidate_radius_m`]
//!   of its position (the composite probes every AP; distant APs fail the
//!   SNR floor anyway).
//! * The §5.2 width adaptation is evaluated only for the AP whose cell
//!   just changed (arrival/departure) or for all APs after a
//!   re-allocation — never network-wide per event.
//! * Faults and per-client mobility are not part of this scenario class;
//!   client positions are fixed for the run (shadowing drift still
//!   re-samples every active link's SNR).
//!
//! Determinism is inherited wholesale: handlers are sequential, the
//! client-edge multiset lives in `BTreeMap`s (ordered iteration), and the
//! only parallel section is the order-stable sharded restart fan-out — so
//! runs are bit-identical at any `ACORN_THREADS`.

use crate::acorn::{AcornEvent, DriftSpec, ReallocRecord, SeedPolicy};
use crate::cityfaults::CityFaultProcess;
use crate::faults::{FaultPlan, ResilienceReport};
use crate::sim::{Ctx, Process, Simulation};
use crate::telemetry::{Histogram, TelemetrySnapshot};
use acorn_core::{
    allocate_sharded_with_restarts_obs, choose_ap_obs, AcornController, Candidate, ClientSnr,
    NetworkModel, NetworkState, ThroughputModel,
};
use acorn_obs::RecordingSink;
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment, ClientId, InterferenceGraph, SpatialGrid, Wlan};
use acorn_traces::Session;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The incrementally-maintained city world.
pub struct CityWorld {
    /// The deployment (mutable only through shadowing drift).
    pub wlan: Wlan,
    /// The controller (its table, plan, and Algorithm 1/2 knobs).
    pub ctl: AcornController,
    /// Mutable network state (assignments, associations, widths).
    pub state: NetworkState,
    /// Association candidate radius (m).
    pub candidate_radius_m: f64,
    /// One record per re-allocation epoch, in firing order.
    pub realloc_log: Vec<ReallocRecord>,
    /// Liveness per AP — all `true` unless a fault process crashes one.
    /// Dead APs don't beacon, so association skips them.
    pub ap_up: Vec<bool>,
    /// The last assignment + width vector a *healthy* re-allocation epoch
    /// deployed; safe mode restores it instead of re-optimizing on a
    /// partial view of the network.
    pub last_good: Option<(Vec<ChannelAssignment>, Vec<ChannelWidth>)>,
    /// Spatial index over AP positions.
    grid: SpatialGrid,
    /// Static AP–AP conflict edges (both directions, ascending).
    static_adj: Vec<Vec<u32>>,
    /// Client-mediated conflict edges as reference counts: `via_adj[a]`
    /// maps neighbour `b` to the number of associated clients currently
    /// inducing the edge `a–b`. Symmetric.
    via_adj: Vec<BTreeMap<u32, u32>>,
    /// Active clients per AP, in association order.
    cells: Vec<Vec<u32>>,
    /// Cached HT20 SNR of each active client to its AP (refreshed on
    /// drift steps; meaningless for unassociated clients).
    client_snr20: Vec<f64>,
    /// Associated-client count (the composite scans `assoc`; at 10⁵
    /// clients that scan would dominate every event).
    active: usize,
}

impl CityWorld {
    /// Builds the world: spatial index, static AP–AP edges, fresh
    /// controller state seeded from `seed`.
    pub fn new(wlan: Wlan, ctl: AcornController, candidate_radius_m: f64, seed: u64) -> CityWorld {
        assert!(
            candidate_radius_m > 0.0,
            "candidate radius must be positive"
        );
        let state = ctl.new_state(&wlan, seed);
        let r = wlan.radio.carrier_sense_range_m;
        let ap_points: Vec<_> = wlan.aps.iter().map(|a| a.pos).collect();
        let grid = SpatialGrid::build(&ap_points, r.max(1.0));
        let n = wlan.aps.len();
        let static_adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                grid.within(&wlan.aps[i].pos, r)
                    .into_iter()
                    .filter(|&j| j != i)
                    .map(|j| j as u32)
                    .collect()
            })
            .collect();
        CityWorld {
            state,
            candidate_radius_m,
            realloc_log: Vec::new(),
            ap_up: vec![true; n],
            last_good: None,
            grid,
            static_adj,
            via_adj: vec![BTreeMap::new(); n],
            cells: vec![Vec::new(); n],
            client_snr20: vec![f64::NEG_INFINITY; wlan.clients.len()],
            active: 0,
            wlan,
            ctl,
        }
    }

    /// Clients currently associated.
    pub fn active_clients(&self) -> usize {
        self.active
    }

    /// Whether every AP is up.
    pub fn all_up(&self) -> bool {
        self.ap_up.iter().all(|&u| u)
    }

    /// APs currently down.
    pub fn down_count(&self) -> usize {
        self.ap_up.iter().filter(|&&u| !u).count()
    }

    /// Static (AP–AP carrier-sense) neighbours of `ap`, ascending.
    pub fn static_neighbors(&self, ap: usize) -> &[u32] {
        &self.static_adj[ap]
    }

    /// The clients currently in `ap`'s cell, in association order.
    pub fn cell_clients(&self, ap: usize) -> &[u32] {
        &self.cells[ap]
    }

    /// The cached HT20 SNR of client `c` to its AP (meaningless for
    /// unassociated clients).
    pub fn client_snr20_cached(&self, c: usize) -> f64 {
        self.client_snr20[c]
    }

    /// Overwrites client `c`'s cached SNR — the measurement path a fault
    /// process drives (its outlier/NaN gates decide what lands here).
    pub fn set_client_snr20(&mut self, c: usize, snr20_db: f64) {
        self.client_snr20[c] = snr20_db;
    }

    /// Materializes the current conflict graph — identical, edge for
    /// edge, to `wlan.interference_graph(&state.assoc)`: the static grid
    /// edges plus every positively-referenced client-mediated edge.
    pub fn graph_snapshot(&self) -> InterferenceGraph {
        let n = self.wlan.aps.len();
        let mut g = InterferenceGraph::new(n);
        for (i, nbs) in self.static_adj.iter().enumerate() {
            for &j in nbs.iter().filter(|&&j| (j as usize) > i) {
                g.add_edge(ApId(i), ApId(j as usize));
            }
        }
        for (a, nbs) in self.via_adj.iter().enumerate() {
            for (&b, &count) in nbs.range((a as u32 + 1)..) {
                debug_assert!(count > 0, "zero-count edge left in via_adj");
                g.add_edge(ApId(a), ApId(b as usize));
            }
        }
        g
    }

    /// The paper's `M = 1/(|con|+1)` access share of `ap` under the
    /// current dynamic graph and *effective* assignments.
    fn access_share(&self, ap: usize) -> f64 {
        let own = self.state.effective_assignment(ApId(ap));
        let mut con = 0usize;
        for &j in &self.static_adj[ap] {
            if own.conflicts(self.state.effective_assignment(ApId(j as usize))) {
                con += 1;
            }
        }
        for &j in self.via_adj[ap].keys() {
            // Client-mediated neighbours already in static range were
            // counted above.
            if self.static_adj[ap].binary_search(&j).is_ok() {
                continue;
            }
            if own.conflicts(self.state.effective_assignment(ApId(j as usize))) {
                con += 1;
            }
        }
        1.0 / (con as f64 + 1.0)
    }

    /// Sum of the cell's per-client delivery delays at `width` (the
    /// beacon's ATD), from the cached HT20 SNRs.
    fn cell_atd_s(&self, ap: usize, width: ChannelWidth) -> f64 {
        self.cells[ap]
            .iter()
            .map(|&c| {
                self.ctl
                    .delay_from_snr(self.client_snr20[c as usize], width)
            })
            .sum()
    }

    /// Localized §5.2 width adaptation for one AP (same hysteretic rule
    /// as [`AcornController::adapt_widths`]; cell throughput at equal
    /// access share is `k·8·payload/ATD`, so widths compare by `1/ATD`).
    pub fn adapt_width_local(&mut self, ap: usize) {
        if self.state.assignments[ap].width() != ChannelWidth::Ht40 || self.cells[ap].is_empty() {
            return;
        }
        let t40 = self.cell_atd_s(ap, ChannelWidth::Ht40).recip();
        let t20 = self.cell_atd_s(ap, ChannelWidth::Ht20).recip();
        let margin = self.ctl.config.width_hysteresis.max(0.0);
        if margin == 0.0 {
            self.state.operating_width[ap] = if t40 >= t20 {
                ChannelWidth::Ht40
            } else {
                ChannelWidth::Ht20
            };
            return;
        }
        let (t_cur, t_alt, alt) = match self.state.operating_width[ap] {
            ChannelWidth::Ht40 => (t40, t20, ChannelWidth::Ht20),
            ChannelWidth::Ht20 => (t20, t40, ChannelWidth::Ht40),
        };
        if t_alt > t_cur * (1.0 + margin) {
            self.state.operating_width[ap] = alt;
        }
    }

    /// Adds (+1) or removes (−1) the client-mediated edges client `c`
    /// induces between its owner `ap` and every other AP in carrier-sense
    /// range of the client.
    fn update_via_edges(&mut self, c: usize, ap: usize, delta: i32) {
        let r = self.wlan.radio.carrier_sense_range_m;
        for j in self.grid.within(&self.wlan.clients[c].pos, r) {
            if j == ap {
                continue;
            }
            for (x, y) in [(ap, j), (j, ap)] {
                if delta > 0 {
                    *self.via_adj[x].entry(y as u32).or_insert(0) += 1;
                } else {
                    let e = self.via_adj[x]
                        .get_mut(&(y as u32))
                        .expect("departing client's edge must exist");
                    *e -= 1;
                    if *e == 0 {
                        self.via_adj[x].remove(&(y as u32));
                    }
                }
            }
        }
    }

    /// Algorithm 1 over the spatial candidate set. Returns the chosen AP
    /// and the client's own delivery delay there, recording candidate
    /// metrics into `sink`. Dead APs don't beacon, so clients never see
    /// them as candidates — a no-op while every AP is up.
    pub fn associate_obs(&mut self, c: usize, sink: &RecordingSink) -> Option<(usize, f64)> {
        let pos = self.wlan.clients[c].pos;
        let mut candidates = Vec::new();
        let mut snrs = Vec::new();
        for ap in self.grid.within(&pos, self.candidate_radius_m) {
            if !self.ap_up[ap] {
                continue;
            }
            let snr20 = self.wlan.snr_db(ApId(ap), ClientId(c), ChannelWidth::Ht20);
            if snr20 < self.ctl.config.association_snr_floor_db {
                continue;
            }
            let width = self.state.operating_width[ap];
            let d_u = self.ctl.delay_from_snr(snr20, width);
            candidates.push(Candidate {
                ap: ApId(ap),
                k_including_u: self.cells[ap].len() + 1,
                access_share: self.access_share(ap),
                atd_including_u_s: self.cell_atd_s(ap, width) + d_u,
                delay_u_s: d_u,
            });
            snrs.push(snr20);
        }
        let i = choose_ap_obs(&candidates, sink)?;
        let ap = candidates[i].ap.0;
        self.state.assoc[c] = Some(ApId(ap));
        self.client_snr20[c] = snrs[i];
        self.cells[ap].push(c as u32);
        self.active += 1;
        self.update_via_edges(c, ap, 1);
        Some((ap, candidates[i].delay_u_s))
    }

    /// Removes a departing client, unwinding its edges and cell entry.
    /// Returns its former AP.
    pub fn deassociate(&mut self, c: usize) -> Option<usize> {
        let ap = self.state.assoc[c]?.0;
        self.update_via_edges(c, ap, -1);
        self.cells[ap].retain(|&x| x as usize != c);
        self.state.assoc[c] = None;
        self.active -= 1;
        Some(ap)
    }

    /// Builds the throughput model from the maintained structures (the
    /// composite's `build_model` re-derives cells by scanning every
    /// client per AP — O(aps·clients) — which this path exists to avoid).
    pub fn build_model(&self) -> NetworkModel {
        let graph = self.graph_snapshot();
        let cells: Vec<Vec<ClientSnr>> = self
            .cells
            .iter()
            .map(|cell| {
                cell.iter()
                    .map(|&c| ClientSnr {
                        client: c as usize,
                        snr20_db: self.client_snr20[c as usize],
                    })
                    .collect()
            })
            .collect();
        match self.ctl.table() {
            Some(t) => {
                NetworkModel::with_table(graph, cells, Arc::clone(t), self.ctl.config.payload_bytes)
            }
            None => NetworkModel::with_config(
                graph,
                cells,
                self.ctl.config.estimator,
                self.ctl.config.payload_bytes,
            ),
        }
    }

    /// Refreshes every active client's cached SNR (after a drift step
    /// decorrelated the shadowing draws).
    pub fn refresh_snrs(&mut self) {
        for ap in 0..self.cells.len() {
            for i in 0..self.cells[ap].len() {
                let c = self.cells[ap][i] as usize;
                self.client_snr20[c] = self.wlan.snr_db(ApId(ap), ClientId(c), ChannelWidth::Ht20);
            }
        }
    }

    /// `M = 1/(|con|+1)` counting only *live* conflicting neighbours —
    /// dead APs don't transmit, so they cost no airtime.
    pub fn access_share_up(&self, ap: usize) -> f64 {
        let own = self.state.effective_assignment(ApId(ap));
        let mut con = 0usize;
        for &j in &self.static_adj[ap] {
            if self.ap_up[j as usize]
                && own.conflicts(self.state.effective_assignment(ApId(j as usize)))
            {
                con += 1;
            }
        }
        for &j in self.via_adj[ap].keys() {
            if self.static_adj[ap].binary_search(&j).is_ok() {
                continue;
            }
            if self.ap_up[j as usize]
                && own.conflicts(self.state.effective_assignment(ApId(j as usize)))
            {
                con += 1;
            }
        }
        1.0 / (con as f64 + 1.0)
    }

    /// One live cell's goodput under the localized model:
    /// `share · k · 8 · payload / ATD` at the cell's operating width.
    /// Zero for dead or empty cells. O(neighbours) — cheap enough for
    /// per-tick soak probes, unlike a full model build.
    pub fn cell_bps_up(&self, ap: usize) -> f64 {
        if !self.ap_up[ap] || self.cells[ap].is_empty() {
            return 0.0;
        }
        let width = self.state.operating_width[ap];
        let atd = self.cell_atd_s(ap, width);
        if !(atd > 0.0) || !atd.is_finite() {
            return 0.0;
        }
        let k = self.cells[ap].len() as f64;
        self.access_share_up(ap) * k * 8.0 * self.ctl.config.payload_bytes as f64 / atd
    }

    /// Network goodput over live APs only (sum of [`cell_bps_up`]
    /// over all cells) — the quantity the soak probe records and
    /// `throughput_retained` compares across fault profiles.
    ///
    /// [`cell_bps_up`]: CityWorld::cell_bps_up
    pub fn network_bps_up(&self) -> f64 {
        (0..self.wlan.aps.len())
            .map(|ap| self.cell_bps_up(ap))
            .sum()
    }
}

/// Session churn over a [`CityWorld`] — the spatial-index counterpart of
/// [`SessionProcess`](crate::SessionProcess), with identical telemetry
/// names (`sessions.arrivals`, `sessions.departures`, `clients.active`,
/// `association.delay_s`).
pub struct CitySessionProcess {
    /// The session trace.
    pub sessions: Vec<Session>,
    /// Simulated horizon (s).
    pub horizon_s: f64,
    /// Run the localized width adaptation after cell changes.
    pub adapt_widths: bool,
}

impl Process<CityWorld, AcornEvent> for CitySessionProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        for s in &self.sessions {
            assert!(
                s.client < ctx.world.wlan.clients.len(),
                "session client {} has no position in the deployment",
                s.client
            );
        }
        ctx.telemetry.register_histogram(
            "association.delay_s",
            Histogram::linear(0.0, 0.01, 50).expect("static histogram bounds"),
        );
        for i in 0..self.sessions.len() {
            let s = self.sessions[i];
            if s.start_s < self.horizon_s {
                ctx.schedule_at(s.start_s, AcornEvent::Arrive(s.client));
                ctx.schedule_at(s.end_s().min(self.horizon_s), AcornEvent::Depart(s.client));
            }
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        match *event {
            AcornEvent::Arrive(c) => {
                let w = &mut *ctx.world;
                let sink = RecordingSink::new();
                let chosen = w.associate_obs(c, &sink);
                sink.drain_into(ctx.telemetry);
                ctx.telemetry.inc("sessions.arrivals");
                if let Some((ap, delay)) = chosen {
                    if self.adapt_widths {
                        w.adapt_width_local(ap);
                    }
                    ctx.telemetry.observe("association.delay_s", delay);
                }
            }
            AcornEvent::Depart(c) => {
                let w = &mut *ctx.world;
                if let Some(ap) = w.deassociate(c) {
                    if self.adapt_widths {
                        w.adapt_width_local(ap);
                    }
                }
                ctx.telemetry.inc("sessions.departures");
            }
            _ => {}
        }
        ctx.telemetry
            .set_gauge("clients.active", ctx.world.active_clients() as f64);
    }
}

/// Periodic sharded re-allocation over a [`CityWorld`] — the counterpart
/// of [`ReallocationTimer`](crate::ReallocationTimer), with the same
/// telemetry names plus the `alloc.shards` counter the sharded path
/// reports.
pub struct CityReallocationTimer {
    /// Re-allocation period `T` (s).
    pub period_s: f64,
    /// Horizon (s); ticks at or past it never fire.
    pub horizon_s: f64,
    /// Random restarts per shard per epoch.
    pub restarts: usize,
    /// Run the localized width adaptation after each re-allocation.
    pub adapt_widths: bool,
    /// Per-epoch seed derivation.
    pub seed_policy: SeedPolicy,
    /// Degrade gracefully when APs are down: keep the last-known-good
    /// plan, skip re-optimization, and force cells bordering a dead AP to
    /// 20 MHz. Off, the timer re-optimizes blindly every epoch (the
    /// pre-fault-layer behaviour — and bit-identical to it while every
    /// AP is up).
    pub safe_mode: bool,
}

impl Process<CityWorld, AcornEvent> for CityReallocationTimer {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        ctx.telemetry.register_histogram(
            "switches",
            Histogram::linear(0.0, 32.0, 32).expect("static histogram bounds"),
        );
        if self.period_s < self.horizon_s {
            ctx.schedule_at(self.period_s, AcornEvent::Reallocate);
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::Reallocate);
        let t = ctx.now();
        let seed = self.seed_policy.epoch_seed(ctx.event_seq());
        let w = &mut *ctx.world;
        let model = w.build_model();
        // Before/after are the model's own objective (assignment widths):
        // the composite's per-AP effective-width total rebuilds the model
        // once per AP, which is O(n²) and exactly what city mode avoids.
        let before = model.total_bps(&w.state.assignments);
        let active = w.active_clients();
        let degraded = self.safe_mode && !w.all_up();
        let (after, switches) = if degraded {
            // Safe mode: a partial network means a partial view — any
            // re-optimization now would chase phantom interference. Keep
            // the last plan a healthy epoch deployed and shed the risky
            // 40 MHz bonds next to the hole.
            if let Some((assignments, widths)) = w.last_good.clone() {
                w.state.assignments = assignments;
                w.state.operating_width = widths;
            }
            for ap in 0..w.wlan.aps.len() {
                if w.ap_up[ap] && w.static_adj[ap].iter().any(|&n| !w.ap_up[n as usize]) {
                    w.state.operating_width[ap] = ChannelWidth::Ht20;
                }
            }
            ctx.telemetry
                .inc(acorn_obs::names::CONTROLLER_SAFE_MODE_EPOCHS);
            (model.total_bps(&w.state.assignments), 0)
        } else {
            let sink = RecordingSink::new();
            let r = allocate_sharded_with_restarts_obs(
                &model,
                &w.ctl.config.plan,
                w.state.assignments.clone(),
                &w.ctl.config.allocation,
                self.restarts,
                seed,
                &sink,
            );
            w.state.assignments = r.assignments.clone();
            w.state.operating_width = w.state.assignments.iter().map(|a| a.width()).collect();
            if self.adapt_widths {
                for ap in 0..w.wlan.aps.len() {
                    w.adapt_width_local(ap);
                }
            }
            // Flush the epoch's model-evaluation and goodput-table counters
            // alongside the alloc.* metrics (the controller's obs entry
            // points do the same through `finish_epoch_obs`).
            model.flush_stats_into(&sink);
            sink.drain_into(ctx.telemetry);
            if self.safe_mode {
                w.last_good = Some((w.state.assignments.clone(), w.state.operating_width.clone()));
            }
            (r.total_bps, r.switches)
        };
        let record = ReallocRecord {
            t_s: t,
            active_clients: active,
            before_bps: before,
            after_bps: after,
            switches,
            degraded,
            down_aps: w.down_count(),
        };
        w.realloc_log.push(record);
        ctx.telemetry.inc("reallocations");
        ctx.telemetry.record("network_bps.before", t, before);
        ctx.telemetry.record("network_bps.after", t, after);
        ctx.telemetry.observe("switches", switches as f64);
        let next = t + self.period_s;
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::Reallocate);
        }
    }
}

/// Shadowing drift over a [`CityWorld`]: advances the path-loss drift
/// phase and refreshes every active link's cached SNR. Telemetry names
/// match [`DriftProcess`](crate::DriftProcess) (`drift.phase_rad`,
/// `drift.steps`).
pub struct CityDriftProcess {
    /// Drift step period (s).
    pub period_s: f64,
    /// Horizon (s); steps past it never fire.
    pub horizon_s: f64,
    /// Phase advance per step (radians).
    pub phase_step_rad: f64,
}

impl Process<CityWorld, AcornEvent> for CityDriftProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        if self.period_s <= self.horizon_s {
            ctx.schedule_at(self.period_s, AcornEvent::DriftStep);
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::DriftStep);
        let t = ctx.now();
        ctx.world.wlan.pathloss.drift_phase += self.phase_step_rad;
        ctx.world.refresh_snrs();
        ctx.telemetry
            .set_gauge("drift.phase_rad", ctx.world.wlan.pathloss.drift_phase);
        ctx.telemetry.inc("drift.steps");
        let next = t + self.period_s;
        if next <= self.horizon_s {
            ctx.schedule_at(next, AcornEvent::DriftStep);
        }
    }
}

/// A city-scale scenario: session churn + periodic sharded re-allocation
/// (+ optional shadowing drift) over one deployment, driven through the
/// incremental [`CityWorld`]. Process registration order is fixed
/// (sessions, timer, drift), pinning the dispatch order of simultaneous
/// events.
#[derive(Clone)]
pub struct CityScenario {
    /// The deployment — typically `acorn_sim::scenario::city_grid`
    /// shaped. Any `Wlan` works, but the sharding win needs a conflict
    /// graph that decomposes into components.
    pub wlan: Wlan,
    /// The session trace.
    pub sessions: Vec<Session>,
    /// Simulated horizon (s).
    pub horizon_s: f64,
    /// Re-allocation period `T` (s).
    pub reallocation_period_s: f64,
    /// Restarts per shard per re-allocation epoch.
    pub restarts: usize,
    /// Association candidate radius (m).
    pub candidate_radius_m: f64,
    /// Run the localized width adaptation after cell changes and epochs.
    pub adapt_widths: bool,
    /// Optional shadowing drift.
    pub drift: Option<DriftSpec>,
    /// Optional fault-injection layer (AP crash/restart, measurement
    /// faults, beacon gauntlet). Setting it (even to a benign plan)
    /// switches the re-allocation timer to safe mode and epoch seeds to
    /// the sequential policy (for twin comparability).
    pub faults: Option<FaultPlan>,
    /// Master seed (initial assignment + per-epoch restart streams).
    pub seed: u64,
    /// Record the executed-event log (costs a `String` per event — avoid
    /// at full scale).
    pub record_log: bool,
}

/// What a [`CityScenario`] run produced.
pub struct CityReport {
    /// Events dispatched and final virtual time.
    pub stats: crate::sim::RunStats,
    /// The frozen telemetry.
    pub telemetry: TelemetrySnapshot,
    /// The executed-event log (present iff `record_log` was set).
    pub log: Option<crate::sim::EventLog>,
    /// One record per re-allocation epoch.
    pub realloc: Vec<ReallocRecord>,
    /// The final controller state.
    pub final_state: NetworkState,
    /// Fault-layer aggregates (present iff `faults` was set). The golden
    /// comparison fields are zero unless
    /// [`run_resilience`](CityScenario::run_resilience) produced the
    /// report.
    pub resilience: Option<ResilienceReport>,
}

impl CityScenario {
    /// Runs the scenario under `ctl` to its horizon.
    pub fn run(&self, ctl: &AcornController) -> CityReport {
        let world = CityWorld::new(
            self.wlan.clone(),
            ctl.clone(),
            self.candidate_radius_m,
            self.seed,
        );
        let mut sim: Simulation<CityWorld, AcornEvent> = Simulation::new(world);
        sim.record_events(self.record_log);
        sim.add_process(Box::new(CitySessionProcess {
            sessions: self.sessions.clone(),
            horizon_s: self.horizon_s,
            adapt_widths: self.adapt_widths,
        }));
        sim.add_process(Box::new(CityReallocationTimer {
            period_s: self.reallocation_period_s,
            horizon_s: self.horizon_s,
            restarts: self.restarts,
            adapt_widths: self.adapt_widths,
            // With faults on, epoch seeds count epochs rather than events:
            // a faulty run and its golden twin schedule different event
            // interleavings, and the resilience comparison is only
            // meaningful if both draw identical per-epoch restart streams.
            seed_policy: if self.faults.is_some() {
                SeedPolicy::Sequential {
                    next: self.seed.wrapping_add(1),
                }
            } else {
                SeedPolicy::FromEventSeq { base: self.seed }
            },
            safe_mode: self.faults.is_some(),
        }));
        if let Some(d) = self.drift {
            sim.add_process(Box::new(CityDriftProcess {
                period_s: d.period_s,
                horizon_s: self.horizon_s,
                phase_step_rad: d.phase_step_rad,
            }));
        }
        // The fault process registers *last* so the benign event schedule
        // (and every pre-existing golden fingerprint) is untouched when it
        // is absent.
        if let Some(plan) = self.faults {
            sim.add_process(Box::new(CityFaultProcess::new(plan, self.horizon_s)));
        }
        let stats = sim.run(self.horizon_s);
        let resilience = self
            .faults
            .map(|_| ResilienceReport::from_telemetry(&sim.telemetry));
        CityReport {
            stats,
            telemetry: sim.telemetry.snapshot(),
            log: sim.event_log().cloned(),
            realloc: std::mem::take(&mut sim.world.realloc_log),
            final_state: sim.world.state.clone(),
            resilience,
        }
    }

    /// Runs the scenario twice — once with its fault plan, once with the
    /// plan's fault-free twin — and returns the faulty report with its
    /// [`ResilienceReport`] golden-comparison fields filled in
    /// (`golden_mean_bps`, `throughput_retained`).
    pub fn run_resilience(&self, ctl: &AcornController) -> CityReport {
        let plan = self.faults.unwrap_or_default();
        let mut faulty = self.clone();
        faulty.faults = Some(plan);
        let mut report = faulty.run(ctl);
        let mut golden = self.clone();
        golden.faults = Some(plan.benign_twin());
        let golden_report = golden.run(ctl);
        if let (Some(r), Some(g)) = (report.resilience.as_mut(), golden_report.resilience) {
            r.golden_mean_bps = g.faulty_mean_bps;
            r.throughput_retained = if g.faulty_mean_bps > 0.0 {
                r.faulty_mean_bps / g.faulty_mean_bps
            } else {
                0.0
            };
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_core::AcornConfig;
    use acorn_phy::estimator::LinkQualityEstimator;
    use acorn_phy::GoodputTable;
    use acorn_topology::Point;

    /// Two 2-AP districts 400 m apart (mirroring the `city_grid` layout
    /// without depending on `acorn-sim`), clients near each district.
    fn wlan() -> Wlan {
        let mut w = Wlan::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(400.0, 0.0),
                Point::new(450.0, 0.0),
            ],
            vec![
                Point::new(10.0, 5.0),
                Point::new(40.0, -5.0),
                Point::new(410.0, 5.0),
                Point::new(440.0, -5.0),
                Point::new(25.0, 10.0),
                Point::new(425.0, 10.0),
            ],
            17,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    fn sessions() -> Vec<Session> {
        (0..6)
            .map(|c| Session {
                client: c,
                start_s: 5.0 + 10.0 * c as f64,
                duration_s: 400.0 + 50.0 * c as f64,
            })
            .collect()
    }

    fn scenario(seed: u64) -> CityScenario {
        CityScenario {
            wlan: wlan(),
            sessions: sessions(),
            horizon_s: 900.0,
            reallocation_period_s: 300.0,
            restarts: 2,
            candidate_radius_m: 120.0,
            adapt_widths: true,
            drift: Some(DriftSpec {
                period_s: 250.0,
                phase_step_rad: 0.05,
            }),
            faults: None,
            seed,
            record_log: true,
        }
    }

    fn table_ctl() -> AcornController {
        let table = Arc::new(GoodputTable::build(
            LinkQualityEstimator::default(),
            -12.0,
            48.0,
            0.0625,
        ));
        AcornController::with_table(AcornConfig::default(), table)
    }

    #[test]
    fn world_graph_matches_the_exact_interference_graph() {
        let w = wlan();
        let ctl = AcornController::new(AcornConfig::default());
        let mut world = CityWorld::new(w, ctl, 120.0, 1);
        // Empty association: snapshot must equal the AP-only graph.
        assert_eq!(
            world.graph_snapshot(),
            world.wlan.interference_graph(&world.state.assoc)
        );
        // Associate everyone, then the graph must still match exactly.
        let sink = RecordingSink::new();
        for c in 0..world.wlan.clients.len() {
            world.associate_obs(c, &sink);
        }
        assert_eq!(
            world.graph_snapshot(),
            world.wlan.interference_graph(&world.state.assoc)
        );
        // Unwinding departures restores the AP-only graph.
        for c in 0..world.wlan.clients.len() {
            world.deassociate(c);
        }
        assert_eq!(
            world.graph_snapshot(),
            world.wlan.interference_graph(&vec![None; 6])
        );
        assert!(world.via_adj.iter().all(|m| m.is_empty()));
        assert_eq!(world.active_clients(), 0);
    }

    #[test]
    fn city_runs_and_reallocates_per_shard() {
        let ctl = table_ctl();
        let r = scenario(7).run(&ctl);
        // 6 arrivals + 6 departures (some clamped to horizon) + 2
        // reallocs (300, 600) + 3 drift steps (250, 500, 750).
        assert_eq!(r.realloc.len(), 2);
        let tel = &r.telemetry;
        let counter = |n: &str| {
            tel.counters
                .iter()
                .find(|c| c.name == n)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(counter("sessions.arrivals"), 6);
        assert_eq!(counter("sessions.departures"), 6);
        assert_eq!(counter("reallocations"), 2);
        assert_eq!(counter("drift.steps"), 3);
        // Two districts → two shards per epoch.
        assert_eq!(counter(acorn_obs::names::ALLOC_SHARDS), 4);
        assert!(counter(acorn_obs::names::TABLE_HITS) > 0);
        // Every client found a home in its own district.
        assert!(r.realloc[1].active_clients > 0);
        assert!(r.final_state.assoc.iter().all(|a| a.is_none()));
    }

    #[test]
    fn city_is_reproducible() {
        // A fresh table per run: the table's hit/rebuild counters are
        // process-global (drained at each flush), so telemetry equality
        // needs each run to own its table — exactly how the bench and
        // determinism harnesses use it.
        let a = scenario(7).run(&table_ctl());
        let b = scenario(7).run(&table_ctl());
        assert_eq!(a.log, b.log);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn clients_associate_within_their_district() {
        let w = wlan();
        let ctl = AcornController::new(AcornConfig::default());
        let mut world = CityWorld::new(w, ctl, 120.0, 3);
        let sink = RecordingSink::new();
        for c in 0..6 {
            world.associate_obs(c, &sink);
        }
        // Clients 0,1,4 sit near district 0 (APs 0–1); 2,3,5 near
        // district 1 (APs 2–3).
        for (c, aps) in [(0, [0, 1]), (1, [0, 1]), (4, [0, 1])] {
            assert!(aps.contains(&world.state.assoc[c].unwrap().0));
        }
        for (c, aps) in [(2, [2, 3]), (3, [2, 3]), (5, [2, 3])] {
            assert!(aps.contains(&world.state.assoc[c].unwrap().0));
        }
    }
}
