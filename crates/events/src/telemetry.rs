//! Telemetry for event-driven runs.
//!
//! The recorder types moved to `acorn-obs` so that events, sim, and
//! bench binaries share one metric namespace and one byte-stable
//! snapshot format; this module re-exports them under their historical
//! paths. See `acorn_obs::telemetry` for the types and DESIGN.md §12
//! for the sink model built on top of them.

pub use acorn_obs::telemetry::{
    CounterEntry, GaugeEntry, Histogram, HistogramEntry, HistogramError, Series, SeriesEntry,
    Telemetry, TelemetrySnapshot,
};
