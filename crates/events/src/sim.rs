//! The simulation loop: a virtual clock, pluggable [`Process`] actors,
//! and an executed-event log.
//!
//! A [`Simulation`] owns three things: a *world* `W` (the shared mutable
//! state every actor operates on — for ACORN scenarios, the WLAN plus the
//! controller's [`NetworkState`](acorn_core::NetworkState)), a set of
//! boxed [`Process`]es addressed by [`ProcessId`], and the
//! [`EventQueue`](crate::queue::EventQueue). Each event is an
//! [`Envelope`] — a payload plus the process it is addressed to — and the
//! loop dispatches envelopes strictly in `(time, seq)` order, so a run is
//! a pure function of the initial world and the processes added to it.
//!
//! Determinism contract: processes may only read time, their own state,
//! the world, and the firing event's sequence number (exposed through
//! [`Ctx::event_seq`] precisely so randomized actors can derive per-event
//! seeds without carrying RNG state). Nothing in the loop consults wall
//! clocks, thread identity, or map iteration order.

use crate::queue::{EventId, EventQueue, Fired};
use crate::telemetry::Telemetry;

/// Derives an independent seed for work item `index` from a base seed
/// (splitmix64 finalizer). Identical to the baseband engine's per-packet
/// derivation, duplicated here so the event runtime stays independent of
/// the PHY crates: event processes use it to give each firing its own
/// statistically independent RNG stream, keyed by the event's globally
/// unique sequence number.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifies a process within one simulation (its registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

/// An event payload addressed to a process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope<E> {
    /// The process whose [`Process::handle`] runs when this fires.
    pub target: ProcessId,
    /// The payload.
    pub event: E,
}

/// One executed event, as recorded in the [`EventLog`].
///
/// Times are stored as raw bit patterns so the log is `Eq`/hashable and a
/// comparison between two runs is exact, not epsilon-based.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogEntry {
    /// `f64::to_bits` of the firing time.
    pub time_bits: u64,
    /// The event's global sequence number.
    pub seq: u64,
    /// The process that handled it.
    pub target: usize,
    /// `Debug` rendering of the payload (deterministic for any derived
    /// `Debug`).
    pub kind: String,
}

/// The executed-event log: the exact dispatch order of a run. Two runs of
/// the same scenario are equivalent iff their logs are equal — this is
/// what the thread-count determinism tests compare.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventLog {
    /// Entries in dispatch order.
    pub entries: Vec<LogEntry>,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Events dispatched.
    pub events: u64,
    /// Virtual time of the last dispatched event (0 if none fired).
    pub end_time_s: f64,
}

/// A simulation actor. Implementations hold their own private state;
/// shared state lives in the world `W`.
pub trait Process<W, E> {
    /// Called once when the process is added to the simulation — schedule
    /// initial events here.
    fn start(&mut self, _ctx: &mut Ctx<'_, W, E>) {}

    /// Called for each event addressed to this process, in strict
    /// `(time, seq)` order.
    fn handle(&mut self, event: &E, ctx: &mut Ctx<'_, W, E>);
}

/// What a process sees while running: the world, the telemetry recorder,
/// the clock, and scheduling operations. Borrowed from the simulation for
/// the duration of one `start`/`handle` call.
pub struct Ctx<'a, W, E> {
    /// The shared world.
    pub world: &'a mut W,
    /// The telemetry recorder.
    pub telemetry: &'a mut Telemetry,
    queue: &'a mut EventQueue<Envelope<E>>,
    stopped: &'a mut bool,
    self_id: ProcessId,
    now: f64,
    seq: u64,
}

impl<W, E> Ctx<'_, W, E> {
    /// Current virtual time (s).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The firing event's global sequence number (during [`Process::start`],
    /// the sequence number the first scheduled event will get). Globally
    /// unique and identical across runs — the canonical input to
    /// [`mix_seed`] for per-event randomness.
    pub fn event_seq(&self) -> u64 {
        self.seq
    }

    /// The running process's own id.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Schedules `event` to this process at absolute time `t`.
    pub fn schedule_at(&mut self, t: f64, event: E) -> EventId {
        let target = self.self_id;
        self.send_at(t, target, event)
    }

    /// Schedules `event` to this process `dt` seconds from now.
    pub fn schedule_after(&mut self, dt: f64, event: E) -> EventId {
        self.schedule_at(self.now + dt, event)
    }

    /// Schedules `event` to another process at absolute time `t`.
    pub fn send_at(&mut self, t: f64, target: ProcessId, event: E) -> EventId {
        self.queue.schedule_at(t, Envelope { target, event })
    }

    /// Cancels a previously scheduled event; `true` if it was pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Stops the simulation after the current event completes; pending
    /// events stay in the queue undispatched.
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}

/// A deterministic discrete-event simulation over world `W` and event
/// payload `E`.
pub struct Simulation<W, E> {
    /// The shared world (public: scenario drivers read results from it
    /// after the run).
    pub world: W,
    /// The telemetry recorder.
    pub telemetry: Telemetry,
    queue: EventQueue<Envelope<E>>,
    processes: Vec<Option<Box<dyn Process<W, E>>>>,
    log: Option<EventLog>,
    stopped: bool,
    dispatched: u64,
}

impl<W, E: std::fmt::Debug> Simulation<W, E> {
    /// A simulation over `world` with the clock at 0 and no processes.
    pub fn new(world: W) -> Simulation<W, E> {
        Simulation {
            world,
            telemetry: Telemetry::new(),
            queue: EventQueue::new(),
            processes: Vec::new(),
            log: None,
            stopped: false,
            dispatched: 0,
        }
    }

    /// Enables (or disables) recording of every dispatched event into an
    /// [`EventLog`]. Off by default — logging allocates a `String` per
    /// event, which the determinism tests want and the benchmarks don't.
    pub fn record_events(&mut self, on: bool) {
        self.log = if on { Some(EventLog::default()) } else { None };
    }

    /// The executed-event log, if recording was enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.log.as_ref()
    }

    /// Current virtual time (s).
    pub fn now(&self) -> f64 {
        self.queue.now()
    }

    /// Adds a process and immediately runs its [`Process::start`] hook.
    /// Registration order is part of the scenario definition: it fixes
    /// the sequence numbers of initial events and therefore the dispatch
    /// order of simultaneous ones.
    pub fn add_process(&mut self, process: Box<dyn Process<W, E>>) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(Some(process));
        let mut p = self.processes[id.0].take().expect("just pushed");
        let mut ctx = Ctx {
            world: &mut self.world,
            telemetry: &mut self.telemetry,
            now: self.queue.now(),
            seq: self.queue.next_seq(),
            queue: &mut self.queue,
            stopped: &mut self.stopped,
            self_id: id,
        };
        p.start(&mut ctx);
        self.processes[id.0] = Some(p);
        id
    }

    /// Dispatches events until the queue drains, the horizon passes, or a
    /// process calls [`Ctx::stop`]. Events scheduled *at* `horizon_s`
    /// still fire; later ones stay queued (a subsequent `run` call with a
    /// larger horizon resumes).
    pub fn run(&mut self, horizon_s: f64) -> RunStats {
        let mut end_time = self.queue.now();
        while !self.stopped {
            match self.queue.peek_time() {
                Some(t) if t <= horizon_s => {}
                _ => break,
            }
            let Fired { time, seq, event } = self.queue.pop().expect("peeked non-empty");
            let env: Envelope<E> = event;
            if let Some(log) = &mut self.log {
                log.entries.push(LogEntry {
                    time_bits: time.to_bits(),
                    seq,
                    target: env.target.0,
                    kind: format!("{:?}", env.event),
                });
            }
            let mut p = self.processes[env.target.0]
                .take()
                .unwrap_or_else(|| panic!("event for unknown process {:?}", env.target));
            let mut ctx = Ctx {
                world: &mut self.world,
                telemetry: &mut self.telemetry,
                now: time,
                seq,
                queue: &mut self.queue,
                stopped: &mut self.stopped,
                self_id: env.target,
            };
            p.handle(&env.event, &mut ctx);
            self.processes[env.target.0] = Some(p);
            self.dispatched += 1;
            end_time = time;
        }
        RunStats {
            events: self.dispatched,
            end_time_s: end_time,
        }
    }

    /// Runs until the queue is fully drained (or a process stops the
    /// simulation).
    pub fn run_to_completion(&mut self) -> RunStats {
        self.run(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ticker {
        period: f64,
        horizon: f64,
        fired: Vec<f64>,
    }

    impl Process<u64, &'static str> for Ticker {
        fn start(&mut self, ctx: &mut Ctx<'_, u64, &'static str>) {
            ctx.schedule_at(self.period, "tick");
        }
        fn handle(&mut self, _e: &&'static str, ctx: &mut Ctx<'_, u64, &'static str>) {
            self.fired.push(ctx.now());
            *ctx.world += 1;
            let next = ctx.now() + self.period;
            if next <= self.horizon {
                ctx.schedule_at(next, "tick");
            }
        }
    }

    #[test]
    fn periodic_process_fires_on_cadence() {
        let mut sim: Simulation<u64, &'static str> = Simulation::new(0);
        sim.add_process(Box::new(Ticker {
            period: 10.0,
            horizon: 45.0,
            fired: Vec::new(),
        }));
        let stats = sim.run_to_completion();
        assert_eq!(stats.events, 4); // t = 10, 20, 30, 40
        assert_eq!(stats.end_time_s, 40.0);
        assert_eq!(sim.world, 4);
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let mut sim: Simulation<u64, &'static str> = Simulation::new(0);
        sim.add_process(Box::new(Ticker {
            period: 10.0,
            horizon: 100.0,
            fired: Vec::new(),
        }));
        let a = sim.run(35.0);
        assert_eq!(a.events, 3);
        let b = sim.run(100.0);
        assert_eq!(b.events, 10);
        assert_eq!(sim.world, 10);
    }

    struct Stopper;
    impl Process<u64, &'static str> for Stopper {
        fn start(&mut self, ctx: &mut Ctx<'_, u64, &'static str>) {
            ctx.schedule_at(5.0, "stop");
        }
        fn handle(&mut self, _e: &&'static str, ctx: &mut Ctx<'_, u64, &'static str>) {
            ctx.stop();
        }
    }

    #[test]
    fn stop_halts_mid_queue() {
        let mut sim: Simulation<u64, &'static str> = Simulation::new(0);
        sim.add_process(Box::new(Stopper));
        sim.add_process(Box::new(Ticker {
            period: 10.0,
            horizon: 100.0,
            fired: Vec::new(),
        }));
        let stats = sim.run_to_completion();
        assert_eq!(stats.end_time_s, 5.0);
        assert_eq!(sim.world, 0, "ticker never ran");
    }

    #[test]
    fn event_log_captures_dispatch_order() {
        let mut sim: Simulation<u64, &'static str> = Simulation::new(0);
        sim.record_events(true);
        sim.add_process(Box::new(Ticker {
            period: 10.0,
            horizon: 25.0,
            fired: Vec::new(),
        }));
        sim.run_to_completion();
        let log = sim.event_log().unwrap();
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.entries[0].time_bits, 10.0f64.to_bits());
        assert_eq!(log.entries[0].kind, "\"tick\"");
        assert!(log.entries[0].seq < log.entries[1].seq);
    }

    #[test]
    fn mix_seed_decorrelates_indices() {
        let a = mix_seed(7, 0);
        let b = mix_seed(7, 1);
        let c = mix_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Matches the baseband engine's derivation (shared constants).
        assert_eq!(mix_seed(7, 0), mix_seed(7, 0));
    }

    /// Two processes messaging each other through `send_at`.
    struct PingPong {
        peer: Option<ProcessId>,
        count: u32,
    }
    impl Process<Vec<&'static str>, &'static str> for PingPong {
        fn start(&mut self, ctx: &mut Ctx<'_, Vec<&'static str>, &'static str>) {
            if self.peer.is_none() {
                // First process serves once the second one exists.
                ctx.schedule_at(1.0, "serve");
            }
        }
        fn handle(&mut self, e: &&'static str, ctx: &mut Ctx<'_, Vec<&'static str>, &'static str>) {
            ctx.world.push(*e);
            self.count += 1;
            if self.count < 3 {
                if let Some(peer) = self.peer {
                    ctx.send_at(ctx.now() + 1.0, peer, "pong");
                } else {
                    // id 0's peer is always id 1 in this test.
                    ctx.send_at(ctx.now() + 1.0, ProcessId(1), "ping");
                }
            }
        }
    }

    #[test]
    fn processes_exchange_events() {
        let mut sim: Simulation<Vec<&'static str>, &'static str> = Simulation::new(Vec::new());
        sim.add_process(Box::new(PingPong {
            peer: None,
            count: 0,
        }));
        sim.add_process(Box::new(PingPong {
            peer: Some(ProcessId(0)),
            count: 0,
        }));
        sim.run_to_completion();
        assert_eq!(sim.world, vec!["serve", "ping", "pong", "ping", "pong"]);
    }

    #[test]
    fn cancellation_via_ctx() {
        struct Canceller {
            victim: Option<EventId>,
        }
        impl Process<u32, &'static str> for Canceller {
            fn start(&mut self, ctx: &mut Ctx<'_, u32, &'static str>) {
                ctx.schedule_at(1.0, "first");
                self.victim = Some(ctx.schedule_at(2.0, "doomed"));
            }
            fn handle(&mut self, e: &&'static str, ctx: &mut Ctx<'_, u32, &'static str>) {
                if *e == "first" {
                    let id = self.victim.take().unwrap();
                    assert!(ctx.cancel(id));
                } else {
                    *ctx.world += 1;
                }
            }
        }
        let mut sim: Simulation<u32, &'static str> = Simulation::new(0);
        sim.add_process(Box::new(Canceller { victim: None }));
        sim.run_to_completion();
        assert_eq!(sim.world, 0, "cancelled event must not fire");
    }
}
