//! Auto-rate modelling: MCS and MIMO-mode selection.
//!
//! The paper's cards run "a proprietary algorithm \[that\] not only adjusts
//! the rates in response to packet successes/failures but also picks the
//! best mode of operation (SDM or STBC) based on the channel quality". We
//! model that behaviour as expected-goodput maximization over the MCS ×
//! mode grid (via `acorn-phy`'s estimator) with optional switching
//! hysteresis, plus the exhaustive fixed-rate search used for Fig. 6(b).

use acorn_phy::estimator::{LinkQualityEstimator, RatePoint};
use acorn_phy::{ChannelWidth, McsIndex, MimoMode};

/// A stateful rate controller for one link.
#[derive(Debug, Clone)]
pub struct RateController {
    /// The underlying goodput-prediction estimator.
    pub estimator: LinkQualityEstimator,
    /// Minimum relative goodput improvement required to leave the current
    /// operating point (suppresses flapping between adjacent MCSs when the
    /// SNR sits on a boundary).
    pub hysteresis: f64,
    current: Option<RatePoint>,
}

impl RateController {
    /// Creates a controller with 5 % switching hysteresis.
    pub fn new(estimator: LinkQualityEstimator) -> RateController {
        RateController {
            estimator,
            hysteresis: 0.05,
            current: None,
        }
    }

    /// Selects the operating point for the given link SNR and width.
    pub fn select(&mut self, snr_db: f64, width: ChannelWidth) -> RatePoint {
        let best = self.estimator.best_rate_point(snr_db, width);
        let chosen = match self.current {
            Some(cur) if cur.mcs != best.mcs || cur.mode != best.mode => {
                // Re-evaluate the current point at today's SNR before
                // deciding whether the switch clears the hysteresis bar.
                let cur_now = self.evaluate(cur.mcs, snr_db, width);
                if best.goodput_bps > (1.0 + self.hysteresis) * cur_now.goodput_bps {
                    best
                } else {
                    cur_now
                }
            }
            Some(cur) => self.evaluate(cur.mcs, snr_db, width),
            None => best,
        };
        self.current = Some(chosen);
        chosen
    }

    /// Clears controller state (e.g. after a channel switch).
    pub fn reset(&mut self) {
        self.current = None;
    }

    /// Evaluates a specific MCS at an SNR/width (mode implied by stream
    /// count, as the hardware does).
    pub fn evaluate(&self, mcs: McsIndex, snr_db: f64, width: ChannelWidth) -> RatePoint {
        let m = mcs.mcs();
        let mode = if m.n_ss == 1 {
            MimoMode::Stbc
        } else {
            MimoMode::Sdm
        };
        let eff = mode.effective_snr_db(snr_db);
        let per = m.per(eff, self.estimator.packet_bytes);
        RatePoint {
            mcs,
            mode,
            coded_ber: m.coded_ber(eff),
            per,
            goodput_bps: (1.0 - per) * m.rate_bps(width, self.estimator.gi),
        }
    }
}

/// Exhaustive fixed-rate search (the Fig. 6(b) methodology): "for every
/// link on our testbed, we find through exhaustive search the MCS which
/// gives the highest (UDP) throughput with and without CB, considering
/// both modes of 802.11n operations (SDM/STBC)". Returns the best MCS for
/// each width.
pub fn optimal_mcs_pair(estimator: &LinkQualityEstimator, snr20_db: f64) -> (McsIndex, McsIndex) {
    let est = estimator.estimate(snr20_db, ChannelWidth::Ht20);
    (est.best20.mcs, est.best40.mcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> RateController {
        RateController::new(LinkQualityEstimator::default())
    }

    #[test]
    fn first_selection_is_the_estimator_optimum() {
        let mut c = ctl();
        let sel = c.select(25.0, ChannelWidth::Ht20);
        let best = LinkQualityEstimator::default().best_rate_point(25.0, ChannelWidth::Ht20);
        assert_eq!(sel.mcs, best.mcs);
        assert_eq!(sel.mode, best.mode);
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        let mut c = ctl();
        c.hysteresis = 0.5; // very sticky, to make the effect observable
        let first = c.select(20.0, ChannelWidth::Ht20);
        // A tiny SNR wiggle must not change the operating point.
        let second = c.select(20.3, ChannelWidth::Ht20);
        assert_eq!(first.mcs, second.mcs);
    }

    #[test]
    fn large_snr_change_forces_a_switch() {
        let mut c = ctl();
        let low = c.select(3.0, ChannelWidth::Ht20);
        let high = c.select(35.0, ChannelWidth::Ht20);
        assert!(high.mcs.value() > low.mcs.value());
        assert!(high.goodput_bps > low.goodput_bps);
    }

    #[test]
    fn mode_follows_link_quality() {
        // Poor link → STBC; strong link → SDM (the paper's vendor-rate
        // behaviour).
        let mut c = ctl();
        assert_eq!(c.select(2.0, ChannelWidth::Ht20).mode, MimoMode::Stbc);
        c.reset();
        assert_eq!(c.select(35.0, ChannelWidth::Ht20).mode, MimoMode::Sdm);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = ctl();
        let high = c.select(35.0, ChannelWidth::Ht20);
        c.reset();
        let low = c.select(2.0, ChannelWidth::Ht20);
        assert!(low.mcs.value() < high.mcs.value());
    }

    #[test]
    fn optimal_mcs_40_not_more_aggressive_than_20() {
        // Fig. 6(b)'s diagonal: the 40 MHz optimum is almost always at or
        // below the 20 MHz optimum.
        let e = LinkQualityEstimator::default();
        for snr in [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 30.0] {
            let (m20, m40) = optimal_mcs_pair(&e, snr);
            assert!(
                m40.value() <= m20.value(),
                "snr {snr}: 40 MHz MCS {} > 20 MHz MCS {}",
                m40.value(),
                m20.value()
            );
        }
    }

    #[test]
    fn evaluate_specific_mcs_matches_table_rate() {
        let c = ctl();
        let p = c.evaluate(McsIndex::new(7).unwrap(), 40.0, ChannelWidth::Ht20);
        // At 40 dB the PER is ~0, so goodput ≈ nominal 65 Mb/s.
        assert!((p.goodput_bps - 65e6).abs() < 1e5);
    }
}
