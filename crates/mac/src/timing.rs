//! 802.11n MAC timing constants and per-packet cycle accounting.
//!
//! These timings turn nominal PHY rates into realistic MAC-layer goodputs.
//! They matter for reproducing the paper's absolute throughput ranges
//! (Fig. 6a tops out near 70–80 Mb/s for UDP over a 130 Mb/s-class PHY —
//! roughly the MAC efficiency these constants produce).

/// One backoff slot (5 GHz OFDM PHY): 9 µs.
pub const SLOT_S: f64 = 9e-6;
/// Short interframe space: 16 µs.
pub const SIFS_S: f64 = 16e-6;
/// DCF interframe space: SIFS + 2 slots = 34 µs.
pub const DIFS_S: f64 = SIFS_S + 2.0 * SLOT_S;
/// PLCP preamble + header for an HT mixed-format frame: ≈ 36 µs.
pub const PHY_HEADER_S: f64 = 36e-6;
/// ACK transmission time (legacy rate), ≈ 32 µs including its preamble.
pub const ACK_S: f64 = 32e-6;
/// Minimum contention window (CWmin = 15 slots).
pub const CW_MIN: u32 = 15;
/// Maximum contention window (CWmax = 1023 slots).
pub const CW_MAX: u32 = 1023;
/// MAC retry limit before a frame is dropped.
pub const RETRY_LIMIT: u32 = 7;
/// MAC + LLC header overhead per frame, bytes.
pub const MAC_HEADER_BYTES: u32 = 36;
/// A-MPDU burst size: MPDUs aggregated into one TXOP under a single PHY
/// header and BlockAck. 802.11n cards of the paper's era aggregate a
/// handful of frames; 4 reproduces the paper's observed CB gains (up to
/// ~1.9× at high SNR — without aggregation, fixed per-access overhead
/// would cap the gain near 1.2×, which the testbed does not show).
pub const BURST: u32 = 4;

/// Time on air of one data MPDU of `payload_bytes` at PHY rate `rate_bps`,
/// excluding the PHY preamble: (MAC header + payload) / rate.
pub fn mpdu_time_s(payload_bytes: u32, rate_bps: f64) -> f64 {
    assert!(rate_bps > 0.0, "rate must be positive");
    8.0 * (payload_bytes + MAC_HEADER_BYTES) as f64 / rate_bps
}

/// Time on air of a single (non-aggregated) data frame: PLCP preamble +
/// one MPDU.
pub fn tx_time_s(payload_bytes: u32, rate_bps: f64) -> f64 {
    PHY_HEADER_S + mpdu_time_s(payload_bytes, rate_bps)
}

/// Duration of one TXOP carrying `burst` aggregated MPDUs:
/// PLCP + burst·MPDU + SIFS + BlockAck.
pub fn txop_time_s(payload_bytes: u32, rate_bps: f64, burst: u32) -> f64 {
    assert!(burst >= 1, "burst must be at least 1");
    PHY_HEADER_S + burst as f64 * mpdu_time_s(payload_bytes, rate_bps) + SIFS_S + ACK_S
}

/// Expected duration of one contention-free channel access (TXOP):
/// DIFS + mean initial backoff + the TXOP itself.
pub fn access_cycle_s(payload_bytes: u32, rate_bps: f64, burst: u32) -> f64 {
    let mean_backoff = CW_MIN as f64 / 2.0 * SLOT_S;
    DIFS_S + mean_backoff + txop_time_s(payload_bytes, rate_bps, burst)
}

/// Expected duration of one *successful, contention-free, non-aggregated*
/// packet exchange — kept for single-frame reasoning and the Fig. 5-era
/// WARP experiments.
pub fn packet_cycle_s(payload_bytes: u32, rate_bps: f64) -> f64 {
    access_cycle_s(payload_bytes, rate_bps, 1)
}

/// Expected channel time consumed per *delivered* packet on a link with
/// packet error rate `per`, under [`BURST`]-aggregated access: each TXOP
/// delivers `burst·(1−per)` packets in expectation (lost subframes are
/// re-sent in later TXOPs). This is the per-client "transmission delay"
/// `d_cl` that ACORN's modified beacons advertise.
///
/// Returns `f64::INFINITY` when `per ≥ 1` (the link delivers nothing).
pub fn delivery_delay_s(payload_bytes: u32, rate_bps: f64, per: f64) -> f64 {
    let p_ok = 1.0 - per.clamp(0.0, 1.0);
    if p_ok <= 0.0 {
        return f64::INFINITY;
    }
    access_cycle_s(payload_bytes, rate_bps, BURST) / (BURST as f64 * p_ok)
}

/// Isolated (single-client, contention-free) goodput in bits/s:
/// `payload / delivery_delay`.
pub fn isolated_goodput_bps(payload_bytes: u32, rate_bps: f64, per: f64) -> f64 {
    let d = delivery_delay_s(payload_bytes, rate_bps, per);
    if d.is_infinite() {
        0.0
    } else {
        8.0 * payload_bytes as f64 / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_value() {
        assert!((DIFS_S - 34e-6).abs() < 1e-12);
    }

    #[test]
    fn tx_time_scales_with_payload_and_rate() {
        let t1 = tx_time_s(1500, 65e6);
        let t2 = tx_time_s(3000, 65e6);
        let t3 = tx_time_s(1500, 130e6);
        assert!(t2 > t1);
        assert!(t3 < t1);
        // 1500 B at 65 Mb/s: 36 µs + 12288/65e6 ≈ 225 µs.
        assert!((t1 - 225e-6).abs() < 5e-6, "t1 = {t1}");
    }

    #[test]
    fn mac_efficiency_is_realistic() {
        // At MCS 7 (65 Mb/s) with 4-MPDU aggregation, UDP goodput should
        // land around 60–80 % of the PHY rate.
        let g = isolated_goodput_bps(1500, 65e6, 0.0);
        let eff = g / 65e6;
        assert!(eff > 0.55 && eff < 0.85, "efficiency {eff}");
    }

    #[test]
    fn cb_gain_on_a_clean_link_is_large_but_below_two() {
        // The paper's Fig. 6a headline: even a perfect link gains less
        // than 2× from CB at the application layer.
        let g20 = isolated_goodput_bps(1500, 130e6, 0.0);
        let g40 = isolated_goodput_bps(1500, 270e6, 0.0);
        let ratio = g40 / g20;
        assert!(ratio > 1.4 && ratio < 2.0, "CB gain {ratio}");
    }

    #[test]
    fn aggregation_amortizes_overhead() {
        let single = access_cycle_s(1500, 65e6, 1);
        let burst4 = access_cycle_s(1500, 65e6, 4);
        // Four MPDUs cost far less than four single accesses.
        assert!(
            burst4 < 4.0 * single * 0.75,
            "burst {burst4}, single {single}"
        );
    }

    #[test]
    fn higher_phy_rates_have_lower_efficiency() {
        // Fixed per-frame overhead bites harder at higher rates — one
        // reason CB "never doubles" application throughput.
        let e65 = isolated_goodput_bps(1500, 65e6, 0.0) / 65e6;
        let e135 = isolated_goodput_bps(1500, 135e6, 0.0) / 135e6;
        assert!(e135 < e65);
    }

    #[test]
    fn per_inflates_delay_geometrically() {
        let clean = delivery_delay_s(1500, 65e6, 0.0);
        let half = delivery_delay_s(1500, 65e6, 0.5);
        assert!((half / clean - 2.0).abs() < 1e-9);
        assert_eq!(delivery_delay_s(1500, 65e6, 1.0), f64::INFINITY);
    }

    #[test]
    fn dead_link_has_zero_goodput() {
        assert_eq!(isolated_goodput_bps(1500, 65e6, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        tx_time_s(1500, 0.0);
    }
}
