//! A slot-level discrete-event simulator of the 802.11 DCF.
//!
//! The analytic airtime model ([`crate::airtime`]) is what ACORN's
//! algorithms consume; this simulator exists to *validate* that model's
//! two load-bearing properties against an actual CSMA/CA process:
//!
//! 1. equal long-term access opportunities → the performance anomaly
//!    (a slow client drags every client of the cell to its throughput);
//! 2. `n` saturated co-channel transmitters each obtain ≈ `1/n` of the
//!    medium (the `M_a = 1/(|con_a|+1)` estimate of §5.1).
//!
//! Model: each *station* is an AP with a saturated downlink queue, serving
//! its clients in round-robin order, one A-MPDU burst ([`BURST`] MPDUs
//! under a BlockAck) per TXOP. Binary exponential backoff with
//! CWmin/CWmax; collisions when two backoff counters expire in the same
//! slot double the CW; per-MPDU losses are BlockAck'd and re-sent in later
//! TXOPs (modelled as independent Bernoulli subframe losses). All stations
//! passed to one [`simulate_dcf`] call share one collision domain (callers
//! partition by channel).

use crate::airtime::ClientLink;
use crate::timing::{txop_time_s, BURST, CW_MAX, CW_MIN, DIFS_S, SLOT_S};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one contending AP ("station").
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// The clients this AP serves round-robin (rate and PER per client).
    pub clients: Vec<ClientLink>,
    /// Payload bytes per MPDU.
    pub payload_bytes: u32,
    /// MPDUs aggregated per TXOP.
    pub burst: u32,
}

impl StationConfig {
    /// A station with the standard payload and burst size.
    pub fn new(clients: Vec<ClientLink>) -> StationConfig {
        StationConfig {
            clients,
            payload_bytes: 1500,
            burst: BURST,
        }
    }
}

/// Per-station simulation output.
#[derive(Debug, Clone, Default)]
pub struct StationStats {
    /// Payload bits delivered to each client.
    pub delivered_bits: Vec<u64>,
    /// TXOPs attempted (including those lost to collisions).
    pub txops: u64,
    /// TXOPs that ended in a collision.
    pub collisions: u64,
    /// Individual MPDUs lost to channel errors (re-sent later).
    pub subframes_lost: u64,
    /// Channel time spent transmitting (s).
    pub airtime_s: f64,
}

impl StationStats {
    /// Aggregate delivered throughput over `duration_s`, bits/s.
    pub fn throughput_bps(&self, duration_s: f64) -> f64 {
        self.delivered_bits.iter().sum::<u64>() as f64 / duration_s
    }

    /// Per-client delivered throughput, bits/s.
    pub fn per_client_bps(&self, duration_s: f64) -> Vec<f64> {
        self.delivered_bits
            .iter()
            .map(|b| *b as f64 / duration_s)
            .collect()
    }
}

struct StationState {
    cw: u32,
    backoff: u32,
    rr: usize,
    /// Deliveries still owed to the current round-robin client before the
    /// scheduler advances. Per-*delivered*-packet fairness is what yields
    /// the 802.11 performance anomaly: a lossy client keeps the channel
    /// (through BlockAck retransmissions) until its quota is delivered.
    quota: u32,
}

/// Runs the DCF for `duration_s` simulated seconds over one collision
/// domain. Deterministic for a given seed.
pub fn simulate_dcf(stations: &[StationConfig], duration_s: f64, seed: u64) -> Vec<StationStats> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats: Vec<StationStats> = stations
        .iter()
        .map(|s| StationStats {
            delivered_bits: vec![0; s.clients.len()],
            ..StationStats::default()
        })
        .collect();
    let active: Vec<usize> = stations
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.clients.is_empty())
        .map(|(i, _)| i)
        .collect();
    if active.is_empty() {
        return stats;
    }
    let mut state: Vec<StationState> = stations
        .iter()
        .map(|s| StationState {
            cw: CW_MIN,
            backoff: rng.gen_range(0..=CW_MIN),
            rr: 0,
            quota: s.burst,
        })
        .collect();

    let mut t = 0.0f64;
    while t < duration_s {
        // Advance to the next backoff expiry.
        // `active` is non-empty (early return above), so a minimum exists.
        let Some(min_b) = active.iter().map(|&i| state[i].backoff).min() else {
            break;
        };
        t += min_b as f64 * SLOT_S;
        if t >= duration_s {
            break;
        }
        for &i in &active {
            state[i].backoff -= min_b;
        }
        let tx: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| state[i].backoff == 0)
            .collect();

        if tx.len() > 1 {
            // Collision: every TXOP is lost, channel busy for the longest,
            // CWs double.
            let mut longest = 0.0f64;
            for &i in &tx {
                let st = &state[i];
                let c = stations[i].clients[st.rr];
                let dur = txop_time_s(stations[i].payload_bytes, c.rate_bps, stations[i].burst);
                longest = longest.max(dur);
                stats[i].txops += 1;
                stats[i].collisions += 1;
                stats[i].airtime_s += dur;
            }
            t += longest + DIFS_S;
            for &i in &tx {
                let st = &mut state[i];
                st.cw = (2 * st.cw + 1).min(CW_MAX);
                st.backoff = rng.gen_range(0..=st.cw);
            }
        } else {
            // One winner: burst of `burst` MPDUs to the round-robin
            // client; each survives independently with prob 1−per.
            let i = tx[0];
            let st = &mut state[i];
            let client = stations[i].clients[st.rr];
            let dur = txop_time_s(
                stations[i].payload_bytes,
                client.rate_bps,
                stations[i].burst,
            );
            stats[i].txops += 1;
            stats[i].airtime_s += dur;
            t += dur + DIFS_S;
            let p_ok = 1.0 - client.per.clamp(0.0, 1.0);
            for _ in 0..stations[i].burst {
                if rng.gen_bool(p_ok) {
                    stats[i].delivered_bits[st.rr] += 8 * stations[i].payload_bytes as u64;
                    st.quota = st.quota.saturating_sub(1);
                } else {
                    stats[i].subframes_lost += 1;
                }
            }
            if st.quota == 0 {
                st.rr = (st.rr + 1) % stations[i].clients.len();
                st.quota = stations[i].burst;
            }
            st.cw = CW_MIN;
            st.backoff = rng.gen_range(0..=st.cw);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airtime::cell_throughput_bps;

    fn clean(rate_mbps: f64) -> ClientLink {
        ClientLink {
            rate_bps: rate_mbps * 1e6,
            per: 0.0,
        }
    }

    #[test]
    fn single_station_matches_analytic_model() {
        let cfg = StationConfig::new(vec![clean(65.0)]);
        let stats = simulate_dcf(&[cfg], 5.0, 1);
        let sim = stats[0].throughput_bps(5.0);
        let model = cell_throughput_bps(&[clean(65.0)], 1500, 1.0);
        let err = (sim - model).abs() / model;
        assert!(
            err < 0.05,
            "sim {sim:.3e} vs model {model:.3e} (err {err:.3})"
        );
    }

    #[test]
    fn performance_anomaly_reproduced() {
        // One AP, one fast and one slow client: both clients end up with
        // nearly identical delivered throughput.
        let cfg = StationConfig::new(vec![clean(130.0), clean(6.5)]);
        let stats = simulate_dcf(&[cfg], 10.0, 2);
        let per = stats[0].per_client_bps(10.0);
        let ratio = per[0] / per[1];
        assert!((ratio - 1.0).abs() < 0.05, "per-client ratio {ratio}");
        // And the aggregate matches the anomaly model.
        let model = cell_throughput_bps(&[clean(130.0), clean(6.5)], 1500, 1.0);
        let sim = stats[0].throughput_bps(10.0);
        assert!(
            (sim - model).abs() / model < 0.08,
            "sim {sim:.3e} model {model:.3e}"
        );
    }

    #[test]
    fn two_contenders_split_the_medium() {
        let mk = || StationConfig::new(vec![clean(65.0)]);
        let stats = simulate_dcf(&[mk(), mk()], 10.0, 3);
        let a = stats[0].throughput_bps(10.0);
        let b = stats[1].throughput_bps(10.0);
        assert!((a / b - 1.0).abs() < 0.1, "a {a:.3e} b {b:.3e}");
        // Each should get roughly M = 1/2 of its isolated throughput
        // (collisions shave a little more off).
        let iso = cell_throughput_bps(&[clean(65.0)], 1500, 1.0);
        let share = a / iso;
        assert!(share > 0.38 && share < 0.55, "share {share}");
    }

    #[test]
    fn three_contenders_get_a_third_each() {
        let mk = || StationConfig::new(vec![clean(58.5)]);
        let stats = simulate_dcf(&[mk(), mk(), mk()], 10.0, 4);
        let iso = cell_throughput_bps(&[clean(58.5)], 1500, 1.0);
        for s in &stats {
            let share = s.throughput_bps(10.0) / iso;
            assert!(share > 0.25 && share < 0.4, "share {share}");
        }
    }

    #[test]
    fn lossy_links_deliver_proportionally_less() {
        let lossy = StationConfig::new(vec![ClientLink {
            rate_bps: 65e6,
            per: 0.5,
        }]);
        let cleanst = StationConfig::new(vec![clean(65.0)]);
        let s_lossy = simulate_dcf(&[lossy], 5.0, 5);
        let s_clean = simulate_dcf(&[cleanst], 5.0, 5);
        let ratio = s_lossy[0].throughput_bps(5.0) / s_clean[0].throughput_bps(5.0);
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
        assert!(s_lossy[0].subframes_lost > 0);
    }

    #[test]
    fn dead_link_delivers_nothing_but_burns_airtime() {
        let cfg = StationConfig::new(vec![ClientLink {
            rate_bps: 6.5e6,
            per: 1.0,
        }]);
        let stats = simulate_dcf(&[cfg], 2.0, 6);
        assert_eq!(stats[0].delivered_bits[0], 0);
        assert!(stats[0].subframes_lost > 0);
        assert!(stats[0].airtime_s > 0.5);
    }

    #[test]
    fn empty_station_is_inert() {
        let empty = StationConfig::new(vec![]);
        let busy = StationConfig::new(vec![clean(65.0)]);
        let stats = simulate_dcf(&[empty, busy], 2.0, 7);
        assert!(stats[0].delivered_bits.is_empty());
        assert_eq!(stats[0].txops, 0);
        assert!(stats[1].throughput_bps(2.0) > 1e6);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = StationConfig::new(vec![clean(65.0), clean(13.0)]);
        let a = simulate_dcf(&[cfg.clone()], 2.0, 42);
        let b = simulate_dcf(&[cfg], 2.0, 42);
        assert_eq!(a[0].delivered_bits, b[0].delivered_bits);
        assert_eq!(a[0].txops, b[0].txops);
    }

    #[test]
    fn anomaly_model_validated_with_losses() {
        // Analytic vs simulated cell throughput with a lossy slow client.
        let clients = vec![
            clean(130.0),
            ClientLink {
                rate_bps: 13e6,
                per: 0.3,
            },
        ];
        let cfg = StationConfig::new(clients.clone());
        let stats = simulate_dcf(&[cfg], 10.0, 8);
        let sim = stats[0].throughput_bps(10.0);
        let model = cell_throughput_bps(&clients, 1500, 1.0);
        let err = (sim - model).abs() / model;
        assert!(err < 0.1, "sim {sim:.3e} model {model:.3e} (err {err:.3})");
    }

    #[test]
    fn larger_bursts_raise_efficiency() {
        let mk = |burst| StationConfig {
            clients: vec![clean(130.0)],
            payload_bytes: 1500,
            burst,
        };
        let s1 = simulate_dcf(&[mk(1)], 5.0, 9);
        let s8 = simulate_dcf(&[mk(8)], 5.0, 9);
        assert!(s8[0].throughput_bps(5.0) > 1.3 * s1[0].throughput_bps(5.0));
    }
}
