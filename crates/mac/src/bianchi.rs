//! Bianchi's analytic model of DCF saturation throughput.
//!
//! The classic fixed-point analysis (Bianchi, JSAC 2000), adapted to this
//! crate's timing and A-MPDU burst model. It provides a third, independent
//! estimate of how `n` saturated stations share the medium — sitting
//! between the paper's coarse `M = 1/(|con|+1)` rule (which ignores
//! collision overhead) and the slot-level simulator (which has it all):
//!
//! * per-station transmission probability τ and conditional collision
//!   probability p solve the fixed point
//!   `τ = 2(1−2p) / ((1−2p)(W+1) + pW(1−(2p)^m))`,
//!   `p = 1 − (1−τ)^(n−1)`;
//! * slot-time accounting turns (τ, p) into aggregate throughput.
//!
//! The tests cross-validate all three views on homogeneous stations.

use crate::timing::{txop_time_s, BURST, CW_MAX, CW_MIN, DIFS_S, SLOT_S};

/// The solved operating point of `n` saturated contenders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BianchiPoint {
    /// Number of contending stations.
    pub n: usize,
    /// Per-station per-slot transmission probability.
    pub tau: f64,
    /// Conditional collision probability seen by a transmitting station.
    pub p: f64,
}

/// Maximum backoff stage `m` implied by CWmin/CWmax (1024/16 → 6).
fn max_stage() -> u32 {
    (((CW_MAX + 1) / (CW_MIN + 1)) as f64).log2().round() as u32
}

/// τ as a function of p (Bianchi Eq. 7), with `W = CWmin + 1`.
fn tau_of_p(p: f64) -> f64 {
    let w = (CW_MIN + 1) as f64;
    let m = max_stage() as f64;
    let num = 2.0 * (1.0 - 2.0 * p);
    let den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m));
    num / den
}

/// Solves the (τ, p) fixed point for `n ≥ 1` stations by bisection on p.
pub fn solve(n: usize) -> BianchiPoint {
    assert!(n >= 1, "need at least one station");
    if n == 1 {
        return BianchiPoint {
            n,
            tau: tau_of_p(0.0),
            p: 0.0,
        };
    }
    // g(p) = p − (1 − (1 − τ(p))^(n−1)) is increasing from negative at
    // p=0 toward positive near p=1; bisect.
    let g = |p: f64| p - (1.0 - (1.0 - tau_of_p(p)).powi(n as i32 - 1));
    let mut lo = 0.0;
    let mut hi = 0.999_999;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let p = 0.5 * (lo + hi);
    BianchiPoint {
        n,
        tau: tau_of_p(p),
        p,
    }
}

/// Saturation throughput (bits/s of delivered payload, aggregate over all
/// stations) for `n` homogeneous stations sending `burst`-MPDU TXOPs of
/// `payload_bytes` at PHY rate `rate_bps`, with per-MPDU error rate `per`.
pub fn saturation_throughput_bps(
    n: usize,
    payload_bytes: u32,
    rate_bps: f64,
    per: f64,
    burst: u32,
) -> f64 {
    let pt = solve(n);
    let tau = pt.tau;
    let p_tr = 1.0 - (1.0 - tau).powi(n as i32);
    if p_tr <= 0.0 {
        return 0.0;
    }
    let p_s = n as f64 * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr;
    let t_busy = txop_time_s(payload_bytes, rate_bps, burst) + DIFS_S;
    let payload_bits = burst as f64 * (1.0 - per.clamp(0.0, 1.0)) * 8.0 * payload_bytes as f64;
    let e_slot = (1.0 - p_tr) * SLOT_S + p_tr * t_busy;
    p_tr * p_s * payload_bits / e_slot
}

/// Per-station share of the medium relative to running alone — the
/// quantity the paper approximates with `M = 1/(n)` for `n` mutual
/// contenders (`M = 1/(|con|+1)`).
pub fn per_station_share(n: usize, payload_bytes: u32, rate_bps: f64) -> f64 {
    let alone = saturation_throughput_bps(1, payload_bytes, rate_bps, 0.0, BURST);
    let together = saturation_throughput_bps(n, payload_bytes, rate_bps, 0.0, BURST) / n as f64;
    together / alone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::airtime::{cell_throughput_bps, ClientLink};
    use crate::dcf::{simulate_dcf, StationConfig};

    #[test]
    fn max_stage_is_six() {
        assert_eq!(max_stage(), 6);
    }

    #[test]
    fn single_station_has_no_collisions() {
        let pt = solve(1);
        assert_eq!(pt.p, 0.0);
        // τ = 2/(W+1) with W = 16.
        assert!((pt.tau - 2.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn collision_probability_grows_with_n() {
        let mut prev = 0.0;
        for n in 2..10 {
            let pt = solve(n);
            assert!(pt.p > prev, "n={n}");
            assert!(pt.p < 1.0);
            prev = pt.p;
        }
    }

    #[test]
    fn tau_decreases_with_n() {
        let mut prev = 1.0;
        for n in 1..10 {
            let pt = solve(n);
            assert!(pt.tau < prev, "n={n}");
            prev = pt.tau;
        }
    }

    #[test]
    fn fixed_point_is_consistent() {
        for n in [2usize, 5, 10] {
            let pt = solve(n);
            let p_check = 1.0 - (1.0 - pt.tau).powi(n as i32 - 1);
            assert!((pt.p - p_check).abs() < 1e-6, "n={n}");
        }
    }

    #[test]
    fn single_station_matches_the_cycle_model() {
        // Bianchi with n=1 and the simple access-cycle model must agree
        // closely (they differ only in mean-backoff bookkeeping).
        let bianchi = saturation_throughput_bps(1, 1500, 65e6, 0.0, BURST);
        let cycle = cell_throughput_bps(
            &[ClientLink {
                rate_bps: 65e6,
                per: 0.0,
            }],
            1500,
            1.0,
        );
        let err = (bianchi - cycle).abs() / cycle;
        assert!(err < 0.03, "bianchi {bianchi:.3e} vs cycle {cycle:.3e}");
    }

    #[test]
    fn matches_the_slot_simulator() {
        for n in [1usize, 2, 3] {
            let analytic = saturation_throughput_bps(n, 1500, 65e6, 0.0, BURST);
            let stations: Vec<StationConfig> = (0..n)
                .map(|_| {
                    StationConfig::new(vec![ClientLink {
                        rate_bps: 65e6,
                        per: 0.0,
                    }])
                })
                .collect();
            let stats = simulate_dcf(&stations, 10.0, 7);
            let sim: f64 = stats.iter().map(|s| s.throughput_bps(10.0)).sum();
            let err = (analytic - sim).abs() / sim;
            assert!(
                err < 0.1,
                "n={n}: bianchi {analytic:.3e} vs sim {sim:.3e} (err {err:.3})"
            );
        }
    }

    #[test]
    fn per_losses_scale_goodput_linearly() {
        let clean = saturation_throughput_bps(2, 1500, 65e6, 0.0, BURST);
        let half = saturation_throughput_bps(2, 1500, 65e6, 0.5, BURST);
        assert!((half / clean - 0.5).abs() < 1e-9);
    }

    #[test]
    fn share_approximates_one_over_n_with_collision_tax() {
        // The paper's M = 1/n estimate, refined: Bianchi's share is a bit
        // below 1/n because collisions burn airtime.
        for n in [2usize, 3, 4] {
            let share = per_station_share(n, 1500, 65e6);
            let m = 1.0 / n as f64;
            assert!(share < m, "n={n}: share {share} !< M {m}");
            assert!(share > 0.75 * m, "n={n}: share {share} too far below M {m}");
        }
    }

    #[test]
    fn aggregate_degrades_gracefully_with_n() {
        // Total saturation throughput shrinks slowly as contention grows —
        // the well-known Bianchi curve shape.
        let t1 = saturation_throughput_bps(1, 1500, 65e6, 0.0, BURST);
        let t10 = saturation_throughput_bps(10, 1500, 65e6, 0.0, BURST);
        assert!(t10 < t1);
        assert!(t10 > 0.6 * t1, "t1 {t1:.3e}, t10 {t10:.3e}");
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_panics() {
        solve(0);
    }
}
