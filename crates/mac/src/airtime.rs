//! Long-term DCF airtime model: the 802.11 performance anomaly and the
//! cell-throughput arithmetic ACORN's beacons advertise.
//!
//! §4's analysis rests on the Heusse et al. performance anomaly \[4\]: "the
//! distributed coordination function (DCF) used with 802.11 ensures equal
//! long term medium access opportunities. Since poor clients occupy the
//! channel for longer periods, the good clients are hurt."
//!
//! With saturated downlink traffic and per-packet round-robin access, the
//! channel time to deliver one packet to every client is the *aggregate
//! transmission delay* `ATD = Σ_i d_i` (with `d_i` from
//! [`crate::timing::delivery_delay_s`]). Every client then receives
//!
//! ```text
//! X = M · L / ATD        (bits/s, identical for all clients — the anomaly)
//! ```
//!
//! where `M ∈ (0, 1]` is the AP's channel-access share under contention
//! and `L` the payload size in bits. This is exactly the `X_{w,u} =
//! M_i / ATD_i` bookkeeping of §4.1, with the payload made explicit.

use crate::timing::delivery_delay_s;

/// One client's link operating point as the MAC sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientLink {
    /// Selected PHY rate (bits/s).
    pub rate_bps: f64,
    /// Packet error rate at that rate.
    pub per: f64,
}

/// Per-cell airtime accounting for a set of associated clients.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAirtime {
    /// Per-client delivery delays `d_i` (seconds per delivered packet).
    pub delays_s: Vec<f64>,
    /// Payload size in bytes used for the accounting.
    pub payload_bytes: u32,
}

impl CellAirtime {
    /// Computes the delay vector for a cell's clients at a payload size.
    pub fn new(clients: &[ClientLink], payload_bytes: u32) -> CellAirtime {
        CellAirtime {
            delays_s: clients
                .iter()
                .map(|c| delivery_delay_s(payload_bytes, c.rate_bps, c.per))
                .collect(),
            payload_bytes,
        }
    }

    /// The aggregate transmission delay `ATD = Σ d_i` (seconds).
    pub fn atd_s(&self) -> f64 {
        self.delays_s.iter().sum()
    }

    /// Number of associated clients `K`.
    pub fn n_clients(&self) -> usize {
        self.delays_s.len()
    }

    /// Per-client long-term throughput (bits/s) at channel-access share
    /// `m`: `X = m·L/ATD`. Zero for an empty cell; zero if any delay is
    /// infinite (a completely dead link stalls round-robin service — the
    /// extreme form of the anomaly).
    pub fn per_client_throughput_bps(&self, m: f64) -> f64 {
        if self.delays_s.is_empty() {
            return 0.0;
        }
        let atd = self.atd_s();
        if !atd.is_finite() || atd <= 0.0 {
            return 0.0;
        }
        m.clamp(0.0, 1.0) * 8.0 * self.payload_bytes as f64 / atd
    }

    /// Aggregate cell throughput `K·X` (bits/s).
    pub fn cell_throughput_bps(&self, m: f64) -> f64 {
        self.n_clients() as f64 * self.per_client_throughput_bps(m)
    }

    /// Per-client throughput if client `u` were removed — the
    /// `X_{wo,u} = M/(ATD − d_u)` term of Algorithm 1.
    pub fn per_client_throughput_without_bps(&self, m: f64, u: usize) -> f64 {
        let rest = self.atd_s() - self.delays_s[u];
        if !rest.is_finite() || rest <= 0.0 {
            return 0.0;
        }
        m.clamp(0.0, 1.0) * 8.0 * self.payload_bytes as f64 / rest
    }
}

/// Convenience: aggregate throughput of a cell given client links, payload
/// and access share.
pub fn cell_throughput_bps(clients: &[ClientLink], payload_bytes: u32, m: f64) -> f64 {
    CellAirtime::new(clients, payload_bytes).cell_throughput_bps(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::isolated_goodput_bps;

    #[test]
    fn single_clean_client_matches_isolated_goodput() {
        let cell = CellAirtime::new(
            &[ClientLink {
                rate_bps: 65e6,
                per: 0.0,
            }],
            1500,
        );
        let x = cell.cell_throughput_bps(1.0);
        assert!((x - isolated_goodput_bps(1500, 65e6, 0.0)).abs() < 1.0);
    }

    #[test]
    fn anomaly_equalizes_per_client_throughput() {
        // A fast and a slow client: both get the *same* throughput, pulled
        // down by the slow one — Heusse et al.'s result.
        let fast = ClientLink {
            rate_bps: 130e6,
            per: 0.0,
        };
        let slow = ClientLink {
            rate_bps: 6.5e6,
            per: 0.0,
        };
        let mixed = CellAirtime::new(&[fast, slow], 1500);
        let x_mixed = mixed.per_client_throughput_bps(1.0);
        let fast_alone = CellAirtime::new(&[fast], 1500).per_client_throughput_bps(1.0);
        // The fast client suffers drastically compared to being alone.
        assert!(
            x_mixed < 0.2 * fast_alone,
            "mixed {x_mixed}, alone {fast_alone}"
        );
        // And the aggregate is dominated by the slow link's airtime.
        let slow_alone = CellAirtime::new(&[slow], 1500).cell_throughput_bps(1.0);
        assert!(mixed.cell_throughput_bps(1.0) < 2.0 * slow_alone);
    }

    #[test]
    fn grouping_similar_clients_preserves_aggregate() {
        // The §5.2 Topology-2 observation: adding same-quality clients to
        // a cell does not change its aggregate throughput (per-client
        // throughput drops 1/K but K grows).
        let c = ClientLink {
            rate_bps: 58.5e6,
            per: 0.02,
        };
        let one = cell_throughput_bps(&[c], 1500, 1.0);
        let four = cell_throughput_bps(&[c; 4], 1500, 1.0);
        assert!((one - four).abs() / one < 1e-9);
    }

    #[test]
    fn access_share_scales_linearly() {
        let c = ClientLink {
            rate_bps: 65e6,
            per: 0.0,
        };
        let full = cell_throughput_bps(&[c], 1500, 1.0);
        let third = cell_throughput_bps(&[c], 1500, 1.0 / 3.0);
        assert!((third * 3.0 - full).abs() < 1.0);
    }

    #[test]
    fn without_term_matches_smaller_cell() {
        let a = ClientLink {
            rate_bps: 65e6,
            per: 0.1,
        };
        let b = ClientLink {
            rate_bps: 13e6,
            per: 0.3,
        };
        let both = CellAirtime::new(&[a, b], 1500);
        let only_a = CellAirtime::new(&[a], 1500);
        assert!(
            (both.per_client_throughput_without_bps(1.0, 1)
                - only_a.per_client_throughput_bps(1.0))
            .abs()
                < 1.0
        );
    }

    #[test]
    fn empty_cell_and_dead_links() {
        let empty = CellAirtime::new(&[], 1500);
        assert_eq!(empty.cell_throughput_bps(1.0), 0.0);
        let dead = CellAirtime::new(
            &[ClientLink {
                rate_bps: 65e6,
                per: 1.0,
            }],
            1500,
        );
        assert_eq!(dead.cell_throughput_bps(1.0), 0.0);
    }

    #[test]
    fn m_is_clamped() {
        let c = ClientLink {
            rate_bps: 65e6,
            per: 0.0,
        };
        let cell = CellAirtime::new(&[c], 1500);
        assert_eq!(
            cell.per_client_throughput_bps(2.0),
            cell.per_client_throughput_bps(1.0)
        );
        assert_eq!(cell.per_client_throughput_bps(-1.0), 0.0);
    }
}
