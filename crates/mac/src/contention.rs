//! Channel-access shares under inter-cell contention.
//!
//! §5.1: "We estimate M_a for an AP a by 1/(|con_a|+1) where con_a denotes
//! the set of neighboring APs that reside on the same channel as AP a.
//! This estimation has very high accuracy when these APs can hear each
//! other under saturated traffic."
//!
//! With channel bonding, "the same channel" generalizes to *spectral
//! overlap*: a 40 MHz AP contends with any neighbour occupying either of
//! its two 20 MHz members (the basic-vs-composite colour conflict of
//! §4.2).

use acorn_topology::{ApId, ChannelAssignment, InterferenceGraph};

/// The set of interference-graph neighbours of `ap` whose assignment
/// spectrally overlaps `assignment[ap]` — the paper's `con_a`.
pub fn contenders(
    graph: &InterferenceGraph,
    assignments: &[ChannelAssignment],
    ap: ApId,
) -> Vec<ApId> {
    assert_eq!(graph.len(), assignments.len(), "one assignment per AP");
    graph
        .neighbors(ap)
        .filter(|n| assignments[ap.0].conflicts(assignments[n.0]))
        .collect()
}

/// The channel-access share `M_a = 1/(|con_a|+1)`.
pub fn access_share(graph: &InterferenceGraph, assignments: &[ChannelAssignment], ap: ApId) -> f64 {
    assert_eq!(graph.len(), assignments.len(), "one assignment per AP");
    let n = graph
        .neighbors(ap)
        .filter(|nb| assignments[ap.0].conflicts(assignments[nb.0]))
        .count();
    1.0 / (n as f64 + 1.0)
}

/// [`access_share`] under a hypothetical single-AP change: the share `ap`
/// would have if `assignments[patch.0]` were `patch.1`, computed without
/// materializing the patched assignment vector. This is the
/// delta-evaluation hot path of Algorithm 2 — switching one AP only
/// perturbs the shares of that AP and its graph neighbours.
pub fn access_share_with(
    graph: &InterferenceGraph,
    assignments: &[ChannelAssignment],
    ap: ApId,
    patch: (ApId, ChannelAssignment),
) -> f64 {
    assert_eq!(graph.len(), assignments.len(), "one assignment per AP");
    let assignment_of = |i: ApId| {
        if i == patch.0 {
            patch.1
        } else {
            assignments[i.0]
        }
    };
    let own = assignment_of(ap);
    let n = graph
        .neighbors(ap)
        .filter(|&nb| own.conflicts(assignment_of(nb)))
        .count();
    1.0 / (n as f64 + 1.0)
}

/// Access shares for all APs at once.
pub fn access_shares(graph: &InterferenceGraph, assignments: &[ChannelAssignment]) -> Vec<f64> {
    (0..graph.len())
        .map(|i| access_share(graph, assignments, ApId(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::{Channel20, InterferenceGraph};

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    #[test]
    fn isolated_ap_gets_full_share() {
        let g = InterferenceGraph::new(1);
        assert_eq!(access_share(&g, &[single(0)], ApId(0)), 1.0);
    }

    #[test]
    fn same_channel_neighbours_split_the_medium() {
        let g = InterferenceGraph::complete(3);
        let a = vec![single(0); 3];
        for i in 0..3 {
            assert!((access_share(&g, &a, ApId(i)) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn orthogonal_channels_restore_full_shares() {
        let g = InterferenceGraph::complete(3);
        let a = vec![single(0), single(1), single(2)];
        for i in 0..3 {
            assert_eq!(access_share(&g, &a, ApId(i)), 1.0);
        }
    }

    #[test]
    fn bonded_ap_contends_with_both_members() {
        // AP 0 bonded on {0,1}; APs 1 and 2 on channels 0 and 1: all three
        // mutually visible. AP 0 contends with both; APs 1 and 2 only with
        // AP 0 (channels 0 and 1 don't conflict with each other).
        let g = InterferenceGraph::complete(3);
        let a = vec![bonded(0), single(0), single(1)];
        assert_eq!(contenders(&g, &a, ApId(0)).len(), 2);
        assert!((access_share(&g, &a, ApId(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((access_share(&g, &a, ApId(1)) - 0.5).abs() < 1e-12);
        assert!((access_share(&g, &a, ApId(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn graph_distance_gates_contention() {
        // Same channel but no IG edge → no contention (hidden by walls).
        let g = InterferenceGraph::new(2);
        let a = vec![single(0), single(0)];
        assert_eq!(access_share(&g, &a, ApId(0)), 1.0);
    }

    #[test]
    fn contention_is_per_ap_not_global() {
        // Chain 0–1–2 (0 and 2 not adjacent), all on channel 0: the middle
        // AP sees two contenders, the ends one each.
        let g = InterferenceGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = vec![single(0); 3];
        assert!((access_share(&g, &a, ApId(1)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((access_share(&g, &a, ApId(0)) - 0.5).abs() < 1e-12);
        assert!((access_share(&g, &a, ApId(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shares_vector_matches_elementwise() {
        let g = InterferenceGraph::complete(2);
        let a = vec![bonded(0), single(1)];
        let shares = access_shares(&g, &a);
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0], access_share(&g, &a, ApId(0)));
        assert_eq!(shares[1], access_share(&g, &a, ApId(1)));
    }

    #[test]
    #[should_panic(expected = "one assignment per AP")]
    fn mismatched_lengths_panic() {
        let g = InterferenceGraph::new(2);
        access_share(&g, &[single(0)], ApId(0));
    }

    #[test]
    fn patched_share_matches_materialized_patch() {
        // For every AP and every hypothetical single-AP change, the
        // allocation-free override must agree exactly with rebuilding the
        // assignment vector and calling `access_share`.
        let g = InterferenceGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let a = vec![bonded(0), single(1), single(0), bonded(2)];
        let colours = [single(0), single(1), single(2), bonded(0), bonded(2)];
        for target in 0..4 {
            for &c in &colours {
                let mut patched = a.clone();
                patched[target] = c;
                for i in 0..4 {
                    assert_eq!(
                        access_share_with(&g, &a, ApId(i), (ApId(target), c)),
                        access_share(&g, &patched, ApId(i)),
                        "ap {i}, patch {target} -> {c:?}"
                    );
                }
            }
        }
    }
}
