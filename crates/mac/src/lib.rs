//! # acorn-mac — DCF airtime modelling, contention and rate control
//!
//! The MAC-layer substrate under ACORN:
//!
//! * [`timing`] — 802.11n MAC timing constants and per-packet cycle /
//!   delivery-delay accounting (the `d_cl` values ACORN's beacons carry).
//! * [`airtime`] — the long-term DCF airtime model with the 802.11
//!   performance anomaly; implements the `X = M/ATD` throughput arithmetic
//!   of §4.1.
//! * [`contention`] — channel-access shares `M_a = 1/(|con_a|+1)` over the
//!   interference graph, spectral-overlap aware for mixed 20/40 MHz
//!   assignments.
//! * [`rate_control`] — the vendor auto-rate model: expected-goodput
//!   argmax over MCS × {SDM, STBC} with hysteresis, plus the exhaustive
//!   fixed-rate search of Fig. 6(b).
//! * [`dcf`] — a slot-level CSMA/CA discrete-event simulator used to
//!   validate the analytic model (anomaly, medium sharing).
//! * [`bianchi`] — Bianchi's DCF saturation fixed-point analysis, a third
//!   independent view on medium sharing that cross-validates both the
//!   simulator and the paper's M-share estimate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airtime;
pub mod bianchi;
pub mod contention;
pub mod dcf;
pub mod rate_control;
pub mod timing;

pub use airtime::{cell_throughput_bps, CellAirtime, ClientLink};
pub use bianchi::{saturation_throughput_bps, solve as bianchi_solve, BianchiPoint};
pub use contention::{access_share, access_shares, contenders};
pub use dcf::{simulate_dcf, StationConfig, StationStats};
pub use rate_control::{optimal_mcs_pair, RateController};
