//! Online invariant watchdog: cross-checks the incremental city world
//! against from-scratch recomputation *while the soak runs*, and fails
//! fast with a replayable coordinate instead of letting a silent
//! corruption skew days of statistics.
//!
//! Checked invariants (violation codes in parentheses):
//!
//! 1. **Graph twin (1).** The incrementally-maintained conflict graph
//!    must equal `wlan.interference_graph(&assoc)` recomputed from
//!    scratch — run every [`WatchdogSpec::graph_check_every`]-th check
//!    because it is O(V+E).
//! 2. **Cell/association twin (2).** Every client in some AP's cell
//!    must be associated to exactly that AP, every associated client
//!    must appear in its AP's cell, and the cached active count must
//!    match — recomputed from `state.assoc` each check.
//! 3. **Width monotonicity (3).** An AP's operating width can only
//!    *narrow* its assigned width (§5.2 adaptation and safe mode both
//!    shed 40 MHz bonds; nothing may ever widen past the assignment).
//! 4. **Safe-mode consistency (4).** Every re-allocation record must
//!    satisfy `degraded == (down_aps > 0)` — safe mode exactly when the
//!    epoch saw a hole (checked only when a fault layer is attached).
//! 5. **Liveness gauge (5).** The fault layer's `faults.aps_down` gauge
//!    must equal the world's actual down count.
//!
//! On a violation the watchdog increments `watchdog.violations` (plus a
//! per-code counter), freezes the first trip's coordinates into the
//! `watchdog.trip.*` gauges — `(seed, check index, virtual time, event
//! seq)` pin the exact deterministic replay — and, with
//! [`WatchdogSpec::fail_fast`], stops the simulation.

use acorn_events::{AcornEvent, CityWorld, Ctx, Process};
use acorn_topology::ApId;

/// Watchdog cadence and strictness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogSpec {
    /// Check period (s).
    pub period_s: f64,
    /// Run the O(V+E) graph-twin recomputation every Nth check (the
    /// cheap O(clients) checks run every time). 0 disables it.
    pub graph_check_every: u64,
    /// Stop the simulation at the first violation.
    pub fail_fast: bool,
}

impl Default for WatchdogSpec {
    fn default() -> Self {
        WatchdogSpec {
            period_s: 60.0,
            graph_check_every: 8,
            fail_fast: true,
        }
    }
}

/// The online watchdog process.
pub struct InvariantWatchdog {
    /// Cadence and strictness.
    pub spec: WatchdogSpec,
    /// Horizon (s); checks past it never fire.
    pub horizon_s: f64,
    /// The scenario seed, frozen into the trip gauges for replay.
    pub seed: u64,
    /// Whether a fault layer is attached (enables invariants 4 and 5).
    pub faults_on: bool,
    checks: u64,
    seen_realloc: usize,
    tripped: bool,
}

impl InvariantWatchdog {
    /// A watchdog for one soak run.
    pub fn new(spec: WatchdogSpec, horizon_s: f64, seed: u64, faults_on: bool) -> Self {
        InvariantWatchdog {
            spec,
            horizon_s,
            seed,
            faults_on,
            checks: 0,
            seen_realloc: 0,
            tripped: false,
        }
    }

    fn violate(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>, code: u64, name: &str) {
        ctx.telemetry.inc("watchdog.violations");
        ctx.telemetry.inc(&format!("watchdog.viol.{name}"));
        if !self.tripped {
            self.tripped = true;
            // The replay coordinate: re-run the same scenario (same seed,
            // same processes) and break at this check index / time.
            ctx.telemetry.set_gauge("watchdog.trip.code", code as f64);
            ctx.telemetry
                .set_gauge("watchdog.trip.seed", self.seed as f64);
            ctx.telemetry
                .set_gauge("watchdog.trip.check", self.checks as f64);
            ctx.telemetry.set_gauge("watchdog.trip.t_s", ctx.now());
            ctx.telemetry
                .set_gauge("watchdog.trip.event_seq", ctx.event_seq() as f64);
        }
        if self.spec.fail_fast {
            ctx.stop();
        }
    }
}

impl Process<CityWorld, AcornEvent> for InvariantWatchdog {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        if self.spec.period_s < self.horizon_s {
            ctx.schedule_at(self.spec.period_s, AcornEvent::WatchdogCheck);
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::WatchdogCheck);
        self.checks += 1;
        ctx.telemetry.inc("watchdog.checks");

        // (2) Cell/association twin, recomputed from state.assoc.
        let w = &*ctx.world;
        let n_aps = w.wlan.aps.len();
        let mut cells_ok = true;
        let mut in_cells = 0usize;
        for ap in 0..n_aps {
            for &c in w.cell_clients(ap) {
                in_cells += 1;
                if w.state.assoc[c as usize] != Some(ApId(ap)) {
                    cells_ok = false;
                }
            }
        }
        let assoc_count = w.state.assoc.iter().filter(|a| a.is_some()).count();
        if in_cells != assoc_count || assoc_count != w.active_clients() {
            cells_ok = false;
        }
        if !cells_ok {
            self.violate(ctx, 2, "cells");
            if self.spec.fail_fast {
                return;
            }
        }

        // (3) Operating width never exceeds the assigned width.
        let w = &*ctx.world;
        let widened = (0..n_aps).any(|ap| {
            use acorn_phy::ChannelWidth;
            w.state.operating_width[ap] == ChannelWidth::Ht40
                && w.state.assignments[ap].width() != ChannelWidth::Ht40
        });
        if widened {
            self.violate(ctx, 3, "width");
            if self.spec.fail_fast {
                return;
            }
        }

        // (4) Safe mode exactly when the epoch saw a hole.
        if self.faults_on {
            let w = &*ctx.world;
            let bad = w.realloc_log[self.seen_realloc..]
                .iter()
                .any(|r| r.degraded != (r.down_aps > 0));
            self.seen_realloc = w.realloc_log.len();
            if bad {
                self.violate(ctx, 4, "realloc");
                if self.spec.fail_fast {
                    return;
                }
            }

            // (5) The fault layer's liveness gauge tracks the world.
            let down = ctx.world.down_count() as f64;
            if let Some(g) = ctx.telemetry.gauge("faults.aps_down") {
                if g != down {
                    self.violate(ctx, 5, "liveness");
                    if self.spec.fail_fast {
                        return;
                    }
                }
            }
        }

        // (1) Graph twin: incremental vs from-scratch, every Nth check.
        if self.spec.graph_check_every > 0 && self.checks % self.spec.graph_check_every == 0 {
            let w = &*ctx.world;
            if w.graph_snapshot() != w.wlan.interference_graph(&w.state.assoc) {
                self.violate(ctx, 1, "graph");
                if self.spec.fail_fast {
                    return;
                }
            }
            ctx.telemetry.inc("watchdog.graph_checks");
        }

        let next = ctx.now() + self.spec.period_s;
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::WatchdogCheck);
        }
    }
}

/// Deliberate state corruption for watchdog negative tests: at `at_s`
/// it desynchronizes `state.assoc` from the world's cell structures
/// through the public API (flips one client's association entry without
/// touching the cells), which invariant 2 must catch on the next check.
pub struct SabotageProcess {
    /// Corruption time (s).
    pub at_s: f64,
}

impl Process<CityWorld, AcornEvent> for SabotageProcess {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        // Rides the workload alphabet; the envelope targets this process,
        // so no other process sees the event.
        ctx.schedule_at(self.at_s, AcornEvent::WorkloadTick);
    }

    fn handle(&mut self, _event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        let w = &mut *ctx.world;
        match w.state.assoc.iter().position(|a| a.is_some()) {
            // Orphan an associated client: its cell entry survives but
            // the association record is gone.
            Some(c) => w.state.assoc[c] = None,
            // Nobody associated yet: forge an association with no cell
            // entry behind it.
            None => w.state.assoc[0] = Some(ApId(0)),
        }
        ctx.telemetry.inc("sabotage.injected");
    }
}
