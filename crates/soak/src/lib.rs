//! # acorn-soak — long-horizon chaos soak for city-scale ACORN runs
//!
//! The scenario layers so far answer "does the controller converge?"
//! over minutes-to-hours of virtual time. This crate answers the ops
//! question the paper's deployment story implies but never tests: does
//! an auto-configured 802.11n WLAN *stay* healthy over days of churn,
//! diurnal load, flash crowds, AP crashes, and a lossy control wire —
//! without the harness itself becoming the bottleneck?
//!
//! Three design rules keep multi-day horizons tractable:
//!
//! 1. **Streaming workload.** [`WorkloadGen`] draws arrivals by
//!    thinning a dominating Poisson process against a diurnal × flash
//!    rate curve, one event at a time — no materialized session trace,
//!    so the workload's memory is O(clients), not O(horizon).
//! 2. **Bounded-memory telemetry.** Goodput distributions go into
//!    KLL-style [`QuantileSketch`]es (O(k log n) retained items) and
//!    time-series ride the ring-buffered `Series` cap, so peak RSS is
//!    O(1) in the horizon. Sketch snapshots carry an exact state
//!    fingerprint — byte-stable across `ACORN_THREADS`.
//! 3. **Online invariants.** The [`InvariantWatchdog`] cross-checks the
//!    incremental world against from-scratch recomputation *during* the
//!    run and fails fast with a replayable `(seed, check, t)` triple,
//!    instead of letting a silent corruption skew days of statistics.
//!
//! [`QuantileSketch`]: acorn_obs::QuantileSketch
//! [`WorkloadGen`]: crate::workload::WorkloadGen
//! [`InvariantWatchdog`]: crate::watchdog::InvariantWatchdog

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod probe;
pub mod watchdog;
pub mod workload;

pub use harness::{periodic_crashes, periodic_partitions, SoakReport, SoakScenario};
pub use probe::SoakProbe;
pub use watchdog::{InvariantWatchdog, SabotageProcess, WatchdogSpec};
pub use workload::{FlashCrowd, WorkloadGen, WorkloadSpec};

/// Peak resident-set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), or `None` where the proc filesystem is absent.
/// The soak bench records it per profile so the O(1)-memory claim is a
/// measured number, not an assertion.
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.split_whitespace().next()?.parse().ok();
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_readable_and_plausible() {
        let kb = super::peak_rss_kb().expect("linux has /proc/self/status");
        assert!(kb > 100, "a Rust test binary uses more than 100 kB: {kb}");
    }
}
