//! Streaming session workload: heavy-tailed arrivals under a diurnal
//! load curve with seeded flash-crowd bursts, generated one event at a
//! time.
//!
//! The city scenario materializes its whole session trace up front —
//! fine for an hour, hopeless for a week (10⁶ sessions of 24 bytes
//! each, plus an event-queue entry per session boundary). The soak
//! workload instead *streams*: a dominating homogeneous Poisson process
//! at the curve's peak rate proposes candidate arrivals, and each
//! candidate is accepted with probability `rate(t) / rate_max`
//! (Lewis–Shedler thinning). Memory is O(clients); the event queue holds
//! at most one pending tick plus one departure per active client.
//!
//! Determinism: all draws come from one `StdRng` seeded via
//! [`mix_seed`](acorn_events::mix_seed) and consumed inside sequential
//! event handlers, so runs are bit-identical at any `ACORN_THREADS`.

use acorn_events::{mix_seed, AcornEvent, CityWorld, Ctx, Process};
use acorn_obs::{Histogram, RecordingSink};
use acorn_traces::AssociationDurations;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One flash-crowd window: while `[at_s, at_s + duration_s)` is active,
/// the arrival rate is multiplied by `rate_multiplier`. Overlapping
/// windows compose multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Window start (s).
    pub at_s: f64,
    /// Window length (s).
    pub duration_s: f64,
    /// Rate multiplier while active (≥ 0; > 1 for a burst).
    pub rate_multiplier: f64,
}

impl FlashCrowd {
    fn active_at(&self, t: f64) -> bool {
        t >= self.at_s && t < self.at_s + self.duration_s
    }
}

/// The workload's shape: base rate, diurnal modulation, flash crowds,
/// and the heavy-tailed association-duration model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Mean arrival rate at a flat diurnal curve (clients/s).
    pub base_rate_per_s: f64,
    /// Diurnal modulation depth in `[0, 1)`:
    /// `rate(t) = base · (1 + amplitude · sin(2π t / day))` before flash
    /// multipliers.
    pub diurnal_amplitude: f64,
    /// Diurnal period (s). 86 400 for a calendar day; shorter for tests.
    pub day_period_s: f64,
    /// Seeded flash-crowd bursts.
    pub flash: Vec<FlashCrowd>,
    /// Association-duration model (CRAWDAD-fit lognormal + tail).
    pub durations: AssociationDurations,
    /// Workload seed, mixed with [`mix_seed`](acorn_events::mix_seed)
    /// into the generator's RNG stream — independent of the scenario
    /// seed so fault and workload streams never alias.
    pub mix_seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            base_rate_per_s: 1.0 / 30.0,
            diurnal_amplitude: 0.6,
            day_period_s: 86_400.0,
            flash: Vec::new(),
            durations: AssociationDurations::default(),
            mix_seed: 0x50AC,
        }
    }
}

impl WorkloadSpec {
    /// The instantaneous arrival rate (clients/s) at virtual time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let diurnal = 1.0
            + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * t / self.day_period_s).sin();
        let flash: f64 = self
            .flash
            .iter()
            .filter(|f| f.active_at(t))
            .map(|f| f.rate_multiplier)
            .product();
        self.base_rate_per_s * diurnal * flash
    }

    /// A rate that dominates `rate_at` for every `t` — the thinning
    /// envelope. The flash component's maximum product over time is
    /// attained at some window's start, so the envelope is exact for
    /// the flash term (multiplying *all* windows would inflate the
    /// proposal stream by the product of every non-overlapping burst).
    pub fn rate_max(&self) -> f64 {
        let flash_cap = self
            .flash
            .iter()
            .map(|f| {
                self.flash
                    .iter()
                    .filter(|g| g.active_at(f.at_s))
                    .map(|g| g.rate_multiplier.max(1.0))
                    .product()
            })
            .fold(1.0f64, f64::max);
        self.base_rate_per_s * (1.0 + self.diurnal_amplitude) * flash_cap
    }
}

/// The streaming workload generator: proposes arrivals by thinning,
/// associates accepted clients inline (Algorithm 1 over the spatial
/// candidate set), and schedules each client's heavy-tailed departure.
///
/// Telemetry matches the trace-driven session processes
/// (`sessions.arrivals`, `sessions.departures`, `clients.active`,
/// `association.delay_s`) plus the workload's own stream counters
/// (`workload.ticks`, `workload.thinned`, `workload.saturated`,
/// `workload.no_candidate`).
pub struct WorkloadGen {
    /// The workload shape.
    pub spec: WorkloadSpec,
    /// Horizon (s); ticks at or past it never fire.
    pub horizon_s: f64,
    /// Run the localized §5.2 width adaptation after cell changes.
    pub adapt_widths: bool,
    rate_max: f64,
    rng: StdRng,
    /// Clients currently idle (available to arrive). Drawn uniformly so
    /// arrivals stay spatially mixed; `swap_remove` keeps it O(1).
    idle: Vec<u32>,
}

impl WorkloadGen {
    /// A generator for `spec` over `horizon_s` seconds.
    pub fn new(spec: WorkloadSpec, horizon_s: f64, adapt_widths: bool) -> WorkloadGen {
        assert!(spec.base_rate_per_s > 0.0, "base rate must be positive");
        assert!(
            (0.0..1.0).contains(&spec.diurnal_amplitude),
            "diurnal amplitude must sit in [0, 1)"
        );
        assert!(spec.day_period_s > 0.0, "day period must be positive");
        let rate_max = spec.rate_max();
        let rng = StdRng::seed_from_u64(mix_seed(spec.mix_seed, 0));
        WorkloadGen {
            spec,
            horizon_s,
            adapt_widths,
            rate_max,
            rng,
            idle: Vec::new(),
        }
    }

    /// Exponential inter-proposal gap at the dominating rate.
    fn next_gap_s(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.rate_max
    }

    fn chain_tick(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        let next = ctx.now() + self.next_gap_s();
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::WorkloadTick);
        }
    }
}

impl Process<CityWorld, AcornEvent> for WorkloadGen {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        self.idle = (0..ctx.world.wlan.clients.len() as u32).collect();
        if let Ok(h) = Histogram::linear(0.0, 0.01, 50) {
            ctx.telemetry.register_histogram("association.delay_s", h);
        }
        self.chain_tick(ctx);
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        match *event {
            AcornEvent::WorkloadTick => {
                let t = ctx.now();
                ctx.telemetry.inc("workload.ticks");
                // Thinning: accept this proposal with rate(t)/rate_max.
                let accept_p = self.spec.rate_at(t) / self.rate_max;
                let roll: f64 = self.rng.gen_range(0.0..1.0);
                if roll >= accept_p {
                    ctx.telemetry.inc("workload.thinned");
                } else if self.idle.is_empty() {
                    // Every client is already associated: the deployment
                    // is saturated and the arrival is lost (counted, so
                    // under-provisioned runs are visible).
                    ctx.telemetry.inc("workload.saturated");
                } else {
                    let slot = (self.rng.gen_range(0.0..1.0) * self.idle.len() as f64) as usize;
                    let c = self.idle.swap_remove(slot.min(self.idle.len() - 1)) as usize;
                    let w = &mut *ctx.world;
                    let sink = RecordingSink::new();
                    let chosen = w.associate_obs(c, &sink);
                    sink.drain_into(ctx.telemetry);
                    ctx.telemetry.inc("sessions.arrivals");
                    match chosen {
                        Some((ap, delay)) => {
                            if self.adapt_widths {
                                w.adapt_width_local(ap);
                            }
                            ctx.telemetry.observe("association.delay_s", delay);
                            let dur = self.spec.durations.sample(&mut self.rng);
                            ctx.schedule_at((t + dur).min(self.horizon_s), AcornEvent::Depart(c));
                        }
                        None => {
                            // No live AP in range (coverage hole or mass
                            // outage): the client stays idle.
                            ctx.telemetry.inc("workload.no_candidate");
                            self.idle.push(c as u32);
                        }
                    }
                }
                ctx.telemetry
                    .set_gauge("clients.active", ctx.world.active_clients() as f64);
                self.chain_tick(ctx);
            }
            AcornEvent::Depart(c) => {
                let w = &mut *ctx.world;
                if let Some(ap) = w.deassociate(c) {
                    if self.adapt_widths {
                        w.adapt_width_local(ap);
                    }
                }
                self.idle.push(c as u32);
                ctx.telemetry.inc("sessions.departures");
                ctx.telemetry
                    .set_gauge("clients.active", ctx.world.active_clients() as f64);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_curve_peaks_at_quarter_day_and_flash_multiplies() {
        let spec = WorkloadSpec {
            base_rate_per_s: 1.0,
            diurnal_amplitude: 0.5,
            day_period_s: 400.0,
            flash: vec![FlashCrowd {
                at_s: 100.0,
                duration_s: 10.0,
                rate_multiplier: 4.0,
            }],
            ..WorkloadSpec::default()
        };
        assert!((spec.rate_at(0.0) - 1.0).abs() < 1e-12);
        assert!(
            (spec.rate_at(100.0) - 1.5 * 4.0).abs() < 1e-12,
            "peak x flash"
        );
        assert!((spec.rate_at(300.0) - 0.5).abs() < 1e-12, "trough");
        let rm = spec.rate_max();
        for t in 0..400 {
            assert!(
                spec.rate_at(t as f64) <= rm + 1e-12,
                "envelope fails at {t}"
            );
        }
    }

    #[test]
    fn rate_max_bounds_overlapping_flash_windows() {
        let spec = WorkloadSpec {
            base_rate_per_s: 2.0,
            diurnal_amplitude: 0.0,
            flash: vec![
                FlashCrowd {
                    at_s: 0.0,
                    duration_s: 100.0,
                    rate_multiplier: 3.0,
                },
                FlashCrowd {
                    at_s: 50.0,
                    duration_s: 100.0,
                    rate_multiplier: 2.0,
                },
            ],
            ..WorkloadSpec::default()
        };
        // In the overlap the multipliers compose: 2 · 3 · 2 = 12.
        assert!((spec.rate_at(75.0) - 12.0).abs() < 1e-12);
        assert!(spec.rate_max() >= 12.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_base_rate_is_rejected() {
        WorkloadGen::new(
            WorkloadSpec {
                base_rate_per_s: 0.0,
                ..WorkloadSpec::default()
            },
            10.0,
            false,
        );
    }
}
