//! The soak harness: wires the streaming workload, re-allocation
//! timer, drift, goodput probe, invariant watchdog, and fault layer
//! over one incrementally-maintained [`CityWorld`], and aggregates the
//! run into a [`SoakReport`].
//!
//! Process registration order is fixed (workload, re-allocation, drift,
//! probe, watchdog, sabotage, faults) — registration order pins the
//! dispatch order of simultaneous events, which pins every output bit.

use crate::probe::{SoakProbe, NETWORK_BPS};
use crate::watchdog::{InvariantWatchdog, SabotageProcess, WatchdogSpec};
use crate::workload::{WorkloadGen, WorkloadSpec};
use acorn_core::AcornController;
use acorn_core::NetworkState;
use acorn_ctrlplane::{CrashWindow, PartitionWindow};
use acorn_events::{
    AcornEvent, CityDriftProcess, CityFaultProcess, CityReallocationTimer, CityWorld, DriftSpec,
    EventLog, FaultPlan, ReallocRecord, ResilienceReport, RunStats, SeedPolicy, Simulation,
    TelemetrySnapshot,
};
use acorn_obs::{SeriesEntry, SketchEntry};

/// A long-horizon chaos-soak scenario over a city-scale deployment.
#[derive(Clone)]
pub struct SoakScenario {
    /// The deployment (any `Wlan`; `acorn_sim::scenario::city_grid`
    /// shaped for the full-scale runs).
    pub wlan: acorn_topology::Wlan,
    /// Virtual horizon (s) — days, not minutes.
    pub horizon_s: f64,
    /// Re-allocation period `T` (s).
    pub reallocation_period_s: f64,
    /// Restarts per shard per re-allocation epoch.
    pub restarts: usize,
    /// Association candidate radius (m).
    pub candidate_radius_m: f64,
    /// Run the localized §5.2 width adaptation.
    pub adapt_widths: bool,
    /// Optional shadowing drift.
    pub drift: Option<DriftSpec>,
    /// Optional fault layer (AP crash/restart, measurement faults,
    /// beacon gauntlet). Setting it switches the re-allocation timer to
    /// safe mode and epoch seeds to the sequential policy, exactly as
    /// in `CityScenario`.
    pub faults: Option<FaultPlan>,
    /// The streaming workload shape.
    pub workload: WorkloadSpec,
    /// Goodput probe period (s).
    pub probe_period_s: f64,
    /// Online invariant watchdog; `None` runs blind (benchmarks only).
    pub watchdog: Option<WatchdogSpec>,
    /// Deliberate state corruption at this time (watchdog negative
    /// tests only).
    pub sabotage_at_s: Option<f64>,
    /// Master seed (initial assignment + per-epoch restart streams).
    pub seed: u64,
    /// Record the executed-event log (costs a `String` per event —
    /// short determinism runs only, never multi-day soaks).
    pub record_log: bool,
}

impl SoakScenario {
    /// A soak over `wlan` with every knob at its soak default: T = 30
    /// min, probe every minute, watchdog on, no faults, no drift.
    pub fn new(wlan: acorn_topology::Wlan, horizon_s: f64, seed: u64) -> SoakScenario {
        SoakScenario {
            wlan,
            horizon_s,
            reallocation_period_s: acorn_traces::REALLOCATION_PERIOD_S,
            restarts: 2,
            candidate_radius_m: 120.0,
            adapt_widths: true,
            drift: None,
            faults: None,
            workload: WorkloadSpec::default(),
            probe_period_s: 60.0,
            watchdog: Some(WatchdogSpec::default()),
            sabotage_at_s: None,
            seed,
            record_log: false,
        }
    }

    /// Runs the soak under `ctl` to its horizon (or the watchdog's
    /// fail-fast stop).
    pub fn run(&self, ctl: &AcornController) -> SoakReport {
        let world = CityWorld::new(
            self.wlan.clone(),
            ctl.clone(),
            self.candidate_radius_m,
            self.seed,
        );
        let mut sim: Simulation<CityWorld, AcornEvent> = Simulation::new(world);
        sim.record_events(self.record_log);
        sim.add_process(Box::new(WorkloadGen::new(
            self.workload.clone(),
            self.horizon_s,
            self.adapt_widths,
        )));
        sim.add_process(Box::new(CityReallocationTimer {
            period_s: self.reallocation_period_s,
            horizon_s: self.horizon_s,
            restarts: self.restarts,
            adapt_widths: self.adapt_widths,
            seed_policy: if self.faults.is_some() {
                SeedPolicy::Sequential {
                    next: self.seed.wrapping_add(1),
                }
            } else {
                SeedPolicy::FromEventSeq { base: self.seed }
            },
            safe_mode: self.faults.is_some(),
        }));
        if let Some(d) = self.drift {
            sim.add_process(Box::new(CityDriftProcess {
                period_s: d.period_s,
                horizon_s: self.horizon_s,
                phase_step_rad: d.phase_step_rad,
            }));
        }
        sim.add_process(Box::new(SoakProbe {
            period_s: self.probe_period_s,
            horizon_s: self.horizon_s,
        }));
        if let Some(spec) = self.watchdog {
            sim.add_process(Box::new(InvariantWatchdog::new(
                spec,
                self.horizon_s,
                self.seed,
                self.faults.is_some(),
            )));
        }
        if let Some(at_s) = self.sabotage_at_s {
            sim.add_process(Box::new(SabotageProcess { at_s }));
        }
        if let Some(plan) = self.faults {
            sim.add_process(Box::new(CityFaultProcess::new(plan, self.horizon_s)));
        }
        let stats = sim.run(self.horizon_s);
        let resilience = self
            .faults
            .map(|_| ResilienceReport::from_telemetry(&sim.telemetry));
        let checks = sim.telemetry.counter("watchdog.checks");
        let violations = sim.telemetry.counter("watchdog.violations");
        SoakReport {
            stats,
            telemetry: sim.telemetry.snapshot(),
            log: sim.event_log().cloned(),
            realloc: std::mem::take(&mut sim.world.realloc_log),
            final_state: sim.world.state.clone(),
            resilience,
            checks,
            violations,
            peak_rss_kb: crate::peak_rss_kb(),
        }
    }

    /// Runs the soak twice — with its fault plan and with the plan's
    /// fault-free twin — and fills the resilience report's golden
    /// comparison (`golden_mean_bps`, `throughput_retained`).
    pub fn run_resilience(&self, ctl: &AcornController) -> SoakReport {
        let plan = self.faults.unwrap_or_default();
        let mut faulty = self.clone();
        faulty.faults = Some(plan);
        let mut report = faulty.run(ctl);
        let mut golden = self.clone();
        golden.faults = Some(plan.benign_twin());
        let golden_report = golden.run(ctl);
        if let (Some(r), Some(g)) = (report.resilience.as_mut(), golden_report.resilience) {
            r.golden_mean_bps = g.faulty_mean_bps;
            r.throughput_retained = if g.faulty_mean_bps > 0.0 {
                r.faulty_mean_bps / g.faulty_mean_bps
            } else {
                0.0
            };
        }
        report
    }
}

/// What a soak run produced.
pub struct SoakReport {
    /// Events dispatched and final virtual time.
    pub stats: RunStats,
    /// The frozen telemetry (counters, gauges, capped series, sketches).
    pub telemetry: TelemetrySnapshot,
    /// The executed-event log (present iff `record_log` was set).
    pub log: Option<EventLog>,
    /// One record per re-allocation epoch.
    pub realloc: Vec<ReallocRecord>,
    /// The final controller state.
    pub final_state: NetworkState,
    /// Fault-layer aggregates (present iff `faults` was set).
    pub resilience: Option<ResilienceReport>,
    /// Watchdog checks executed.
    pub checks: u64,
    /// Watchdog violations observed (0 on a healthy run).
    pub violations: u64,
    /// Peak RSS at snapshot time (kB), where measurable.
    pub peak_rss_kb: Option<u64>,
}

impl SoakReport {
    /// A counter's final value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.telemetry
            .counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// A gauge's final value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.telemetry
            .gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.value)
    }

    /// A frozen sketch row by name.
    pub fn sketch(&self, name: &str) -> Option<&SketchEntry> {
        self.telemetry.sketches.iter().find(|s| s.name == name)
    }

    /// A frozen series row by name.
    pub fn series(&self, name: &str) -> Option<&SeriesEntry> {
        self.telemetry.series.iter().find(|s| s.name == name)
    }

    /// Mean of the retained `soak.network_bps` window.
    pub fn mean_network_bps(&self) -> f64 {
        match self.series(NETWORK_BPS) {
            Some(s) if !s.values.is_empty() => s.values.iter().sum::<f64>() / s.values.len() as f64,
            _ => 0.0,
        }
    }

    /// Quality drift over the retained probe window: mean goodput of the
    /// last quarter divided by the first quarter's (1.0 = flat, < 1 =
    /// decaying). `None` with fewer than 8 retained samples. On runs
    /// long enough for ring eviction the window is the *recent* history,
    /// which is exactly what a drift check should look at.
    pub fn quality_drift(&self) -> Option<f64> {
        let s = self.series(NETWORK_BPS)?;
        let n = s.values.len();
        if n < 8 {
            return None;
        }
        let q = n / 4;
        let first: f64 = s.values[..q].iter().sum::<f64>() / q as f64;
        let last: f64 = s.values[n - q..].iter().sum::<f64>() / q as f64;
        if first > 0.0 {
            Some(last / first)
        } else {
            None
        }
    }
}

/// Partition windows cycling round-robin over `n_zones`, starting at
/// `first_at_s`, one window every `period_s`, each `duration_s` long,
/// until `horizon_s` — continuous control-plane chaos for long soaks
/// (the single-window configs the short scenarios use don't stretch to
/// days).
pub fn periodic_partitions(
    n_zones: usize,
    first_at_s: f64,
    period_s: f64,
    duration_s: f64,
    horizon_s: f64,
) -> Vec<PartitionWindow> {
    assert!(period_s > 0.0, "partition period must be positive");
    let mut windows = Vec::new();
    if n_zones == 0 {
        return windows;
    }
    let mut t = first_at_s;
    let mut zone = 0usize;
    while t < horizon_s {
        windows.push(PartitionWindow {
            zone,
            from_s: t,
            until_s: (t + duration_s).min(horizon_s),
        });
        zone = (zone + 1) % n_zones;
        t += period_s;
    }
    windows
}

/// Crash/restart windows cycling round-robin over `n_zones` — the
/// crash-side counterpart of [`periodic_partitions`].
pub fn periodic_crashes(
    n_zones: usize,
    first_at_s: f64,
    period_s: f64,
    downtime_s: f64,
    horizon_s: f64,
) -> Vec<CrashWindow> {
    assert!(period_s > 0.0, "crash period must be positive");
    let mut windows = Vec::new();
    if n_zones == 0 {
        return windows;
    }
    let mut t = first_at_s;
    let mut zone = 0usize;
    while t < horizon_s {
        windows.push(CrashWindow {
            zone,
            at_s: t,
            restart_at_s: (t + downtime_s).min(horizon_s),
        });
        zone = (zone + 1) % n_zones;
        t += period_s;
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FlashCrowd;
    use acorn_core::AcornConfig;
    use acorn_topology::{Point, Wlan};

    /// Two 2-AP districts 400 m apart, 16 clients spread across both.
    fn wlan() -> Wlan {
        let mut aps = Vec::new();
        let mut clients = Vec::new();
        for d in [0.0, 400.0] {
            aps.push(Point::new(d, 0.0));
            aps.push(Point::new(d + 50.0, 0.0));
            for i in 0..8 {
                clients.push(Point::new(d + 5.0 * i as f64, 8.0 - i as f64));
            }
        }
        let mut w = Wlan::new(aps, clients, 17);
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    fn ctl() -> AcornController {
        AcornController::new(AcornConfig::default())
    }

    fn scenario(seed: u64) -> SoakScenario {
        let mut s = SoakScenario::new(wlan(), 4000.0, seed);
        s.reallocation_period_s = 900.0;
        s.probe_period_s = 50.0;
        s.workload = WorkloadSpec {
            base_rate_per_s: 1.0 / 25.0,
            diurnal_amplitude: 0.5,
            day_period_s: 2000.0,
            flash: vec![FlashCrowd {
                at_s: 1000.0,
                duration_s: 300.0,
                rate_multiplier: 4.0,
            }],
            ..WorkloadSpec::default()
        };
        s.watchdog = Some(WatchdogSpec {
            period_s: 40.0,
            graph_check_every: 4,
            fail_fast: true,
        });
        s.record_log = true;
        s
    }

    #[test]
    fn soak_runs_clean_and_is_reproducible() {
        let a = scenario(7).run(&ctl());
        let b = scenario(7).run(&ctl());
        assert_eq!(a.log, b.log);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(a.final_state, b.final_state);
        assert_eq!(a.violations, 0, "healthy run must not trip the watchdog");
        assert!(a.checks > 50, "watchdog ran: {}", a.checks);
        assert!(a.counter("sessions.arrivals") > 20);
        assert!(a.counter("sessions.departures") > 0);
        assert!(a.counter("workload.thinned") > 0, "thinning must reject");
        assert!(a.counter("watchdog.graph_checks") > 0);
        assert!(!a.realloc.is_empty());
    }

    #[test]
    fn sketches_and_series_stay_bounded() {
        let r = scenario(11).run(&ctl());
        let net = r.sketch(crate::probe::NETWORK_BPS).expect("probe sketch");
        assert_eq!(r.counter("probe.samples"), net.count);
        assert!(net.count > 50);
        assert!(net.retained <= net.count, "{net:?}");
        let clients = r.sketch(crate::probe::CLIENT_BPS).expect("client sketch");
        assert!(clients.count > net.count, "per-client outweighs per-net");
        assert!(clients.p50.is_some());
        let series = r.series(crate::probe::NETWORK_BPS).expect("probe series");
        assert_eq!(series.total, net.count, "series total counts everything");
        assert!(r.quality_drift().is_some());
        assert!(r.mean_network_bps() > 0.0);
    }

    #[test]
    fn sabotage_trips_the_watchdog_with_replay_coordinates() {
        let mut s = scenario(13);
        s.sabotage_at_s = Some(1500.0);
        let r = s.run(&ctl());
        assert!(r.violations >= 1, "watchdog must catch the corruption");
        assert_eq!(r.counter("watchdog.viol.cells"), r.violations);
        assert_eq!(r.gauge("watchdog.trip.code"), Some(2.0));
        assert_eq!(r.gauge("watchdog.trip.seed"), Some(13.0));
        let trip_t = r.gauge("watchdog.trip.t_s").expect("trip time recorded");
        assert!(trip_t >= 1500.0, "tripped after the sabotage: {trip_t}");
        // Fail-fast: the run stopped at the trip, well short of horizon.
        assert!(r.stats.end_time_s < 4000.0, "{:?}", r.stats);
    }

    #[test]
    fn fault_soak_fills_resilience_and_keeps_watchdog_quiet() {
        let mut s = scenario(19);
        s.faults = Some(FaultPlan {
            seed: 19,
            control_period_s: 25.0,
            ap_mttf_s: Some(400.0),
            ap_mttr_s: 700.0,
            max_crashes: 3,
            loss: 0.1,
            meas_nan: 0.05,
            ..FaultPlan::default()
        });
        let r = s.run_resilience(&ctl());
        let res = r.resilience.expect("fault soak carries resilience");
        assert!(res.crashes >= 1, "{res:?}");
        assert!(res.throughput_retained > 0.0, "{res:?}");
        assert_eq!(r.violations, 0, "faults are not invariant violations");
        assert!(r.realloc.iter().any(|rec| rec.degraded), "safe mode ran");
    }

    #[test]
    fn periodic_windows_cycle_zones_and_respect_horizon() {
        let p = periodic_partitions(3, 100.0, 500.0, 200.0, 2000.0);
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.iter().map(|w| w.zone).collect::<Vec<_>>(),
            vec![0, 1, 2, 0]
        );
        assert!(p.iter().all(|w| w.until_s <= 2000.0));
        let c = periodic_crashes(2, 0.0, 300.0, 100.0, 1000.0);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|w| w.restart_at_s <= 1000.0));
        assert!(periodic_partitions(0, 0.0, 10.0, 5.0, 100.0).is_empty());
    }
}
