//! Periodic goodput probe with bounded-memory recording.
//!
//! Once per period the probe evaluates the localized live-network
//! goodput model ([`CityWorld::network_bps_up`] — O(neighbours) per
//! cell, no full model build) and records it three ways:
//!
//! * `soak.network_bps` **series** — the recent window, ring-buffered
//!   under the telemetry series cap (O(1) in horizon);
//! * `soak.network_bps` **sketch** — the full-horizon distribution at
//!   KLL accuracy (O(k log n) retained);
//! * `soak.client_bps` **sketch** — one observation per associated
//!   client of its equal-share slice of its cell's goodput, so the
//!   p50/p95/p99 a soak reports are client-experienced numbers, not
//!   cell averages.
//!
//! [`CityWorld::network_bps_up`]: acorn_events::CityWorld::network_bps_up

use acorn_events::{AcornEvent, CityWorld, Ctx, Process};
use acorn_obs::{QuantileSketch, DEFAULT_SKETCH_K};

/// Sketch/series name for network-wide live goodput.
pub const NETWORK_BPS: &str = "soak.network_bps";
/// Sketch name for per-client goodput shares.
pub const CLIENT_BPS: &str = "soak.client_bps";

/// The periodic goodput probe.
pub struct SoakProbe {
    /// Sampling period (s).
    pub period_s: f64,
    /// Horizon (s); samples past it never fire.
    pub horizon_s: f64,
}

impl Process<CityWorld, AcornEvent> for SoakProbe {
    fn start(&mut self, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        for name in [NETWORK_BPS, CLIENT_BPS] {
            if let Ok(s) = QuantileSketch::new(DEFAULT_SKETCH_K) {
                ctx.telemetry.register_sketch(name, s);
            }
        }
        if self.period_s < self.horizon_s {
            ctx.schedule_at(self.period_s, AcornEvent::ProbeSample);
        }
    }

    fn handle(&mut self, event: &AcornEvent, ctx: &mut Ctx<'_, CityWorld, AcornEvent>) {
        debug_assert_eq!(*event, AcornEvent::ProbeSample);
        let t = ctx.now();
        let w = &*ctx.world;
        let mut total = 0.0;
        for ap in 0..w.wlan.aps.len() {
            let cell = w.cell_bps_up(ap);
            total += cell;
            let k = w.cell_clients(ap).len();
            if cell > 0.0 && k > 0 {
                let share = cell / k as f64;
                for _ in 0..k {
                    ctx.telemetry.sketch_observe(CLIENT_BPS, share);
                }
            }
        }
        ctx.telemetry.record(NETWORK_BPS, t, total);
        ctx.telemetry.sketch_observe(NETWORK_BPS, total);
        ctx.telemetry.inc("probe.samples");
        let next = t + self.period_s;
        if next < self.horizon_s {
            ctx.schedule_at(next, AcornEvent::ProbeSample);
        }
    }
}
