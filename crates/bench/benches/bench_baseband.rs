//! Criterion benches for the software baseband — the Monte-Carlo engine
//! behind Figs. 1–4 (FFT, Viterbi, the end-to-end frame pipeline), plus
//! the workspace hot path the zero-allocation engine runs on.

use acorn_baseband::convcode::Codec;
use acorn_baseband::cplx::Cplx;
use acorn_baseband::fft::fft;
use acorn_baseband::frame::{
    mix_seed, run_trial, run_trial_with, Equalization, FrameConfig, FrameWorkspace,
};
use acorn_baseband::psd::welch_psd;
use acorn_bench::baseline_frame::run_trial_baseline;
use acorn_phy::{ChannelWidth, CodeRate};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fft(c: &mut Criterion) {
    for n in [64usize, 128] {
        let input: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 1.1).cos()))
            .collect();
        c.bench_function(&format!("baseband/fft_{n}"), |b| {
            b.iter(|| {
                let mut buf = input.clone();
                fft(black_box(&mut buf));
                buf
            })
        });
    }
}

fn bench_viterbi(c: &mut Criterion) {
    let codec = Codec::new(CodeRate::R34);
    let info: Vec<bool> = (0..1200).map(|i| i % 3 == 0).collect();
    let coded = codec.encode(&info);
    // The measured path goes through the `_into` twin with reused scratch,
    // exactly like the frame pipeline's decode stage — steady state is
    // allocation-free.
    let (mut classes, mut survivor, mut out) = (Vec::new(), Vec::new(), Vec::new());
    c.bench_function("baseband/viterbi_1200b_r34", |b| {
        b.iter(|| {
            codec.decode_into(
                black_box(&coded),
                info.len(),
                &mut classes,
                &mut survivor,
                &mut out,
            );
            out.len()
        })
    });
}

fn bench_frame_pipeline(c: &mut Criterion) {
    for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
        let cfg = FrameConfig {
            packet_bytes: 500,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(w)
        }
        .with_target_snr(10.0);
        c.bench_function(&format!("baseband/frame_500B_{w:?}"), |b| {
            b.iter(|| run_trial(black_box(&cfg), 1, 7))
        });
    }
}

/// The steady-state hot path: one packet through a warm [`FrameWorkspace`]
/// — no allocation, no plan rebuild, exactly what each parallel worker
/// does per packet inside `try_run_trial`.
fn bench_workspace_packet(c: &mut Criterion) {
    let cfg = FrameConfig {
        packet_bytes: 1500,
        code_rate: Some(CodeRate::R12),
        equalization: Equalization::Genie,
        ..FrameConfig::baseline(ChannelWidth::Ht20)
    }
    .with_target_snr(7.0);
    let mut ws = FrameWorkspace::new();
    ws.run_packet(&cfg, mix_seed(7, 0)).unwrap();
    let mut i = 0u64;
    c.bench_function("baseband/workspace_packet_1500B_qpsk_r12", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            ws.run_packet(black_box(&cfg), mix_seed(7, i)).unwrap()
        })
    });
}

/// Workspace engine vs the pre-workspace baseline pipeline, same config —
/// the criterion view of the BENCH_baseband.json speedup.
fn bench_engine_vs_baseline(c: &mut Criterion) {
    let cfg = FrameConfig {
        packet_bytes: 1500,
        code_rate: Some(CodeRate::R12),
        equalization: Equalization::Genie,
        ..FrameConfig::baseline(ChannelWidth::Ht20)
    }
    .with_target_snr(7.0);
    const PACKETS: usize = 4;
    let mut ws = FrameWorkspace::new();
    c.bench_function("baseband/engine_4pkt_1500B_qpsk_r12", |b| {
        b.iter(|| run_trial_with(black_box(&cfg), PACKETS, 7, &mut ws).unwrap())
    });
    c.bench_function("baseband/baseline_4pkt_1500B_qpsk_r12", |b| {
        b.iter(|| run_trial_baseline(black_box(&cfg), PACKETS, 7))
    });
}

fn bench_psd(c: &mut Criterion) {
    let signal: Vec<Cplx> = (0..16384).map(|i| Cplx::cis(0.1 * i as f64)).collect();
    c.bench_function("baseband/welch_psd_16k", |b| {
        b.iter(|| welch_psd(black_box(&signal), 256))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_viterbi,
    bench_frame_pipeline,
    bench_workspace_packet,
    bench_engine_vs_baseline,
    bench_psd
);
criterion_main!(benches);
