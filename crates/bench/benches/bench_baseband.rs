//! Criterion benches for the software baseband — the Monte-Carlo engine
//! behind Figs. 1–4 (FFT, Viterbi, the end-to-end frame pipeline).

use acorn_baseband::convcode::Codec;
use acorn_baseband::cplx::Cplx;
use acorn_baseband::fft::fft;
use acorn_baseband::frame::{run_trial, Equalization, FrameConfig};
use acorn_baseband::psd::welch_psd;
use acorn_phy::{ChannelWidth, CodeRate};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fft(c: &mut Criterion) {
    for n in [64usize, 128] {
        let input: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 1.1).cos()))
            .collect();
        c.bench_function(&format!("baseband/fft_{n}"), |b| {
            b.iter(|| {
                let mut buf = input.clone();
                fft(black_box(&mut buf));
                buf
            })
        });
    }
}

fn bench_viterbi(c: &mut Criterion) {
    let codec = Codec::new(CodeRate::R34);
    let info: Vec<bool> = (0..1200).map(|i| i % 3 == 0).collect();
    let coded = codec.encode(&info);
    c.bench_function("baseband/viterbi_1200b_r34", |b| {
        b.iter(|| codec.decode(black_box(&coded), info.len()))
    });
}

fn bench_frame_pipeline(c: &mut Criterion) {
    for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
        let cfg = FrameConfig {
            packet_bytes: 500,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(w)
        }
        .with_target_snr(10.0);
        c.bench_function(&format!("baseband/frame_500B_{w:?}"), |b| {
            b.iter(|| run_trial(black_box(&cfg), 1, 7))
        });
    }
}

fn bench_psd(c: &mut Criterion) {
    let signal: Vec<Cplx> = (0..16384)
        .map(|i| Cplx::cis(0.1 * i as f64))
        .collect();
    c.bench_function("baseband/welch_psd_16k", |b| {
        b.iter(|| welch_psd(black_box(&signal), 256))
    });
}

criterion_group!(benches, bench_fft, bench_viterbi, bench_frame_pipeline, bench_psd);
criterion_main!(benches);
