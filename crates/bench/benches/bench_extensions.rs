//! Criterion benches for the extension modules: IAPP rounds, scanning-
//! aware allocation, the Bianchi fixed point, and the closed churn loop.

use acorn_core::allocation::{allocate_from_random, AllocationConfig};
use acorn_core::iapp::{IappAgent, IappBus};
use acorn_core::model::{ClientSnr, NetworkModel};
use acorn_core::scanning::{HashSounding, ScanningModel};
use acorn_core::{AcornConfig, AcornController};
use acorn_mac::bianchi::solve;
use acorn_sim::churn::{run_churn, ChurnConfig};
use acorn_sim::enterprise_grid;
use acorn_topology::{ApId, ChannelPlan, InterferenceGraph};
use acorn_traces::SessionGenerator;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(n_aps: usize) -> NetworkModel {
    let cells = (0..n_aps)
        .map(|a| {
            vec![ClientSnr {
                client: a,
                snr20_db: 4.0 + (a * 7 % 28) as f64,
            }]
        })
        .collect();
    NetworkModel::new(InterferenceGraph::complete(n_aps), cells)
}

fn bench_iapp_round(c: &mut Criterion) {
    let wlan = enterprise_grid(3, 3, 50.0, 0, 1);
    let plan = ChannelPlan::full_5ghz();
    let assignments: Vec<_> = (0..9).map(|i| plan.all_assignments()[i % 18]).collect();
    let counts = vec![2usize; 9];
    c.bench_function("extensions/iapp_round_9aps", |b| {
        b.iter(|| {
            let mut agents: Vec<IappAgent> = (0..9).map(|i| IappAgent::new(ApId(i))).collect();
            let bus = IappBus::new(&wlan);
            bus.round(&mut agents, black_box(&assignments), &counts, 0.0);
            agents
        })
    });
}

fn bench_scanning_allocation(c: &mut Criterion) {
    let base = model(4);
    let plan = ChannelPlan::full_5ghz();
    c.bench_function("extensions/scanning_allocation_4aps", |b| {
        b.iter(|| {
            // Fresh model per iteration so the cache does not make the
            // bench trivially warm.
            let truth = ScanningModel::new(
                base.clone(),
                HashSounding {
                    sigma_db: 2.0,
                    seed: 3,
                },
            );
            allocate_from_random(black_box(&truth), &plan, &AllocationConfig::default(), 1)
        })
    });
}

fn bench_bianchi(c: &mut Criterion) {
    c.bench_function("extensions/bianchi_fixed_point_n8", |b| {
        b.iter(|| solve(black_box(8)))
    });
}

fn bench_churn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 3600.0);
    let wlan = enterprise_grid(2, 2, 50.0, sessions.len().max(1), 2);
    let ctl = AcornController::new(AcornConfig::default());
    let cfg = ChurnConfig {
        horizon_s: 3600.0,
        restarts: 2,
        ..ChurnConfig::default()
    };
    c.bench_function("extensions/churn_one_hour_4aps", |b| {
        b.iter(|| run_churn(&wlan, &ctl, black_box(&sessions), &cfg, 3))
    });
}

criterion_group!(
    benches,
    bench_iapp_round,
    bench_scanning_allocation,
    bench_bianchi,
    bench_churn
);
criterion_main!(benches);
