//! Criterion benches for the baselines: the [17]-style aggressive scan,
//! the exhaustive optimum (Fig. 14's reference), and the full-network
//! evaluation used by Table 3.

use acorn_baselines::kauffmann::allocate_aggressive_cb;
use acorn_baselines::optimal::optimal_allocation;
use acorn_baselines::simple::random_config;
use acorn_core::model::{ClientSnr, NetworkModel};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_sim::runner::evaluate_analytic;
use acorn_sim::scenario::enterprise_grid;
use acorn_sim::traffic::Traffic;
use acorn_topology::{ChannelPlan, InterferenceGraph};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_aggressive_scan(c: &mut Criterion) {
    let wlan = enterprise_grid(3, 3, 50.0, 0, 5);
    let graph = wlan.ap_only_interference_graph();
    let plan = ChannelPlan::full_5ghz();
    c.bench_function("baselines/aggressive_cb_9aps", |b| {
        b.iter(|| allocate_aggressive_cb(black_box(&wlan), &graph, &plan, 8))
    });
}

fn bench_optimal(c: &mut Criterion) {
    let cells = (0..3)
        .map(|a| {
            vec![ClientSnr {
                client: a,
                snr20_db: 6.0 + 9.0 * a as f64,
            }]
        })
        .collect();
    let m = NetworkModel::new(InterferenceGraph::complete(3), cells);
    let plan = ChannelPlan::restricted(4);
    c.bench_function("baselines/optimal_3aps_4ch", |b| {
        b.iter(|| optimal_allocation(black_box(&m), &plan, 10_000))
    });
}

fn bench_random_config_eval(c: &mut Criterion) {
    // One Table 3 sample: draw a random configuration and score it.
    let wlan = enterprise_grid(2, 2, 55.0, 12, 2010);
    let plan = ChannelPlan::full_5ghz();
    let est = LinkQualityEstimator::default();
    c.bench_function("baselines/table3_one_random_config", |b| {
        b.iter(|| {
            let cfg = random_config(&wlan, &plan, -3.0, black_box(7));
            evaluate_analytic(
                &wlan,
                &cfg.assignments,
                &cfg.assoc,
                &est,
                1500,
                Traffic::Udp,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_aggressive_scan,
    bench_optimal,
    bench_random_config_eval
);
criterion_main!(benches);
