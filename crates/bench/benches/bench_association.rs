//! Criterion benches for Algorithm 1 and the beacon/candidate machinery —
//! the association half of Figs. 10 and Table 3.

use acorn_core::association::{choose_ap, choose_ap_selfish, Candidate};
use acorn_core::{AcornConfig, AcornController};
use acorn_sim::enterprise_grid;
use acorn_topology::{ApId, ClientId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn candidates(n: usize) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            ap: ApId(i),
            k_including_u: 1 + i % 4,
            access_share: 1.0 / (1 + i % 3) as f64,
            atd_including_u_s: 0.004 * (1 + i % 5) as f64,
            delay_u_s: 0.002,
        })
        .collect()
}

fn bench_choose(c: &mut Criterion) {
    let cands = candidates(8);
    c.bench_function("association/choose_ap_eq4_8cands", |b| {
        b.iter(|| choose_ap(black_box(&cands)))
    });
    c.bench_function("association/choose_ap_selfish_8cands", |b| {
        b.iter(|| choose_ap_selfish(black_box(&cands)))
    });
}

fn bench_full_association(c: &mut Criterion) {
    let wlan = enterprise_grid(3, 3, 50.0, 20, 5);
    let ctl = AcornController::new(AcornConfig::default());
    let state = {
        let mut s = ctl.new_state(&wlan, 5);
        for cl in 0..10 {
            ctl.associate(&wlan, &mut s, ClientId(cl));
        }
        s
    };
    c.bench_function("association/probe_and_choose_9ap_grid", |b| {
        b.iter(|| {
            let cands = ctl.candidates_for(&wlan, black_box(&state), ClientId(11));
            choose_ap(&cands)
        })
    });
    c.bench_function("association/beacons_9ap_grid", |b| {
        b.iter(|| ctl.beacons(&wlan, black_box(&state)))
    });
}

criterion_group!(benches, bench_choose, bench_full_association);
criterion_main!(benches);
