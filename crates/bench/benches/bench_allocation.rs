//! Criterion benches for Algorithm 2 — the engine behind Figs. 10/11/14
//! and Table 3 — including its scaling in network size and channel count,
//! and the ε-stopping-rule ablation.

use acorn_core::allocation::{allocate_from_random, AllocationConfig};
use acorn_core::model::{ClientSnr, NetworkModel};
use acorn_topology::{ChannelPlan, InterferenceGraph};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn model(n_aps: usize, clients_per_ap: usize) -> NetworkModel {
    let cells = (0..n_aps)
        .map(|a| {
            (0..clients_per_ap)
                .map(|i| ClientSnr {
                    client: a * clients_per_ap + i,
                    snr20_db: 4.0 + ((a * 7 + i * 13) % 28) as f64,
                })
                .collect()
        })
        .collect();
    NetworkModel::new(InterferenceGraph::complete(n_aps), cells)
}

fn bench_scaling_in_aps(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation/scaling_n_aps");
    for n in [2usize, 4, 8, 12] {
        let m = model(n, 3);
        let plan = ChannelPlan::full_5ghz();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| allocate_from_random(black_box(&m), &plan, &AllocationConfig::default(), 1))
        });
    }
    group.finish();
}

fn bench_scaling_in_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation/scaling_channels");
    let m = model(4, 3);
    for ch in [2u8, 4, 6, 12] {
        let plan = ChannelPlan::restricted(ch);
        group.bench_with_input(BenchmarkId::from_parameter(ch), &ch, |b, _| {
            b.iter(|| allocate_from_random(black_box(&m), &plan, &AllocationConfig::default(), 1))
        });
    }
    group.finish();
}

fn bench_epsilon_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation/ablation_epsilon");
    let m = model(6, 3);
    let plan = ChannelPlan::full_5ghz();
    for eps in [1.0f64, 1.05, 1.10] {
        let cfg = AllocationConfig {
            epsilon: eps,
            max_rounds: 64,
        };
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| allocate_from_random(black_box(&m), &plan, &cfg, 1))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_in_aps,
    bench_scaling_in_channels,
    bench_epsilon_ablation
);
criterion_main!(benches);
