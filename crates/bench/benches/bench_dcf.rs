//! Criterion benches for the slot-level DCF simulator — the validation
//! engine behind the airtime model used in every throughput table.

use acorn_mac::airtime::ClientLink;
use acorn_mac::dcf::{simulate_dcf, StationConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn station(n_clients: usize) -> StationConfig {
    StationConfig::new(
        (0..n_clients)
            .map(|i| ClientLink {
                rate_bps: [6.5e6, 65e6, 130e6][i % 3],
                per: 0.05 * (i % 3) as f64,
            })
            .collect(),
    )
}

fn bench_single_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcf/one_second_single_cell");
    for n in [1usize, 4, 16] {
        let cfg = vec![station(n)];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| simulate_dcf(black_box(&cfg), 1.0, 3))
        });
    }
    group.finish();
}

fn bench_contending_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcf/one_second_contenders");
    for n in [2usize, 3, 6] {
        let cfg: Vec<StationConfig> = (0..n).map(|_| station(2)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| simulate_dcf(black_box(&cfg), 1.0, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_cell, bench_contending_cells);
criterion_main!(benches);
