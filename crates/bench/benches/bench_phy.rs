//! Criterion benches for the analytic PHY — the machinery behind Table 1
//! and Figs. 5–6 (σ curves, crossover search, estimator pipeline).

use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::link::{sigma_crossover_snr, sigma_for};
use acorn_phy::{ChannelWidth, CodeRate, Modulation};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_coded_ber(c: &mut Criterion) {
    c.bench_function("phy/coded_ber_64qam_r56", |b| {
        b.iter(|| {
            acorn_phy::coding::coded_ber(
                CodeRate::R56,
                black_box(Modulation::Qam64.ber_awgn(black_box(18.0))),
            )
        })
    });
}

fn bench_sigma(c: &mut Criterion) {
    c.bench_function("phy/sigma_for (one Fig.5 point)", |b| {
        b.iter(|| sigma_for(Modulation::Qam16, CodeRate::R34, black_box(12.0), 1500))
    });
    c.bench_function("phy/sigma_crossover (one Table 1 cell)", |b| {
        b.iter(|| sigma_crossover_snr(Modulation::Qam16, CodeRate::R34, 1500))
    });
}

fn bench_estimator(c: &mut Criterion) {
    let est = LinkQualityEstimator::default();
    c.bench_function("phy/estimator_full_pipeline", |b| {
        b.iter(|| est.estimate(black_box(14.0), ChannelWidth::Ht20))
    });
    c.bench_function("phy/estimator_best_rate_point", |b| {
        b.iter(|| est.best_rate_point(black_box(14.0), ChannelWidth::Ht40))
    });
}

criterion_group!(benches, bench_coded_ber, bench_sigma, bench_estimator);
criterion_main!(benches);
