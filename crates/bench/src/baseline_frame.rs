//! The seed's baseband Monte-Carlo loop, preserved as a timing reference.
//!
//! Before the workspace engine landed, `run_trial` ran one packet at a
//! time on a single RNG stream and allocated every intermediate buffer
//! per packet: payload, coded bits, one grid + IFFT output + CP copy per
//! OFDM symbol, channel taps, the concatenated frame, one FFT block per
//! received symbol, per-step Viterbi survivor rows — plus Box–Muller
//! noise (two uniforms, `ln`/`sqrt`/`cos`/`sin` per complex sample) and a
//! textbook per-step Viterbi that recomputes branch parities inside the
//! hot loop. `BENCH_baseband.json` quotes the engine's packets/sec
//! against this implementation, so the reference is kept compilable here
//! rather than in git history. SISO only — the snapshot configs don't
//! exercise STBC.
//!
//! Faithfulness notes: identical algorithms and trellis/termination
//! conventions as `acorn_baseband::convcode`, identical subcarrier maps
//! and equalization math; the preamble is always transmitted (the seed
//! did so even under genie sync), the IFFT normalizes by 1/N in a
//! separate pass, and equalization divides per symbol. Only the noise
//! *sampling method* differs from today's engine (Box–Muller vs
//! ziggurat), exactly as the seed differed.

use acorn_baseband::channel::convolve;
use acorn_baseband::convcode::{depuncture, encode, puncture, TAIL_BITS};
use acorn_baseband::cplx::{mean_power, Cplx};
use acorn_baseband::fft::{fft_vec, ifft_vec};
use acorn_baseband::frame::{
    data_subcarrier_bins, Equalization, FrameConfig, FrameReport, SyncMode,
};
use acorn_baseband::modem::{demodulate, modulate};
use acorn_baseband::preamble::{build_preamble, detect_preamble, preamble_len};
use acorn_baseband::prefix::{add_cp, cp_len_for};
use acorn_phy::CodeRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Box–Muller standard complex Gaussian — the seed's noise sampler.
fn complex_gaussian(rng: &mut StdRng, variance: f64) -> Cplx {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt() * (variance / 2.0).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    Cplx::new(r * theta.cos(), r * theta.sin())
}

fn add_awgn(samples: &mut [Cplx], variance: f64, rng: &mut StdRng) {
    if variance <= 0.0 {
        return;
    }
    for s in samples.iter_mut() {
        *s += complex_gaussian(rng, variance);
    }
}

const G0: u32 = 0o133;
const G1: u32 = 0o171;
const STATES: usize = 64;

/// Textbook per-step Viterbi, as the seed ran it: branch parities
/// recomputed in the inner loop, `u64` path metrics, one freshly
/// allocated survivor row per trellis step.
fn viterbi_decode_baseline(pairs: &[(Option<bool>, Option<bool>)], info_len: usize) -> Vec<bool> {
    const INF: u64 = u64::MAX / 4;
    let parity = |x: u32| (x.count_ones() & 1) == 1;
    let mut metric = vec![INF; STATES];
    metric[0] = 0;
    let mut survivors: Vec<Vec<u8>> = Vec::with_capacity(pairs.len());
    for &(ra, rb) in pairs {
        let mut next_metric = vec![INF; STATES];
        let mut row = vec![0u8; STATES];
        for s in 0..STATES {
            if metric[s] >= INF {
                continue;
            }
            for input in 0..2usize {
                let window = ((input as u32) << 6) | s as u32;
                let a = parity(window & G0);
                let b = parity(window & G1);
                let mut cost = 0u64;
                if let Some(r) = ra {
                    cost += (r != a) as u64;
                }
                if let Some(r) = rb {
                    cost += (r != b) as u64;
                }
                let ns = (s >> 1) | (input << 5);
                let cand = metric[s] + cost;
                if cand < next_metric[ns] {
                    next_metric[ns] = cand;
                    row[ns] = (s & 1) as u8;
                }
            }
        }
        metric = next_metric;
        survivors.push(row);
    }
    // Terminated trellis: traceback from state 0.
    let mut state = 0usize;
    let mut decoded = vec![false; pairs.len()];
    for t in (0..pairs.len()).rev() {
        decoded[t] = state >> 5 != 0;
        state = ((state & 31) << 1) | survivors[t][state] as usize;
    }
    decoded.truncate(info_len);
    decoded
}

fn encode_baseline(info: &[bool], rate: CodeRate) -> Vec<bool> {
    let mother = encode(info);
    if rate == CodeRate::R12 {
        mother
    } else {
        puncture(&mother, rate)
    }
}

fn decode_baseline(rx: &[bool], rate: CodeRate, info_len: usize) -> Vec<bool> {
    let pairs = depuncture(rx, rate, info_len + TAIL_BITS);
    viterbi_decode_baseline(&pairs, info_len)
}

fn training_grid(cfg: &FrameConfig) -> Vec<Cplx> {
    let bins = data_subcarrier_bins(cfg.width);
    let amplitude = cfg.subcarrier_amplitude();
    let mut grid = vec![Cplx::ZERO; cfg.width.fft_size()];
    for (i, &b) in bins.iter().enumerate() {
        grid[b] = Cplx::cis(std::f64::consts::PI * ((i * i) % 7) as f64 / 3.5).scale(amplitude);
    }
    grid
}

fn n_train(cfg: &FrameConfig) -> usize {
    match cfg.equalization {
        Equalization::Genie => 0,
        Equalization::Training { symbols } => symbols.max(1),
    }
}

/// One OFDM symbol: grid → normalized IFFT → fresh CP copy.
fn ofdm_symbol(grid: &[Cplx], cp: usize) -> Vec<Cplx> {
    let time = ifft_vec(grid);
    add_cp(&time, cp)
}

fn build_stream(cfg: &FrameConfig, symbols: &[Cplx]) -> Vec<Cplx> {
    let n = cfg.width.fft_size();
    let cp = cp_len_for(n, cfg.gi);
    let bins = data_subcarrier_bins(cfg.width);
    let amplitude = cfg.subcarrier_amplitude();
    let train = training_grid(cfg);
    let mut stream = Vec::new();
    for _ in 0..n_train(cfg) {
        stream.extend(ofdm_symbol(&train, cp));
    }
    for chunk in symbols.chunks(bins.len()) {
        let mut grid = vec![Cplx::ZERO; n];
        for (slot, sym) in chunk.iter().enumerate() {
            grid[bins[slot]] = sym.scale(amplitude);
        }
        stream.extend(ofdm_symbol(&grid, cp));
    }
    stream
}

fn fft_block(stream: &[Cplx], start: usize, cp: usize, n: usize) -> Vec<Cplx> {
    match stream.get(start..start + cp + n) {
        Some(block) => fft_vec(&block[cp..]),
        None => vec![Cplx::ZERO; n],
    }
}

fn frequency_response(taps: &[Cplx], n: usize) -> Vec<Cplx> {
    if taps.len() == 1 {
        return vec![taps[0]; n];
    }
    let mut padded = taps.to_vec();
    padded.resize(n, Cplx::ZERO);
    fft_vec(&padded)
}

/// One packet through the seed pipeline; every buffer freshly allocated.
#[allow(clippy::too_many_lines)]
fn run_packet(cfg: &FrameConfig, rng: &mut StdRng) -> (usize, usize, bool, f64) {
    let n = cfg.width.fft_size();
    let cp = cp_len_for(n, cfg.gi);
    let bins = data_subcarrier_bins(cfg.width);
    let amplitude = cfg.subcarrier_amplitude();
    let info_len = cfg.packet_bytes * 8;
    let info: Vec<bool> = (0..info_len).map(|_| rng.gen()).collect();
    let tx_bits = match cfg.code_rate {
        Some(rate) => encode_baseline(&info, rate),
        // The seed cloned the payload for the uncoded path.
        None => info.clone(),
    };
    let tx_symbols = modulate(cfg.modulation, &tx_bits);
    let stream = build_stream(cfg, &tx_symbols);
    let tx_power = mean_power(&stream);

    // The seed always prepended the preamble, genie sync included.
    let preamble = build_preamble(cfg.tx_power.sqrt());
    let mut full = preamble.clone();
    full.extend_from_slice(&stream);

    let taps = cfg.channel.draw_taps(rng);
    let mut rx = convolve(&full, &taps);
    add_awgn(&mut rx, cfg.sample_noise(), rng);

    let data_start = match cfg.sync {
        SyncMode::Genie => preamble_len(),
        SyncMode::Preamble { threshold } => match detect_preamble(&rx, 4, threshold) {
            Some(off) => off,
            None => return (info_len, info_len, true, tx_power),
        },
    };

    let nt = n_train(cfg);
    let block = n + cp;
    let h = match cfg.equalization {
        Equalization::Genie => frequency_response(&taps, n),
        Equalization::Training { .. } => {
            let train = training_grid(cfg);
            let mut h = vec![Cplx::ZERO; n];
            for t in 0..nt {
                let fb = fft_block(&rx, data_start + t * block, cp, n);
                for &b in bins {
                    h[b] += (fb[b] / train[b]).scale(1.0 / nt as f64);
                }
            }
            h
        }
    };

    let mut rx_symbols = Vec::with_capacity(tx_symbols.len());
    let mut ofdm_idx = nt;
    while rx_symbols.len() < tx_symbols.len() {
        let fb = fft_block(&rx, data_start + ofdm_idx * block, cp, n);
        for &b in bins {
            if rx_symbols.len() >= tx_symbols.len() {
                break;
            }
            rx_symbols.push((fb[b] / h[b]).scale(1.0 / amplitude));
        }
        ofdm_idx += 1;
    }

    let rx_bits = demodulate(cfg.modulation, &rx_symbols);
    let errors = match cfg.code_rate {
        Some(rate) => {
            let decoded = decode_baseline(&rx_bits[..tx_bits.len()], rate, info_len);
            decoded.iter().zip(&info).filter(|(a, b)| a != b).count()
        }
        None => rx_bits.iter().zip(&info).filter(|(a, b)| a != b).count(),
    };
    (info_len, errors, false, tx_power)
}

/// The seed's sequential `run_trial`: one RNG stream for the whole trial,
/// per-packet allocation throughout. Only the counting fields of the
/// report are populated (the snapshot compares throughput, not
/// constellations).
pub fn run_trial_baseline(cfg: &FrameConfig, n_packets: usize, seed: u64) -> FrameReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = FrameReport {
        bits: 0,
        bit_errors: 0,
        packets: 0,
        packet_errors: 0,
        sync_failures: 0,
        constellation: Vec::new(),
        evm_rms: 0.0,
        snr_per_subcarrier_db: cfg.snr_per_subcarrier_db(),
        measured_tx_power: 0.0,
    };
    let mut power_acc = 0.0;
    for _ in 0..n_packets {
        let (bits, errors, sync_failed, tx_power) = run_packet(cfg, &mut rng);
        report.packets += 1;
        report.bits += bits;
        report.bit_errors += errors;
        if sync_failed {
            report.sync_failures += 1;
        }
        if errors > 0 || sync_failed {
            report.packet_errors += 1;
        }
        power_acc += tx_power;
    }
    report.measured_tx_power = power_acc / report.packets.max(1) as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_phy::{ChannelWidth, Modulation};

    #[test]
    fn baseline_roundtrips_noiselessly() {
        for code_rate in [None, Some(CodeRate::R12), Some(CodeRate::R34)] {
            let cfg = FrameConfig {
                code_rate,
                noise_density: 0.0,
                packet_bytes: 150,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            };
            let r = run_trial_baseline(&cfg, 2, 3);
            assert_eq!(r.bit_errors, 0, "{code_rate:?}");
            assert_eq!(r.packet_errors, 0);
        }
    }

    #[test]
    fn baseline_viterbi_matches_library_decoder() {
        use acorn_baseband::convcode::viterbi_decode;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let info: Vec<bool> = (0..120).map(|_| rng.gen()).collect();
            let mut coded = encode(&info);
            // Flip a few bits to exercise error correction.
            for _ in 0..6 {
                let i = rng.gen_range(0..coded.len());
                coded[i] = !coded[i];
            }
            let pairs: Vec<(Option<bool>, Option<bool>)> =
                coded.chunks(2).map(|p| (Some(p[0]), Some(p[1]))).collect();
            assert_eq!(
                viterbi_decode_baseline(&pairs, info.len()),
                viterbi_decode(&pairs, info.len())
            );
        }
    }

    #[test]
    fn baseline_ber_is_statistically_sane() {
        // Uncoded QPSK at 8 dB should land near theory, same as the engine.
        let cfg = FrameConfig {
            packet_bytes: 500,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(8.0);
        let r = run_trial_baseline(&cfg, 30, 5);
        let theory = Modulation::Qpsk.ber_awgn(8.0);
        let ratio = r.ber() / theory;
        assert!(ratio > 0.6 && ratio < 1.5, "ratio {ratio}");
    }
}
