//! A counting global allocator for the bench binaries.
//!
//! Wraps the system allocator with one relaxed atomic increment per
//! `alloc`/`realloc`, so `BENCH_baseband.json` can report *measured*
//! allocations per packet (the zero-allocation steady-state claim is
//! checked, not asserted on faith). The counter costs nanoseconds per
//! event and nothing when no allocation happens — which is the point.
//!
//! The allocator is process-global: linking `acorn-bench` installs it in
//! every bench binary. Library consumers elsewhere in the workspace are
//! unaffected (they don't link this crate).

// The one spot in the workspace that needs `unsafe`: a GlobalAlloc impl
// is an unsafe trait by definition. Everything else stays forbidden.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator plus a relaxed allocation counter.
pub struct CountingAllocator;

// SAFETY: defers every operation verbatim to `System`, which upholds the
// GlobalAlloc contract; the counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Heap allocation events (alloc + realloc) since process start.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocation events that happen while `f` runs on this thread. Only
/// meaningful when no other thread allocates concurrently — run the
/// workload single-threaded for exact counts.
pub fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocation_count();
    let out = f();
    (allocation_count() - before, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_heap_activity() {
        let (n, v) = allocations_during(|| vec![1u8; 4096]);
        assert!(n >= 1, "a fresh Vec must allocate (counted {n})");
        drop(v);
        let (n, _) = allocations_during(|| 1 + 1);
        assert_eq!(n, 0, "pure arithmetic must not allocate");
    }
}
