//! Chaos-soak benchmark: multi-day virtual-time runs over a city-scale
//! deployment under three fault profiles, written to `BENCH_soak.json`
//! at the repo root.
//!
//! Each profile streams a diurnal heavy-tailed workload over the same
//! 64-AP city grid for three virtual days with the invariant watchdog
//! on, and records the numbers the soak story stands on: event
//! throughput (events/s of wall time), peak RSS (the bounded-memory
//! telemetry claim, measured), quality drift over the probe window, the
//! sketch-backed client goodput quantiles, and — for the fault profiles
//! — throughput retained against the fault-free golden twin.

use acorn_bench::header;
use acorn_core::{AcornConfig, AcornController};
use acorn_events::{FaultPlan, ResilienceReport};
use acorn_phy::{GoodputTable, LinkQualityEstimator};
use acorn_sim::scenario::city_grid;
use acorn_soak::{peak_rss_kb, FlashCrowd, SoakReport, SoakScenario, WatchdogSpec, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const HORIZON_S: f64 = 3.0 * 86_400.0;
const SEED: u64 = 0x50AC;

#[derive(Serialize)]
struct SoakRow {
    profile: &'static str,
    n_aps: usize,
    n_clients: usize,
    horizon_s: f64,
    wall_s: f64,
    events: u64,
    events_per_s: f64,
    peak_rss_kb: Option<u64>,
    arrivals: u64,
    departures: u64,
    watchdog_checks: u64,
    watchdog_violations: u64,
    probe_samples: u64,
    mean_network_bps: f64,
    quality_drift: Option<f64>,
    client_bps_p50: Option<f64>,
    client_bps_p95: Option<f64>,
    client_bps_p99: Option<f64>,
    sketch_fingerprint: u64,
    throughput_retained: Option<f64>,
    resilience: Option<ResilienceReport>,
}

#[derive(Serialize)]
struct BenchSoak {
    horizon_s: f64,
    seed: u64,
    rows: Vec<SoakRow>,
}

fn scenario() -> SoakScenario {
    let wlan = city_grid(4, 2, 400, SEED);
    let mut s = SoakScenario::new(wlan, HORIZON_S, SEED);
    s.workload = WorkloadSpec {
        base_rate_per_s: 1.0 / 30.0,
        diurnal_amplitude: 0.6,
        day_period_s: 86_400.0,
        ..WorkloadSpec::default()
    };
    s.probe_period_s = 60.0;
    s.watchdog = Some(WatchdogSpec {
        period_s: 300.0,
        graph_check_every: 16,
        fail_fast: true,
    });
    s
}

fn steady_faults() -> FaultPlan {
    FaultPlan {
        seed: SEED ^ 0xFA17,
        control_period_s: 10.0,
        // One AP down at a time, ~18% duty: crashes chain sequentially,
        // so 1/64 cells degraded for mttr/(mttf+mttr) of the run — well
        // inside the >= 70% retention budget, with dozens of crash /
        // repair / rescan cycles over three days.
        ap_mttf_s: Some(4_000.0),
        ap_mttr_s: 900.0,
        max_crashes: 1_000,
        loss: 0.1,
        corruption: 0.02,
        delay_prob: 0.05,
        delay_max_s: 30.0,
        meas_nan: 0.01,
        meas_outlier: 0.02,
        meas_freeze: 0.02,
        ..FaultPlan::default()
    }
}

fn flash_crowds() -> Vec<FlashCrowd> {
    // One lunch-hour surge per virtual day.
    (0..3)
        .map(|day| FlashCrowd {
            at_s: day as f64 * 86_400.0 + 43_200.0,
            duration_s: 3_600.0,
            rate_multiplier: 5.0,
        })
        .collect()
}

fn row(profile: &'static str, sc: &SoakScenario, resilience_twin: bool) -> SoakRow {
    header(&format!("soak profile: {profile}"));
    // The memoized SNR->goodput table is what makes multi-day horizons
    // affordable: every model evaluation and beacon delay hits the table
    // instead of re-running the PHY estimator. A fresh table per profile
    // keeps the process-global hit counters comparable across rows.
    let table = Arc::new(GoodputTable::new(LinkQualityEstimator::default()));
    let ctl = AcornController::with_table(AcornConfig::default(), table);
    let t0 = Instant::now();
    let r: SoakReport = if resilience_twin {
        sc.run_resilience(&ctl)
    } else {
        sc.run(&ctl)
    };
    let wall = t0.elapsed().as_secs_f64();
    let client = r.sketch(acorn_soak::probe::CLIENT_BPS);
    let retained = r.resilience.as_ref().map(|res| res.throughput_retained);
    println!(
        "{} events in {:.1} s wall ({:.0} events/s), peak RSS {:?} kB",
        r.stats.events,
        wall,
        r.stats.events as f64 / wall.max(1e-9),
        peak_rss_kb(),
    );
    println!(
        "arrivals {}, watchdog {} checks / {} violations, mean goodput {:.1} Mbit/s, \
         drift {:?}, retained {:?}",
        r.counter("sessions.arrivals"),
        r.checks,
        r.violations,
        r.mean_network_bps() / 1e6,
        r.quality_drift(),
        retained,
    );
    assert_eq!(r.violations, 0, "soak bench must run invariant-clean");
    SoakRow {
        profile,
        n_aps: sc.wlan.aps.len(),
        n_clients: sc.wlan.clients.len(),
        horizon_s: sc.horizon_s,
        wall_s: wall,
        events: r.stats.events,
        events_per_s: r.stats.events as f64 / wall.max(1e-9),
        peak_rss_kb: r.peak_rss_kb,
        arrivals: r.counter("sessions.arrivals"),
        departures: r.counter("sessions.departures"),
        watchdog_checks: r.checks,
        watchdog_violations: r.violations,
        probe_samples: r.counter("probe.samples"),
        mean_network_bps: r.mean_network_bps(),
        quality_drift: r.quality_drift(),
        client_bps_p50: client.and_then(|s| s.p50),
        client_bps_p95: client.and_then(|s| s.p95),
        client_bps_p99: client.and_then(|s| s.p99),
        sketch_fingerprint: client.map(|s| s.fingerprint).unwrap_or(0),
        throughput_retained: retained,
        resilience: r.resilience,
    }
}

fn main() {
    let mut rows = Vec::new();

    rows.push(row("no-fault", &scenario(), false));

    let mut steady = scenario();
    steady.faults = Some(steady_faults());
    rows.push(row("steady-fault", &steady, true));

    let mut flash = scenario();
    flash.faults = Some(steady_faults());
    flash.workload.flash = flash_crowds();
    rows.push(row("flash-crowd+faults", &flash, true));

    if let Some(retained) = rows[1].throughput_retained {
        assert!(
            retained >= 0.70,
            "steady-fault throughput retention below budget: {retained:.3}"
        );
        println!(
            "\nsteady-fault retention {:.1}% (budget >= 70%)",
            retained * 100.0
        );
    }

    let record = BenchSoak {
        horizon_s: HORIZON_S,
        seed: SEED,
        rows,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_soak.json", s) {
                eprintln!("warning: cannot write BENCH_soak.json: {e}");
            } else {
                println!("\n[saved BENCH_soak.json]");
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
