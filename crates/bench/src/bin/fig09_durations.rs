//! Figure 9 — CDF of user-association durations.
//!
//! Paper (from the CRAWDAD ile-sans-fil trace, 206 APs over 3 years):
//! "More than 90% of the associations last less than 40 minutes and the
//! median is approximately 31 minutes. Based on these data, we run our
//! channel allocation algorithm every 30 minutes."

use acorn_bench::{header, print_table, save_json};
use acorn_traces::durations::{AssociationDurations, MEDIAN_S, P90_S};
use acorn_traces::ecdf::Ecdf;
use acorn_traces::REALLOCATION_PERIOD_S;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig09 {
    median_s: f64,
    p90_s: f64,
    frac_below_40min: f64,
    max_s: f64,
    curve: Vec<(f64, f64)>,
    reallocation_period_s: f64,
}

fn main() {
    header("Figure 9: CDF of association durations (synthetic CRAWDAD fit)");
    let mut rng = StdRng::seed_from_u64(2010);
    // 206 APs × ~500 sessions each over the trace span.
    let samples = AssociationDurations::default().sample_n(&mut rng, 103_000);
    let ecdf = Ecdf::new(samples).expect("103k finite samples form a valid ECDF");

    let median = ecdf.median();
    let p90 = ecdf.quantile(0.9);
    let frac40 = ecdf.eval(P90_S);
    let (_, max) = ecdf.range();

    print_table(
        &["statistic", "measured", "paper"],
        &[
            vec![
                "median (min)".into(),
                format!("{:.1}", median / 60.0),
                format!("{:.0}", MEDIAN_S / 60.0),
            ],
            vec![
                "P90 (min)".into(),
                format!("{:.1}", p90 / 60.0),
                "≤40".into(),
            ],
            vec![
                "frac < 40 min".into(),
                format!("{frac40:.3}"),
                ">0.90".into(),
            ],
            vec!["max (s)".into(), format!("{max:.0}"), "~25000".into()],
        ],
    );

    println!();
    println!("CDF curve (time s → F):");
    let curve = ecdf.curve(26);
    for (x, f) in &curve {
        println!("  {:>8.0} s  {:.3}", x, f);
    }
    println!();
    println!(
        "derived re-allocation period T = {:.0} min (paper: 30 min)",
        REALLOCATION_PERIOD_S / 60.0
    );

    save_json(
        "fig09_durations",
        &Fig09 {
            median_s: median,
            p90_s: p90,
            frac_below_40min: frac40,
            max_s: max,
            curve,
            reallocation_period_s: REALLOCATION_PERIOD_S,
        },
    );
}
