//! Wall-clock snapshot of the event runtime, written to
//! `BENCH_events.json` at the repo root (plus the 25-AP composite's
//! telemetry snapshot under `results/`):
//!
//! * **Kernel micro-benchmark** — a self-scheduling no-op process
//!   churning the queue: pure `(schedule, pop, dispatch)` overhead in
//!   events/second.
//! * **Composite scaling** — the full churn + mobility + drift scenario
//!   on 25-AP and 400-AP enterprise grids: dispatched events, wall-clock,
//!   and events/second, with model evaluation (association, periodic
//!   re-allocation) dominating — the number that tells us how far the
//!   scenario scale can grow before runtime becomes the bottleneck.

use acorn_bench::{header, save_json};
use acorn_core::{AcornConfig, AcornController};
use acorn_events::{
    CompositeScenario, Ctx, DriftSpec, MobilitySpec, Process, Simulation, TelemetrySnapshot,
};
use acorn_sim::scenario::enterprise_grid;
use acorn_topology::{ClientId, Point, Trajectory};
use acorn_traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

const MICRO_EVENTS: u64 = 500_000;

#[derive(Serialize)]
struct ScenarioBench {
    n_aps: usize,
    n_clients: usize,
    sessions: usize,
    events: u64,
    wall_s: f64,
    events_per_s: f64,
    reallocations: u64,
}

#[derive(Serialize)]
struct BenchEvents {
    micro_events: u64,
    micro_wall_s: f64,
    micro_events_per_s: f64,
    scenarios: Vec<ScenarioBench>,
}

/// A no-op self-scheduler: the cheapest possible process, so the measured
/// rate is the kernel's own dispatch overhead.
struct Spinner {
    remaining: u64,
}

impl Process<u64, ()> for Spinner {
    fn start(&mut self, ctx: &mut Ctx<'_, u64, ()>) {
        ctx.schedule_after(1.0, ());
    }
    fn handle(&mut self, _e: &(), ctx: &mut Ctx<'_, u64, ()>) {
        *ctx.world += 1;
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_after(1.0, ());
        }
    }
}

fn micro() -> (u64, f64) {
    let mut sim: Simulation<u64, ()> = Simulation::new(0);
    sim.add_process(Box::new(Spinner {
        remaining: MICRO_EVENTS,
    }));
    let t0 = Instant::now();
    let stats = sim.run_to_completion();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(stats.events, MICRO_EVENTS);
    assert_eq!(sim.world, MICRO_EVENTS);
    (stats.events, wall)
}

fn composite(side: usize, seed: u64) -> (ScenarioBench, TelemetrySnapshot) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, 3600.0);
    // One spare slot for the walking client.
    let n_clients = sessions.len().max(1) + 1;
    let wlan = enterprise_grid(side, side, 50.0, n_clients, seed);
    let ctl = AcornController::new(AcornConfig::default());
    let mobile = ClientId(n_clients - 1);
    let from = wlan.clients[mobile.0].pos;
    let n_aps = wlan.aps.len();
    let scenario = CompositeScenario {
        wlan,
        sessions: sessions.clone(),
        horizon_s: 3600.0,
        reallocation_period_s: 1800.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 50.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 60.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.02,
        }),
        faults: None,
        seed,
        record_log: false,
    };
    let t0 = Instant::now();
    let report = scenario.run(&ctl);
    let wall = t0.elapsed().as_secs_f64();
    let reallocations = report.realloc.len() as u64;
    (
        ScenarioBench {
            n_aps,
            n_clients,
            sessions: sessions.len(),
            events: report.stats.events,
            wall_s: wall,
            events_per_s: report.stats.events as f64 / wall,
            reallocations,
        },
        report.telemetry,
    )
}

fn main() {
    header("event runtime: kernel micro-benchmark");
    let (events, wall) = micro();
    let micro_rate = events as f64 / wall;
    println!("{events} no-op events in {wall:.3} s -> {micro_rate:.0} events/s");

    let mut scenarios = Vec::new();
    for side in [5usize, 20] {
        header(&format!(
            "event runtime: composite churn+mobility+drift, {}x{} grid",
            side, side
        ));
        let (b, telemetry) = composite(side, 42);
        println!(
            "{} APs, {} clients, {} sessions: {} events in {:.3} s -> {:.0} events/s ({} reallocations)",
            b.n_aps, b.n_clients, b.sessions, b.events, b.wall_s, b.events_per_s, b.reallocations
        );
        if side == 5 {
            save_json("events_composite", &telemetry);
        }
        scenarios.push(b);
    }

    let record = BenchEvents {
        micro_events: events,
        micro_wall_s: wall,
        micro_events_per_s: micro_rate,
        scenarios,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_events.json", s) {
                eprintln!("warning: cannot write BENCH_events.json: {e}");
            } else {
                println!("\n[saved BENCH_events.json]");
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
