//! Wall-clock snapshot of the event runtime, written to
//! `BENCH_events.json` at the repo root (plus the 25-AP composite's
//! telemetry snapshot under `results/`):
//!
//! * **Kernel micro-benchmark** — a self-scheduling no-op process
//!   churning the queue: pure `(schedule, pop, dispatch)` overhead in
//!   events/second.
//! * **Composite scaling** — session workloads whose arrival rate scales
//!   with the deployment (`n_aps / 300` arrivals per second, i.e. the
//!   per-AP enterprise rate), so client count grows with AP count
//!   instead of pinning every row at a 16-client trace:
//!   - the 25-AP enterprise grid runs the exact
//!     [`CompositeScenario`] (full per-event model rebuilds, mobility,
//!     drift) — the reference semantics;
//!   - the 400-AP and 10k-AP city grids run the [`CityScenario`]
//!     (spatial-index candidates, incremental conflict graph, sharded
//!     re-allocation, memoized goodput table) — the path built for
//!     city-scale deployments, where the exact composite's O(network)
//!     per-event cost is the bottleneck being measured away.

use acorn_bench::{header, save_json};
use acorn_core::{AcornConfig, AcornController};
use acorn_events::{
    CityScenario, CompositeScenario, Ctx, DriftSpec, MobilitySpec, Process, Simulation,
    TelemetrySnapshot,
};
use acorn_phy::{GoodputTable, LinkQualityEstimator};
use acorn_sim::scenario::{city_grid, enterprise_grid};
use acorn_topology::{ClientId, Point, Trajectory};
use acorn_traces::{AssociationDurations, SessionGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const MICRO_EVENTS: u64 = 500_000;
const HORIZON_S: f64 = 3600.0;

#[derive(Serialize)]
struct ScenarioBench {
    mode: &'static str,
    n_aps: usize,
    n_clients: usize,
    sessions: usize,
    events: u64,
    wall_s: f64,
    events_per_s: f64,
    reallocations: u64,
}

#[derive(Serialize)]
struct BenchEvents {
    micro_events: u64,
    micro_wall_s: f64,
    micro_events_per_s: f64,
    scenarios: Vec<ScenarioBench>,
}

/// A no-op self-scheduler: the cheapest possible process, so the measured
/// rate is the kernel's own dispatch overhead.
struct Spinner {
    remaining: u64,
}

impl Process<u64, ()> for Spinner {
    fn start(&mut self, ctx: &mut Ctx<'_, u64, ()>) {
        ctx.schedule_after(1.0, ());
    }
    fn handle(&mut self, _e: &(), ctx: &mut Ctx<'_, u64, ()>) {
        *ctx.world += 1;
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_after(1.0, ());
        }
    }
}

fn micro() -> (u64, f64) {
    let mut sim: Simulation<u64, ()> = Simulation::new(0);
    sim.add_process(Box::new(Spinner {
        remaining: MICRO_EVENTS,
    }));
    let t0 = Instant::now();
    let stats = sim.run_to_completion();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(stats.events, MICRO_EVENTS);
    assert_eq!(sim.world, MICRO_EVENTS);
    (stats.events, wall)
}

/// The deployment-scaled session workload: `n_aps / 300` arrivals per
/// second (one per 5 minutes per AP), CRAWDAD-fit durations.
fn scaled_sessions(n_aps: usize, seed: u64) -> Vec<acorn_traces::Session> {
    let mut rng = StdRng::seed_from_u64(seed);
    SessionGenerator {
        arrival_rate_per_s: n_aps as f64 / 300.0,
        durations: AssociationDurations::default(),
    }
    .generate(&mut rng, HORIZON_S)
}

fn composite(side: usize, seed: u64) -> (ScenarioBench, TelemetrySnapshot) {
    let n_aps = side * side;
    let sessions = scaled_sessions(n_aps, seed);
    // One spare slot for the walking client.
    let n_clients = sessions.len().max(1) + 1;
    let wlan = enterprise_grid(side, side, 50.0, n_clients, seed);
    let ctl = AcornController::new(AcornConfig::default());
    let mobile = ClientId(n_clients - 1);
    let from = wlan.clients[mobile.0].pos;
    let scenario = CompositeScenario {
        wlan,
        sessions: sessions.clone(),
        horizon_s: HORIZON_S,
        reallocation_period_s: 1800.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 50.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 60.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.02,
        }),
        faults: None,
        seed,
        record_log: false,
    };
    let t0 = Instant::now();
    let report = scenario.run(&ctl);
    let wall = t0.elapsed().as_secs_f64();
    (
        ScenarioBench {
            mode: "exact",
            n_aps,
            n_clients,
            sessions: sessions.len(),
            events: report.stats.events,
            wall_s: wall,
            events_per_s: report.stats.events as f64 / wall,
            reallocations: report.realloc.len() as u64,
        },
        report.telemetry,
    )
}

fn city(districts_per_side: usize, seed: u64) -> ScenarioBench {
    let aps_per_district_side = 4usize;
    let n_aps = districts_per_side * districts_per_side * aps_per_district_side.pow(2);
    let sessions = scaled_sessions(n_aps, seed);
    let n_clients = sessions.len().max(1);
    let wlan = city_grid(districts_per_side, aps_per_district_side, n_clients, seed);
    let table = Arc::new(GoodputTable::new(LinkQualityEstimator::default()));
    let ctl = AcornController::with_table(AcornConfig::default(), table);
    let scenario = CityScenario {
        wlan,
        sessions: sessions.clone(),
        horizon_s: HORIZON_S,
        reallocation_period_s: 1800.0,
        restarts: 2,
        candidate_radius_m: 120.0,
        adapt_widths: true,
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.02,
        }),
        faults: None,
        seed,
        record_log: false,
    };
    let t0 = Instant::now();
    let report = scenario.run(&ctl);
    let wall = t0.elapsed().as_secs_f64();
    ScenarioBench {
        mode: "city",
        n_aps,
        n_clients,
        sessions: sessions.len(),
        events: report.stats.events,
        wall_s: wall,
        events_per_s: report.stats.events as f64 / wall,
        reallocations: report.realloc.len() as u64,
    }
}

fn print_row(b: &ScenarioBench) {
    println!(
        "[{}] {} APs, {} clients, {} sessions: {} events in {:.3} s -> {:.0} events/s ({} reallocations)",
        b.mode, b.n_aps, b.n_clients, b.sessions, b.events, b.wall_s, b.events_per_s, b.reallocations
    );
}

fn main() {
    header("event runtime: kernel micro-benchmark");
    let (events, wall) = micro();
    let micro_rate = events as f64 / wall;
    println!("{events} no-op events in {wall:.3} s -> {micro_rate:.0} events/s");

    let mut scenarios = Vec::new();

    header("event runtime: exact composite churn+mobility+drift, 5x5 grid");
    let (b, telemetry) = composite(5, 42);
    print_row(&b);
    save_json("events_composite", &telemetry);
    scenarios.push(b);

    for districts in [5usize, 25] {
        header(&format!(
            "event runtime: city churn+drift, {districts}x{districts} districts x 16 APs"
        ));
        let b = city(districts, 42);
        print_row(&b);
        scenarios.push(b);
    }

    let record = BenchEvents {
        micro_events: events,
        micro_wall_s: wall,
        micro_events_per_s: micro_rate,
        scenarios,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_events.json", s) {
                eprintln!("warning: cannot write BENCH_events.json: {e}");
            } else {
                println!("\n[saved BENCH_events.json]");
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
