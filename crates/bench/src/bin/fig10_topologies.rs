//! Figure 10 — per-AP throughput, ACORN vs "\[17\]", on the paper's two
//! interference-free topologies.
//!
//! Paper results to reproduce in shape:
//! * Topology 1 (2 APs, one with poor clients): ACORN's 20 MHz choice for
//!   the poor cell gives ~4× over \[17\]'s aggressive 40 MHz ("the poor
//!   clients are hardly able to communicate with the AP when it uses CB").
//! * Topology 2 (5 APs): 6× (AP 4-analog) and 1.5×+ (AP 5-analog) gains
//!   on the poor cells, and like-quality grouping between the two
//!   co-located APs.

use acorn_baselines::kauffmann::{allocate_aggressive_cb, associate as kauffmann_choice};
use acorn_bench::{header, mbps, print_table, save_json};
use acorn_core::{AcornConfig, AcornController};
use acorn_sim::runner::evaluate_analytic;
use acorn_sim::scenario::{topology1, topology2};
use acorn_sim::traffic::Traffic;
use acorn_topology::{ChannelPlan, ClientId, Wlan};
use serde::Serialize;

#[derive(Serialize)]
struct TopologyResult {
    name: String,
    acorn_per_ap_bps: Vec<f64>,
    baseline_per_ap_bps: Vec<f64>,
    acorn_total_bps: f64,
    baseline_total_bps: f64,
    acorn_widths: Vec<String>,
    per_ap_gain: Vec<f64>,
}

fn run_acorn(wlan: &Wlan, plan: ChannelPlan) -> (Vec<f64>, f64, Vec<String>) {
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });
    let mut state = ctl.new_state(wlan, 7);
    for c in 0..wlan.clients.len() {
        ctl.associate(wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(wlan, &mut state, 8, 11);
    // Association can now be revisited under the final channels (the paper
    // interleaves the two modules); one more pass settles it.
    for c in 0..wlan.clients.len() {
        ctl.deassociate(&mut state, ClientId(c));
        ctl.associate(wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(wlan, &mut state, 8, 13);
    let eval = evaluate_analytic(
        wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    let widths = state
        .assignments
        .iter()
        .map(|a| format!("{:?}", a.width()))
        .collect();
    (eval.per_ap_bps, eval.total_bps, widths)
}

fn run_kauffmann(wlan: &Wlan, plan: ChannelPlan) -> (Vec<f64>, f64) {
    // Aggressive all-40 allocation, selfish association (probing via the
    // same beacon machinery ACORN uses, different choice rule).
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });
    let mut state = ctl.new_state(wlan, 7);
    state.assignments = allocate_aggressive_cb(wlan, &wlan.ap_only_interference_graph(), &plan, 8);
    state.operating_width = state.assignments.iter().map(|a| a.width()).collect();
    for c in 0..wlan.clients.len() {
        let cands = ctl.candidates_for(wlan, &state, ClientId(c));
        if let Some(ix) = kauffmann_choice(&cands) {
            state.assoc[c] = Some(cands[ix].ap);
        }
    }
    // Re-run the scan with the association-aware graph.
    let graph = wlan.interference_graph(&state.assoc);
    state.assignments = allocate_aggressive_cb(wlan, &graph, &plan, 8);
    let eval = evaluate_analytic(
        wlan,
        &state.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    (eval.per_ap_bps, eval.total_bps)
}

fn compute(name: &str, wlan: &Wlan, plan: ChannelPlan) -> TopologyResult {
    let (acorn, acorn_total, widths) = run_acorn(wlan, plan);
    let (base, base_total) = run_kauffmann(wlan, plan);
    let mut gains = Vec::new();
    for i in 0..wlan.aps.len() {
        let gain = if base[i] > 0.0 {
            acorn[i] / base[i]
        } else {
            f64::INFINITY
        };
        gains.push(gain);
    }
    TopologyResult {
        name: name.to_string(),
        acorn_per_ap_bps: acorn,
        baseline_per_ap_bps: base,
        acorn_total_bps: acorn_total,
        baseline_total_bps: base_total,
        acorn_widths: widths,
        per_ap_gain: gains,
    }
}

fn show(r: &TopologyResult) {
    header(&format!("Figure 10 — {}", r.name));
    let mut rows = Vec::new();
    for i in 0..r.acorn_per_ap_bps.len() {
        rows.push(vec![
            format!("AP {i}"),
            mbps(r.acorn_per_ap_bps[i]),
            r.acorn_widths[i].clone(),
            mbps(r.baseline_per_ap_bps[i]),
            format!("{:.2}x", r.per_ap_gain[i]),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        mbps(r.acorn_total_bps),
        "".into(),
        mbps(r.baseline_total_bps),
        format!("{:.2}x", r.acorn_total_bps / r.baseline_total_bps),
    ]);
    print_table(
        &["cell", "ACORN (Mb/s)", "width", "[17] (Mb/s)", "gain"],
        &rows,
    );
}

fn main() {
    let plan = ChannelPlan::full_5ghz();
    // The two topologies are independent end-to-end runs; compute both in
    // parallel, then print in order.
    let topologies: Vec<(&str, Wlan)> = vec![
        ("Topology 1 (2 APs, poor cell + good cell)", topology1()),
        (
            "Topology 2 (5 APs, shared clients + poor cells)",
            topology2(),
        ),
    ];
    let results = acorn_core::par::par_map(&topologies, |(name, wlan)| compute(name, wlan, plan));
    for r in &results {
        show(r);
    }
    let mut it = results.into_iter();
    let (t1, t2) = (
        it.next().expect("topology 1"),
        it.next().expect("topology 2"),
    );
    println!();
    println!("paper: gains of ~4x on Topology 1's poor cell; up to 6x on");
    println!("Topology 2's poorest cell; good cells essentially unchanged.");
    save_json("fig10_topologies", &vec![t1, t2]);
}
