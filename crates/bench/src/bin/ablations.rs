//! Ablations of ACORN's design choices (DESIGN.md §5):
//!
//! 1. **ε stopping rule** — final throughput vs iterations for
//!    ε ∈ {1.0, 1.02, 1.05, 1.10} (paper uses 1.05).
//! 2. **Association utility** — Eq. 4 vs selfish vs RSSI, on Topology 2.
//! 3. **SNR calibration** — the estimator with vs without the −3 dB CB
//!    shift; without it the allocator over-bonds poor cells.
//! 4. **Rank order** — max-rank-first (the paper's "winner" rule) vs
//!    random AP order in the greedy.

use acorn_baselines::simple::associate_rssi;
use acorn_bench::{header, mbps, print_table, save_json};
use acorn_core::allocation::{allocate, random_initial, AllocationConfig};
use acorn_core::association::choose_ap_selfish;
use acorn_core::model::{ClientSnr, NetworkModel, ThroughputModel};
use acorn_core::{AcornConfig, AcornController};
use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_mac::contention::access_share;
use acorn_phy::ChannelWidth;
use acorn_sim::runner::evaluate_analytic;
use acorn_sim::scenario::topology2;
use acorn_sim::traffic::Traffic;
use acorn_topology::{ApId, ChannelAssignment, ChannelPlan, ClientId, InterferenceGraph};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Ablations {
    epsilon: Vec<(f64, f64, f64)>, // (eps, mean Y Mb/s, mean iterations)
    association: Vec<(String, f64)>,
    calibration: Vec<(String, f64)>,
    rank_order: Vec<(String, f64)>,
}

fn grid_model(seed: u64) -> NetworkModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 6;
    let cells = (0..n)
        .map(|a| {
            (0..3)
                .map(|i| ClientSnr {
                    client: a * 3 + i,
                    snr20_db: rng.gen_range(1.0..32.0),
                })
                .collect()
        })
        .collect();
    NetworkModel::new(InterferenceGraph::complete(n), cells)
}

fn ablate_epsilon(out: &mut Ablations) {
    header("Ablation 1: epsilon stopping rule");
    let plan = ChannelPlan::full_5ghz();
    let mut rows = Vec::new();
    for eps in [1.0, 1.02, 1.05, 1.10] {
        let cfg = AllocationConfig {
            epsilon: eps,
            max_rounds: 64,
        };
        let mut y = 0.0;
        let mut iters = 0.0;
        let trials = 12;
        for seed in 0..trials {
            let m = grid_model(seed);
            let r = allocate(&m, &plan, random_initial(&plan, 6, seed), &cfg);
            y += r.total_bps / trials as f64;
            iters += r.iterations as f64 / trials as f64;
        }
        rows.push(vec![format!("{eps:.2}"), mbps(y), format!("{iters:.1}")]);
        out.epsilon.push((eps, y / 1e6, iters));
    }
    print_table(&["epsilon", "mean Y (Mb/s)", "mean iterations"], &rows);
    println!("note: the inner max-rank loop already runs each round to");
    println!("exhaustion, so on these instances later rounds rarely add");
    println!("anything and the ε knob is effectively free — consistent");
    println!("with the paper picking a lax 1.05 without quality loss.");
}

fn ablate_association(out: &mut Ablations) {
    header("Ablation 2: association utility (Eq. 4 vs selfish vs RSSI)");
    let wlan = topology2();
    let ctl = AcornController::new(AcornConfig::default());
    let mut rows = Vec::new();
    for (name, rule) in [("Eq. 4 (ACORN)", 0), ("selfish", 1), ("RSSI", 2)] {
        let mut state = ctl.new_state(&wlan, 3);
        for c in 0..wlan.clients.len() {
            match rule {
                0 => {
                    ctl.associate(&wlan, &mut state, ClientId(c));
                }
                1 => {
                    let cands = ctl.candidates_for(&wlan, &state, ClientId(c));
                    if let Some(ix) = choose_ap_selfish(&cands) {
                        state.assoc[c] = Some(cands[ix].ap);
                    }
                }
                _ => {
                    state.assoc[c] = associate_rssi(&wlan, ClientId(c), -3.0);
                }
            }
        }
        ctl.reallocate_with_restarts(&wlan, &mut state, 8, 5);
        let y = evaluate_analytic(
            &wlan,
            &state.assignments,
            &state.assoc,
            &ctl.config.estimator,
            1500,
            Traffic::Udp,
        )
        .total_bps;
        rows.push(vec![name.to_string(), mbps(y)]);
        out.association.push((name.to_string(), y / 1e6));
    }
    print_table(&["association rule", "network Y (Mb/s)"], &rows);
    let eq4 = out.association[0].1;
    assert!(
        out.association.iter().all(|(_, y)| eq4 + 1e-6 >= *y),
        "Eq. 4 must not lose to the strawmen on the grouping topology"
    );
}

/// A throughput model whose estimator *ignores* the −3 dB CB shift — what
/// a width-agnostic controller would predict.
struct Uncalibrated<'a>(&'a NetworkModel);

impl ThroughputModel for Uncalibrated<'_> {
    fn n_aps(&self) -> usize {
        self.0.graph.len()
    }

    fn ap_throughput_bps(&self, ap: ApId, assignments: &[ChannelAssignment]) -> f64 {
        let width = assignments[ap.0].width();
        let est = self.0.estimator();
        let links: Vec<ClientLink> = self.0.cells()[ap.0]
            .iter()
            .map(|c| {
                // No calibration: evaluate the 40 MHz rate table at the
                // *20 MHz* SNR (overestimating bonded quality by 3 dB).
                let p = est.best_rate_point(c.snr20_db, width);
                ClientLink {
                    rate_bps: p.mcs.mcs().rate_bps(width, est.gi),
                    per: p.per,
                }
            })
            .collect();
        let m = access_share(&self.0.graph, assignments, ap);
        CellAirtime::new(&links, self.0.payload_bytes()).cell_throughput_bps(m)
    }
}

fn ablate_calibration(out: &mut Ablations) {
    header("Ablation 3: estimator with vs without the -3 dB CB calibration");
    let plan = ChannelPlan::restricted(4);
    let cfg = AllocationConfig::default();
    let mut rows = Vec::new();
    let mut y_cal = 0.0;
    let mut y_uncal = 0.0;
    let mut overbond = 0usize;
    let trials = 12;
    for seed in 100..100 + trials {
        let m = grid_model(seed);
        // Plan with the calibrated model (the real ACORN).
        let r_cal = allocate(&m, &plan, random_initial(&plan, 6, seed), &cfg);
        // Plan with the uncalibrated model, then score with the TRUE model.
        let uncal = Uncalibrated(&m);
        let r_uncal = allocate(&uncal, &plan, random_initial(&plan, 6, seed), &cfg);
        let y_true_uncal = m.total_bps(&r_uncal.assignments);
        y_cal += r_cal.total_bps / trials as f64;
        y_uncal += y_true_uncal / trials as f64;
        let bonds =
            |a: &[ChannelAssignment]| a.iter().filter(|x| x.width() == ChannelWidth::Ht40).count();
        if bonds(&r_uncal.assignments) > bonds(&r_cal.assignments) {
            overbond += 1;
        }
    }
    rows.push(vec!["with -3 dB calibration".into(), mbps(y_cal)]);
    rows.push(vec!["without calibration".into(), mbps(y_uncal)]);
    print_table(&["estimator", "true network Y (Mb/s)"], &rows);
    println!("uncalibrated planner over-bonds in {overbond}/{trials} trials");
    out.calibration.push(("calibrated".into(), y_cal / 1e6));
    out.calibration.push(("uncalibrated".into(), y_uncal / 1e6));
    assert!(y_cal >= y_uncal, "calibration must not hurt on average");
}

/// Random-order greedy variant of Algorithm 2: in each round APs switch
/// in shuffled order instead of max-rank-first.
fn allocate_random_order(model: &NetworkModel, plan: &ChannelPlan, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let colours = plan.all_assignments();
    let mut assignments = random_initial(plan, model.n_aps(), seed);
    let mut y = model.total_bps(&assignments);
    for _ in 0..16 {
        let mut order: Vec<usize> = (0..model.n_aps()).collect();
        order.shuffle(&mut rng);
        let mut improved = false;
        for i in order {
            let cur = assignments[i];
            let mut best = (cur, y);
            for &c in &colours {
                assignments[i] = c;
                let t = model.total_bps(&assignments);
                if t > best.1 {
                    best = (c, t);
                }
            }
            assignments[i] = best.0;
            if best.1 > y {
                y = best.1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    y
}

fn ablate_rank_order(out: &mut Ablations) {
    header("Ablation 4: max-rank-first vs random AP order");
    let plan = ChannelPlan::restricted(4);
    let cfg = AllocationConfig {
        epsilon: 1.0,
        max_rounds: 64,
    };
    let trials = 16;
    let mut y_rank = 0.0;
    let mut y_rand = 0.0;
    for seed in 200..200 + trials {
        let m = grid_model(seed);
        y_rank +=
            allocate(&m, &plan, random_initial(&plan, 6, seed), &cfg).total_bps / trials as f64;
        y_rand += allocate_random_order(&m, &plan, seed) / trials as f64;
    }
    print_table(
        &["switch order", "mean Y (Mb/s)"],
        &[
            vec!["max-rank first (paper)".into(), mbps(y_rank)],
            vec!["random order".into(), mbps(y_rand)],
        ],
    );
    out.rank_order.push(("max-rank".into(), y_rank / 1e6));
    out.rank_order.push(("random".into(), y_rand / 1e6));
}

fn ablate_fading() {
    header("Ablation 5: AWGN vs fading-averaged link curves (sigma >= 2 region)");
    // Full width of the sigma >= 2 region per modcod, crisp vs smeared.
    // (The paper's Table 1 quotes the 2-3 dB gap between its last sigma>=2
    // and first sigma<2 *sample points* -- the falling edge at their sweep
    // granularity -- not the full region measured here.)
    use acorn_phy::fading::faded_per;
    use acorn_phy::link::{rate_ratio_40_over_20, sigma};
    use acorn_phy::McsIndex;
    let cases = [
        (2u8, "QPSK 3/4"),
        (4, "16QAM 3/4"),
        (6, "64QAM 3/4"),
        (7, "64QAM 5/6"),
    ];
    let mut rows = Vec::new();
    for (idx, label) in cases {
        let mcs = McsIndex::new(idx).unwrap().mcs();
        let band = |sig: f64| {
            let s_of = |snr: f64| {
                sigma(
                    faded_per(&mcs, snr, sig, 1500),
                    faded_per(&mcs, snr - 3.0103, sig, 1500),
                )
            };
            let thr = rate_ratio_40_over_20();
            let mut lo = None;
            let mut hi = None;
            for i in 0..800 {
                let snr = -10.0 + i as f64 * 0.1;
                if s_of(snr) >= thr {
                    if lo.is_none() {
                        lo = Some(snr);
                    }
                    hi = Some(snr);
                }
            }
            match (lo, hi) {
                (Some(a), Some(b)) => b - a,
                _ => 0.0,
            }
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", band(0.0)),
            format!("{:.1}", band(3.0)),
        ]);
    }
    print_table(
        &["modcod", "AWGN region (dB)", "fading σ=3 region (dB)"],
        &rows,
    );
    println!("fading smears the CB-hurts region ~3-4x wider — links spend more of");
    println!("their power range in it, matching the broad Fig. 5 humps.");
}

fn main() {
    let mut out = Ablations::default();
    ablate_epsilon(&mut out);
    ablate_association(&mut out);
    ablate_calibration(&mut out);
    ablate_rank_order(&mut out);
    ablate_fading();
    save_json("ablations", &out);
}
