//! Resilience benchmark: the composite churn + mobility + drift scenario
//! with the fault layer dialled across severity levels, written to
//! `BENCH_faults.json` at the repo root.
//!
//! Each level runs faulty-vs-golden-twin ([`CompositeScenario::run_resilience`])
//! on a 3×3 enterprise grid: the JSON records the injected fault volume
//! (crashes, lost/corrupted/delayed frames, measurement faults), the
//! detection and downtime latencies, how many re-allocation epochs the
//! controller spent in safe mode, and the headline number — throughput
//! retained relative to the fault-free twin.

use acorn_bench::header;
use acorn_core::{AcornConfig, AcornController};
use acorn_events::{CompositeScenario, DriftSpec, FaultPlan, MobilitySpec, ResilienceReport};
use acorn_sim::scenario::enterprise_grid;
use acorn_topology::{ClientId, Point, Trajectory};
use acorn_traces::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct FaultBench {
    level: &'static str,
    n_aps: usize,
    n_clients: usize,
    loss: f64,
    corruption: f64,
    delay_prob: f64,
    ap_mttf_s: Option<f64>,
    wall_s: f64,
    events: u64,
    report: ResilienceReport,
}

#[derive(Serialize)]
struct BenchFaults {
    grid_side: usize,
    horizon_s: f64,
    control_period_s: f64,
    levels: Vec<FaultBench>,
}

const SIDE: usize = 3;
const HORIZON_S: f64 = 3600.0;
const CONTROL_PERIOD_S: f64 = 30.0;

fn scenario(seed: u64, faults: FaultPlan) -> CompositeScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let sessions = SessionGenerator::enterprise_default().generate(&mut rng, HORIZON_S);
    let n_clients = sessions.len().max(2) + 1;
    let wlan = enterprise_grid(SIDE, SIDE, 50.0, n_clients, seed);
    let mobile = ClientId(n_clients - 1);
    let from = wlan.clients[mobile.0].pos;
    CompositeScenario {
        wlan,
        sessions,
        horizon_s: HORIZON_S,
        reallocation_period_s: 300.0,
        restarts: 2,
        adapt_widths: true,
        mobility: Some(MobilitySpec {
            client: mobile,
            trajectory: Trajectory {
                from,
                to: Point::new(from.x + 40.0, from.y),
                speed_mps: 0.02,
            },
            sample_period_s: 120.0,
        }),
        drift: Some(DriftSpec {
            period_s: 600.0,
            phase_step_rad: 0.02,
        }),
        faults: Some(faults),
        seed,
        record_log: false,
    }
}

fn level(name: &'static str, plan: FaultPlan) -> FaultBench {
    header(&format!("fault layer: {name}"));
    let ctl = AcornController::new(AcornConfig::default());
    let sc = scenario(42, plan);
    let n_aps = sc.wlan.aps.len();
    let n_clients = sc.wlan.clients.len();
    let t0 = Instant::now();
    let report = sc.run_resilience(&ctl);
    let wall = t0.elapsed().as_secs_f64();
    let r = report
        .resilience
        .expect("faulty scenarios always carry a report");
    println!(
        "loss={:.2} corrupt={:.2} delay={:.2} mttf={:?}: {} frames ({} lost, {} corrupted, \
         {} delayed), {} crashes, {} rescans, {} safe-mode epochs",
        plan.loss,
        plan.corruption,
        plan.delay_prob,
        plan.ap_mttf_s,
        r.frames_sent,
        r.frames_lost,
        r.frames_corrupted,
        r.frames_delayed,
        r.crashes,
        r.rescans,
        r.safe_mode_epochs,
    );
    println!(
        "detection {:.0} s, downtime {:.0} s -> {:.1}% throughput retained ({:.1} of {:.1} Mbit/s)",
        r.mean_detection_delay_s,
        r.mean_downtime_s,
        r.throughput_retained * 100.0,
        r.faulty_mean_bps / 1e6,
        r.golden_mean_bps / 1e6,
    );
    FaultBench {
        level: name,
        n_aps,
        n_clients,
        loss: plan.loss,
        corruption: plan.corruption,
        delay_prob: plan.delay_prob,
        ap_mttf_s: plan.ap_mttf_s,
        wall_s: wall,
        events: report.stats.events,
        report: r,
    }
}

fn main() {
    let base = FaultPlan {
        seed: 0xFA17,
        control_period_s: CONTROL_PERIOD_S,
        ap_mttr_s: 600.0,
        max_crashes: 1,
        delay_max_s: 45.0,
        outlier_db: 25.0,
        ..FaultPlan::default()
    };
    let levels = vec![
        level(
            "light (5% loss, no crash)",
            FaultPlan {
                loss: 0.05,
                corruption: 0.01,
                delay_prob: 0.02,
                meas_nan: 0.005,
                meas_outlier: 0.01,
                meas_freeze: 0.01,
                ..base
            },
        ),
        level(
            "acceptance (20% loss + one AP crash)",
            FaultPlan {
                ap_mttf_s: Some(400.0),
                loss: 0.2,
                corruption: 0.05,
                delay_prob: 0.1,
                meas_nan: 0.02,
                meas_outlier: 0.05,
                meas_freeze: 0.05,
                ..base
            },
        ),
        level(
            "heavy (40% loss + one AP crash)",
            FaultPlan {
                ap_mttf_s: Some(300.0),
                loss: 0.4,
                corruption: 0.1,
                delay_prob: 0.2,
                meas_nan: 0.05,
                meas_outlier: 0.1,
                meas_freeze: 0.1,
                ..base
            },
        ),
    ];
    let record = BenchFaults {
        grid_side: SIDE,
        horizon_s: HORIZON_S,
        control_period_s: CONTROL_PERIOD_S,
        levels,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_faults.json", s) {
                eprintln!("warning: cannot write BENCH_faults.json: {e}");
            } else {
                println!("\n[saved BENCH_faults.json]");
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
