//! Figure 5 — σ-values vs transmit power for four representative links
//! and four modulation/code-rate pairs.
//!
//! Paper: "For a given link, CB is beneficial (σ < 2) only beyond a
//! certain power level. For lower power levels (lower SNR), CB hurts
//! performance (σ ≥ 2)." σ is capped at 10 for visualization, as in the
//! paper's footnote 4.

use acorn_bench::{header, print_table, save_json};
use acorn_phy::link::sigma_for;
use acorn_phy::{CodeRate, Modulation};
use acorn_topology::corpus::{driver_scale_to_dbm, representative_links};
use acorn_phy::ChannelWidth;
use serde::Serialize;

#[derive(Serialize)]
struct SigmaSeries {
    modcod: String,
    link: char,
    power_scale: Vec<u32>,
    sigma: Vec<f64>,
}

#[derive(Serialize)]
struct Fig05 {
    series: Vec<SigmaSeries>,
}

const MODCODS: [(Modulation, CodeRate, &str); 4] = [
    (Modulation::Qpsk, CodeRate::R34, "QPSK 3/4"),
    (Modulation::Qam16, CodeRate::R34, "16QAM 3/4"),
    (Modulation::Qam64, CodeRate::R34, "64QAM 3/4"),
    (Modulation::Qam64, CodeRate::R56, "64QAM 5/6"),
];

fn main() {
    header("Figure 5: sigma vs transmit power (driver scale 0..100)");
    let links = representative_links();
    let names = ['A', 'B', 'C', 'D'];
    let mut out = Vec::new();

    for (m, r, label) in MODCODS {
        println!();
        println!("-- {label} (sigma capped at 10; CB hurts when sigma >= 2) --");
        let mut rows = Vec::new();
        let mut series: Vec<SigmaSeries> = names
            .iter()
            .map(|&l| SigmaSeries {
                modcod: label.to_string(),
                link: l,
                power_scale: Vec::new(),
                sigma: Vec::new(),
            })
            .collect();
        for scale in (0..=100).step_by(10) {
            let tx = driver_scale_to_dbm(scale);
            let mut row = vec![format!("{scale}")];
            for (li, link) in links.iter().enumerate() {
                let snr20 = link.snr_db(tx, ChannelWidth::Ht20);
                let s = sigma_for(m, r, snr20, 1500).min(10.0);
                series[li].power_scale.push(scale);
                series[li].sigma.push(s);
                row.push(format!("{s:.2}"));
            }
            rows.push(row);
        }
        print_table(&["power", "link A", "link B", "link C", "link D"], &rows);
        // Summarize the σ ≥ 2 region per link.
        for (li, s) in series.iter().enumerate() {
            let hurt: Vec<u32> = s
                .power_scale
                .iter()
                .zip(&s.sigma)
                .filter(|(_, v)| **v >= 2.0)
                .map(|(p, _)| *p)
                .collect();
            if hurt.is_empty() {
                println!("link {}: CB never hurts in this sweep", names[li]);
            } else {
                println!(
                    "link {}: CB hurts (sigma>=2) for power {}..{}",
                    names[li],
                    hurt.first().unwrap(),
                    hurt.last().unwrap()
                );
            }
        }
        out.extend(series);
    }
    println!();
    println!("paper: every modcod shows a low-power band where sigma >= 2;");
    println!("robust link B stays sigma < 2 over most of the sweep.");

    save_json("fig05_sigma", &Fig05 { series: out });
}
