//! Figure 5 — σ-values vs transmit power for four representative links
//! and four modulation/code-rate pairs.
//!
//! Paper: "For a given link, CB is beneficial (σ < 2) only beyond a
//! certain power level. For lower power levels (lower SNR), CB hurts
//! performance (σ ≥ 2)." σ is capped at 10 for visualization, as in the
//! paper's footnote 4.

use acorn_baseband::frame::{run_trials, Equalization, FrameConfig};
use acorn_bench::{header, print_table, save_json};
use acorn_phy::link::{sigma, sigma_for};
use acorn_phy::ChannelWidth;
use acorn_phy::{CodeRate, Modulation};
use acorn_topology::corpus::{driver_scale_to_dbm, representative_links};
use serde::Serialize;

#[derive(Serialize)]
struct SigmaSeries {
    modcod: String,
    link: char,
    power_scale: Vec<u32>,
    sigma: Vec<f64>,
}

#[derive(Serialize)]
struct SigmaCheck {
    snr20_db: f64,
    sigma_model: f64,
    sigma_monte_carlo: f64,
}

#[derive(Serialize)]
struct Fig05 {
    series: Vec<SigmaSeries>,
    monte_carlo_check: Vec<SigmaCheck>,
}

const MODCODS: [(Modulation, CodeRate, &str); 4] = [
    (Modulation::Qpsk, CodeRate::R34, "QPSK 3/4"),
    (Modulation::Qam16, CodeRate::R34, "16QAM 3/4"),
    (Modulation::Qam64, CodeRate::R34, "64QAM 3/4"),
    (Modulation::Qam64, CodeRate::R56, "64QAM 5/6"),
];

fn main() {
    header("Figure 5: sigma vs transmit power (driver scale 0..100)");
    let links = representative_links();
    let names = ['A', 'B', 'C', 'D'];
    let mut out = Vec::new();

    for (m, r, label) in MODCODS {
        println!();
        println!("-- {label} (sigma capped at 10; CB hurts when sigma >= 2) --");
        let mut rows = Vec::new();
        let mut series: Vec<SigmaSeries> = names
            .iter()
            .map(|&l| SigmaSeries {
                modcod: label.to_string(),
                link: l,
                power_scale: Vec::new(),
                sigma: Vec::new(),
            })
            .collect();
        for scale in (0..=100).step_by(10) {
            let tx = driver_scale_to_dbm(scale);
            let mut row = vec![format!("{scale}")];
            for (li, link) in links.iter().enumerate() {
                let snr20 = link.snr_db(tx, ChannelWidth::Ht20);
                let s = sigma_for(m, r, snr20, 1500).min(10.0);
                series[li].power_scale.push(scale);
                series[li].sigma.push(s);
                row.push(format!("{s:.2}"));
            }
            rows.push(row);
        }
        print_table(&["power", "link A", "link B", "link C", "link D"], &rows);
        // Summarize the σ ≥ 2 region per link.
        for (li, s) in series.iter().enumerate() {
            let hurt: Vec<u32> = s
                .power_scale
                .iter()
                .zip(&s.sigma)
                .filter(|(_, v)| **v >= 2.0)
                .map(|(p, _)| *p)
                .collect();
            if hurt.is_empty() {
                println!("link {}: CB never hurts in this sweep", names[li]);
            } else {
                println!(
                    "link {}: CB hurts (sigma>=2) for power {}..{}",
                    names[li],
                    hurt.first().unwrap(),
                    hurt.last().unwrap()
                );
            }
        }
        out.extend(series);
    }
    println!();
    println!("paper: every modcod shows a low-power band where sigma >= 2;");
    println!("robust link B stays sigma < 2 over most of the sweep.");

    let monte_carlo_check = sigma_monte_carlo_check();

    save_json(
        "fig05_sigma",
        &Fig05 {
            series: out,
            monte_carlo_check,
        },
    );
}

/// Cross-checks the analytical σ model against the baseband Monte-Carlo
/// engine: runs coded QPSK-3/4 frames through the full Tx → channel → Rx
/// pipeline at both widths with the *same* transmit power (the engine's
/// physics produce the −3 dB per-subcarrier shift on their own) and
/// compares the measured delivery ratio with `sigma_for`.
fn sigma_monte_carlo_check() -> Vec<SigmaCheck> {
    header("sigma model vs baseband Monte-Carlo (QPSK 3/4, 1500 B)");
    let snrs = [5.0, 6.0, 7.0, 8.0, 9.0];
    const PACKETS: usize = 200;
    // One config pair per SNR point, all batched through one fan-out. The
    // 20 MHz config is pinned to the target SNR; the 40 MHz config reuses
    // its tx_power/noise so the CB penalty emerges from the pipeline.
    let mut grid = Vec::new();
    for &snr in &snrs {
        let c20 = FrameConfig {
            modulation: Modulation::Qpsk,
            code_rate: Some(CodeRate::R34),
            packet_bytes: 1500,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(snr);
        let c40 = FrameConfig {
            width: ChannelWidth::Ht40,
            ..c20
        };
        grid.push(c20);
        grid.push(c40);
    }
    let reports = run_trials(&grid, PACKETS, 4242);
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let r20 = reports[2 * i].as_ref().expect("valid config");
        let r40 = reports[2 * i + 1].as_ref().expect("valid config");
        let s_mc = sigma(r20.per(), r40.per());
        let s_model = sigma_for(Modulation::Qpsk, CodeRate::R34, snr, 1500);
        rows.push(vec![
            format!("{snr:.1}"),
            format!("{:.3}", r20.per()),
            format!("{:.3}", r40.per()),
            format!("{s_mc:.2}"),
            format!("{s_model:.2}"),
        ]);
        checks.push(SigmaCheck {
            snr20_db: snr,
            sigma_model: s_model.min(10.0),
            sigma_monte_carlo: s_mc.min(10.0),
        });
    }
    print_table(
        &[
            "SNR20 (dB)",
            "PER 20MHz",
            "PER 40MHz",
            "sigma MC",
            "sigma model",
        ],
        &rows,
    );
    println!();
    println!("both columns should agree on the sigma >= 2 region");
    checks
}
