//! Figure 8 — link quality (PER) across channel indices at MCS 15.
//!
//! Paper: "the variations across the different channels are negligible
//! (for both 20 and 40 MHz channels), making our assumption realistic" —
//! the assumption being that ACORN can predict a link's quality on any
//! same-width channel from a measurement on one of them.
//!
//! Our propagation model freezes shadowing per link; to make this a real
//! test we add the small per-(link, channel) frequency jitter that MIMO
//! leaves behind (±0.3 dB hashed deterministically) and verify the PER
//! spread stays negligible.

use acorn_bench::{header, print_table, save_json};
use acorn_phy::{ChannelWidth, McsIndex};
use acorn_topology::corpus::{representative_links, MAX_TX_DBM};
use serde::Serialize;

#[derive(Serialize)]
struct ChannelRow {
    link: usize,
    width: String,
    per_by_channel: Vec<f64>,
    spread: f64,
}

/// Deterministic per-(link, channel) SNR jitter in ±0.3 dB.
fn channel_jitter_db(link: usize, channel: usize) -> f64 {
    let mut x = (link as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (channel as u64 + 1).wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 29;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 32;
    ((x % 1000) as f64 / 1000.0 - 0.5) * 0.6
}

fn main() {
    header("Figure 8: PER across channel indices at MCS 15");
    let mcs = McsIndex::MAX.mcs();
    let links = representative_links();
    let mut out = Vec::new();
    for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
        let n_channels = match width {
            ChannelWidth::Ht20 => 12,
            ChannelWidth::Ht40 => 6,
        };
        println!();
        println!("-- {width:?} --");
        let mut rows = Vec::new();
        for (li, link) in links.iter().take(3).enumerate() {
            let base_snr = link.snr_db(MAX_TX_DBM, width);
            // SDM needs per-stream SNR; MCS 15 is the two-stream maximum.
            let eff = acorn_phy::MimoMode::Sdm.effective_snr_db(base_snr);
            let pers: Vec<f64> = (0..n_channels)
                .map(|ch| mcs.per(eff + channel_jitter_db(link.id, ch), 1500))
                .collect();
            let spread = pers.iter().cloned().fold(0.0f64, f64::max)
                - pers.iter().cloned().fold(1.0f64, f64::min);
            let mut row = vec![format!("link {}", (b'A' + li as u8) as char)];
            row.extend(pers.iter().map(|p| format!("{p:.3}")));
            row.push(format!("spread {spread:.3}"));
            rows.push(row);
            out.push(ChannelRow {
                link: link.id,
                width: format!("{width:?}"),
                per_by_channel: pers,
                spread,
            });
        }
        let mut cols: Vec<String> = vec!["link".to_string()];
        cols.extend((0..n_channels).map(|c| format!("ch{c}")));
        cols.push("".to_string());
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        print_table(&col_refs, &rows);
    }
    let max_spread = out.iter().map(|r| r.spread).fold(0.0f64, f64::max);
    println!();
    println!("max PER spread across same-width channels: {max_spread:.3}");
    println!("paper: variations across channels are negligible");
    save_json("fig08_channels", &out);
}
