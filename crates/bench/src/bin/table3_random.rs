//! Table 3 — ACORN vs the 10 best of 50 random manual configurations,
//! UDP and TCP network throughput.
//!
//! Paper: "ACORN configures the network in a way that achieves the
//! highest possible throughput as compared to what is achieved with these
//! random configurations" — for both UDP and (unsaturated) TCP.

use acorn_baselines::simple::random_config;
use acorn_bench::{header, mbps, print_table, save_json};
use acorn_core::{AcornConfig, AcornController};
use acorn_sim::runner::evaluate_analytic;
use acorn_sim::scenario::enterprise_grid;
use acorn_sim::traffic::Traffic;
use acorn_topology::ChannelPlan;
use acorn_topology::ClientId;
use serde::Serialize;

#[derive(Serialize)]
struct Table3 {
    acorn_udp_bps: f64,
    acorn_tcp_bps: f64,
    best10_random_udp_bps: Vec<f64>,
    best10_random_tcp_bps: Vec<f64>,
    acorn_beats_all_udp: bool,
    acorn_beats_all_tcp: bool,
}

fn main() {
    header("Table 3: ACORN vs 50 random manual configurations");
    // A randomly picked topology: 2×2 grid, 12 clients, shadowing on.
    let wlan = enterprise_grid(2, 2, 55.0, 12, 2010);
    let plan = ChannelPlan::full_5ghz();
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });

    // ACORN: associate arrivals one by one, then allocate (with restarts),
    // then settle association under the final channels.
    let mut state = ctl.new_state(&wlan, 3);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(&wlan, &mut state, 10, 17);
    for c in 0..wlan.clients.len() {
        ctl.deassociate(&mut state, ClientId(c));
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    ctl.reallocate_with_restarts(&wlan, &mut state, 10, 19);
    let eval = |assignments: &[acorn_topology::ChannelAssignment],
                assoc: &[Option<acorn_topology::ApId>],
                traffic| {
        evaluate_analytic(
            &wlan,
            assignments,
            assoc,
            &ctl.config.estimator,
            1500,
            traffic,
        )
        .total_bps
    };
    let acorn_udp = eval(&state.assignments, &state.assoc, Traffic::Udp);
    let acorn_tcp = eval(&state.assignments, &state.assoc, Traffic::tcp_default());

    // 50 random configurations, scored in parallel. Each one is derived
    // from its own seed, and results come back in seed order, so the
    // numbers match the sequential loop exactly.
    let scored: Vec<(f64, f64)> = acorn_core::par::par_map_n(50, |seed| {
        let cfg = random_config(
            &wlan,
            &plan,
            ctl.config.association_snr_floor_db,
            1000 + seed as u64,
        );
        (
            eval(&cfg.assignments, &cfg.assoc, Traffic::Udp),
            eval(&cfg.assignments, &cfg.assoc, Traffic::tcp_default()),
        )
    });
    let mut udp: Vec<f64> = scored.iter().map(|&(u, _)| u).collect();
    let mut tcp: Vec<f64> = scored.iter().map(|&(_, t)| t).collect();
    udp.sort_by(|a, b| b.total_cmp(a));
    tcp.sort_by(|a, b| b.total_cmp(a));
    let best_udp: Vec<f64> = udp[..10].to_vec();
    let best_tcp: Vec<f64> = tcp[..10].to_vec();

    let fmt = |v: &[f64]| v.iter().map(|x| mbps(*x)).collect::<Vec<_>>().join(", ");
    print_table(
        &[
            "traffic",
            "ACORN (Mb/s)",
            "10 best random configs (Mb/s, descending)",
        ],
        &[
            vec!["UDP".into(), mbps(acorn_udp), fmt(&best_udp)],
            vec!["TCP".into(), mbps(acorn_tcp), fmt(&best_tcp)],
        ],
    );
    let beats_udp = acorn_udp >= best_udp[0];
    let beats_tcp = acorn_tcp >= best_tcp[0];
    println!();
    println!(
        "ACORN beats every random config: UDP {} (margin {:.1}%), TCP {} (margin {:.1}%)",
        if beats_udp { "yes" } else { "NO" },
        100.0 * (acorn_udp / best_udp[0] - 1.0),
        if beats_tcp { "yes" } else { "NO" },
        100.0 * (acorn_tcp / best_tcp[0] - 1.0),
    );
    println!("paper: ACORN 259.2 (UDP) / 178.93 (TCP) vs best random 201.63 / 161.7");

    save_json(
        "table3_random",
        &Table3 {
            acorn_udp_bps: acorn_udp,
            acorn_tcp_bps: acorn_tcp,
            best10_random_udp_bps: best_udp,
            best10_random_tcp_bps: best_tcp,
            acorn_beats_all_udp: beats_udp,
            acorn_beats_all_tcp: beats_tcp,
        },
    );
}
