//! Dynamic-channel-bonding snapshot, written to `BENCH_dcb.json` at the
//! repo root (via `scripts/bench_snapshot.sh`):
//!
//! * **Approximation gap** — ACORN's greedy (Algorithm 2, with
//!   restarts) vs the certified branch-and-bound optimum on enumerable
//!   overlapping-BSS grids: totals, the greedy/exact ratio, and the
//!   nodes the exact search needed.
//! * **CTMC cross-check** — the event-driven DCB simulator vs the
//!   exactly solved Faridi-style stationary chain on every cross-check
//!   topology × Markovian policy, with the max per-WLAN relative error
//!   against the documented tolerance (the same numbers `tests/dcb.rs`
//!   gates in CI).
//! * **Policy families** — aggregate throughput of static-primary /
//!   probabilistic / always-max / occupancy-aware on the dense 3×3
//!   kings-move grid where bonds and contention coexist.

use acorn_bench::header;
use acorn_core::allocation::{allocate_with_restarts, AllocationConfig};
use acorn_core::model::ThroughputModel;
use acorn_dcb::{
    allocate_exact, ctmc, greedy_vs_exact_gap, CtmcParams, ExactConfig, MarkovPolicy, PolicyKind,
};
use acorn_events::{DcbScenario, OverlappingBssGrid};
use acorn_topology::{Channel20, ChannelAssignment, InterferenceGraph};
use serde::Serialize;

/// Same documented tolerance `tests/dcb.rs` gates on.
const CTMC_TOLERANCE: f64 = 0.05;
const CROSSCHECK_HORIZON_S: f64 = 60_000.0;

#[derive(Serialize)]
struct GapRow {
    topology: String,
    n_aps: usize,
    n_channels: u8,
    greedy_bps: f64,
    exact_bps: f64,
    /// greedy / exact, in (0, 1].
    gap: f64,
    nodes_explored: u64,
    complete: bool,
}

#[derive(Serialize)]
struct CtmcRow {
    topology: String,
    policy: String,
    n_states: usize,
    ctmc_total_bps: f64,
    sim_total_bps: f64,
    /// Max over WLANs of |sim − ctmc| / ctmc.
    max_rel_error: f64,
    within_tolerance: bool,
}

#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    total_bps: f64,
    completions40: u64,
    blocked: u64,
}

#[derive(Serialize)]
struct BenchDcb {
    /// Documented simulator-vs-CTMC tolerance (see tests/dcb.rs).
    ctmc_tolerance: f64,
    crosscheck_horizon_s: f64,
    approximation_gap: Vec<GapRow>,
    ctmc_crosscheck: Vec<CtmcRow>,
    /// Dense 3×3 kings-move grid, 5 channels, 20 000 s horizon.
    policy_families: Vec<PolicyRow>,
}

fn bonded(c: u8) -> ChannelAssignment {
    match ChannelAssignment::bonded(Channel20(c)) {
        Some(b) => b,
        None => unreachable!("even lower channel"),
    }
}

fn crosscheck_topologies() -> Vec<(&'static str, InterferenceGraph, Vec<ChannelAssignment>)> {
    let single = |c: u8| ChannelAssignment::Single(Channel20(c));
    vec![
        (
            "k2-bond-overlap",
            InterferenceGraph::complete(2),
            vec![bonded(0), single(1)],
        ),
        (
            "chain3-shared-bond",
            InterferenceGraph::from_edges(3, &[(0, 1), (1, 2)]),
            vec![bonded(0), single(1), bonded(0)],
        ),
        (
            "k4-two-bond-pairs",
            InterferenceGraph::complete(4),
            vec![bonded(0), single(1), bonded(2), single(3)],
        ),
    ]
}

fn gap_grids() -> Vec<(&'static str, OverlappingBssGrid)> {
    vec![
        (
            "grid2x2-4ch",
            OverlappingBssGrid {
                nx: 2,
                ny: 2,
                clients_per_ap: 3,
                n_channels: 4,
                seed: 101,
            },
        ),
        (
            "grid2x3-4ch",
            OverlappingBssGrid {
                nx: 2,
                ny: 3,
                clients_per_ap: 2,
                n_channels: 4,
                seed: 202,
            },
        ),
        (
            "grid3x2-2ch",
            OverlappingBssGrid {
                nx: 3,
                ny: 2,
                clients_per_ap: 2,
                n_channels: 2,
                seed: 303,
            },
        ),
    ]
}

fn bench_gap() -> Vec<GapRow> {
    header("Approximation gap: Algorithm 2 greedy vs branch-and-bound optimum");
    let mut rows = Vec::new();
    for (name, grid) in gap_grids() {
        let model = grid.model();
        let plan = grid.plan();
        let exact = allocate_exact(&model, &plan, &ExactConfig::default());
        let greedy = allocate_with_restarts(&model, &plan, &AllocationConfig::default(), 8, 0xD0CB);
        let greedy_bps = model.total_bps(&greedy.assignments);
        let gap = greedy_vs_exact_gap(greedy_bps, exact.total_bps);
        println!(
            "{name}: greedy {:.1} Mb/s vs exact {:.1} Mb/s -> gap {gap:.4} \
             ({} nodes, complete: {})",
            greedy_bps / 1e6,
            exact.total_bps / 1e6,
            exact.nodes_explored,
            exact.complete,
        );
        rows.push(GapRow {
            topology: name.to_string(),
            n_aps: grid.nx * grid.ny,
            n_channels: grid.n_channels,
            greedy_bps,
            exact_bps: exact.total_bps,
            gap,
            nodes_explored: exact.nodes_explored,
            complete: exact.complete,
        });
    }
    rows
}

fn bench_ctmc() -> Vec<CtmcRow> {
    header("CTMC cross-check: event simulator vs exact stationary solution");
    let params = CtmcParams::default();
    let policies = [
        (
            "static-primary",
            PolicyKind::StaticPrimary,
            MarkovPolicy::StaticPrimary,
        ),
        ("always-max", PolicyKind::AlwaysMax, MarkovPolicy::AlwaysMax),
        (
            "probabilistic-0.5",
            PolicyKind::Probabilistic(0.5),
            MarkovPolicy::Probabilistic(0.5),
        ),
    ];
    let mut rows = Vec::new();
    for (name, graph, alloc) in crosscheck_topologies() {
        for (pname, kind, markov) in policies {
            let solution = match ctmc::solve(&graph, &alloc, markov, &params) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{name}/{pname}: CTMC solve failed: {e}");
                    continue;
                }
            };
            let mut scenario = DcbScenario::new(graph.clone(), alloc.clone(), kind, 0xDCB0);
            scenario.params = params;
            scenario.horizon_s = CROSSCHECK_HORIZON_S;
            let sim = scenario.run();
            let max_rel_error = solution
                .per_wlan_bps
                .iter()
                .zip(&sim.per_ap_bps)
                .map(|(&want, &got)| (got - want).abs() / want)
                .fold(0.0f64, f64::max);
            let within = max_rel_error <= CTMC_TOLERANCE;
            println!(
                "{name}/{pname}: ctmc {:.1} Mb/s ({} states) vs sim {:.1} Mb/s, \
                 max rel err {max_rel_error:.4} (tol {CTMC_TOLERANCE}): {}",
                solution.total_bps() / 1e6,
                solution.n_states,
                sim.total_bps() / 1e6,
                if within { "ok" } else { "EXCEEDED" },
            );
            rows.push(CtmcRow {
                topology: name.to_string(),
                policy: pname.to_string(),
                n_states: solution.n_states,
                ctmc_total_bps: solution.total_bps(),
                sim_total_bps: sim.total_bps(),
                max_rel_error,
                within_tolerance: within,
            });
        }
    }
    rows
}

fn bench_policies() -> Vec<PolicyRow> {
    header("Policy families on the dense 3x3 kings-move grid (5 channels)");
    // 5 channels at this seed: the epoch greedy hands out 6 bonds AND
    // leaves 2 neighbour pairs sharing a primary — bonding decisions and
    // carrier-sense blocking genuinely coexist.
    let grid = OverlappingBssGrid {
        nx: 3,
        ny: 3,
        clients_per_ap: 2,
        n_channels: 5,
        seed: 11,
    };
    let policies = [
        ("static-primary", PolicyKind::StaticPrimary),
        ("probabilistic-0.5", PolicyKind::Probabilistic(0.5)),
        ("occupancy-aware-0.4", PolicyKind::OccupancyAware(0.4)),
        ("always-max", PolicyKind::AlwaysMax),
    ];
    let mut rows = Vec::new();
    for (pname, kind) in policies {
        let r = grid.scenario(kind, 4).run();
        println!(
            "{pname}: {:.1} Mb/s aggregate, {} tx@40, {} blocked attempts",
            r.total_bps() / 1e6,
            r.completions40.iter().sum::<u64>(),
            r.blocked.iter().sum::<u64>(),
        );
        rows.push(PolicyRow {
            policy: pname.to_string(),
            total_bps: r.total_bps(),
            completions40: r.completions40.iter().sum(),
            blocked: r.blocked.iter().sum(),
        });
    }
    rows
}

fn main() {
    let record = BenchDcb {
        ctmc_tolerance: CTMC_TOLERANCE,
        crosscheck_horizon_s: CROSSCHECK_HORIZON_S,
        approximation_gap: bench_gap(),
        ctmc_crosscheck: bench_ctmc(),
        policy_families: bench_policies(),
    };
    match serde_json::to_string_pretty(&record) {
        Ok(s) => match std::fs::write("BENCH_dcb.json", s) {
            Ok(()) => println!("\n[saved BENCH_dcb.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_dcb.json: {e}"),
        },
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
