//! Figure 1 — PSD estimate with different channel widths.
//!
//! Paper: "there is an approximate 3 dB reduction (−92 dB to −95 dB) in
//! the energy per subcarrier when we increase the channel width."
//!
//! We transmit DQPSK OFDM frames at the *same total power* over 20 MHz
//! (52 subcarriers, 64-pt IFFT) and 40 MHz (108 subcarriers, 128-pt IFFT)
//! and compare the Welch-PSD in-band plateaus, with the PSD grid set to
//! one bin per subcarrier so levels are directly per-subcarrier energies.

use acorn_baseband::cplx::Cplx;
use acorn_baseband::fft::ifft_vec;
use acorn_baseband::frame::data_subcarrier_bins;
use acorn_baseband::modem::{dqpsk_encode, modulate};
use acorn_baseband::psd::welch_psd;
use acorn_bench::{header, print_table, save_json};
use acorn_phy::{ChannelWidth, Modulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Fig01 {
    level_20mhz_db: f64,
    level_40mhz_db: f64,
    per_subcarrier_drop_db: f64,
    theory_drop_db: f64,
    tx_power_ratio_40_over_20: f64,
}

/// Builds `n_symbols` OFDM symbols of DQPSK at total power `power`.
fn build_signal(width: ChannelWidth, power: f64, n_symbols: usize, seed: u64) -> Vec<Cplx> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bins = data_subcarrier_bins(width);
    let n = width.fft_size();
    let amplitude = n as f64 * (power / bins.len() as f64).sqrt();
    let mut time = Vec::with_capacity(n_symbols * n);
    for _ in 0..n_symbols {
        let bits: Vec<bool> = (0..2 * bins.len()).map(|_| rng.gen()).collect();
        let symbols = dqpsk_encode(&modulate(Modulation::Qpsk, &bits));
        let mut grid = vec![Cplx::ZERO; n];
        for (slot, &b) in bins.iter().enumerate() {
            grid[b] = symbols[slot].scale(amplitude);
        }
        time.extend(ifft_vec(&grid));
    }
    time
}

fn main() {
    header("Figure 1: PSD estimate with different channel widths");
    let power = 1.0; // same total Tx for both widths, per the 802.11n spec
    let sig20 = build_signal(ChannelWidth::Ht20, power, 600, 1);
    let sig40 = build_signal(ChannelWidth::Ht40, power, 600, 2);

    let mean_power = |s: &[Cplx]| s.iter().map(|x| x.norm_sqr()).sum::<f64>() / s.len() as f64;
    let ratio = mean_power(&sig40) / mean_power(&sig20);

    // One PSD bin per subcarrier (nfft = the width's FFT size). The Welch
    // estimator works in per-sample units; convert to a physical dB/Hz
    // scale by dividing by the sampling rate (20 vs 40 Msps) — the 40 MHz
    // signal's samples each represent half the time, which is exactly
    // where the per-subcarrier energy difference lives.
    let psd20 = welch_psd(&sig20, ChannelWidth::Ht20.fft_size());
    let psd40 = welch_psd(&sig40, ChannelWidth::Ht40.fft_size());
    let bins20 = data_subcarrier_bins(ChannelWidth::Ht20);
    let bins40 = data_subcarrier_bins(ChannelWidth::Ht40);
    let per_hz = |w: ChannelWidth| -10.0 * w.bandwidth_hz().log10();
    let level20 = psd20.median_db_over(|k| bins20.contains(&k)) + per_hz(ChannelWidth::Ht20);
    let level40 = psd40.median_db_over(|k| bins40.contains(&k)) + per_hz(ChannelWidth::Ht40);
    let theory = -ChannelWidth::Ht40.per_subcarrier_energy_shift_db();

    print_table(
        &["width", "in-band level (dB)", "subcarriers"],
        &[
            vec!["20 MHz".into(), format!("{level20:.2}"), "52".into()],
            vec!["40 MHz".into(), format!("{level40:.2}"), "108".into()],
        ],
    );
    println!();
    println!(
        "per-subcarrier drop: {:.2} dB (theory 10·log10(108/52) = {:.2} dB)",
        level20 - level40,
        theory
    );
    println!(
        "total Tx power ratio 40/20: {:.3} (spec requires 1.0)",
        ratio
    );
    println!();
    println!("paper: ~3 dB reduction (−92 dB to −95 dB plateau shift)");

    save_json(
        "fig01_psd",
        &Fig01 {
            level_20mhz_db: level20,
            level_40mhz_db: level40,
            per_subcarrier_drop_db: level20 - level40,
            theory_drop_db: theory,
            tx_power_ratio_40_over_20: ratio,
        },
    );
}
