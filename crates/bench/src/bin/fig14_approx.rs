//! Figure 14 — how close ACORN's channel allocation gets to the Y* upper
//! bound in practice, for 2/4/6 available channels over nine 3-AP sets
//! (Δ = 2).
//!
//! Paper: "With 2 channels, ACORN does not perform worse than what is
//! theoretically predicted; the aggregate network throughput is Y*/3 ...
//! In the case of 6 channels, ACORN can achieve Y* ... We observe some
//! cases where ACORN performs very close to the optimal ... even with
//! only 4 channels \[when\] there is at least one AP i such that
//! T20 > T40; ACORN ... configures the particular AP with a 20 MHz
//! channel, leaving 3 channels for utilization to the other two APs."

use acorn_bench::{header, mbps, print_table, save_json};
use acorn_core::allocation::{allocate_with_restarts, AllocationConfig};
use acorn_core::model::{ClientSnr, NetworkModel};
use acorn_core::theory::{approximation_ratio, worst_case_bound_bps, y_star_bps};
use acorn_topology::{ChannelPlan, InterferenceGraph};
use serde::Serialize;

#[derive(Serialize)]
struct ApproxPoint {
    set: usize,
    n_channels: u8,
    y_star_bps: f64,
    achieved_bps: f64,
    ratio: f64,
    worst_case_bound_bps: f64,
}

/// Nine AP-triples spanning the corpus's quality mix: each entry is the
/// three cells' client SNRs.
fn ap_sets() -> Vec<[Vec<f64>; 3]> {
    vec![
        [vec![30.0, 28.0], vec![26.0], vec![24.0]],
        [vec![30.0], vec![14.0], vec![1.6]],
        [vec![28.0, 27.0], vec![1.7, 1.6], vec![12.0]],
        [vec![32.0], vec![31.0], vec![30.0]],
        [vec![1.7], vec![1.65], vec![1.6]],
        [vec![22.0, 20.0], vec![18.0], vec![8.0, 6.0]],
        [vec![30.0], vec![1.6], vec![1.7, 14.0]],
        [vec![16.0], vec![12.0], vec![10.0]],
        [vec![28.0], vec![24.0, 4.0], vec![20.0]],
    ]
}

fn main() {
    header("Figure 14: approximation ratio of ACORN's allocation (Δ = 2)");
    let cfg = AllocationConfig {
        epsilon: 1.0, // run to a local optimum, as the evaluation does
        max_rounds: 64,
    };
    // Each AP set is an independent experiment keyed by its own seed
    // (100 + set index); fan the nine sets out and flatten in set order.
    let sets = ap_sets();
    let per_set: Vec<Vec<ApproxPoint>> = acorn_core::par::par_map_n(sets.len(), |si| {
        let set = &sets[si];
        let cells: Vec<Vec<ClientSnr>> = set
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        let model = NetworkModel::new(InterferenceGraph::complete(3), cells);
        let ystar = y_star_bps(&model);
        let bound = worst_case_bound_bps(&model);
        [2u8, 4, 6]
            .into_iter()
            .map(|n_channels| {
                let plan = ChannelPlan::restricted(n_channels);
                let r = allocate_with_restarts(&model, &plan, &cfg, 8, 100 + si as u64);
                let ratio = approximation_ratio(r.total_bps, ystar);
                assert!(
                    r.total_bps + 1.0 >= bound,
                    "set {si}, {n_channels} ch: below the worst-case bound"
                );
                ApproxPoint {
                    set: si,
                    n_channels,
                    y_star_bps: ystar,
                    achieved_bps: r.total_bps,
                    ratio,
                    worst_case_bound_bps: bound,
                }
            })
            .collect()
    });
    let points: Vec<ApproxPoint> = per_set.into_iter().flatten().collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.set),
                format!("{}", p.n_channels),
                mbps(p.y_star_bps),
                mbps(p.achieved_bps),
                format!("{:.3}", p.ratio),
            ]
        })
        .collect();
    print_table(&["set", "channels", "Y* (Mb/s)", "T (Mb/s)", "T/Y*"], &rows);

    // Summaries per channel count.
    println!();
    for n_channels in [2u8, 4, 6] {
        let rs: Vec<f64> = points
            .iter()
            .filter(|p| p.n_channels == n_channels)
            .map(|p| p.ratio)
            .collect();
        let min = rs.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        println!(
            "{n_channels} channels: T/Y* min {min:.3}, mean {mean:.3} (worst-case bound 1/(Δ+1) = 0.333)"
        );
    }
    let six_ok = points
        .iter()
        .filter(|p| p.n_channels == 6)
        .all(|p| p.ratio > 0.99);
    println!();
    println!(
        "6 channels reach Y* on every set: {} (paper: yes — full isolation)",
        if six_ok { "yes" } else { "NO" }
    );
    println!("paper: all points at or above the y = x/3 line; several 4-channel");
    println!("sets near Y* when one AP prefers 20 MHz.");

    save_json("fig14_approx", &points);
}
