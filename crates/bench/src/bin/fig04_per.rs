//! Figure 4 — uncoded QPSK PER (a) vs SNR and (b) vs Tx.
//!
//! Paper: "for a given SNR the BER does not depend on the channel width;
//! thus, the uncoded PER is similar for the 20 and 40 MHz channels for
//! the same SNR. However, for the same Tx, the PER with CB is much higher
//! as compared to that without the feature."

use acorn_baseband::frame::{run_trials, Equalization, FrameConfig};
use acorn_bench::{header, print_table, save_json};
use acorn_phy::coding::per_from_ber_bytes;
use acorn_phy::{ChannelWidth, Modulation};
use serde::Serialize;

#[derive(Serialize)]
struct PerPoint {
    x: f64,
    per20: f64,
    per40: f64,
    theory20: f64,
    theory40: f64,
}

#[derive(Serialize)]
struct Fig04 {
    vs_snr: Vec<PerPoint>,
    vs_tx_dbm: Vec<PerPoint>,
}

const PACKETS: usize = 150;
const BYTES: usize = 1500;

/// Runs a config grid as one batched fan-out and returns per-config PERs.
fn per_sweep(configs: &[FrameConfig], seed: u64) -> Vec<f64> {
    run_trials(configs, PACKETS, seed)
        .into_iter()
        .map(|r| r.expect("valid config").per())
        .collect()
}

fn theory_per(snr_db: f64) -> f64 {
    per_from_ber_bytes(Modulation::Qpsk.ber_awgn(snr_db), BYTES as u32)
}

fn main() {
    header("Figure 4(a): uncoded QPSK PER vs per-subcarrier SNR");
    let snrs: Vec<f64> = (0..=12).map(|s| s as f64).collect();
    let mk = |w, snr| {
        FrameConfig {
            packet_bytes: BYTES,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(w)
        }
        .with_target_snr(snr)
    };
    let mut grid = Vec::new();
    for &snr in &snrs {
        grid.push(mk(ChannelWidth::Ht20, snr));
        grid.push(mk(ChannelWidth::Ht40, snr));
    }
    let pers = per_sweep(&grid, 500);

    let mut vs_snr = Vec::new();
    let mut rows = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let p20 = pers[2 * i];
        let p40 = pers[2 * i + 1];
        let t = theory_per(snr);
        vs_snr.push(PerPoint {
            x: snr,
            per20: p20,
            per40: p40,
            theory20: t,
            theory40: t,
        });
        rows.push(vec![
            format!("{snr:.0}"),
            format!("{p20:.3}"),
            format!("{p40:.3}"),
            format!("{t:.3}"),
        ]);
    }
    print_table(&["SNR (dB)", "PER 20MHz", "PER 40MHz", "theory"], &rows);
    println!();
    println!("paper: uncoded PER is similar for both widths at the same SNR");

    header("Figure 4(b): uncoded QPSK PER vs transmit power");
    let p25 = 10f64.powf(25.0 / 10.0);
    let gamma = 10f64.powf(14.0 / 10.0);
    let noise_density = 64.0 * p25 / (52.0 * gamma);
    let tx_dbms: Vec<f64> = (0..=10).map(|s| 2.5 * s as f64).collect();
    let mk = |w, tx_dbm: f64| FrameConfig {
        tx_power: 10f64.powf(tx_dbm / 10.0),
        noise_density,
        packet_bytes: BYTES,
        equalization: Equalization::Genie,
        ..FrameConfig::baseline(w)
    };
    let mut grid = Vec::new();
    for &tx_dbm in &tx_dbms {
        grid.push(mk(ChannelWidth::Ht20, tx_dbm));
        grid.push(mk(ChannelWidth::Ht40, tx_dbm));
    }
    let pers = per_sweep(&grid, 700);

    let mut vs_tx = Vec::new();
    let mut rows = Vec::new();
    for (i, &tx_dbm) in tx_dbms.iter().enumerate() {
        let (c20, c40) = (grid[2 * i], grid[2 * i + 1]);
        let p20 = pers[2 * i];
        let p40 = pers[2 * i + 1];
        vs_tx.push(PerPoint {
            x: tx_dbm,
            per20: p20,
            per40: p40,
            theory20: theory_per(c20.snr_per_subcarrier_db()),
            theory40: theory_per(c40.snr_per_subcarrier_db()),
        });
        rows.push(vec![
            format!("{tx_dbm:.1}"),
            format!("{p20:.3}"),
            format!("{p40:.3}"),
        ]);
    }
    print_table(&["Tx (dBm)", "PER 20MHz", "PER 40MHz"], &rows);
    println!();
    println!("paper: for the same Tx, the PER with CB is much higher");

    save_json(
        "fig04_per",
        &Fig04 {
            vs_snr,
            vs_tx_dbm: vs_tx,
        },
    );
}
