//! Figure 3 — uncoded QPSK BER (a) vs per-subcarrier SNR and (b) vs Tx.
//!
//! Paper findings reproduced here:
//! * (a) "for a fixed SNR, the BER does not depend on the channel width"
//!   and the curves fit the textbook theory (paper reports R² of 0.8 and
//!   0.89 for 20/40 MHz);
//! * (b) "the wider channel exhibits a higher number of bits in error for
//!   a given Tx" — the −3 dB CB shift in action.
//!
//! The Tx sweep maps dBm to the pipeline's relative units through a fixed
//! noise density calibrated so 25 dBm lands at ≈ 12.5 dB per-subcarrier
//! SNR on 20 MHz — the same operating band as the paper's WARP bench.

use acorn_baseband::frame::{run_trials, Equalization, FrameConfig};
use acorn_bench::{header, print_table, save_json};
use acorn_phy::{ChannelWidth, Modulation};
use acorn_sim::stats::r_squared;
use serde::Serialize;

#[derive(Serialize)]
struct BerPoint {
    x: f64,
    ber20: f64,
    ber40: f64,
    theory20: f64,
    theory40: f64,
}

#[derive(Serialize)]
struct Fig03 {
    vs_snr: Vec<BerPoint>,
    vs_tx_dbm: Vec<BerPoint>,
    r2_20mhz: f64,
    r2_40mhz: f64,
}

const PACKETS: usize = 120;

/// Runs a whole config grid through one parallel fan-out and returns the
/// per-config BERs (panics on invalid configs — these sweeps are static).
fn ber_sweep(configs: &[FrameConfig], seed: u64) -> Vec<f64> {
    run_trials(configs, PACKETS, seed)
        .into_iter()
        .map(|r| r.expect("valid config").ber())
        .collect()
}

fn main() {
    header("Figure 3(a): uncoded QPSK BER vs per-subcarrier SNR");
    // Build the whole (SNR × width) grid, then run it as one batch: worker
    // workspaces warm once and stay hot across every point.
    let snrs: Vec<f64> = (0..=12).map(|s| s as f64).collect();
    let mk = |w, snr| {
        FrameConfig {
            packet_bytes: 1500,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(w)
        }
        .with_target_snr(snr)
    };
    let mut grid = Vec::new();
    for &snr in &snrs {
        grid.push(mk(ChannelWidth::Ht20, snr));
        grid.push(mk(ChannelWidth::Ht40, snr));
    }
    let bers = ber_sweep(&grid, 100);

    let mut vs_snr = Vec::new();
    let mut rows = Vec::new();
    let mut obs20 = Vec::new();
    let mut obs40 = Vec::new();
    let mut th = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let b20 = bers[2 * i];
        let b40 = bers[2 * i + 1];
        let theory = Modulation::Qpsk.ber_awgn(snr);
        // Log-domain residuals weight the fit like the paper's log plot.
        if theory > 0.0 {
            if b20 > 0.0 {
                obs20.push(b20.log10());
                obs40.push(b40.max(1e-9).log10());
                th.push(theory.log10());
            }
        }
        vs_snr.push(BerPoint {
            x: snr,
            ber20: b20,
            ber40: b40,
            theory20: theory,
            theory40: theory,
        });
        rows.push(vec![
            format!("{snr:.0}"),
            format!("{b20:.2e}"),
            format!("{b40:.2e}"),
            format!("{theory:.2e}"),
        ]);
    }
    print_table(&["SNR (dB)", "BER 20MHz", "BER 40MHz", "theory"], &rows);
    let r2_20 = r_squared(&obs20, &th);
    let r2_40 = r_squared(&obs40, &th);
    println!();
    println!("R² vs theory (log-domain): 20 MHz = {r2_20:.3}, 40 MHz = {r2_40:.3}");
    println!("paper: R² = 0.8 (20 MHz) and 0.89 (40 MHz)");

    header("Figure 3(b): uncoded QPSK BER vs transmit power");
    // Calibrate: 25 dBm → 12.5 dB SNR at 20 MHz, i.e. σ² = N·P/(52·γ).
    let p25 = 10f64.powf(25.0 / 10.0);
    let gamma = 10f64.powf(12.5 / 10.0);
    let noise_density = 64.0 * p25 / (52.0 * gamma);
    let tx_dbms: Vec<f64> = (0..=10).map(|s| 2.5 * s as f64).collect();
    let mk = |w, tx_dbm: f64| FrameConfig {
        tx_power: 10f64.powf(tx_dbm / 10.0),
        noise_density,
        packet_bytes: 1500,
        equalization: Equalization::Genie,
        ..FrameConfig::baseline(w)
    };
    let mut grid = Vec::new();
    for &tx_dbm in &tx_dbms {
        grid.push(mk(ChannelWidth::Ht20, tx_dbm));
        grid.push(mk(ChannelWidth::Ht40, tx_dbm));
    }
    let bers = ber_sweep(&grid, 300);

    let mut vs_tx = Vec::new();
    let mut rows = Vec::new();
    for (i, &tx_dbm) in tx_dbms.iter().enumerate() {
        let (c20, c40) = (grid[2 * i], grid[2 * i + 1]);
        let b20 = bers[2 * i];
        let b40 = bers[2 * i + 1];
        let t20 = Modulation::Qpsk.ber_awgn(c20.snr_per_subcarrier_db());
        let t40 = Modulation::Qpsk.ber_awgn(c40.snr_per_subcarrier_db());
        vs_tx.push(BerPoint {
            x: tx_dbm,
            ber20: b20,
            ber40: b40,
            theory20: t20,
            theory40: t40,
        });
        rows.push(vec![
            format!("{tx_dbm:.1}"),
            format!("{b20:.2e}"),
            format!("{b40:.2e}"),
        ]);
    }
    print_table(&["Tx (dBm)", "BER 20MHz", "BER 40MHz"], &rows);
    println!();
    println!("paper: for a given Tx the 40 MHz channel has more bits in error");

    save_json(
        "fig03_ber",
        &Fig03 {
            vs_snr,
            vs_tx_dbm: vs_tx,
            r2_20mhz: r2_20,
            r2_40mhz: r2_40,
        },
    );
}
