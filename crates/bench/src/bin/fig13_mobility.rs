//! Figures 12–13 — mobility: ACORN's opportunistic width adaptation vs
//! fixed 40 MHz (outbound walk) and fixed 20 MHz (inbound walk).
//!
//! Paper: outbound, "ACORN uses the 40 MHz channel in the beginning and
//! sustains this until the point where the link quality becomes poor for
//! the mobile laptop (around 30 sec). From that point ... ACORN falls
//! back to the 20 MHz mode and is able to sustain a cell throughput that
//! is almost ten times that of a fixed 40 MHz channel." Inbound, ACORN
//! "switches to a 40 MHz channel (at around 10 sec)".

use acorn_bench::{header, mbps, print_table, save_json};
use acorn_phy::ChannelWidth;
use acorn_sim::mobility::{paper_walk, WidthPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct TracePoint {
    t_s: f64,
    acorn_bps: f64,
    fixed_bps: f64,
    acorn_width: String,
    mobile_snr20_db: f64,
}

#[derive(Serialize)]
struct Walk {
    direction: String,
    switch_time_s: Option<f64>,
    endgame_gain: f64,
    trace: Vec<TracePoint>,
}

fn run_walk(outbound: bool) -> Walk {
    let direction = if outbound {
        "outbound (vs fixed 40 MHz)"
    } else {
        "inbound (vs fixed 20 MHz)"
    };
    header(&format!("Figure 13 — {direction}"));
    let exp = paper_walk(outbound);
    let fixed_width = if outbound {
        ChannelWidth::Ht40
    } else {
        ChannelWidth::Ht20
    };
    let acorn = exp.run(WidthPolicy::AcornAdaptive);
    let fixed = exp.run(WidthPolicy::Fixed(fixed_width));

    let mut trace = Vec::new();
    let mut rows = Vec::new();
    let mut switch_time = None;
    for (i, (a, f)) in acorn.iter().zip(&fixed).enumerate() {
        if i > 0 && acorn[i - 1].width != a.width && switch_time.is_none() {
            switch_time = Some(a.t_s);
        }
        trace.push(TracePoint {
            t_s: a.t_s,
            acorn_bps: a.cell_bps,
            fixed_bps: f.cell_bps,
            acorn_width: format!("{:?}", a.width),
            mobile_snr20_db: a.mobile_snr20_db,
        });
        if i % 5 == 0 {
            rows.push(vec![
                format!("{:.0}", a.t_s),
                format!("{:.1}", a.mobile_snr20_db),
                mbps(a.cell_bps),
                format!("{:?}", a.width),
                mbps(f.cell_bps),
            ]);
        }
    }
    print_table(
        &[
            "t (s)",
            "mobile SNR",
            "ACORN (Mb/s)",
            "width",
            "fixed (Mb/s)",
        ],
        &rows,
    );
    let last_a = acorn.last().unwrap().cell_bps;
    let last_f = fixed.last().unwrap().cell_bps.max(1.0);
    let endgame_gain = last_a / last_f;
    println!();
    match switch_time {
        Some(t) => println!("ACORN switched width at t = {t:.0} s"),
        None => println!("ACORN never switched width"),
    }
    let paper_note = if outbound {
        "paper: almost 10x over fixed 40 MHz"
    } else {
        "paper: ACORN switches to 40 MHz and utilizes the CB gains"
    };
    println!("end-of-walk gain over fixed {fixed_width:?}: {endgame_gain:.1}x ({paper_note})");
    Walk {
        direction: direction.to_string(),
        switch_time_s: switch_time,
        endgame_gain,
        trace,
    }
}

fn main() {
    let out = run_walk(true);
    let inb = run_walk(false);
    save_json("fig13_mobility", &vec![out, inb]);
}
