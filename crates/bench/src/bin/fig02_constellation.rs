//! Figure 2 — received QPSK constellations with 52 vs 108 subcarriers.
//!
//! Paper: "With 20 MHz the received symbols are mostly clustered around
//! the actual transmitted symbol on the I-Q plane. With CB, there is a
//! higher uncertainty for the transmitted symbol due to the lowered energy
//! per subcarrier."
//!
//! Same transmit power, same noise density, 2×2 STBC (the paper's WARP
//! mode): the 40 MHz constellation must show visibly higher EVM.

use acorn_baseband::frame::{run_trials, Equalization, FrameConfig};
use acorn_bench::{header, print_table, save_json};
use acorn_phy::ChannelWidth;
use serde::Serialize;

#[derive(Serialize)]
struct Fig02 {
    evm_rms_20mhz: f64,
    evm_rms_40mhz: f64,
    evm_ratio: f64,
    snr20_db: f64,
    snr40_db: f64,
    constellation_20: Vec<(f64, f64)>,
    constellation_40: Vec<(f64, f64)>,
}

fn config(width: ChannelWidth) -> FrameConfig {
    FrameConfig {
        stbc: true,
        tx_power: 1.0,
        noise_density: 0.04, // ≈ 14 dB per-subcarrier SNR at 20 MHz
        packet_bytes: 500,
        equalization: Equalization::Training { symbols: 4 },
        ..FrameConfig::baseline(width)
    }
}

fn main() {
    header("Figure 2: received constellations, 52 vs 108 subcarriers");
    // One batched sweep: both widths fan out over the same worker pool.
    let configs = [config(ChannelWidth::Ht20), config(ChannelWidth::Ht40)];
    let mut reports = run_trials(&configs, 4, 42).into_iter();
    let r20 = reports.next().unwrap().expect("valid config");
    let r40 = reports.next().unwrap().expect("valid config");

    print_table(
        &["width", "per-subcarrier SNR (dB)", "EVM (rms)", "BER"],
        &[
            vec![
                "20 MHz".into(),
                format!("{:.2}", r20.snr_per_subcarrier_db),
                format!("{:.4}", r20.evm_rms),
                format!("{:.2e}", r20.ber()),
            ],
            vec![
                "40 MHz".into(),
                format!("{:.2}", r40.snr_per_subcarrier_db),
                format!("{:.4}", r40.evm_rms),
                format!("{:.2e}", r40.ber()),
            ],
        ],
    );
    println!();
    println!(
        "EVM ratio 40/20 = {:.2} (paper: visibly wider scatter with CB)",
        r40.evm_rms / r20.evm_rms
    );

    let take = |r: &acorn_baseband::frame::FrameReport| {
        r.constellation
            .iter()
            .take(500)
            .map(|c| (c.re, c.im))
            .collect::<Vec<_>>()
    };
    save_json(
        "fig02_constellation",
        &Fig02 {
            evm_rms_20mhz: r20.evm_rms,
            evm_rms_40mhz: r40.evm_rms,
            evm_ratio: r40.evm_rms / r20.evm_rms,
            snr20_db: r20.snr_per_subcarrier_db,
            snr40_db: r40.snr_per_subcarrier_db,
            constellation_20: take(&r20),
            constellation_40: take(&r40),
        },
    );
}
