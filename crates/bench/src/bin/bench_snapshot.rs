//! Wall-clock snapshot of the evaluation engine on a 25-AP deployment:
//! the pre-engine sequential full-recompute allocator (reimplemented here
//! as the reference) vs the O(Δ)-delta path at 1 thread and at full
//! parallelism. Writes `BENCH_allocation.json` in the current directory
//! (the repo root when launched via `scripts/bench_snapshot.sh`).

use acorn_bench::header;
use acorn_core::allocation::{
    allocate_with_restarts, random_initial, AllocationConfig,
};
use acorn_core::model::{NetworkModel, ThroughputModel};
use acorn_core::{AcornConfig, AcornController};
use acorn_sim::scenario::enterprise_grid;
use acorn_topology::{ChannelAssignment, ChannelPlan, ClientId};
use serde::Serialize;
use std::time::Instant;

const N_AP_SIDE: usize = 5; // 5×5 grid = 25 APs
const RESTARTS: usize = 8;
const REPS: usize = 5;

#[derive(Serialize)]
struct BenchAllocation {
    n_aps: usize,
    n_clients: usize,
    restarts: usize,
    reps: usize,
    threads_parallel: usize,
    /// Best-of-reps wall-clock (s): sequential full-recompute reference.
    baseline_full_recompute_s: f64,
    /// Best-of-reps wall-clock (s): delta engine, ACORN_THREADS=1.
    delta_sequential_s: f64,
    /// Best-of-reps wall-clock (s): delta engine, all threads.
    delta_parallel_s: f64,
    speedup_parallel_vs_baseline: f64,
    speedup_sequential_vs_baseline: f64,
    speedup_parallel_vs_sequential: f64,
    baseline_total_bps: f64,
    delta_total_bps: f64,
    /// Sequential and parallel delta runs are bit-identical.
    delta_bit_identical: bool,
}

/// The pre-engine allocator: every candidate colour is scored by a full
/// `total_bps` recompute of the patched assignment, sequentially — the
/// seed's Algorithm 2 evaluation path, kept as the timing reference.
fn allocate_full_recompute(
    model: &NetworkModel,
    plan: &ChannelPlan,
    initial: Vec<ChannelAssignment>,
    config: &AllocationConfig,
) -> (Vec<ChannelAssignment>, f64) {
    let n = model.n_aps();
    let colours = plan.all_assignments();
    let mut assignments = initial;
    let mut y = model.total_bps(&assignments);
    for _round in 0..config.max_rounds {
        let y_round_start = y;
        let mut eligible = vec![true; n];
        loop {
            let mut best: Option<(usize, ChannelAssignment, f64)> = None;
            for i in (0..n).filter(|&i| eligible[i]) {
                let mut ap_best: Option<(ChannelAssignment, f64)> = None;
                for &c in &colours {
                    let mut patched = assignments.clone();
                    patched[i] = c;
                    let gain = model.total_bps(&patched) - y;
                    match ap_best {
                        Some((_, g)) if g >= gain => {}
                        _ => ap_best = Some((c, gain)),
                    }
                }
                let (c, rank) = ap_best.expect("plan has colours");
                match best {
                    Some((_, _, r)) if r >= rank => {}
                    _ => best = Some((i, c, rank)),
                }
            }
            match best {
                Some((winner, c_star, rank)) if rank > 0.0 => {
                    assignments[winner] = c_star;
                    eligible[winner] = false;
                    y += rank;
                }
                _ => break,
            }
        }
        if y <= config.epsilon * y_round_start {
            break;
        }
    }
    let total = model.total_bps(&assignments);
    (assignments, total)
}

fn allocate_full_recompute_with_restarts(
    model: &NetworkModel,
    plan: &ChannelPlan,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
) -> (Vec<ChannelAssignment>, f64) {
    (0..restarts)
        .map(|i| {
            let initial = random_initial(plan, model.n_aps(), seed.wrapping_add(i as u64));
            allocate_full_recompute(model, plan, initial, config)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("restarts >= 1")
}

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

fn main() {
    header("Evaluation-engine snapshot: 25-AP allocate_with_restarts");
    let n_clients = 60;
    let wlan = enterprise_grid(N_AP_SIDE, N_AP_SIDE, 45.0, n_clients, 77);
    let plan = ChannelPlan::full_5ghz();
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });
    let mut state = ctl.new_state(&wlan, 1);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    let model = ctl.build_model(&wlan, &state);
    assert_eq!(model.n_aps(), N_AP_SIDE * N_AP_SIDE);
    let cfg = AllocationConfig::default();
    let seed = 2010u64;

    let (t_base, (_, base_total)) =
        time_best(|| allocate_full_recompute_with_restarts(&model, &plan, &cfg, RESTARTS, seed));
    println!("baseline full-recompute (sequential): {t_base:.3} s  (Y = {:.1} Mb/s)", base_total / 1e6);

    std::env::set_var("ACORN_THREADS", "1");
    let (t_seq, r_seq) =
        time_best(|| allocate_with_restarts(&model, &plan, &cfg, RESTARTS, seed));
    println!("delta engine, 1 thread:               {t_seq:.3} s  (Y = {:.1} Mb/s)", r_seq.total_bps / 1e6);

    // Measure the parallel path at ≥4 workers even on small machines
    // (bit-identity guarantees the answer is the same either way).
    std::env::remove_var("ACORN_THREADS");
    let threads = acorn_core::par::max_threads().max(4);
    std::env::set_var("ACORN_THREADS", threads.to_string());
    let (t_par, r_par) =
        time_best(|| allocate_with_restarts(&model, &plan, &cfg, RESTARTS, seed));
    std::env::remove_var("ACORN_THREADS");
    println!("delta engine, {threads} threads:              {t_par:.3} s  (Y = {:.1} Mb/s)", r_par.total_bps / 1e6);

    let identical = r_seq.assignments == r_par.assignments
        && r_seq.total_bps.to_bits() == r_par.total_bps.to_bits();
    assert!(identical, "sequential and parallel runs must be bit-identical");

    let record = BenchAllocation {
        n_aps: model.n_aps(),
        n_clients,
        restarts: RESTARTS,
        reps: REPS,
        threads_parallel: threads,
        baseline_full_recompute_s: t_base,
        delta_sequential_s: t_seq,
        delta_parallel_s: t_par,
        speedup_parallel_vs_baseline: t_base / t_par,
        speedup_sequential_vs_baseline: t_base / t_seq,
        speedup_parallel_vs_sequential: t_seq / t_par,
        baseline_total_bps: base_total,
        delta_total_bps: r_par.total_bps,
        delta_bit_identical: identical,
    };
    println!();
    println!(
        "speedups vs baseline: {:.2}x sequential, {:.2}x parallel ({} threads)",
        record.speedup_sequential_vs_baseline, record.speedup_parallel_vs_baseline, threads
    );
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            std::fs::write("BENCH_allocation.json", s).expect("write BENCH_allocation.json");
            println!("[saved BENCH_allocation.json]");
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
