//! Wall-clock snapshots of the two engines, written to the current
//! directory (the repo root when launched via `scripts/bench_snapshot.sh`):
//!
//! * `BENCH_allocation.json` — the evaluation engine on a 25-AP
//!   deployment: the pre-engine sequential full-recompute allocator
//!   (reimplemented here as the reference) vs the O(Δ)-delta path at
//!   1 thread and at full parallelism.
//! * `BENCH_baseband.json` — the baseband Monte-Carlo engine on the
//!   Fig. 3 configs (1500-byte QPSK frames, 20 MHz, coded and uncoded):
//!   the seed's allocating sequential pipeline
//!   (`acorn_bench::baseline_frame`) vs the workspace engine, plus the
//!   1/2/8-thread bit-identity check and the measured steady-state
//!   allocations per packet.

use acorn_baseband::frame::{
    mix_seed, run_trial_with, try_run_trial, Equalization, FrameConfig, FrameWorkspace, SyncMode,
};
use acorn_baseband::ChannelModel;
use acorn_baseband::PACKET_CHUNK;
use acorn_bench::alloc_counter::allocations_during;
use acorn_bench::baseline_frame::run_trial_baseline;
use acorn_bench::header;
use acorn_core::allocation::{
    allocate_sharded_with_restarts, allocate_with_restarts, random_initial, AllocationConfig,
};
use acorn_core::model::{ClientSnr, NetworkModel, ThroughputModel};
use acorn_core::{AcornConfig, AcornController};
use acorn_phy::{ChannelWidth, CodeRate, GoodputTable, LinkQualityEstimator, Modulation};
use acorn_sim::scenario::{city_grid, enterprise_grid};
use acorn_topology::{ApId, ChannelAssignment, ChannelPlan, ClientId};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const N_AP_SIDE: usize = 5; // 5×5 grid = 25 APs
const RESTARTS: usize = 8;
const REPS: usize = 5;

#[derive(Serialize)]
struct BenchAllocation {
    n_aps: usize,
    n_clients: usize,
    restarts: usize,
    reps: usize,
    threads_parallel: usize,
    /// Best-of-reps wall-clock (s): sequential full-recompute reference.
    baseline_full_recompute_s: f64,
    /// Best-of-reps wall-clock (s): delta engine, ACORN_THREADS=1.
    delta_sequential_s: f64,
    /// Best-of-reps wall-clock (s): delta engine, all threads.
    delta_parallel_s: f64,
    speedup_parallel_vs_baseline: f64,
    speedup_sequential_vs_baseline: f64,
    speedup_parallel_vs_sequential: f64,
    baseline_total_bps: f64,
    delta_total_bps: f64,
    /// Sequential and parallel delta runs are bit-identical.
    delta_bit_identical: bool,
    /// City-grid section: sharded allocation + memoized goodput table.
    city_n_aps: usize,
    city_n_clients: usize,
    /// Connected components of the city conflict graph (= districts).
    city_shards: usize,
    /// Best-of-reps wall-clock (s): unsharded delta engine, exact model.
    city_unsharded_exact_s: f64,
    /// Best-of-reps wall-clock (s): sharded engine, exact model.
    city_sharded_exact_s: f64,
    /// Best-of-reps wall-clock (s): sharded engine, memoized-table model.
    city_sharded_table_s: f64,
    city_speedup_sharded_table_vs_unsharded: f64,
    /// Sharded runs at 1 thread and full parallelism are bit-identical.
    city_sharded_bit_identical: bool,
}

/// The pre-engine allocator: every candidate colour is scored by a full
/// `total_bps` recompute of the patched assignment, sequentially — the
/// seed's Algorithm 2 evaluation path, kept as the timing reference.
fn allocate_full_recompute(
    model: &NetworkModel,
    plan: &ChannelPlan,
    initial: Vec<ChannelAssignment>,
    config: &AllocationConfig,
) -> (Vec<ChannelAssignment>, f64) {
    let n = model.n_aps();
    let colours = plan.all_assignments();
    let mut assignments = initial;
    let mut y = model.total_bps(&assignments);
    for _round in 0..config.max_rounds {
        let y_round_start = y;
        let mut eligible = vec![true; n];
        loop {
            let mut best: Option<(usize, ChannelAssignment, f64)> = None;
            for i in (0..n).filter(|&i| eligible[i]) {
                let mut ap_best: Option<(ChannelAssignment, f64)> = None;
                for &c in &colours {
                    let mut patched = assignments.clone();
                    patched[i] = c;
                    let gain = model.total_bps(&patched) - y;
                    match ap_best {
                        Some((_, g)) if g >= gain => {}
                        _ => ap_best = Some((c, gain)),
                    }
                }
                let (c, rank) = ap_best.expect("plan has colours");
                match best {
                    Some((_, _, r)) if r >= rank => {}
                    _ => best = Some((i, c, rank)),
                }
            }
            match best {
                Some((winner, c_star, rank)) if rank > 0.0 => {
                    assignments[winner] = c_star;
                    eligible[winner] = false;
                    y += rank;
                }
                _ => break,
            }
        }
        if y <= config.epsilon * y_round_start {
            break;
        }
    }
    let total = model.total_bps(&assignments);
    (assignments, total)
}

fn allocate_full_recompute_with_restarts(
    model: &NetworkModel,
    plan: &ChannelPlan,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
) -> (Vec<ChannelAssignment>, f64) {
    (0..restarts)
        .map(|i| {
            let initial = random_initial(plan, model.n_aps(), seed.wrapping_add(i as u64));
            allocate_full_recompute(model, plan, initial, config)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("restarts >= 1")
}

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

#[derive(Serialize)]
struct BasebandConfigBench {
    label: String,
    packets: usize,
    /// Seed pipeline (sequential, allocating): packets/sec.
    baseline_pkt_per_s: f64,
    /// Workspace engine at ACORN_THREADS=1: packets/sec.
    engine_pkt_per_s: f64,
    speedup: f64,
    /// Heap allocation events per packet in the engine's steady state
    /// (workspace warm, single-threaded — exact count, not an estimate).
    engine_allocs_per_packet: f64,
    baseline_allocs_per_packet: f64,
    /// try_run_trial reports are bit-identical at 1, 2 and 8 threads.
    parallel_bit_identical: bool,
    /// Per-worker packet batch handed to `run_packets` (PACKET_CHUNK).
    batch_packets: usize,
    /// The `-C target-cpu` the engine binary was compiled with
    /// (`.cargo/config.toml`); lane-kernel throughput depends on it.
    target_cpu: String,
}

#[derive(Serialize)]
struct BenchBaseband {
    reps: usize,
    configs: Vec<BasebandConfigBench>,
}

/// The Fig. 3 operating point: 1500-byte QPSK at 7 dB per-subcarrier SNR
/// on a 20 MHz AWGN channel — coded (the acceptance config) and uncoded.
fn fig03_config(code_rate: Option<CodeRate>) -> FrameConfig {
    FrameConfig {
        width: ChannelWidth::Ht20,
        modulation: Modulation::Qpsk,
        code_rate,
        stbc: false,
        tx_power: 1.0,
        noise_density: 1.0,
        channel: ChannelModel::Awgn,
        packet_bytes: 1500,
        sync: SyncMode::Genie,
        equalization: Equalization::Training { symbols: 4 },
        gi: acorn_phy::GuardInterval::Long,
    }
    .with_target_snr(7.0)
}

fn bench_baseband_config(label: &str, cfg: &FrameConfig, packets: usize) -> BasebandConfigBench {
    let seed = 2010u64;
    std::env::set_var("ACORN_THREADS", "1");

    // Warm-up, then exact steady-state allocation counts for the packet
    // hot path (single-threaded, so the counter sees only this pipeline).
    // Measured over bare run_packet calls: trial-level bookkeeping (the
    // report's constellation sample) is amortized per trial, not per
    // packet, and is excluded here.
    let mut ws = FrameWorkspace::new();
    run_trial_with(cfg, 3, seed, &mut ws).expect("valid config");
    let (engine_allocs, _) = allocations_during(|| {
        for i in 0..packets {
            ws.run_packet(cfg, mix_seed(seed, i as u64))
                .expect("valid config");
        }
    });
    let (baseline_allocs, _) = allocations_during(|| run_trial_baseline(cfg, 2, seed));

    let (t_base, r_base) = time_best(|| run_trial_baseline(cfg, packets, seed));
    let (t_engine, r_engine) =
        time_best(|| run_trial_with(cfg, packets, seed, &mut ws).expect("valid config"));
    // Same physics on both paths: the BERs must land in the same regime
    // (different RNG schemes, so not bit-equal).
    assert_eq!(r_base.bits, r_engine.bits);

    // Determinism across thread counts, on the exact snapshot config.
    let mut reports = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("ACORN_THREADS", threads);
        reports.push(try_run_trial(cfg, packets.min(40), seed).expect("valid config"));
    }
    std::env::remove_var("ACORN_THREADS");
    let identical = reports.windows(2).all(|w| w[0] == w[1]);
    assert!(identical, "{label}: thread count changed the report");

    BasebandConfigBench {
        label: label.to_string(),
        packets,
        baseline_pkt_per_s: packets as f64 / t_base,
        engine_pkt_per_s: packets as f64 / t_engine,
        speedup: t_base / t_engine,
        engine_allocs_per_packet: engine_allocs as f64 / packets as f64,
        baseline_allocs_per_packet: baseline_allocs as f64 / 2.0,
        parallel_bit_identical: identical,
        batch_packets: PACKET_CHUNK,
        target_cpu: effective_target_cpu(),
    }
}

/// The widest SIMD tier compiled into this binary — the observable effect
/// of `.cargo/config.toml`'s `-C target-cpu=native` on the machine the
/// snapshot ran on, recorded so rows from different hosts are comparable.
fn effective_target_cpu() -> String {
    let tier = if cfg!(target_feature = "avx512bw") {
        "avx512bw"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else {
        "baseline"
    };
    format!("native ({tier})")
}

fn bench_baseband() -> BenchBaseband {
    header("Baseband-engine snapshot: Fig. 3 QPSK frames, seed pipeline vs workspace engine");
    let configs = vec![
        bench_baseband_config(
            "qpsk-r12-20mhz-1500B",
            &fig03_config(Some(CodeRate::R12)),
            60,
        ),
        bench_baseband_config("qpsk-uncoded-20mhz-1500B", &fig03_config(None), 150),
    ];
    for c in &configs {
        println!(
            "{}: baseline {:.0} pkt/s -> engine {:.0} pkt/s ({:.2}x), \
             {:.2} allocs/pkt steady state (baseline {:.0}), parallel identical: {}",
            c.label,
            c.baseline_pkt_per_s,
            c.engine_pkt_per_s,
            c.speedup,
            c.engine_allocs_per_packet,
            c.baseline_allocs_per_packet,
            c.parallel_bit_identical,
        );
    }
    BenchBaseband {
        reps: REPS,
        configs,
    }
}

fn main() {
    let baseband = bench_baseband();
    match serde_json::to_string_pretty(&baseband) {
        Ok(s) => {
            std::fs::write("BENCH_baseband.json", s).expect("write BENCH_baseband.json");
            println!("[saved BENCH_baseband.json]");
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }

    header("Evaluation-engine snapshot: 25-AP allocate_with_restarts");
    let n_clients = 60;
    let wlan = enterprise_grid(N_AP_SIDE, N_AP_SIDE, 45.0, n_clients, 77);
    let plan = ChannelPlan::full_5ghz();
    let ctl = AcornController::new(AcornConfig {
        plan,
        ..AcornConfig::default()
    });
    let mut state = ctl.new_state(&wlan, 1);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    let model = ctl.build_model(&wlan, &state);
    assert_eq!(model.n_aps(), N_AP_SIDE * N_AP_SIDE);
    let cfg = AllocationConfig::default();
    let seed = 2010u64;

    let (t_base, (_, base_total)) =
        time_best(|| allocate_full_recompute_with_restarts(&model, &plan, &cfg, RESTARTS, seed));
    println!(
        "baseline full-recompute (sequential): {t_base:.3} s  (Y = {:.1} Mb/s)",
        base_total / 1e6
    );

    std::env::set_var("ACORN_THREADS", "1");
    let (t_seq, r_seq) = time_best(|| allocate_with_restarts(&model, &plan, &cfg, RESTARTS, seed));
    println!(
        "delta engine, 1 thread:               {t_seq:.3} s  (Y = {:.1} Mb/s)",
        r_seq.total_bps / 1e6
    );

    // Measure the parallel path at ≥4 workers even on small machines
    // (bit-identity guarantees the answer is the same either way).
    std::env::remove_var("ACORN_THREADS");
    let threads = acorn_core::par::max_threads().max(4);
    std::env::set_var("ACORN_THREADS", threads.to_string());
    let (t_par, r_par) = time_best(|| allocate_with_restarts(&model, &plan, &cfg, RESTARTS, seed));
    std::env::remove_var("ACORN_THREADS");
    println!(
        "delta engine, {threads} threads:              {t_par:.3} s  (Y = {:.1} Mb/s)",
        r_par.total_bps / 1e6
    );

    let identical = r_seq.assignments == r_par.assignments
        && r_seq.total_bps.to_bits() == r_par.total_bps.to_bits();
    assert!(
        identical,
        "sequential and parallel runs must be bit-identical"
    );

    header("Evaluation-engine snapshot: city grid, sharded + memoized table");
    let city_districts = 4usize;
    let city_n_clients = 432;
    let city_wlan = city_grid(city_districts, 3, city_n_clients, 77);
    let city_n_aps = city_wlan.aps.len();
    // Nearest-AP association: pure geometry, fine for a timing model.
    let assoc: Vec<Option<ApId>> = city_wlan
        .clients
        .iter()
        .map(|cl| {
            (0..city_n_aps)
                .min_by(|&a, &b| {
                    let da = city_wlan.aps[a].pos.distance(&cl.pos);
                    let db = city_wlan.aps[b].pos.distance(&cl.pos);
                    da.partial_cmp(&db).expect("finite distances")
                })
                .map(ApId)
        })
        .collect();
    let city_graph = city_wlan.interference_graph(&assoc);
    let city_shards = city_graph.connected_components().len();
    let cells: Vec<Vec<ClientSnr>> = (0..city_n_aps)
        .map(|ap| {
            assoc
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Some(ApId(ap)))
                .map(|(c, _)| ClientSnr {
                    client: c,
                    snr20_db: city_wlan.snr_db(ApId(ap), ClientId(c), ChannelWidth::Ht20),
                })
                .collect()
        })
        .collect();
    let payload = AcornConfig::default().payload_bytes;
    let city_exact = NetworkModel::with_config(
        city_graph.clone(),
        cells.clone(),
        LinkQualityEstimator::default(),
        payload,
    );
    let table = Arc::new(GoodputTable::new(LinkQualityEstimator::default()));
    let city_table = NetworkModel::with_table(city_graph, cells, table, payload);
    let city_initial = random_initial(&plan, city_n_aps, seed);

    let (t_city_unsharded, r_unsharded) =
        time_best(|| allocate_with_restarts(&city_exact, &plan, &cfg, RESTARTS, seed));
    println!(
        "unsharded delta engine, exact model:  {t_city_unsharded:.3} s  (Y = {:.1} Mb/s)",
        r_unsharded.total_bps / 1e6
    );
    let (t_city_sharded, r_sharded) = time_best(|| {
        allocate_sharded_with_restarts(
            &city_exact,
            &plan,
            city_initial.clone(),
            &cfg,
            RESTARTS,
            seed,
        )
    });
    println!(
        "sharded ({city_shards} shards), exact model:      {t_city_sharded:.3} s  (Y = {:.1} Mb/s)",
        r_sharded.total_bps / 1e6
    );
    std::env::set_var("ACORN_THREADS", "1");
    let (t_city_table, r_table_seq) = time_best(|| {
        allocate_sharded_with_restarts(
            &city_table,
            &plan,
            city_initial.clone(),
            &cfg,
            RESTARTS,
            seed,
        )
    });
    std::env::set_var("ACORN_THREADS", threads.to_string());
    let (t_city_table_par, r_table_par) = time_best(|| {
        allocate_sharded_with_restarts(
            &city_table,
            &plan,
            city_initial.clone(),
            &cfg,
            RESTARTS,
            seed,
        )
    });
    std::env::remove_var("ACORN_THREADS");
    let city_t_table_best = t_city_table.min(t_city_table_par);
    println!(
        "sharded + memoized table:             {city_t_table_best:.3} s  (Y = {:.1} Mb/s)",
        r_table_par.total_bps / 1e6
    );
    let city_identical = r_table_seq.assignments == r_table_par.assignments
        && r_table_seq.total_bps.to_bits() == r_table_par.total_bps.to_bits();
    assert!(
        city_identical,
        "sharded runs must be bit-identical across thread counts"
    );
    println!(
        "sharded+table vs unsharded exact: {:.2}x",
        t_city_unsharded / city_t_table_best
    );

    let record = BenchAllocation {
        n_aps: model.n_aps(),
        n_clients,
        restarts: RESTARTS,
        reps: REPS,
        threads_parallel: threads,
        baseline_full_recompute_s: t_base,
        delta_sequential_s: t_seq,
        delta_parallel_s: t_par,
        speedup_parallel_vs_baseline: t_base / t_par,
        speedup_sequential_vs_baseline: t_base / t_seq,
        speedup_parallel_vs_sequential: t_seq / t_par,
        baseline_total_bps: base_total,
        delta_total_bps: r_par.total_bps,
        delta_bit_identical: identical,
        city_n_aps,
        city_n_clients,
        city_shards,
        city_unsharded_exact_s: t_city_unsharded,
        city_sharded_exact_s: t_city_sharded,
        city_sharded_table_s: city_t_table_best,
        city_speedup_sharded_table_vs_unsharded: t_city_unsharded / city_t_table_best,
        city_sharded_bit_identical: city_identical,
    };
    println!();
    println!(
        "speedups vs baseline: {:.2}x sequential, {:.2}x parallel ({} threads)",
        record.speedup_sequential_vs_baseline, record.speedup_parallel_vs_baseline, threads
    );
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            std::fs::write("BENCH_allocation.json", s).expect("write BENCH_allocation.json");
            println!("[saved BENCH_allocation.json]");
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
