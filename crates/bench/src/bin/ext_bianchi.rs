//! Extension experiment — three views of DCF medium sharing.
//!
//! The paper's `M_a = 1/(|con_a|+1)` access-share estimate, Bianchi's
//! fixed-point analysis, and the slot-level simulator, side by side for
//! `n` mutually contending, homogeneous cells. Shows where the paper's
//! simple estimate sits: a few percent optimistic (it ignores collision
//! overhead), which is why it is "very accurate ... under saturated
//! traffic" for the cell counts enterprise floors see.

use acorn_bench::{header, mbps, print_table, save_json};
use acorn_mac::airtime::{cell_throughput_bps, ClientLink};
use acorn_mac::bianchi::{saturation_throughput_bps, solve};
use acorn_mac::dcf::{simulate_dcf, StationConfig};
use acorn_mac::timing::BURST;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    tau: f64,
    p_collision: f64,
    m_share_bps: f64,
    bianchi_bps: f64,
    dcf_sim_bps: f64,
}

fn main() {
    header("Extension: M-share vs Bianchi vs slot simulator (aggregate, 65 Mb/s PHY)");
    let link = ClientLink {
        rate_bps: 65e6,
        per: 0.0,
    };
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for n in [1usize, 2, 3, 4, 6, 8] {
        let pt = solve(n);
        // The paper's model: each of n cells gets M = 1/n of its isolated
        // throughput → aggregate equals one isolated cell.
        let m_share = cell_throughput_bps(&[link], 1500, 1.0);
        let bianchi = saturation_throughput_bps(n, 1500, 65e6, 0.0, BURST);
        let stations: Vec<StationConfig> = (0..n).map(|_| StationConfig::new(vec![link])).collect();
        let stats = simulate_dcf(&stations, 5.0, 11);
        let sim: f64 = stats.iter().map(|s| s.throughput_bps(5.0)).sum();
        rows.push(vec![
            format!("{n}"),
            format!("{:.4}", pt.tau),
            format!("{:.4}", pt.p),
            mbps(m_share),
            mbps(bianchi),
            mbps(sim),
        ]);
        out.push(Row {
            n,
            tau: pt.tau,
            p_collision: pt.p,
            m_share_bps: m_share,
            bianchi_bps: bianchi,
            dcf_sim_bps: sim,
        });
    }
    print_table(
        &[
            "n",
            "tau",
            "P(coll)",
            "M-model (Mb/s)",
            "Bianchi (Mb/s)",
            "DCF sim (Mb/s)",
        ],
        &rows,
    );
    println!();
    let worst_gap = out
        .iter()
        .map(|r| (r.m_share_bps - r.dcf_sim_bps) / r.dcf_sim_bps)
        .fold(0.0f64, f64::max);
    println!(
        "the paper's M-estimate is at most {:.1}% optimistic over this range —",
        100.0 * worst_gap
    );
    println!("the collision tax Bianchi and the simulator both charge.");
    save_json("ext_bianchi", &out);
}
