//! Extension experiment — interference susceptibility of bonded channels.
//!
//! §1 of the paper: "due to the 3 dB reduction in the per-carrier signal
//! power, transmissions with the wider bands are more susceptible to
//! interference (i.e., the SINR is lower)." The testbed evaluation shows
//! this indirectly (Fig. 11); here we measure it directly with the
//! SINR-aware evaluator: a victim cell at increasing distance from a
//! hidden (out-of-carrier-sense) interferer, 20 MHz vs bonded.

use acorn_bench::{header, mbps, print_table, save_json};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_sim::interference::evaluate_analytic_sinr;
use acorn_sim::traffic::Traffic;
use acorn_topology::{ApId, Channel20, ChannelAssignment, Point, Wlan};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    interferer_distance_m: f64,
    victim20_bps: f64,
    victim40_bps: f64,
    loss20: f64,
    loss40: f64,
}

fn main() {
    header("Extension: interference susceptibility, 20 MHz vs bonded victim");
    let est = LinkQualityEstimator::default();
    let single = ChannelAssignment::Single(Channel20(0));
    let bonded = ChannelAssignment::bonded(Channel20(0)).unwrap();
    let far = ChannelAssignment::Single(Channel20(11));

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for dist in [120.0, 150.0, 200.0, 300.0, 500.0] {
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(dist, 0.0)],
            vec![Point::new(45.0, 0.0), Point::new(dist - 20.0, 0.0)],
            3,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        let assoc = vec![Some(ApId(0)), Some(ApId(1))];
        let run = |victim: ChannelAssignment, interferer: ChannelAssignment| {
            evaluate_analytic_sinr(&w, &[victim, interferer], &assoc, &est, 1500, Traffic::Udp)
                .per_ap_bps[0]
        };
        // Interferer fully covers the victim's spectrum in both cases.
        let v20 = run(single, bonded);
        let v20_clean = run(single, far);
        let v40 = run(bonded, bonded);
        let v40_clean = run(bonded, far);
        let loss20 = 1.0 - v20 / v20_clean;
        let loss40 = 1.0 - v40 / v40_clean;
        rows.push(vec![
            format!("{dist:.0}"),
            mbps(v20),
            format!("{:.1}%", 100.0 * loss20),
            mbps(v40),
            format!("{:.1}%", 100.0 * loss40),
        ]);
        out.push(Row {
            interferer_distance_m: dist,
            victim20_bps: v20,
            victim40_bps: v40,
            loss20,
            loss40,
        });
    }
    print_table(
        &[
            "interferer (m)",
            "20MHz (Mb/s)",
            "loss",
            "40MHz (Mb/s)",
            "loss",
        ],
        &rows,
    );
    println!();
    let worse = out.iter().filter(|r| r.loss40 >= r.loss20 - 1e-9).count();
    println!(
        "bonded victim loses at least as much in {worse}/{} distances",
        out.len()
    );
    println!("paper §1: wider bands are more susceptible to interference.");
    println!("note: at the longest distances MCS quantization can mask the");
    println!("effect (a victim sitting just past an MCS threshold absorbs");
    println!("small SINR hits for free); the claim holds in the regime where");
    println!("interference is strong enough to move the operating point.");
    save_json("ext_sinr_susceptibility", &out);
}
