//! Distributed-control benchmark: the zone-controller plane on a
//! 144-AP / 16-district city, swept across control-wire loss rates,
//! written to `BENCH_distributed.json` at the repo root.
//!
//! Each level runs the full distributed plane (gossip, acks,
//! retransmits, catch-up replay) to quiescence and the centralized
//! golden twin over the same epoch schedule, recording wall time for
//! both, the convergence epoch (last epoch that changed any AP's
//! assignment), the message cost per AP, and whether the distributed
//! plan landed bit-exactly on the twin.

use acorn_bench::header;
use acorn_core::{AcornConfig, AcornController};
use acorn_ctrlplane::{DistributedPlane, PlaneConfig, PlaneReport};
use acorn_events::FaultPlan;
use acorn_phy::{GoodputTable, LinkQualityEstimator};
use acorn_sim::scenario::city_grid;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct LossLevel {
    loss: f64,
    corruption: f64,
    distributed_wall_s: f64,
    centralized_wall_s: f64,
    matches_twin: bool,
    convergence_epoch: u64,
    msgs_per_ap: f64,
    frames_per_ap: f64,
    report: PlaneReport,
}

#[derive(Serialize)]
struct BenchDistributed {
    districts_per_side: usize,
    aps_per_district_side: usize,
    n_aps: usize,
    n_clients: usize,
    n_zones: usize,
    epochs: u64,
    levels: Vec<LossLevel>,
}

const DISTRICTS_PER_SIDE: usize = 4;
const APS_PER_DISTRICT_SIDE: usize = 3;
const N_CLIENTS: usize = 160;
const SEED: u64 = 77;
const EPOCHS: u64 = 4;

fn plane_cfg(loss: f64, corruption: f64) -> PlaneConfig {
    PlaneConfig {
        seed: SEED,
        epoch_period_s: 100.0,
        first_epoch_at_s: 10.0,
        horizon_s: 10.0 + (EPOCHS - 1) as f64 * 100.0,
        restarts: 2,
        faults: FaultPlan {
            seed: SEED ^ 0xFA17,
            loss,
            corruption,
            ..FaultPlan::default()
        },
        ..PlaneConfig::default()
    }
}

fn level(loss: f64, corruption: f64, table: &Arc<GoodputTable>) -> LossLevel {
    header(&format!("control-wire loss {:.0}%", loss * 100.0));
    let wlan = city_grid(DISTRICTS_PER_SIDE, APS_PER_DISTRICT_SIDE, N_CLIENTS, SEED);
    let ctl = AcornController::with_table(AcornConfig::default(), Arc::clone(table));
    let n_aps = wlan.aps.len();
    let mut plane = DistributedPlane::new(wlan, ctl, plane_cfg(loss, corruption));

    let t0 = Instant::now();
    plane.run_to_quiescence();
    let distributed_wall_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let twin = plane.centralized_twin();
    let centralized_wall_s = t1.elapsed().as_secs_f64();

    let matches_twin = plane.state().assignments == twin.assignments
        && plane.state().operating_width == twin.operating_width;
    let report = plane.report();
    let msgs_per_ap = report.msgs_sent as f64 / n_aps as f64;
    let frames_per_ap = report.frames_sent as f64 / n_aps as f64;
    println!(
        "{} zones, {} epochs: converged at epoch {} ({} replayed), twin match: {}",
        report.n_zones,
        report.epochs_scheduled,
        report.last_change_epoch,
        report.epochs_replayed,
        matches_twin,
    );
    println!(
        "{} msgs ({:.1}/AP), {} frames ({:.1}/AP): {} lost, {} corrupted, \
         {} retransmits, {} deduped, {} expired",
        report.msgs_sent,
        msgs_per_ap,
        report.frames_sent,
        frames_per_ap,
        report.frames_lost,
        report.frames_corrupted,
        report.msgs_retransmitted,
        report.msgs_deduped,
        report.msgs_expired,
    );
    println!(
        "distributed {:.2} s, centralized twin {:.2} s, {:.1} Mbit/s total",
        distributed_wall_s,
        centralized_wall_s,
        report.total_bps / 1e6,
    );
    LossLevel {
        loss,
        corruption,
        distributed_wall_s,
        centralized_wall_s,
        matches_twin,
        convergence_epoch: report.last_change_epoch,
        msgs_per_ap,
        frames_per_ap,
        report,
    }
}

fn main() {
    header("distributed control plane: 144-AP city, 16 zones");
    let table = Arc::new(GoodputTable::build(
        LinkQualityEstimator::default(),
        -12.0,
        48.0,
        0.25,
    ));
    let probe = city_grid(DISTRICTS_PER_SIDE, APS_PER_DISTRICT_SIDE, N_CLIENTS, SEED);
    let n_aps = probe.aps.len();
    let n_clients = probe.clients.len();
    println!("{n_aps} APs, {n_clients} clients, {EPOCHS} reallocation epochs");

    let levels = vec![
        level(0.0, 0.0, &table),
        level(0.1, 0.02, &table),
        level(0.3, 0.05, &table),
    ];
    let n_zones = levels[0].report.n_zones;
    let record = BenchDistributed {
        districts_per_side: DISTRICTS_PER_SIDE,
        aps_per_district_side: APS_PER_DISTRICT_SIDE,
        n_aps,
        n_clients,
        n_zones,
        epochs: EPOCHS,
        levels,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_distributed.json", s) {
                eprintln!("warning: cannot write BENCH_distributed.json: {e}");
            } else {
                println!("\n[saved BENCH_distributed.json]");
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}
