//! Table 1 — experimental transition SNRs for σ = 2 per mod/cod.
//!
//! Paper's Table 1 (SNR γ where σ crosses 2):
//!
//! | modcod     | QPSK 3/4 | 16QAM 3/4 | 64QAM 3/4 | 64QAM 5/6 |
//! |------------|----------|-----------|-----------|-----------|
//! | σ ≥ 2      | −7 dB    | 3 dB      | 5 dB      | 8 dB      |
//! | σ < 2      | −4 dB    | 5 dB      | 7 dB      | 11 dB     |
//!
//! The *shape* we must match: the threshold rises monotonically with
//! modulation aggressiveness, with a 2–3 dB transition band. Absolute dB
//! values differ (their SNR reference includes receiver implementation
//! offsets; ours is the ideal per-subcarrier SNR).

use acorn_bench::{header, print_table, save_json};
use acorn_phy::link::{sigma_crossover_snr, sigma_transition_band};
use acorn_phy::{CodeRate, Modulation};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    modcod: String,
    last_snr_sigma_ge2_db: f64,
    first_snr_sigma_lt2_db: f64,
    crossover_db: f64,
    paper_ge2_db: f64,
    paper_lt2_db: f64,
}

fn main() {
    header("Table 1: sigma = 2 transition SNRs");
    let cases = [
        (Modulation::Qpsk, CodeRate::R34, "QPSK 3/4", -7.0, -4.0),
        (Modulation::Qam16, CodeRate::R34, "16QAM 3/4", 3.0, 5.0),
        (Modulation::Qam64, CodeRate::R34, "64QAM 3/4", 5.0, 7.0),
        (Modulation::Qam64, CodeRate::R56, "64QAM 5/6", 8.0, 11.0),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut prev = f64::NEG_INFINITY;
    let mut monotone = true;
    for (m, r, label, p_ge, p_lt) in cases {
        let x = sigma_crossover_snr(m, r, 1500).expect("crossover exists");
        let (lo, hi) = sigma_transition_band(m, r, 1500).expect("band exists");
        monotone &= x > prev;
        prev = x;
        rows.push(vec![
            label.to_string(),
            format!("{lo:.0}"),
            format!("{hi:.0}"),
            format!("{x:.2}"),
            format!("{p_ge:.0} / {p_lt:.0}"),
        ]);
        json.push(Row {
            modcod: label.to_string(),
            last_snr_sigma_ge2_db: lo,
            first_snr_sigma_lt2_db: hi,
            crossover_db: x,
            paper_ge2_db: p_ge,
            paper_lt2_db: p_lt,
        });
    }
    print_table(
        &[
            "modcod",
            "σ≥2 (dB)",
            "σ<2 (dB)",
            "crossover",
            "paper σ≥2/σ<2",
        ],
        &rows,
    );
    println!();
    println!(
        "threshold rises with aggressiveness: {}",
        if monotone {
            "yes (matches paper)"
        } else {
            "NO"
        }
    );
    // The paper's SNR axis is the Ralink driver's RSSI-derived estimate,
    // which carries a large constant offset (QPSK 3/4 at −7 dB true SNR is
    // physically impossible). Align both scales at the first modcod and
    // compare the *relative* thresholds, which is the reproducible shape.
    let ours0 = json[0].crossover_db;
    let paper0 = -7.0;
    println!();
    println!("offset-aligned thresholds (relative to QPSK 3/4):");
    for (r, paper_ge2) in json.iter().zip([-7.0, 3.0, 5.0, 8.0]) {
        println!(
            "  {:<10}  ours {:>5.1} dB   paper {:>5.1} dB",
            r.modcod,
            r.crossover_db - ours0,
            paper_ge2 - paper0
        );
    }
    save_json("table1_transitions", &json);
}
