//! Figure 11 — dense deployment: 3 contending APs, four 20 MHz channels.
//!
//! Paper: AP 1 serves a good client; APs 2 and 3 have poor clients. "With
//! 4 channels, only one AP can use CB to achieve complete isolation. ...
//! ACORN identifies this AP and provides the highest throughput ... an
//! almost 2x improvement over the scheme that aggressively allows CB
//! operations at every AP."
//!
//! We enumerate the paper's four width combinations (40,40,40 /
//! 40,20,20 / 20,40,20 / 20,20,40), score each with the least-overlap
//! channel choice for its widths, then run ACORN's allocator and confirm
//! it lands on the best one.

use acorn_bench::{header, mbps, print_table, save_json};
use acorn_core::allocation::{allocate_with_restarts, AllocationConfig};
use acorn_core::controller::{AcornConfig, AcornController};
use acorn_core::model::ThroughputModel;
use acorn_phy::ChannelWidth;
use acorn_sim::runner::evaluate_analytic;
use acorn_sim::scenario::fig11;
use acorn_sim::traffic::Traffic;
use acorn_topology::{ApId, Channel20, ChannelAssignment, ChannelPlan, ClientId};
use serde::Serialize;

#[derive(Serialize)]
struct Combo {
    widths: String,
    total_bps: f64,
}

#[derive(Serialize)]
struct Fig11 {
    combos: Vec<Combo>,
    acorn_total_bps: f64,
    acorn_widths: String,
    gain_over_all40: f64,
}

fn single(c: u8) -> ChannelAssignment {
    ChannelAssignment::Single(Channel20(c))
}

fn bonded(c: u8) -> ChannelAssignment {
    ChannelAssignment::bonded(Channel20(c)).unwrap()
}

fn main() {
    header("Figure 11: 3 contending APs, 4 channels");
    let wlan = fig11();
    let ctl = AcornController::new(AcornConfig {
        plan: ChannelPlan::restricted(4),
        ..AcornConfig::default()
    });
    // Natural association: each AP has exactly one in-range client.
    let mut state = ctl.new_state(&wlan, 1);
    for c in 0..wlan.clients.len() {
        ctl.associate(&wlan, &mut state, ClientId(c));
    }
    assert_eq!(
        state.assoc,
        vec![Some(ApId(0)), Some(ApId(1)), Some(ApId(2))]
    );

    // The paper's four width combinations, with least-overlap channels.
    let combos: [(&str, Vec<ChannelAssignment>); 4] = [
        ("40,40,40", vec![bonded(0), bonded(2), bonded(0)]),
        ("40,20,20", vec![bonded(0), single(2), single(3)]),
        ("20,40,20", vec![single(2), bonded(0), single(3)]),
        ("20,20,40", vec![single(2), single(3), bonded(0)]),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, assignments) in &combos {
        let e = evaluate_analytic(
            &wlan,
            assignments,
            &state.assoc,
            &ctl.config.estimator,
            1500,
            Traffic::Udp,
        );
        rows.push(vec![label.to_string(), mbps(e.total_bps)]);
        out.push(Combo {
            widths: label.to_string(),
            total_bps: e.total_bps,
        });
    }
    print_table(&["widths (AP1,AP2,AP3)", "total (Mb/s)"], &rows);

    // ACORN's own allocation.
    let model = ctl.build_model(&wlan, &state);
    let r = allocate_with_restarts(&model, &ctl.config.plan, &AllocationConfig::default(), 8, 5);
    let acorn_widths: Vec<&str> = r
        .assignments
        .iter()
        .map(|a| match a.width() {
            ChannelWidth::Ht40 => "40",
            ChannelWidth::Ht20 => "20",
        })
        .collect();
    let acorn_eval = evaluate_analytic(
        &wlan,
        &r.assignments,
        &state.assoc,
        &ctl.config.estimator,
        1500,
        Traffic::Udp,
    );
    // Consistency: the allocator's internal objective and the evaluator
    // agree (same model).
    assert!((model.total_bps(&r.assignments) - acorn_eval.total_bps).abs() < 1.0);

    println!();
    println!(
        "ACORN allocation: widths ({}) → {} Mb/s",
        acorn_widths.join(","),
        mbps(acorn_eval.total_bps)
    );
    let all40 = out[0].total_bps;
    let best = out.iter().map(|c| c.total_bps).fold(0.0f64, f64::max);
    println!(
        "gain over aggressive all-40: {:.2}x (paper: ~2x); best combo: {}",
        acorn_eval.total_bps / all40,
        mbps(best)
    );
    assert!(
        acorn_eval.total_bps + 1.0 >= best,
        "ACORN must find the best combo"
    );

    save_json(
        "fig11_interference",
        &Fig11 {
            combos: out,
            acorn_total_bps: acorn_eval.total_bps,
            acorn_widths: acorn_widths.join(","),
            gain_over_all40: acorn_eval.total_bps / all40,
        },
    );
}
