//! Figure 6 — (a) application-layer throughput 40 vs 20 MHz with rate
//! control for UDP and TCP, over the 24-link corpus; (b) optimal MCS at
//! 40 MHz vs at 20 MHz.
//!
//! Paper findings to reproduce:
//! * ~20 % of trials do better on 20 MHz, clustered at low throughput
//!   (SNR < ~6 dB); ~30 % for TCP vs ~10 % for UDP.
//! * The vast majority of points lie right of the y = 2x line (CB never
//!   doubles throughput).
//! * The optimal 40 MHz MCS is almost always ≤ the optimal 20 MHz MCS.

use acorn_bench::{header, mbps, print_table, save_json};
use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::ChannelWidth;
use acorn_sim::traffic::{cell_goodput_bps, Traffic};
use acorn_topology::corpus::{testbed_links, MAX_TX_DBM};
use serde::Serialize;

#[derive(Serialize)]
struct LinkPoint {
    link: usize,
    snr20_db: f64,
    udp20_bps: f64,
    udp40_bps: f64,
    tcp20_bps: f64,
    tcp40_bps: f64,
    mcs20: u8,
    mcs40: u8,
}

#[derive(Serialize)]
struct Fig06 {
    points: Vec<LinkPoint>,
    udp_prefer20_fraction: f64,
    tcp_prefer20_fraction: f64,
    udp_points_below_2x: f64,
}

fn goodput(est: &LinkQualityEstimator, snr20: f64, width: ChannelWidth, traffic: Traffic) -> f64 {
    let e = est.estimate(snr20, ChannelWidth::Ht20);
    let p = e.rate_point(width);
    let link = ClientLink {
        rate_bps: p.mcs.mcs().rate_bps(width, est.gi),
        per: p.per,
    };
    let airtime = CellAirtime::new(&[link], 1500);
    cell_goodput_bps(&airtime, &[link], 1.0, traffic)
}

fn main() {
    header("Figure 6(a): 40 vs 20 MHz throughput with rate control");
    let est = LinkQualityEstimator::default();
    let links = testbed_links();
    let mut points = Vec::new();
    let mut rows = Vec::new();
    let (mut udp20wins, mut tcp20wins, mut below2x) = (0usize, 0usize, 0usize);
    for l in &links {
        let snr20 = l.snr_db(MAX_TX_DBM, ChannelWidth::Ht20);
        let udp20 = goodput(&est, snr20, ChannelWidth::Ht20, Traffic::Udp);
        let udp40 = goodput(&est, snr20, ChannelWidth::Ht40, Traffic::Udp);
        let tcp20 = goodput(&est, snr20, ChannelWidth::Ht20, Traffic::tcp_default());
        let tcp40 = goodput(&est, snr20, ChannelWidth::Ht40, Traffic::tcp_default());
        let e = est.estimate(snr20, ChannelWidth::Ht20);
        if udp20 > udp40 {
            udp20wins += 1;
        }
        if tcp20 > tcp40 {
            tcp20wins += 1;
        }
        if udp40 < 2.0 * udp20 {
            below2x += 1;
        }
        rows.push(vec![
            format!("{}", l.id),
            format!("{snr20:.1}"),
            mbps(udp20),
            mbps(udp40),
            mbps(tcp20),
            mbps(tcp40),
            format!("{}", e.best20.mcs.value()),
            format!("{}", e.best40.mcs.value()),
        ]);
        points.push(LinkPoint {
            link: l.id,
            snr20_db: snr20,
            udp20_bps: udp20,
            udp40_bps: udp40,
            tcp20_bps: tcp20,
            tcp40_bps: tcp40,
            mcs20: e.best20.mcs.value(),
            mcs40: e.best40.mcs.value(),
        });
    }
    print_table(
        &[
            "link", "SNR20", "UDP 20", "UDP 40", "TCP 20", "TCP 40", "MCS20", "MCS40",
        ],
        &rows,
    );
    let n = links.len() as f64;
    println!();
    println!(
        "UDP trials preferring 20 MHz: {:.0}% (paper ~10%)",
        100.0 * udp20wins as f64 / n
    );
    println!(
        "TCP trials preferring 20 MHz: {:.0}% (paper ~30%)",
        100.0 * tcp20wins as f64 / n
    );
    println!(
        "UDP points right of y=2x (CB gain < 2x): {:.0}% (paper: vast majority)",
        100.0 * below2x as f64 / n
    );

    header("Figure 6(b): optimal MCS with 40 MHz vs 20 MHz");
    let le = points.iter().filter(|p| p.mcs40 % 8 <= p.mcs20 % 8).count();
    println!(
        "links where optimal 40 MHz MCS (mod order) <= 20 MHz MCS: {}/{}",
        le,
        points.len()
    );
    println!("paper: the 40 MHz optimum is almost always less aggressive");

    save_json(
        "fig06_throughput",
        &Fig06 {
            udp_prefer20_fraction: udp20wins as f64 / n,
            tcp_prefer20_fraction: tcp20wins as f64 / n,
            udp_points_below_2x: below2x as f64 / n,
            points,
        },
    );
}
