//! # acorn-bench — experiment binaries and criterion benches
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). Every binary prints the paper-style rows/series to stdout and
//! writes a JSON record under `results/` so EXPERIMENTS.md can cite exact
//! numbers.
//!
//! Run them all with:
//!
//! ```text
//! for b in fig01_psd fig02_constellation fig03_ber fig04_per fig05_sigma \
//!          table1_transitions fig06_throughput fig08_channels \
//!          fig09_durations fig10_topologies fig11_interference \
//!          table3_random fig13_mobility fig14_approx; do
//!     cargo run --release -p acorn-bench --bin $b
//! done
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_counter;
pub mod baseline_frame;

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Directory experiment outputs are written to (repo-relative), override
/// with `ACORN_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ACORN_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Serializes an experiment record to `results/<name>.json` (best-effort:
/// failures are reported but not fatal, so binaries still print their
/// tables on read-only filesystems).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats a throughput in Mbit/s with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// A generic (x, series…) row dump: prints a column-aligned table.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&columns.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_formatting() {
        assert_eq!(mbps(65.0e6), "65.00");
        assert_eq!(mbps(1.5e6), "1.50");
    }

    #[test]
    fn results_dir_has_a_default() {
        assert!(!results_dir().as_os_str().is_empty());
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["22".into(), "333".into(), "x".into()],
            ],
        );
    }
}
