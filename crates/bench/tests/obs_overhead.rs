//! The disabled-observability overhead gate.
//!
//! The observability layer's core promise is that a [`NullSink`] costs
//! nothing: the baseband packet path must stay zero-allocation once the
//! workspace is warm, whether instrumented or not, and the instrumented
//! path must produce bit-identical outcomes. This test runs under the
//! counting global allocator `acorn-bench` installs, so the claim is
//! measured rather than asserted on faith. `scripts/ci.sh` runs it as the
//! overhead gate.

use acorn_baseband::{mix_seed, FrameConfig, FrameWorkspace};
use acorn_bench::alloc_counter::allocations_during;
use acorn_obs::{NullSink, RecordingSink, Sink};
use acorn_phy::ChannelWidth;

fn warm_config() -> FrameConfig {
    let mut cfg = FrameConfig::baseline(ChannelWidth::Ht20);
    cfg.packet_bytes = 200;
    cfg
}

#[test]
fn null_sink_keeps_the_packet_path_allocation_free() {
    let cfg = warm_config();
    let mut ws = FrameWorkspace::new();
    // Warm-up: buffers grow to steady state on the first packets.
    for i in 0..4u64 {
        ws.run_packet_obs(&cfg, mix_seed(7, i), &NullSink).unwrap();
    }
    let (allocs, _) = allocations_during(|| {
        for i in 4..20u64 {
            ws.run_packet_obs(&cfg, mix_seed(7, i), &NullSink).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "instrumented packet path must stay zero-alloc with NullSink"
    );
}

#[test]
fn plain_and_null_sink_paths_are_bit_identical() {
    let cfg = warm_config();
    let mut ws_plain = FrameWorkspace::new();
    let mut ws_obs = FrameWorkspace::new();
    for i in 0..8u64 {
        let seed = mix_seed(11, i);
        let a = ws_plain.run_packet(&cfg, seed).unwrap();
        let b = ws_obs.run_packet_obs(&cfg, seed, &NullSink).unwrap();
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.bit_errors, b.bit_errors);
        assert_eq!(a.sync_failed, b.sync_failed);
        assert_eq!(a.tx_power.to_bits(), b.tx_power.to_bits());
        assert_eq!(a.evm_sum.to_bits(), b.evm_sum.to_bits());
        assert_eq!(a.evm_n, b.evm_n);
    }
}

#[test]
fn batched_null_sink_path_is_allocation_free() {
    let cfg = warm_config();
    let mut ws = FrameWorkspace::new();
    let seeds: Vec<u64> = (0..16u64).map(|i| mix_seed(7, i)).collect();
    let mut outcomes = Vec::new();
    // Warm-up grows the outcome vector and workspace buffers.
    ws.run_packets_obs(&cfg, &seeds, &mut outcomes, &NullSink)
        .unwrap();
    let (allocs, _) = allocations_during(|| {
        ws.run_packets_obs(&cfg, &seeds, &mut outcomes, &NullSink)
            .unwrap();
    });
    assert_eq!(
        allocs, 0,
        "batched instrumented path must stay zero-alloc with NullSink"
    );
}

#[test]
fn batched_and_per_packet_paths_are_bit_identical() {
    let cfg = warm_config();
    let mut ws_seq = FrameWorkspace::new();
    let mut ws_batch = FrameWorkspace::new();
    let seeds: Vec<u64> = (0..12u64).map(|i| mix_seed(11, i)).collect();
    let mut outcomes = Vec::new();
    ws_batch.run_packets(&cfg, &seeds, &mut outcomes).unwrap();
    assert_eq!(outcomes.len(), seeds.len());
    for (&seed, b) in seeds.iter().zip(outcomes.iter()) {
        let a = ws_seq.run_packet(&cfg, seed).unwrap();
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.bit_errors, b.bit_errors);
        assert_eq!(a.sync_failed, b.sync_failed);
        assert_eq!(a.tx_power.to_bits(), b.tx_power.to_bits());
        assert_eq!(a.evm_sum.to_bits(), b.evm_sum.to_bits());
        assert_eq!(a.evm_n, b.evm_n);
    }
}

#[test]
fn null_sink_spans_report_no_wall_time() {
    // The NullSink must never ask for wall-clock time: that is what makes
    // the disabled spans free and the deterministic contract trivial.
    assert!(!NullSink.enabled());
    assert!(!NullSink.wants_wall_time());
    // And the deterministic RecordingSink must not ask for it either.
    assert!(!RecordingSink::new().wants_wall_time());
    assert!(RecordingSink::with_wall_time().wants_wall_time());
}
