//! Empirical cumulative distribution functions.
//!
//! Fig. 9 of the paper is an ECDF of association durations; this module
//! provides the ECDF machinery used to regenerate it (and to summarize any
//! other experimental sample).

use std::fmt;

/// Why an [`Ecdf`] could not be built from a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdfError {
    /// The sample set was empty — an ECDF needs at least one sample.
    Empty,
    /// The sample set contained a NaN, which has no place in an ordering.
    Nan,
}

impl fmt::Display for EcdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdfError::Empty => write!(f, "ECDF needs at least one sample"),
            EcdfError::Nan => write!(f, "ECDF rejects NaN samples"),
        }
    }
}

impl std::error::Error for EcdfError {}

/// An empirical CDF over a sorted sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF. Empty sample sets and NaNs are rejected with a
    /// typed error instead of a panic, so callers feeding
    /// externally-derived samples (trace filters, telemetry series) can
    /// propagate the failure.
    pub fn new(mut samples: Vec<f64>) -> Result<Ecdf, EcdfError> {
        if samples.is_empty() {
            return Err(EcdfError::Empty);
        }
        if samples.iter().any(|s| s.is_nan()) {
            return Err(EcdfError::Nan);
        }
        // NaNs were rejected above, so total_cmp agrees with numeric order.
        samples.sort_by(|a, b| a.total_cmp(b));
        Ok(Ecdf { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)` — the fraction of samples ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point: first index with sample > x.
        let idx = self.sorted.partition_point(|s| *s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 * q).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest and largest samples.
    pub fn range(&self) -> (f64, f64) {
        (self.sorted[0], self.sorted[self.sorted.len() - 1])
    }

    /// Evaluates the ECDF on a grid of `n` evenly spaced points spanning
    /// the sample range — the series a CDF plot (like Fig. 9) draws.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two grid points");
        let (lo, hi) = self.range();
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(samples: Vec<f64>) -> Ecdf {
        Ecdf::new(samples).expect("valid sample set")
    }

    #[test]
    fn eval_known_points() {
        let e = ecdf(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = ecdf(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.median(), 30.0);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.21), 20.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let e = ecdf(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.range(), (1.0, 3.0));
        assert!((e.eval(1.5) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_spans_01() {
        let e = ecdf((1..=100).map(|i| i as f64).collect());
        let curve = e.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_is_an_error_not_a_panic() {
        assert_eq!(Ecdf::new(vec![]), Err(EcdfError::Empty));
    }

    #[test]
    fn nan_is_an_error_not_a_panic() {
        assert_eq!(Ecdf::new(vec![1.0, f64::NAN]), Err(EcdfError::Nan));
        // Infinities are orderable and stay accepted.
        assert!(Ecdf::new(vec![f64::INFINITY, 0.0]).is_ok());
    }

    #[test]
    fn errors_display() {
        assert!(EcdfError::Empty.to_string().contains("at least one"));
        assert!(EcdfError::Nan.to_string().contains("NaN"));
    }
}
