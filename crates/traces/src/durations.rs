//! Synthetic user-association durations (the CRAWDAD substitute).
//!
//! To pick the channel-allocation period T, the paper uses "data collected
//! from 206 different (commercial) APs, in a time period spanning more
//! than 3 years from the CRAWDAD repository" (the ile-sans-fil/wifidog
//! trace) and reports (Fig. 9): "More than 90% of the associations last
//! less than 40 minutes and the median is approximately 31 minutes",
//! with a tail extending to ~25000 s. "Based on these data, we run our
//! channel allocation algorithm every 30 minutes."
//!
//! We fit a mixture to those three statistics: a lognormal bulk (median
//! 1860 s, shape chosen so the bulk's 95th percentile sits at 2400 s) plus
//! a 5 % log-uniform heavy tail on [2400 s, 25000 s]. Only the quoted
//! statistics matter for the paper's conclusion (T = 30 min), and the
//! mixture reproduces them; see DESIGN.md's substitution table.

use rand::Rng;

/// Median association duration reported by the paper: ≈ 31 minutes.
pub const MEDIAN_S: f64 = 31.0 * 60.0;
/// The "90 % below" point: 40 minutes.
pub const P90_S: f64 = 40.0 * 60.0;
/// Longest association in the paper's Fig. 9 x-range.
pub const MAX_S: f64 = 25_000.0;

/// The fitted association-duration distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssociationDurations {
    /// Median of the lognormal bulk (seconds).
    pub bulk_median_s: f64,
    /// Lognormal shape (σ of the underlying normal).
    pub bulk_sigma: f64,
    /// Probability mass of the heavy tail.
    pub tail_mass: f64,
    /// Tail support: log-uniform on `[tail_min_s, tail_max_s]`.
    pub tail_min_s: f64,
    /// Upper end of the tail support.
    pub tail_max_s: f64,
}

impl Default for AssociationDurations {
    fn default() -> Self {
        AssociationDurations {
            bulk_median_s: 1840.0,
            bulk_sigma: 0.16,
            tail_mass: 0.045,
            tail_min_s: P90_S,
            tail_max_s: MAX_S,
        }
    }
}

impl AssociationDurations {
    /// Draws one association duration in seconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen_bool(self.tail_mass) {
            // Log-uniform tail.
            let lo = self.tail_min_s.ln();
            let hi = self.tail_max_s.ln();
            (lo + rng.gen_range(0.0..1.0) * (hi - lo)).exp()
        } else {
            // Lognormal bulk via Box–Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.bulk_median_s * (self.bulk_sigma * z).exp()
        }
    }

    /// Draws `n` durations.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The re-allocation period the paper derives from the trace: 30 minutes.
pub const REALLOCATION_PERIOD_S: f64 = 30.0 * 60.0;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big_sample() -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(9);
        AssociationDurations::default().sample_n(&mut rng, 100_000)
    }

    fn quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }

    #[test]
    fn median_is_about_31_minutes() {
        let mut s = big_sample();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = quantile(&s, 0.5);
        assert!(
            (med - MEDIAN_S).abs() < 90.0,
            "median {med} s vs paper {MEDIAN_S} s"
        );
    }

    #[test]
    fn ninety_percent_below_40_minutes() {
        let s = big_sample();
        let frac = s.iter().filter(|d| **d < P90_S).count() as f64 / s.len() as f64;
        assert!(frac >= 0.88 && frac <= 0.95, "P(<40 min) = {frac}");
    }

    #[test]
    fn tail_reaches_but_respects_the_max() {
        let s = big_sample();
        let max = s.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 10_000.0, "tail too short: max {max}");
        assert!(max <= MAX_S * 1.001, "tail exceeds the trace range: {max}");
    }

    #[test]
    fn durations_are_positive() {
        assert!(big_sample().iter().all(|d| *d > 0.0));
    }

    #[test]
    fn reallocation_period_matches_paper() {
        assert_eq!(REALLOCATION_PERIOD_S, 1800.0);
        // The derivation: T sits between the median and the 90 % point.
        assert!(REALLOCATION_PERIOD_S >= MEDIAN_S * 0.9);
        assert!(REALLOCATION_PERIOD_S <= P90_S);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let m = AssociationDurations::default();
        assert_eq!(m.sample_n(&mut a, 100), m.sample_n(&mut b, 100));
    }
}
