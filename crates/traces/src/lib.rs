//! # acorn-traces — workload traces: association durations, ECDFs and
//! client arrivals
//!
//! The CRAWDAD ile-sans-fil trace the paper uses to size its
//! re-allocation period (Fig. 9) is proprietary-ish and large; this crate
//! substitutes a distribution fit to the paper's reported statistics
//! (median ≈ 31 min, > 90 % below 40 min, tail to 25 000 s) plus the
//! supporting machinery: ECDF computation and Poisson session workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod durations;
pub mod ecdf;

pub use arrivals::{Session, SessionGenerator};
pub use durations::{AssociationDurations, REALLOCATION_PERIOD_S};
pub use ecdf::{Ecdf, EcdfError};
