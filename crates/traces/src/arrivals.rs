//! Client arrival / session workload generation.
//!
//! The paper's evaluation activates clients "randomly ... one by one"
//! (§5.2) and sizes the re-allocation period from association-session
//! statistics. This module provides the session workload: Poisson arrivals
//! with durations drawn from [`crate::durations::AssociationDurations`].

use crate::durations::AssociationDurations;
use rand::Rng;

/// One client session: a client appears, stays associated for `duration_s`
/// and leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Session {
    /// Client identifier (dense, starting at 0).
    pub client: usize,
    /// Arrival time, seconds from trace start.
    pub start_s: f64,
    /// Association duration, seconds.
    pub duration_s: f64,
}

impl Session {
    /// Departure time.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Whether the session is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s()
    }
}

/// Poisson session generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionGenerator {
    /// Mean arrival rate, clients per second.
    pub arrival_rate_per_s: f64,
    /// Duration model.
    pub durations: AssociationDurations,
}

impl SessionGenerator {
    /// A generator with one arrival per 5 minutes and the default
    /// (CRAWDAD-fit) duration model.
    pub fn enterprise_default() -> SessionGenerator {
        SessionGenerator {
            arrival_rate_per_s: 1.0 / 300.0,
            durations: AssociationDurations::default(),
        }
    }

    /// Generates all sessions starting inside `[0, horizon_s)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon_s: f64) -> Vec<Session> {
        assert!(
            self.arrival_rate_per_s > 0.0,
            "arrival rate must be positive"
        );
        let mut sessions = Vec::new();
        let mut t = 0.0;
        let mut id = 0usize;
        loop {
            // Exponential inter-arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / self.arrival_rate_per_s;
            if t >= horizon_s {
                break;
            }
            sessions.push(Session {
                client: id,
                start_s: t,
                duration_s: self.durations.sample(rng),
            });
            id += 1;
        }
        sessions
    }

    /// Number of sessions active at time `t` in a generated trace.
    pub fn active_count(sessions: &[Session], t: f64) -> usize {
        sessions.iter().filter(|s| s.active_at(t)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrival_count_matches_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = SessionGenerator {
            arrival_rate_per_s: 0.1,
            durations: AssociationDurations::default(),
        };
        let horizon = 100_000.0;
        let sessions = g.generate(&mut rng, horizon);
        let expected = 0.1 * horizon;
        let got = sessions.len() as f64;
        assert!((got - expected).abs() / expected < 0.05, "got {got}");
    }

    #[test]
    fn sessions_are_time_ordered_with_dense_ids() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = SessionGenerator::enterprise_default();
        let sessions = g.generate(&mut rng, 50_000.0);
        for (i, w) in sessions.windows(2).enumerate() {
            assert!(w[1].start_s >= w[0].start_s, "order at {i}");
        }
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(s.client, i);
        }
    }

    #[test]
    fn active_at_boundaries() {
        let s = Session {
            client: 0,
            start_s: 100.0,
            duration_s: 50.0,
        };
        assert!(!s.active_at(99.9));
        assert!(s.active_at(100.0));
        assert!(s.active_at(149.9));
        assert!(!s.active_at(150.0));
        assert_eq!(s.end_s(), 150.0);
    }

    #[test]
    fn steady_state_occupancy_is_littles_law() {
        // E[active] = λ·E[duration]. With λ = 1/300 s⁻¹ and mean duration
        // ≈ 1900–2100 s (lognormal mean > median), expect ≈ 6–7 actives.
        let mut rng = StdRng::seed_from_u64(13);
        let g = SessionGenerator::enterprise_default();
        let sessions = g.generate(&mut rng, 400_000.0);
        let mut acc = 0.0;
        let mut n = 0;
        let mut t = 50_000.0;
        while t < 350_000.0 {
            acc += SessionGenerator::active_count(&sessions, t) as f64;
            n += 1;
            t += 1000.0;
        }
        let mean_active = acc / n as f64;
        assert!(
            mean_active > 4.0 && mean_active < 10.0,
            "mean active {mean_active}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        SessionGenerator {
            arrival_rate_per_s: 0.0,
            durations: AssociationDurations::default(),
        }
        .generate(&mut rng, 10.0);
    }
}
