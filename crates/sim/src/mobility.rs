//! Pedestrian-mobility experiments (Figs. 12–13).
//!
//! The paper walks a laptop along a corridor while one AP serves it plus
//! two static clients, comparing ACORN's opportunistic width adaptation
//! against fixed 40 MHz (outbound walk) and fixed 20 MHz (inbound walk).
//! ACORN "uses the 40 MHz channel ... until the point where the link
//! quality becomes poor for the mobile laptop ... \[then\] falls back to the
//! 20 MHz mode and is able to sustain a cell throughput that is almost ten
//! times that of a fixed 40 MHz channel."

use acorn_events::{Ctx, Process, Simulation};
use acorn_mac::airtime::CellAirtime;
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ClientId, Point, Wlan};

// The trajectory type moved to `acorn_topology::geom` (it is pure
// geometry, shared with the event runtime's `MobilityProcess`); the
// re-export keeps this module's historical API.
pub use acorn_topology::Trajectory;

/// Width policy under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WidthPolicy {
    /// Fixed channel width for the whole run.
    Fixed(ChannelWidth),
    /// ACORN's opportunistic adaptation: each sample, the AP operates at
    /// whichever width its current client SNRs predict more cell
    /// throughput for (the §5.2 fallback logic).
    AcornAdaptive,
}

/// One sample of the mobility time trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilitySample {
    /// Time since walk start (s).
    pub t_s: f64,
    /// Width in use at this sample.
    pub width: ChannelWidth,
    /// Aggregate cell throughput (bits/s).
    pub cell_bps: f64,
    /// The mobile client's HT20 SNR at this sample (dB).
    pub mobile_snr20_db: f64,
}

/// The single-cell mobility experiment: `wlan` must contain exactly one
/// AP; `mobile` identifies which client walks.
#[derive(Debug, Clone)]
pub struct MobilityExperiment {
    /// The deployment (one AP, static clients + the mobile one).
    pub wlan: Wlan,
    /// Index of the mobile client.
    pub mobile: ClientId,
    /// Its walk.
    pub trajectory: Trajectory,
    /// Sampling period (s).
    pub sample_period_s: f64,
    /// Estimator used by the AP.
    pub estimator: LinkQualityEstimator,
    /// Payload size (bytes).
    pub payload_bytes: u32,
}

impl MobilityExperiment {
    /// Cell throughput at a width given current client positions.
    fn cell_bps(&self, wlan: &Wlan, width: ChannelWidth) -> f64 {
        let ap = ApId(0);
        let links: Vec<_> = (0..wlan.clients.len())
            .map(|c| {
                let snr20 = wlan.snr_db(ap, ClientId(c), ChannelWidth::Ht20);
                let est = self.estimator.estimate(snr20, ChannelWidth::Ht20);
                let p = est.rate_point(width);
                acorn_mac::airtime::ClientLink {
                    rate_bps: p.mcs.mcs().rate_bps(width, self.estimator.gi),
                    per: p.per,
                }
            })
            .collect();
        CellAirtime::new(&links, self.payload_bytes).cell_throughput_bps(1.0)
    }

    /// Runs the walk under a policy, returning the Fig. 13 time trace.
    ///
    /// Since the event-runtime port this is a kernel scenario: the walk
    /// is a single self-scheduling [`Process`] over a `(Wlan, samples)`
    /// world. Sample times accumulate exactly as the old fixed-step loop
    /// did (`t + period`, from the previous *scheduled* time), so traces
    /// are bit-identical to the pre-kernel implementation.
    pub fn run(&self, policy: WidthPolicy) -> Vec<MobilitySample> {
        assert_eq!(self.wlan.aps.len(), 1, "mobility experiment is single-cell");
        struct WalkWorld {
            wlan: Wlan,
            samples: Vec<MobilitySample>,
        }
        struct WalkProcess {
            exp: MobilityExperiment,
            policy: WidthPolicy,
            horizon_s: f64,
        }
        impl Process<WalkWorld, ()> for WalkProcess {
            fn start(&mut self, ctx: &mut Ctx<'_, WalkWorld, ()>) {
                ctx.schedule_at(0.0, ());
            }
            fn handle(&mut self, _e: &(), ctx: &mut Ctx<'_, WalkWorld, ()>) {
                let t = ctx.now();
                let w = &mut *ctx.world;
                w.wlan.clients[self.exp.mobile.0].pos = self.exp.trajectory.position_at(t);
                let width = match self.policy {
                    WidthPolicy::Fixed(wd) => wd,
                    WidthPolicy::AcornAdaptive => {
                        if self.exp.cell_bps(&w.wlan, ChannelWidth::Ht40)
                            >= self.exp.cell_bps(&w.wlan, ChannelWidth::Ht20)
                        {
                            ChannelWidth::Ht40
                        } else {
                            ChannelWidth::Ht20
                        }
                    }
                };
                let sample = MobilitySample {
                    t_s: t,
                    width,
                    cell_bps: self.exp.cell_bps(&w.wlan, width),
                    mobile_snr20_db: w.wlan.snr_db(ApId(0), self.exp.mobile, ChannelWidth::Ht20),
                };
                w.samples.push(sample);
                ctx.telemetry
                    .record("mobility.cell_bps", t, sample.cell_bps);
                let next = t + self.exp.sample_period_s;
                if next <= self.horizon_s {
                    ctx.schedule_at(next, ());
                }
            }
        }
        let horizon = self.trajectory.duration_s() + 5.0;
        let mut sim: Simulation<WalkWorld, ()> = Simulation::new(WalkWorld {
            wlan: self.wlan.clone(),
            samples: Vec::new(),
        });
        sim.add_process(Box::new(WalkProcess {
            exp: self.clone(),
            policy,
            horizon_s: horizon,
        }));
        sim.run_to_completion();
        sim.world.samples
    }
}

/// Builds the paper's mobility setup: one AP, two static good clients,
/// and a mobile client that walks between `near` and `far` distances from
/// the AP (`outbound` chooses the direction).
pub fn paper_walk(outbound: bool) -> MobilityExperiment {
    use crate::scenario::distance_for_snr20;
    use acorn_topology::pathloss::LogDistance;
    use acorn_topology::wlan::RadioParams;
    let radio = RadioParams::default();
    let pl = LogDistance::indoor_5ghz(0);
    let d_good = distance_for_snr20(&radio, &pl, crate::scenario::GOOD_SNR_DB);
    // Walk from very strong (35 dB) to the CB-collapse regime (0 dB),
    // where a 20 MHz channel still delivers but the bonded channel is
    // nearly dead — the paper's "hardly able to communicate" endpoint.
    let d_near = distance_for_snr20(&radio, &pl, 35.0);
    let d_far = distance_for_snr20(&radio, &pl, 1.54);
    let (from, to) = if outbound {
        (Point::new(d_near, 0.0), Point::new(d_far, 0.0))
    } else {
        (Point::new(d_far, 0.0), Point::new(d_near, 0.0))
    };
    let mut wlan = Wlan::new(
        vec![Point::new(0.0, 0.0)],
        vec![
            Point::new(0.0, d_good),
            Point::new(0.0, -d_good),
            from, // the mobile client starts here
        ],
        9,
    );
    wlan.pathloss.shadowing_sigma_db = 0.0;
    MobilityExperiment {
        wlan,
        mobile: ClientId(2),
        trajectory: Trajectory {
            from,
            to,
            speed_mps: (from.distance(&to) / 45.0).max(0.5), // ~45 s walk, as in Fig. 13
        },
        sample_period_s: 1.0,
        estimator: LinkQualityEstimator::default(),
        payload_bytes: 1500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbound_walk_acorn_switches_40_to_20() {
        // Fig. 13a: ACORN starts at 40 MHz, falls back to 20 MHz when the
        // mobile link degrades.
        let exp = paper_walk(true);
        let trace = exp.run(WidthPolicy::AcornAdaptive);
        assert_eq!(trace.first().unwrap().width, ChannelWidth::Ht40);
        assert_eq!(trace.last().unwrap().width, ChannelWidth::Ht20);
        // Exactly one switch (monotone degradation).
        let switches = trace
            .windows(2)
            .filter(|w| w[0].width != w[1].width)
            .count();
        assert_eq!(switches, 1, "trace should switch once");
    }

    #[test]
    fn outbound_acorn_crushes_fixed_40_at_the_end() {
        // "almost ten times that of a fixed 40 MHz channel" at the far end.
        let exp = paper_walk(true);
        let acorn = exp.run(WidthPolicy::AcornAdaptive);
        let fixed40 = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht40));
        let last_acorn = acorn.last().unwrap().cell_bps;
        let last_fixed = fixed40.last().unwrap().cell_bps;
        assert!(
            last_acorn > 5.0 * last_fixed,
            "acorn {last_acorn:.3e} vs fixed-40 {last_fixed:.3e}"
        );
    }

    #[test]
    fn inbound_walk_acorn_switches_20_to_40_and_beats_fixed_20() {
        // Fig. 13b: ACORN starts at 20 MHz, switches to 40 MHz as the link
        // improves, and ends above the fixed-20 trace.
        let exp = paper_walk(false);
        let acorn = exp.run(WidthPolicy::AcornAdaptive);
        assert_eq!(acorn.first().unwrap().width, ChannelWidth::Ht20);
        assert_eq!(acorn.last().unwrap().width, ChannelWidth::Ht40);
        let fixed20 = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht20));
        assert!(acorn.last().unwrap().cell_bps > 1.2 * fixed20.last().unwrap().cell_bps);
    }

    #[test]
    fn adaptive_never_below_both_fixed_policies() {
        let exp = paper_walk(true);
        let acorn = exp.run(WidthPolicy::AcornAdaptive);
        let f20 = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht20));
        let f40 = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht40));
        for ((a, x), y) in acorn.iter().zip(&f20).zip(&f40) {
            assert!(
                a.cell_bps + 1.0 >= x.cell_bps.min(y.cell_bps),
                "t={}: adaptive {:.3e} below both fixed",
                a.t_s,
                a.cell_bps
            );
            assert!(a.cell_bps + 1.0 >= x.cell_bps.max(y.cell_bps).min(a.cell_bps + 1.0));
        }
        // Stronger: adaptive equals the max of the two at every sample.
        for ((a, x), y) in acorn.iter().zip(&f20).zip(&f40) {
            let best = x.cell_bps.max(y.cell_bps);
            assert!((a.cell_bps - best).abs() < 1e-6 * best.max(1.0));
        }
    }

    #[test]
    fn snr_trace_is_monotone_outbound() {
        let exp = paper_walk(true);
        let trace = exp.run(WidthPolicy::Fixed(ChannelWidth::Ht20));
        for w in trace.windows(2) {
            assert!(w[1].mobile_snr20_db <= w[0].mobile_snr20_db + 1e-9);
        }
    }
}
