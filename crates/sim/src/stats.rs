//! Experiment statistics: summary measures, confidence intervals, linear
//! regression and the coefficient of determination.
//!
//! The paper validates its measured BER curves against theory with "the
//! coefficient of determination \[23\] ... 0.8 and 0.89 for 20 and 40 MHz"
//! — [`r_squared`] reproduces that check for our Monte-Carlo curves.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator). Returns 0 for fewer than
/// two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Half-width of the ~95 % confidence interval on the mean
/// (1.96·σ/√n; normal approximation).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Coefficient of determination of `predicted` against `observed`:
/// `R² = 1 − SS_res / SS_tot`. 1.0 is a perfect fit; values can go
/// negative for fits worse than the observed mean.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len(), "length mismatch");
    assert!(!observed.is_empty(), "empty sample");
    let m = mean(observed);
    let ss_tot: f64 = observed.iter().map(|y| (y - m).powi(2)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(y, f)| (y - f).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Ordinary least-squares line fit: returns `(slope, intercept)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "degenerate x values");
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Geometric mean of strictly positive values (useful for summarizing
/// throughput ratios/gains).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "empty sample");
    assert!(xs.iter().all(|x| *x > 0.0), "values must be positive");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.138).abs() < 0.001);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn ci_narrows_with_samples() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(ci95_half_width(&large) < ci95_half_width(&small));
    }

    #[test]
    fn r_squared_perfect_and_mean_fits() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r_squared(&obs, &obs), 1.0);
        let mean_fit = [2.5; 4];
        assert!((r_squared(&obs, &mean_fit) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_detects_good_fit() {
        let obs = [1.0, 2.1, 2.9, 4.2];
        let pred = [1.0, 2.0, 3.0, 4.0];
        assert!(r_squared(&obs, &pred) > 0.98);
    }

    #[test]
    fn linear_fit_recovers_a_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b + 7.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn r_squared_length_mismatch_panics() {
        r_squared(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
