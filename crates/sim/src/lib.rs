//! # acorn-sim — the evaluation harness
//!
//! Everything §5.2's testbed experiments need, in software:
//!
//! * [`stats`] — means, confidence intervals, linear fits, and the R²
//!   check the paper uses to validate BER curves against theory.
//! * [`traffic`] — saturated UDP and loss-sensitive TCP (Mathis-capped on
//!   residual loss) traffic models.
//! * [`scenario`] — the paper's scripted topologies (Figs. 10–11), the
//!   mobility corridor, and randomized enterprise-floor deployments.
//! * [`runner`] — scores (channels, association) configurations per-AP
//!   and network-wide, analytically or via the slot-level DCF simulator.
//! * [`mobility`] — the Fig. 12/13 pedestrian walks with fixed-width vs
//!   ACORN-adaptive policies.
//! * [`churn`] — the closed loop: session arrivals/departures driving
//!   Algorithm 1 with periodic Algorithm 2 re-allocation every T.
//! * [`interference`] — SINR-aware evaluation with far-field (hidden)
//!   co-spectrum interferers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod interference;
pub mod mobility;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod traffic;

pub use churn::{run_churn, ChurnConfig, ChurnReport, Snapshot};
pub use interference::evaluate_analytic_sinr;
pub use mobility::{paper_walk, MobilityExperiment, MobilitySample, Trajectory, WidthPolicy};
pub use runner::{evaluate_analytic, evaluate_dcf, Evaluation};
pub use scenario::{city_grid, enterprise_grid, fig11, topology1, topology2, zoned_city};
pub use traffic::Traffic;
