//! Closed-loop churn simulation: session arrivals/departures driving
//! Algorithm 1, with periodic Algorithm 2 re-allocation every `T` seconds
//! — the operating regime the paper designs for ("we run our channel
//! allocation algorithm every 30 minutes", §4.2).

use acorn_core::{AcornController, NetworkState};
use acorn_topology::{ClientId, Wlan};
use acorn_traces::Session;

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Simulated horizon (s).
    pub horizon_s: f64,
    /// Re-allocation period `T` (s); the paper's value is 1800.
    pub reallocation_period_s: f64,
    /// Random restarts per re-allocation.
    pub restarts: usize,
    /// Run the opportunistic width adaptation after every event.
    pub adapt_widths: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            horizon_s: 4.0 * 3600.0,
            reallocation_period_s: acorn_traces::REALLOCATION_PERIOD_S,
            restarts: 4,
            adapt_widths: false,
        }
    }
}

/// One re-allocation snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Simulation time (s).
    pub t_s: f64,
    /// Clients associated at this instant.
    pub active_clients: usize,
    /// Predicted network throughput before re-allocation (bits/s).
    pub before_bps: f64,
    /// Predicted network throughput after re-allocation (bits/s).
    pub after_bps: f64,
    /// Channel switches the re-allocation performed.
    pub switches: usize,
}

/// Result of a churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// One entry per re-allocation epoch.
    pub snapshots: Vec<Snapshot>,
    /// The final network state.
    pub final_state: NetworkState,
}

impl ChurnReport {
    /// Time-averaged post-re-allocation throughput (bits/s).
    pub fn mean_after_bps(&self) -> f64 {
        if self.snapshots.is_empty() {
            0.0
        } else {
            self.snapshots.iter().map(|s| s.after_bps).sum::<f64>() / self.snapshots.len() as f64
        }
    }

    /// Total channel switches across the run.
    pub fn total_switches(&self) -> usize {
        self.snapshots.iter().map(|s| s.switches).sum()
    }
}

/// Runs the closed loop. `wlan` must have at least one client slot per
/// session (`sessions[i].client` indexes `wlan.clients`).
pub fn run_churn(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    config: &ChurnConfig,
    seed: u64,
) -> ChurnReport {
    for s in sessions {
        assert!(
            s.client < wlan.clients.len(),
            "session client {} has no position in the deployment",
            s.client
        );
    }
    enum Ev {
        Arrive(usize),
        Depart(usize),
        Reallocate,
    }
    let mut events: Vec<(f64, Ev)> = Vec::new();
    for s in sessions {
        if s.start_s < config.horizon_s {
            events.push((s.start_s, Ev::Arrive(s.client)));
            events.push((s.end_s().min(config.horizon_s), Ev::Depart(s.client)));
        }
    }
    let mut t = config.reallocation_period_s;
    while t < config.horizon_s {
        events.push((t, Ev::Reallocate));
        t += config.reallocation_period_s;
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut state = ctl.new_state(wlan, seed);
    let mut snapshots = Vec::new();
    let mut realloc_seed = seed.wrapping_add(1);
    for (time, ev) in events {
        match ev {
            Ev::Arrive(c) => {
                ctl.associate(wlan, &mut state, ClientId(c));
                if config.adapt_widths {
                    ctl.adapt_widths(wlan, &mut state);
                }
            }
            Ev::Depart(c) => {
                ctl.deassociate(&mut state, ClientId(c));
                if config.adapt_widths {
                    ctl.adapt_widths(wlan, &mut state);
                }
            }
            Ev::Reallocate => {
                let before = ctl.total_throughput_bps(wlan, &state);
                let active = state.assoc.iter().filter(|a| a.is_some()).count();
                let r = ctl.reallocate_with_restarts(wlan, &mut state, config.restarts, realloc_seed);
                realloc_seed = realloc_seed.wrapping_add(1);
                if config.adapt_widths {
                    ctl.adapt_widths(wlan, &mut state);
                }
                snapshots.push(Snapshot {
                    t_s: time,
                    active_clients: active,
                    before_bps: before,
                    after_bps: r.total_bps,
                    switches: r.switches,
                });
            }
        }
    }
    ChurnReport {
        snapshots,
        final_state: state,
    }
}

/// Monte-Carlo over churn seeds: one independent [`run_churn`] per seed,
/// fanned out over the evaluation engine's thread pool. Each repetition
/// derives everything from its own seed, and results come back in seed
/// order — the batch is bit-identical to calling [`run_churn`] in a loop,
/// for any `ACORN_THREADS`.
pub fn run_churn_batch(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    config: &ChurnConfig,
    seeds: &[u64],
) -> Vec<ChurnReport> {
    acorn_core::par::par_map(seeds, |&seed| run_churn(wlan, ctl, sessions, config, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::enterprise_grid;
    use acorn_core::AcornConfig;
    use acorn_traces::SessionGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(horizon_s: f64) -> (Wlan, AcornController, Vec<Session>) {
        let mut rng = StdRng::seed_from_u64(1);
        let sessions = SessionGenerator::enterprise_default().generate(&mut rng, horizon_s);
        let wlan = enterprise_grid(2, 2, 50.0, sessions.len().max(1), 2);
        (wlan, AcornController::new(AcornConfig::default()), sessions)
    }

    #[test]
    fn snapshot_cadence_matches_the_period() {
        let (wlan, ctl, sessions) = setup(7200.0);
        let cfg = ChurnConfig {
            horizon_s: 7200.0,
            reallocation_period_s: 1800.0,
            restarts: 2,
            adapt_widths: false,
        };
        let report = run_churn(&wlan, &ctl, &sessions, &cfg, 3);
        assert_eq!(report.snapshots.len(), 3); // t = 1800, 3600, 5400
        for (i, s) in report.snapshots.iter().enumerate() {
            assert!((s.t_s - 1800.0 * (i + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn reallocation_never_reduces_predicted_throughput() {
        let (wlan, ctl, sessions) = setup(7200.0);
        let report = run_churn(
            &wlan,
            &ctl,
            &sessions,
            &ChurnConfig {
                horizon_s: 7200.0,
                ..ChurnConfig::default()
            },
            5,
        );
        for s in &report.snapshots {
            assert!(
                s.after_bps + 1.0 >= s.before_bps,
                "t={}: {} -> {}",
                s.t_s,
                s.before_bps,
                s.after_bps
            );
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (wlan, ctl, sessions) = setup(3600.0);
        let cfg = ChurnConfig {
            horizon_s: 3600.0,
            restarts: 2,
            ..ChurnConfig::default()
        };
        let a = run_churn(&wlan, &ctl, &sessions, &cfg, 9);
        let b = run_churn(&wlan, &ctl, &sessions, &cfg, 9);
        assert_eq!(a.snapshots, b.snapshots);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn all_sessions_eventually_depart() {
        let (wlan, ctl, sessions) = setup(3600.0);
        let report = run_churn(
            &wlan,
            &ctl,
            &sessions,
            &ChurnConfig {
                horizon_s: 1e9, // long enough for every session to end
                reallocation_period_s: 1e8,
                restarts: 1,
                adapt_widths: false,
            },
            11,
        );
        assert!(report.final_state.assoc.iter().all(|a| a.is_none()));
    }

    #[test]
    fn adaptation_keeps_operating_widths_legal() {
        let (wlan, ctl, sessions) = setup(3600.0);
        let report = run_churn(
            &wlan,
            &ctl,
            &sessions,
            &ChurnConfig {
                horizon_s: 3600.0,
                adapt_widths: true,
                restarts: 2,
                ..ChurnConfig::default()
            },
            13,
        );
        for (a, w) in report
            .final_state
            .assignments
            .iter()
            .zip(&report.final_state.operating_width)
        {
            // Operating width never exceeds the assigned width.
            assert!(
                *w == a.width() || *w == acorn_phy::ChannelWidth::Ht20,
                "{a:?} operating at {w:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no position")]
    fn oversized_session_index_panics() {
        let (wlan, ctl, _) = setup(100.0);
        let bogus = vec![Session {
            client: wlan.clients.len() + 5,
            start_s: 0.0,
            duration_s: 10.0,
        }];
        run_churn(&wlan, &ctl, &bogus, &ChurnConfig::default(), 1);
    }
}
