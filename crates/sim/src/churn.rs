//! Closed-loop churn simulation: session arrivals/departures driving
//! Algorithm 1, with periodic Algorithm 2 re-allocation every `T` seconds
//! — the operating regime the paper designs for ("we run our channel
//! allocation algorithm every 30 minutes", §4.2).
//!
//! Since the event-runtime port, this module is a thin adapter: the loop
//! itself is [`SessionProcess`] + [`ReallocationTimer`] on the
//! `acorn-events` kernel, and [`run_churn`] just assembles them and maps
//! the world's re-allocation log back into the historical
//! [`ChurnReport`] shape. Outputs are bit-identical to the pre-kernel
//! sorted-vector loop for every seed: the kernel's `(time, seq)` total
//! order reproduces the old stable sort's tie handling (session events
//! in trace order, then re-allocation ticks), with the bonus that
//! simultaneous events are now *guaranteed* stable and a NaN timestamp
//! fails loudly at scheduling instead of corrupting a sort.

use acorn_core::{AcornController, NetworkState};
use acorn_events::{
    AcornEvent, AcornWorld, ReallocationTimer, SeedPolicy, SessionProcess, Simulation,
};
use acorn_topology::Wlan;
use acorn_traces::Session;

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Simulated horizon (s).
    pub horizon_s: f64,
    /// Re-allocation period `T` (s); the paper's value is 1800.
    pub reallocation_period_s: f64,
    /// Random restarts per re-allocation.
    pub restarts: usize,
    /// Run the opportunistic width adaptation after every event.
    pub adapt_widths: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            horizon_s: 4.0 * 3600.0,
            reallocation_period_s: acorn_traces::REALLOCATION_PERIOD_S,
            restarts: 4,
            adapt_widths: false,
        }
    }
}

/// One re-allocation snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Simulation time (s).
    pub t_s: f64,
    /// Clients associated at this instant.
    pub active_clients: usize,
    /// Predicted network throughput before re-allocation (bits/s).
    pub before_bps: f64,
    /// Predicted network throughput after re-allocation (bits/s).
    pub after_bps: f64,
    /// Channel switches the re-allocation performed.
    pub switches: usize,
}

/// Result of a churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// One entry per re-allocation epoch.
    pub snapshots: Vec<Snapshot>,
    /// The final network state.
    pub final_state: NetworkState,
}

impl ChurnReport {
    /// Time-averaged post-re-allocation throughput (bits/s).
    pub fn mean_after_bps(&self) -> f64 {
        if self.snapshots.is_empty() {
            0.0
        } else {
            self.snapshots.iter().map(|s| s.after_bps).sum::<f64>() / self.snapshots.len() as f64
        }
    }

    /// Total channel switches across the run.
    pub fn total_switches(&self) -> usize {
        self.snapshots.iter().map(|s| s.switches).sum()
    }
}

/// Runs the closed loop. `wlan` must have at least one client slot per
/// session (`sessions[i].client` indexes `wlan.clients`).
pub fn run_churn(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    config: &ChurnConfig,
    seed: u64,
) -> ChurnReport {
    let world = AcornWorld::new(wlan.clone(), ctl.clone(), seed);
    let mut sim: Simulation<AcornWorld, AcornEvent> = Simulation::new(world);
    // Registration order is load-bearing: session events get the low
    // sequence numbers (in trace order), the timer's ticks come after —
    // reproducing the old stable sort's same-timestamp ordering exactly.
    sim.add_process(Box::new(SessionProcess {
        sessions: sessions.to_vec(),
        horizon_s: config.horizon_s,
        adapt_widths: config.adapt_widths,
    }));
    sim.add_process(Box::new(ReallocationTimer {
        period_s: config.reallocation_period_s,
        horizon_s: config.horizon_s,
        restarts: config.restarts,
        adapt_widths: config.adapt_widths,
        // The historical epoch-seed sequence: seed+1, seed+2, …
        seed_policy: SeedPolicy::Sequential {
            next: seed.wrapping_add(1),
        },
        safe_mode: false,
    }));
    sim.run(config.horizon_s);
    let snapshots = sim
        .world
        .realloc_log
        .iter()
        .map(|r| Snapshot {
            t_s: r.t_s,
            active_clients: r.active_clients,
            before_bps: r.before_bps,
            after_bps: r.after_bps,
            switches: r.switches,
        })
        .collect();
    ChurnReport {
        snapshots,
        final_state: sim.world.state.clone(),
    }
}

/// Monte-Carlo over churn seeds: one independent [`run_churn`] per seed,
/// fanned out over the evaluation engine's thread pool. Each repetition
/// derives everything from its own seed, and results come back in seed
/// order — the batch is bit-identical to calling [`run_churn`] in a loop,
/// for any `ACORN_THREADS`.
pub fn run_churn_batch(
    wlan: &Wlan,
    ctl: &AcornController,
    sessions: &[Session],
    config: &ChurnConfig,
    seeds: &[u64],
) -> Vec<ChurnReport> {
    acorn_core::par::par_map(seeds, |&seed| run_churn(wlan, ctl, sessions, config, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::enterprise_grid;
    use acorn_core::AcornConfig;
    use acorn_traces::SessionGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(horizon_s: f64) -> (Wlan, AcornController, Vec<Session>) {
        let mut rng = StdRng::seed_from_u64(1);
        let sessions = SessionGenerator::enterprise_default().generate(&mut rng, horizon_s);
        let wlan = enterprise_grid(2, 2, 50.0, sessions.len().max(1), 2);
        (wlan, AcornController::new(AcornConfig::default()), sessions)
    }

    #[test]
    fn snapshot_cadence_matches_the_period() {
        let (wlan, ctl, sessions) = setup(7200.0);
        let cfg = ChurnConfig {
            horizon_s: 7200.0,
            reallocation_period_s: 1800.0,
            restarts: 2,
            adapt_widths: false,
        };
        let report = run_churn(&wlan, &ctl, &sessions, &cfg, 3);
        assert_eq!(report.snapshots.len(), 3); // t = 1800, 3600, 5400
        for (i, s) in report.snapshots.iter().enumerate() {
            assert!((s.t_s - 1800.0 * (i + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn reallocation_never_reduces_predicted_throughput() {
        let (wlan, ctl, sessions) = setup(7200.0);
        let report = run_churn(
            &wlan,
            &ctl,
            &sessions,
            &ChurnConfig {
                horizon_s: 7200.0,
                ..ChurnConfig::default()
            },
            5,
        );
        for s in &report.snapshots {
            assert!(
                s.after_bps + 1.0 >= s.before_bps,
                "t={}: {} -> {}",
                s.t_s,
                s.before_bps,
                s.after_bps
            );
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (wlan, ctl, sessions) = setup(3600.0);
        let cfg = ChurnConfig {
            horizon_s: 3600.0,
            restarts: 2,
            ..ChurnConfig::default()
        };
        let a = run_churn(&wlan, &ctl, &sessions, &cfg, 9);
        let b = run_churn(&wlan, &ctl, &sessions, &cfg, 9);
        assert_eq!(a.snapshots, b.snapshots);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn all_sessions_eventually_depart() {
        let (wlan, ctl, sessions) = setup(3600.0);
        let report = run_churn(
            &wlan,
            &ctl,
            &sessions,
            &ChurnConfig {
                horizon_s: 1e9, // long enough for every session to end
                reallocation_period_s: 1e8,
                restarts: 1,
                adapt_widths: false,
            },
            11,
        );
        assert!(report.final_state.assoc.iter().all(|a| a.is_none()));
    }

    #[test]
    fn adaptation_keeps_operating_widths_legal() {
        let (wlan, ctl, sessions) = setup(3600.0);
        let report = run_churn(
            &wlan,
            &ctl,
            &sessions,
            &ChurnConfig {
                horizon_s: 3600.0,
                adapt_widths: true,
                restarts: 2,
                ..ChurnConfig::default()
            },
            13,
        );
        for (a, w) in report
            .final_state
            .assignments
            .iter()
            .zip(&report.final_state.operating_width)
        {
            // Operating width never exceeds the assigned width.
            assert!(
                *w == a.width() || *w == acorn_phy::ChannelWidth::Ht20,
                "{a:?} operating at {w:?}"
            );
        }
    }

    #[test]
    fn simultaneous_events_keep_trace_order() {
        // Regression for the pre-kernel sorted-vector loop, which ordered
        // same-timestamp events only by sort stability (and panicked on
        // NaN): a session arriving at *exactly* a re-allocation instant
        // must be associated before the re-allocation fires — session
        // events were pushed (and are now sequence-numbered) first.
        let wlan = enterprise_grid(2, 2, 50.0, 2, 2);
        let ctl = AcornController::new(AcornConfig::default());
        let sessions = vec![
            Session {
                client: 0,
                start_s: 1800.0,
                duration_s: 100.0,
            },
            Session {
                client: 1,
                start_s: 1800.0, // simultaneous arrivals stay in trace order
                duration_s: 50.0,
            },
        ];
        let cfg = ChurnConfig {
            horizon_s: 3600.0,
            reallocation_period_s: 1800.0,
            restarts: 1,
            adapt_widths: false,
        };
        let report = run_churn(&wlan, &ctl, &sessions, &cfg, 21);
        assert_eq!(report.snapshots.len(), 1);
        assert_eq!(
            report.snapshots[0].active_clients, 2,
            "arrivals at t = T must be visible to the re-allocation at t = T"
        );
        // And the whole thing is reproducible, ties included.
        let again = run_churn(&wlan, &ctl, &sessions, &cfg, 21);
        assert_eq!(report.snapshots, again.snapshots);
        assert_eq!(report.final_state, again.final_state);
    }

    #[test]
    #[should_panic(expected = "no position")]
    fn oversized_session_index_panics() {
        let (wlan, ctl, _) = setup(100.0);
        let bogus = vec![Session {
            client: wlan.clients.len() + 5,
            start_s: 0.0,
            duration_s: 10.0,
        }];
        run_churn(&wlan, &ctl, &bogus, &ChurnConfig::default(), 1);
    }
}
