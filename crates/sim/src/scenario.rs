//! Scenario builders: the paper's scripted topologies and randomized
//! enterprise deployments.
//!
//! The scripted scenarios place clients at distances that hit target HT20
//! SNRs (solving the path-loss model backwards), so "good" and "poor"
//! clients land in the same regimes the paper's testbed links occupy:
//! good ≈ 28–32 dB, poor ≈ 0–2 dB (where §3's measurements show CB
//! collapsing).

use acorn_phy::noise::channel_noise_floor_dbm;
use acorn_phy::ChannelWidth;
use acorn_topology::pathloss::LogDistance;
use acorn_topology::wlan::RadioParams;
use acorn_topology::{Point, Wlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Solves the (median) path-loss model for the distance at which a link
/// reaches `snr20_db` on a 20 MHz channel.
pub fn distance_for_snr20(radio: &RadioParams, pl: &LogDistance, snr20_db: f64) -> f64 {
    let floor = channel_noise_floor_dbm(ChannelWidth::Ht20, radio.noise_figure_db);
    let target_pl = radio.tx_power_dbm + radio.antenna_gains_dbi - floor - snr20_db;
    10f64.powf((target_pl - pl.pl0_db) / (10.0 * pl.exponent))
}

/// Target SNR of a "good" client (CB clearly helps).
pub const GOOD_SNR_DB: f64 = 30.0;
/// Target SNR of a "poor" client: the bonded channel is in deep trouble
/// (PER ≈ 0.9) while 20 MHz still runs cleanly at the bottom MCS —
/// yielding the ~4× ACORN-vs-aggressive-CB gap of Fig. 10. Note the
/// analytic AWGN curves are steeper than testbed curves, so the paper's
/// "poor client" regime compresses into a narrow SNR band here.
pub const POOR_SNR_DB: f64 = 1.65;

fn shadowless_wlan(aps: Vec<Point>, clients: Vec<Point>, seed: u64) -> Wlan {
    let mut w = Wlan::new(aps, clients, seed);
    w.pathloss.shadowing_sigma_db = 0.0;
    w
}

/// Places `n` clients on a circle of radius `r` around `center`.
fn ring(center: Point, r: f64, n: usize, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let theta = phase + 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
            Point::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect()
}

/// Fig. 10 Topology 1: two interference-free APs; AP 0 serves two poor
/// clients, AP 1 two good clients. Client indices 0–1 are AP 0's poor
/// pair, 2–3 are AP 1's good pair.
pub fn topology1() -> Wlan {
    let radio = RadioParams::default();
    let pl = LogDistance::indoor_5ghz(0);
    let d_poor = distance_for_snr20(&radio, &pl, POOR_SNR_DB);
    let d_good = distance_for_snr20(&radio, &pl, GOOD_SNR_DB);
    // APs far apart: interference-free (well beyond carrier sense).
    let ap0 = Point::new(0.0, 0.0);
    let ap1 = Point::new(2000.0, 0.0);
    let mut clients = ring(ap0, d_poor, 2, 0.0);
    clients.extend(ring(ap1, d_good, 2, 1.0));
    shadowless_wlan(vec![ap0, ap1], clients, 1)
}

/// Fig. 10 Topology 2: five interference-free APs. APs 0 and 2 sit close
/// enough to share clients (the grouping experiment): three good clients
/// and one mid-quality client lie between them. AP 1 has good clients;
/// APs 3 and 4 each carry a poor client alongside a good one — the cells
/// where aggressive CB collapses.
///
/// Client layout: 0–3 between APs 0/2 (3 good + 1 mid), 4–5 good at AP 1,
/// 6–7 at AP 3 (good + poor), 8–9 at AP 4 (good + poor).
pub fn topology2() -> Wlan {
    let radio = RadioParams::default();
    let pl = LogDistance::indoor_5ghz(0);
    // Two grades of "poor": AP 3's client is deeper into the CB collapse
    // (the paper's 6× cell), AP 4's is near the crossover (the 1.5× cell).
    let d_poor_deep = distance_for_snr20(&radio, &pl, POOR_SNR_DB - 0.08);
    let d_poor_edge = distance_for_snr20(&radio, &pl, POOR_SNR_DB + 0.17);
    let d_good = distance_for_snr20(&radio, &pl, GOOD_SNR_DB);
    let d_mid = distance_for_snr20(&radio, &pl, 14.0);

    // APs 0 and 2 are 40 m apart (mutually in carrier-sense range);
    // the rest are isolated islands.
    let ap0 = Point::new(0.0, 0.0);
    let ap2 = Point::new(40.0, 0.0);
    let ap1 = Point::new(2000.0, 0.0);
    let ap3 = Point::new(4000.0, 0.0);
    let ap4 = Point::new(6000.0, 0.0);

    let mut clients = Vec::new();
    // Shared pool between APs 0 and 2: good clients near the midline.
    clients.push(Point::new(d_good * 0.7, d_good * 0.5)); // good, reachable by both
    clients.push(Point::new(40.0 - d_good * 0.7, -d_good * 0.5)); // good
    clients.push(Point::new(20.0, d_good * 0.8)); // good
    clients.push(Point::new(20.0, -d_mid)); // mid-quality
                                            // AP 1: two good clients.
    clients.extend(ring(ap1, d_good, 2, 0.3));
    // AP 3: one good, one deeply poor client.
    clients.push(Point::new(4000.0 + d_good, 0.0));
    clients.push(Point::new(4000.0 - d_poor_deep, 0.0));
    // AP 4: one good, one crossover-edge poor client.
    clients.push(Point::new(6000.0 + d_good, 0.0));
    clients.push(Point::new(6000.0 - d_poor_edge, 0.0));

    shadowless_wlan(vec![ap0, ap1, ap2, ap3, ap4], clients, 2)
}

/// Fig. 11: three mutually contending APs (all within carrier sense).
/// AP 0 serves one good client; APs 1 and 2 each serve one poor client.
/// Meant to be run with a 4-channel plan, where only one AP can bond
/// cleanly.
pub fn fig11() -> Wlan {
    let radio = RadioParams::default();
    let pl = LogDistance::indoor_5ghz(0);
    let d_poor = distance_for_snr20(&radio, &pl, POOR_SNR_DB);
    let d_good = distance_for_snr20(&radio, &pl, GOOD_SNR_DB);
    let ap0 = Point::new(0.0, 0.0);
    let ap1 = Point::new(50.0, 0.0);
    let ap2 = Point::new(25.0, 43.3);
    let clients = vec![
        Point::new(-d_good, 0.0),
        Point::new(50.0 + d_poor, 0.0),
        Point::new(25.0, 43.3 + d_poor),
    ];
    shadowless_wlan(vec![ap0, ap1, ap2], clients, 3)
}

/// A randomized enterprise floor: `nx × ny` APs on a grid with `spacing`
/// metres, `n_clients` clients placed uniformly over the covered
/// rectangle (plus a margin), with lognormal shadowing enabled.
pub fn enterprise_grid(nx: usize, ny: usize, spacing: f64, n_clients: usize, seed: u64) -> Wlan {
    assert!(nx * ny >= 1, "need at least one AP");
    let mut rng = StdRng::seed_from_u64(seed);
    let aps: Vec<Point> = (0..ny)
        .flat_map(|j| (0..nx).map(move |i| Point::new(i as f64 * spacing, j as f64 * spacing)))
        .collect();
    let margin = spacing * 0.5;
    let w = (nx.saturating_sub(1)) as f64 * spacing;
    let h = (ny.saturating_sub(1)) as f64 * spacing;
    let clients: Vec<Point> = (0..n_clients)
        .map(|_| {
            Point::new(
                rng.gen_range(-margin..=w + margin),
                rng.gen_range(-margin..=h + margin),
            )
        })
        .collect();
    Wlan::new(aps, clients, seed)
}

/// Centre-to-centre distance between [`city_grid`] district origins (m).
pub const CITY_DISTRICT_PITCH_M: f64 = 400.0;
/// AP spacing inside a [`city_grid`] district (m).
pub const CITY_AP_SPACING_M: f64 = 50.0;
/// [`city_grid`] clients stay within this margin of their district's AP
/// bounding box (m).
pub const CITY_CLIENT_MARGIN_M: f64 = 25.0;

/// A city-scale deployment: `districts_per_side²` districts on a square
/// grid with [`CITY_DISTRICT_PITCH_M`] pitch, each district an
/// `aps_per_district_side²` AP grid at [`CITY_AP_SPACING_M`] spacing.
/// Clients are assigned to districts round-robin (`c % n_districts`) and
/// placed uniformly inside their district's AP bounding box plus
/// [`CITY_CLIENT_MARGIN_M`], with lognormal shadowing enabled.
///
/// With `aps_per_district_side ≤ 4` the district extent is at most 150 m,
/// so the nearest foreign-district AP sits ≥ 225 m from any client and
/// ≥ 250 m from any AP — both far beyond the default 80 m carrier-sense
/// radius. The interference graph therefore decomposes into exactly
/// `districts_per_side²` connected components regardless of association,
/// which is what makes this the reference workload for the sharded
/// allocation path.
///
/// AP ids are district-major (row-major over districts, then row-major
/// inside the district), so each district's APs are contiguous.
pub fn city_grid(
    districts_per_side: usize,
    aps_per_district_side: usize,
    n_clients: usize,
    seed: u64,
) -> Wlan {
    assert!(districts_per_side >= 1, "need at least one district");
    assert!(
        (1..=4).contains(&aps_per_district_side),
        "district extent must stay below the inter-district gap"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let k = aps_per_district_side;
    let extent = (k - 1) as f64 * CITY_AP_SPACING_M;
    let mut aps = Vec::with_capacity(districts_per_side * districts_per_side * k * k);
    let mut origins = Vec::with_capacity(districts_per_side * districts_per_side);
    for dy in 0..districts_per_side {
        for dx in 0..districts_per_side {
            let origin = Point::new(
                dx as f64 * CITY_DISTRICT_PITCH_M,
                dy as f64 * CITY_DISTRICT_PITCH_M,
            );
            origins.push(origin);
            for j in 0..k {
                for i in 0..k {
                    aps.push(Point::new(
                        origin.x + i as f64 * CITY_AP_SPACING_M,
                        origin.y + j as f64 * CITY_AP_SPACING_M,
                    ));
                }
            }
        }
    }
    let clients: Vec<Point> = (0..n_clients)
        .map(|c| {
            let o = origins[c % origins.len()];
            Point::new(
                o.x + rng.gen_range(-CITY_CLIENT_MARGIN_M..=extent + CITY_CLIENT_MARGIN_M),
                o.y + rng.gen_range(-CITY_CLIENT_MARGIN_M..=extent + CITY_CLIENT_MARGIN_M),
            )
        })
        .collect();
    Wlan::new(aps, clients, seed)
}

/// A zone-partitioned city: like [`city_grid`] but with a configurable
/// district pitch, so scenarios can place districts close enough that
/// their edge APs fall inside a *border margin* of a neighbouring
/// district while the interference graph still decomposes into exactly
/// `districts_per_side²` components. This is the reference workload for
/// the distributed control plane: each district is one zone controller,
/// and the border cells are the ones a zone forces to 20 MHz when it
/// loses its peers.
///
/// The caller picks `pitch_m`; the builder asserts the resulting
/// inter-district AP gap (`pitch_m` minus the district extent) stays
/// above 180 m — comfortably beyond the default 80 m carrier-sense
/// radius plus shadowing headroom — so the components are guaranteed
/// regardless of association, exactly as in [`city_grid`].
pub fn zoned_city(
    districts_per_side: usize,
    aps_per_district_side: usize,
    pitch_m: f64,
    n_clients: usize,
    seed: u64,
) -> Wlan {
    assert!(districts_per_side >= 1, "need at least one district");
    assert!(
        (1..=4).contains(&aps_per_district_side),
        "district extent must stay below the inter-district gap"
    );
    let extent = (aps_per_district_side - 1) as f64 * CITY_AP_SPACING_M;
    assert!(
        pitch_m - extent >= 180.0,
        "pitch {pitch_m} m leaves a {:.0} m gap: zones would merge",
        pitch_m - extent
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let k = aps_per_district_side;
    let mut aps = Vec::with_capacity(districts_per_side * districts_per_side * k * k);
    let mut origins = Vec::with_capacity(districts_per_side * districts_per_side);
    for dy in 0..districts_per_side {
        for dx in 0..districts_per_side {
            let origin = Point::new(dx as f64 * pitch_m, dy as f64 * pitch_m);
            origins.push(origin);
            for j in 0..k {
                for i in 0..k {
                    aps.push(Point::new(
                        origin.x + i as f64 * CITY_AP_SPACING_M,
                        origin.y + j as f64 * CITY_AP_SPACING_M,
                    ));
                }
            }
        }
    }
    let clients: Vec<Point> = (0..n_clients)
        .map(|c| {
            let o = origins[c % origins.len()];
            Point::new(
                o.x + rng.gen_range(-CITY_CLIENT_MARGIN_M..=extent + CITY_CLIENT_MARGIN_M),
                o.y + rng.gen_range(-CITY_CLIENT_MARGIN_M..=extent + CITY_CLIENT_MARGIN_M),
            )
        })
        .collect();
    let mut w = Wlan::new(aps, clients, seed);
    // Deterministic geometry: zone membership and border sets should not
    // depend on a shadowing draw.
    w.pathloss.shadowing_sigma_db = 0.0;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::{ApId, ClientId};

    #[test]
    fn distance_solver_roundtrips() {
        let radio = RadioParams::default();
        let pl = LogDistance::indoor_5ghz(0);
        for snr in [0.0, 10.0, 20.0, 30.0] {
            let d = distance_for_snr20(&radio, &pl, snr);
            let achieved = radio.tx_power_dbm + radio.antenna_gains_dbi
                - pl.median_db(d)
                - channel_noise_floor_dbm(ChannelWidth::Ht20, radio.noise_figure_db);
            assert!((achieved - snr).abs() < 0.01, "snr {snr}: got {achieved}");
        }
    }

    #[test]
    fn topology1_has_the_intended_link_classes() {
        let w = topology1();
        // Poor clients at AP 0.
        for c in 0..2 {
            let snr = w.snr_db(ApId(0), ClientId(c), ChannelWidth::Ht20);
            assert!((snr - POOR_SNR_DB).abs() < 1.0, "client {c}: {snr}");
        }
        // Good clients at AP 1.
        for c in 2..4 {
            let snr = w.snr_db(ApId(1), ClientId(c), ChannelWidth::Ht20);
            assert!((snr - GOOD_SNR_DB).abs() < 1.0, "client {c}: {snr}");
        }
        // Interference-free.
        let g = w.ap_only_interference_graph();
        assert!(!g.interferes(ApId(0), ApId(1)));
    }

    #[test]
    fn topology2_shape() {
        let w = topology2();
        assert_eq!(w.aps.len(), 5);
        assert_eq!(w.clients.len(), 10);
        let g = w.ap_only_interference_graph();
        // APs 0 and 2 contend; the islands don't.
        assert!(g.interferes(ApId(0), ApId(2)));
        assert!(!g.interferes(ApId(0), ApId(1)));
        assert!(!g.interferes(ApId(3), ApId(4)));
        // The poor clients really are poor at their home APs.
        let poor3 = w.snr_db(ApId(3), ClientId(7), ChannelWidth::Ht20);
        let poor4 = w.snr_db(ApId(4), ClientId(9), ChannelWidth::Ht20);
        assert!(poor3 < 2.0 && poor4 < 2.0, "{poor3} {poor4}");
    }

    #[test]
    fn fig11_is_fully_contending() {
        let w = fig11();
        let g = w.ap_only_interference_graph();
        for i in 0..3 {
            for j in i + 1..3 {
                assert!(g.interferes(ApId(i), ApId(j)), "{i} vs {j}");
            }
        }
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn city_grid_is_district_isolated() {
        let w = city_grid(3, 2, 90, 5);
        assert_eq!(w.aps.len(), 9 * 4);
        assert_eq!(w.clients.len(), 90);
        // No association: AP-only graph already shows the components.
        let g = w.ap_only_interference_graph();
        assert_eq!(g.connected_components().len(), 9);
        // Even with every client associated to its nearest AP, clients
        // never bridge districts.
        let assoc: Vec<Option<ApId>> = w
            .clients
            .iter()
            .map(|c| {
                (0..w.aps.len())
                    .min_by(|&a, &b| {
                        w.aps[a]
                            .pos
                            .distance(&c.pos)
                            .total_cmp(&w.aps[b].pos.distance(&c.pos))
                    })
                    .map(ApId)
            })
            .collect();
        let full = w.interference_graph(&assoc);
        assert_eq!(full.connected_components().len(), 9);
    }

    #[test]
    fn zoned_city_is_isolated_yet_border_reachable() {
        let w = zoned_city(2, 2, 250.0, 24, 5);
        assert_eq!(w.aps.len(), 16);
        // Districts still decompose into exactly 4 components…
        let g = w.ap_only_interference_graph();
        assert_eq!(g.connected_components().len(), 4);
        // …but each district has at least one AP within 250 m of a
        // foreign AP, so a 250 m border margin yields non-empty border
        // sets (unlike the 400 m-pitch city_grid).
        for z in 0..4 {
            let mine = (z * 4)..(z * 4 + 4);
            let has_border = mine.clone().any(|a| {
                (0..w.aps.len())
                    .filter(|b| !mine.contains(b))
                    .any(|b| w.aps[a].pos.distance(&w.aps[b].pos) <= 250.0)
            });
            assert!(has_border, "zone {z} has no border AP");
        }
    }

    #[test]
    #[should_panic(expected = "zones would merge")]
    fn zoned_city_rejects_merging_pitch() {
        let _ = zoned_city(2, 2, 200.0, 8, 1);
    }

    #[test]
    fn city_grid_is_deterministic() {
        let a = city_grid(2, 3, 40, 9);
        let b = city_grid(2, 3, 40, 9);
        assert_eq!(a.clients[17].pos.x, b.clients[17].pos.x);
        assert_eq!(a.aps.len(), 4 * 9);
    }

    #[test]
    fn enterprise_grid_shape_and_determinism() {
        let a = enterprise_grid(3, 2, 50.0, 20, 7);
        assert_eq!(a.aps.len(), 6);
        assert_eq!(a.clients.len(), 20);
        let b = enterprise_grid(3, 2, 50.0, 20, 7);
        assert_eq!(a.clients[5].pos.x, b.clients[5].pos.x);
        let c = enterprise_grid(3, 2, 50.0, 20, 8);
        assert_ne!(a.clients[5].pos.x, c.clients[5].pos.x);
    }
}
