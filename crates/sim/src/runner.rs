//! Evaluation runner: scores a full network configuration (channels +
//! association) under a traffic model, analytically or with the DCF
//! simulator.
//!
//! This is the measurement harness of §5.2 in software: given a
//! deployment, a channel assignment and an association, report per-AP and
//! aggregate throughput — for ACORN, for the baselines, and for the
//! random configurations of Table 3, all through the same code path so
//! comparisons are apples-to-apples.

use crate::traffic::{cell_goodput_bps, Traffic};
use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_mac::contention::access_share;
use acorn_mac::dcf::{simulate_dcf, StationConfig};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment, ClientId, InterferenceGraph, Wlan};

/// Result of evaluating one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Per-AP cell throughput (bits/s).
    pub per_ap_bps: Vec<f64>,
    /// Aggregate network throughput (bits/s).
    pub total_bps: f64,
}

impl Evaluation {
    fn from_cells(per_ap_bps: Vec<f64>) -> Evaluation {
        let total_bps = per_ap_bps.iter().sum();
        Evaluation {
            per_ap_bps,
            total_bps,
        }
    }
}

/// The MAC operating points of one AP's associated clients at a width.
pub fn cell_links(
    wlan: &Wlan,
    assoc: &[Option<ApId>],
    estimator: &LinkQualityEstimator,
    ap: ApId,
    width: ChannelWidth,
) -> Vec<ClientLink> {
    assoc
        .iter()
        .enumerate()
        .filter(|(_, a)| **a == Some(ap))
        .map(|(c, _)| {
            let snr20 = wlan.snr_db(ap, ClientId(c), ChannelWidth::Ht20);
            let est = estimator.estimate(snr20, ChannelWidth::Ht20);
            let point = est.rate_point(width);
            ClientLink {
                rate_bps: point.mcs.mcs().rate_bps(width, estimator.gi),
                per: point.per,
            }
        })
        .collect()
}

/// Analytic evaluation: anomaly airtime model × contention shares ×
/// traffic model.
pub fn evaluate_analytic(
    wlan: &Wlan,
    assignments: &[ChannelAssignment],
    assoc: &[Option<ApId>],
    estimator: &LinkQualityEstimator,
    payload_bytes: u32,
    traffic: Traffic,
) -> Evaluation {
    assert_eq!(assignments.len(), wlan.aps.len(), "one assignment per AP");
    let graph = wlan.interference_graph(assoc);
    // Per-AP scoring is independent given the frozen assignment; fan it
    // out. Results come back in AP order, so the total is the same float
    // sum as the sequential loop.
    let per_ap = acorn_core::par::par_map_n(wlan.aps.len(), |i| {
        let ap = ApId(i);
        let links = cell_links(wlan, assoc, estimator, ap, assignments[i].width());
        if links.is_empty() {
            return 0.0;
        }
        let airtime = CellAirtime::new(&links, payload_bytes);
        let m = access_share(&graph, assignments, ap);
        cell_goodput_bps(&airtime, &links, m, traffic)
    });
    Evaluation::from_cells(per_ap)
}

/// Partitions APs into contention components: connected components of the
/// graph restricted to edges whose endpoints' assignments spectrally
/// overlap. Each component approximates one collision domain.
pub fn contention_components(
    graph: &InterferenceGraph,
    assignments: &[ChannelAssignment],
) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let mut comp = Vec::new();
        seen[start] = true;
        while let Some(i) = stack.pop() {
            comp.push(i);
            for nb in graph.neighbors(ApId(i)) {
                if !seen[nb.0] && assignments[i].conflicts(assignments[nb.0]) {
                    seen[nb.0] = true;
                    stack.push(nb.0);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// DCF-simulated evaluation (saturated UDP only): each contention
/// component becomes one collision domain of the slot-level simulator.
pub fn evaluate_dcf(
    wlan: &Wlan,
    assignments: &[ChannelAssignment],
    assoc: &[Option<ApId>],
    estimator: &LinkQualityEstimator,
    payload_bytes: u32,
    duration_s: f64,
    seed: u64,
) -> Evaluation {
    assert_eq!(assignments.len(), wlan.aps.len(), "one assignment per AP");
    let graph = wlan.interference_graph(assoc);
    let components = contention_components(&graph, assignments);
    // Collision domains are independent simulations, each seeded by its
    // component index (stable: components are discovered in AP order), so
    // they fan out without changing any sample stream.
    let results: Vec<Vec<f64>> = acorn_core::par::par_map_n(components.len(), |ci| {
        let comp = &components[ci];
        let stations: Vec<StationConfig> = comp
            .iter()
            .map(|&i| {
                let links = cell_links(wlan, assoc, estimator, ApId(i), assignments[i].width());
                StationConfig {
                    clients: links,
                    payload_bytes,
                    burst: acorn_mac::timing::BURST,
                }
            })
            .collect();
        let stats = simulate_dcf(&stations, duration_s, seed.wrapping_add(ci as u64));
        stats.iter().map(|s| s.throughput_bps(duration_s)).collect()
    });
    let mut per_ap = vec![0.0f64; wlan.aps.len()];
    for (comp, bps) in components.iter().zip(&results) {
        for (&i, &x) in comp.iter().zip(bps) {
            per_ap[i] = x;
        }
    }
    Evaluation::from_cells(per_ap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{fig11, topology1};
    use acorn_topology::{Channel20, ChannelPlan};

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    fn est() -> LinkQualityEstimator {
        LinkQualityEstimator::default()
    }

    fn natural_assoc(wlan: &Wlan) -> Vec<Option<ApId>> {
        (0..wlan.clients.len())
            .map(|c| {
                (0..wlan.aps.len()).map(ApId).max_by(|&a, &b| {
                    wlan.snr_db(a, ClientId(c), ChannelWidth::Ht20)
                        .total_cmp(&wlan.snr_db(b, ClientId(c), ChannelWidth::Ht20))
                })
            })
            .collect()
    }

    #[test]
    fn topology1_poor_cell_prefers_20mhz() {
        // The Fig. 10a effect: the poor cell's throughput is far higher on
        // a 20 MHz channel than bonded.
        let w = topology1();
        let assoc = natural_assoc(&w);
        let cb = evaluate_analytic(
            &w,
            &[bonded(0), bonded(2)],
            &assoc,
            &est(),
            1500,
            Traffic::Udp,
        );
        let acorn_like = evaluate_analytic(
            &w,
            &[single(0), bonded(2)],
            &assoc,
            &est(),
            1500,
            Traffic::Udp,
        );
        assert!(
            acorn_like.per_ap_bps[0] > 3.0 * cb.per_ap_bps[0],
            "20 MHz {:.3e} vs bonded {:.3e}",
            acorn_like.per_ap_bps[0],
            cb.per_ap_bps[0]
        );
        // The good cell is essentially unaffected.
        assert!((acorn_like.per_ap_bps[1] - cb.per_ap_bps[1]).abs() < 1e-3 * cb.per_ap_bps[1]);
    }

    #[test]
    fn analytic_and_dcf_agree_on_topology1() {
        let w = topology1();
        let assoc = natural_assoc(&w);
        let assignments = [single(0), bonded(2)];
        let a = evaluate_analytic(&w, &assignments, &assoc, &est(), 1500, Traffic::Udp);
        let d = evaluate_dcf(&w, &assignments, &assoc, &est(), 1500, 5.0, 1);
        for i in 0..2 {
            let err = (a.per_ap_bps[i] - d.per_ap_bps[i]).abs() / a.per_ap_bps[i].max(1.0);
            assert!(
                err < 0.1,
                "AP {i}: analytic {:.3e} dcf {:.3e}",
                a.per_ap_bps[i],
                d.per_ap_bps[i]
            );
        }
    }

    #[test]
    fn contention_components_respect_spectrum() {
        let w = fig11();
        let assoc = natural_assoc(&w);
        let graph = w.interference_graph(&assoc);
        // All on one bond: one big component.
        let all40 = vec![bonded(0); 3];
        assert_eq!(contention_components(&graph, &all40).len(), 1);
        // Disjoint: three singleton components.
        let disjoint = vec![single(0), single(1), single(2)];
        assert_eq!(contention_components(&graph, &disjoint).len(), 3);
        // Bond {0,1} + single 1 + single 2: {0,1} then {2}.
        let mixed = vec![bonded(0), single(1), single(2)];
        let comps = contention_components(&graph, &mixed);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![0, 1]));
    }

    #[test]
    fn fig11_aggressive_cb_loses_to_mixed_allocation() {
        // The Fig. 11 comparison: (40,20,20) with the good AP bonded
        // beats all-40 by roughly 2× in aggregate.
        let w = fig11();
        let assoc = natural_assoc(&w);
        let plan = ChannelPlan::restricted(4);
        assert_eq!(plan.bonds().count(), 2);
        let all40 = vec![bonded(0), bonded(2), bonded(0)];
        let acorn_like = vec![bonded(0), single(2), single(3)];
        let y_all40 = evaluate_analytic(&w, &all40, &assoc, &est(), 1500, Traffic::Udp).total_bps;
        let y_acorn =
            evaluate_analytic(&w, &acorn_like, &assoc, &est(), 1500, Traffic::Udp).total_bps;
        assert!(
            y_acorn > 1.5 * y_all40,
            "acorn {:.3e} vs all-40 {:.3e}",
            y_acorn,
            y_all40
        );
    }

    #[test]
    fn tcp_totals_are_below_udp() {
        let w = topology1();
        let assoc = natural_assoc(&w);
        let assignments = [single(0), bonded(2)];
        let udp = evaluate_analytic(&w, &assignments, &assoc, &est(), 1500, Traffic::Udp);
        let tcp = evaluate_analytic(
            &w,
            &assignments,
            &assoc,
            &est(),
            1500,
            Traffic::tcp_default(),
        );
        assert!(tcp.total_bps < udp.total_bps);
        assert!(tcp.total_bps > 0.3 * udp.total_bps);
    }

    #[test]
    fn unassociated_clients_are_ignored() {
        let w = topology1();
        let mut assoc = natural_assoc(&w);
        assoc[0] = None;
        let e = evaluate_analytic(
            &w,
            &[single(0), single(1)],
            &assoc,
            &est(),
            1500,
            Traffic::Udp,
        );
        assert!(e.total_bps > 0.0);
        let links = cell_links(&w, &assoc, &est(), ApId(0), ChannelWidth::Ht20);
        assert_eq!(links.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one assignment per AP")]
    fn mismatched_assignments_panic() {
        let w = topology1();
        let assoc = natural_assoc(&w);
        evaluate_analytic(&w, &[single(0)], &assoc, &est(), 1500, Traffic::Udp);
    }
}
