//! Traffic models: saturated UDP and loss-sensitive TCP.
//!
//! The paper evaluates both: saturated downlink UDP (the regime its
//! analysis assumes) and TCP, noting that "TCP is more sensitive to packet
//! losses and as a result even small PER increments can significantly
//! degrade performance" (≈30 % of TCP trials prefer 20 MHz vs ≈10 % for
//! UDP in Fig. 6a).
//!
//! * **UDP**: the per-client goodput is the MAC share computed by the
//!   anomaly airtime model — no transport effects.
//! * **TCP**: per client, the goodput is capped both by its MAC share
//!   (scaled by an ACK/congestion efficiency factor) and by the Mathis
//!   throughput law `MSS/(RTT·√(2p/3))` evaluated at the *residual* loss
//!   probability — the loss TCP actually sees after the MAC's limited
//!   retransmissions.

use acorn_mac::airtime::{CellAirtime, ClientLink};

/// Traffic type for an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Saturated downlink UDP.
    Udp,
    /// Long-lived downlink TCP flows.
    Tcp {
        /// End-to-end round-trip time (s); enterprise WLAN + wired
        /// backhaul sits around 10 ms under load.
        rtt_s: f64,
    },
}

impl Traffic {
    /// Default TCP parameters.
    pub fn tcp_default() -> Traffic {
        Traffic::Tcp { rtt_s: 0.010 }
    }
}

/// TCP efficiency relative to UDP on a loss-free link (TCP ACK airtime in
/// the reverse direction plus congestion-control headroom).
pub const TCP_EFFICIENCY: f64 = 0.75;

/// MAC retransmissions TCP segments effectively get before the loss
/// becomes visible end-to-end (per-MPDU attempts = this + 1).
pub const MAC_RETX_FOR_TCP: u32 = 2;

/// Residual end-to-end loss probability of a link with MAC-layer PER
/// `per`: every attempt fails independently.
pub fn residual_loss(per: f64) -> f64 {
    per.clamp(0.0, 1.0).powi(MAC_RETX_FOR_TCP as i32 + 1)
}

/// Mathis et al. TCP throughput cap (bits/s) for segment size
/// `mss_bytes`, round-trip `rtt_s` and loss probability `p`.
pub fn mathis_cap_bps(mss_bytes: u32, rtt_s: f64, p: f64) -> f64 {
    if p <= 0.0 {
        return f64::INFINITY;
    }
    8.0 * mss_bytes as f64 / (rtt_s * (2.0 * p / 3.0).sqrt())
}

/// Per-client goodputs of one cell under a traffic model, given the
/// cell's airtime accounting, its clients' MAC operating points, and the
/// AP's channel-access share `m`.
pub fn per_client_goodputs_bps(
    airtime: &CellAirtime,
    clients: &[ClientLink],
    m: f64,
    traffic: Traffic,
) -> Vec<f64> {
    assert_eq!(airtime.delays_s.len(), clients.len(), "accounting mismatch");
    let udp_share = airtime.per_client_throughput_bps(m);
    match traffic {
        Traffic::Udp => vec![udp_share; clients.len()],
        Traffic::Tcp { rtt_s } => clients
            .iter()
            .map(|c| {
                let p = residual_loss(c.per);
                let cap = mathis_cap_bps(airtime.payload_bytes, rtt_s, p);
                (TCP_EFFICIENCY * udp_share).min(cap)
            })
            .collect(),
    }
}

/// Aggregate cell throughput under a traffic model.
pub fn cell_goodput_bps(
    airtime: &CellAirtime,
    clients: &[ClientLink],
    m: f64,
    traffic: Traffic,
) -> f64 {
    per_client_goodputs_bps(airtime, clients, m, traffic)
        .iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(rate_mbps: f64, per: f64) -> ClientLink {
        ClientLink {
            rate_bps: rate_mbps * 1e6,
            per,
        }
    }

    fn cell(clients: &[ClientLink]) -> CellAirtime {
        CellAirtime::new(clients, 1500)
    }

    #[test]
    fn udp_equals_the_anomaly_share() {
        let clients = [link(65.0, 0.0), link(13.0, 0.1)];
        let a = cell(&clients);
        let g = per_client_goodputs_bps(&a, &clients, 1.0, Traffic::Udp);
        let expect = a.per_client_throughput_bps(1.0);
        assert!(g.iter().all(|x| (*x - expect).abs() < 1e-9));
    }

    #[test]
    fn tcp_is_below_udp() {
        let clients = [link(65.0, 0.02)];
        let a = cell(&clients);
        let udp = cell_goodput_bps(&a, &clients, 1.0, Traffic::Udp);
        let tcp = cell_goodput_bps(&a, &clients, 1.0, Traffic::tcp_default());
        assert!(tcp < udp);
        assert!(
            tcp > 0.5 * udp,
            "clean-ish link shouldn't collapse: {tcp:.3e} vs {udp:.3e}"
        );
    }

    #[test]
    fn tcp_punishes_lossy_links_disproportionately() {
        // The Fig. 6a asymmetry: raising PER hurts TCP more than UDP.
        let clean = [link(65.0, 0.0)];
        let lossy = [link(65.0, 0.5)];
        let udp_drop = cell_goodput_bps(&cell(&lossy), &lossy, 1.0, Traffic::Udp)
            / cell_goodput_bps(&cell(&clean), &clean, 1.0, Traffic::Udp);
        let tcp_drop = cell_goodput_bps(&cell(&lossy), &lossy, 1.0, Traffic::tcp_default())
            / cell_goodput_bps(&cell(&clean), &clean, 1.0, Traffic::tcp_default());
        assert!(tcp_drop < udp_drop, "tcp {tcp_drop} !< udp {udp_drop}");
    }

    #[test]
    fn residual_loss_is_cubed_per() {
        assert!((residual_loss(0.1) - 1e-3).abs() < 1e-12);
        assert_eq!(residual_loss(0.0), 0.0);
        assert_eq!(residual_loss(1.0), 1.0);
    }

    #[test]
    fn mathis_cap_behaviour() {
        assert_eq!(mathis_cap_bps(1500, 0.01, 0.0), f64::INFINITY);
        let high_loss = mathis_cap_bps(1500, 0.01, 0.1);
        let low_loss = mathis_cap_bps(1500, 0.01, 0.001);
        assert!(low_loss > high_loss);
        // 100× lower loss → √100 = 10× higher cap.
        assert!((low_loss / high_loss - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tcp_on_a_clean_link_is_just_the_efficiency_factor() {
        let clients = [link(130.0, 0.0)];
        let a = cell(&clients);
        let udp = cell_goodput_bps(&a, &clients, 1.0, Traffic::Udp);
        let tcp = cell_goodput_bps(&a, &clients, 1.0, Traffic::tcp_default());
        assert!((tcp / udp - TCP_EFFICIENCY).abs() < 1e-9);
    }

    #[test]
    fn access_share_scales_both_models() {
        let clients = [link(65.0, 0.05)];
        let a = cell(&clients);
        for traffic in [Traffic::Udp, Traffic::tcp_default()] {
            let full = cell_goodput_bps(&a, &clients, 1.0, traffic);
            let half = cell_goodput_bps(&a, &clients, 0.5, traffic);
            assert!(half <= 0.5 * full + 1e-9, "{traffic:?}");
        }
    }
}
