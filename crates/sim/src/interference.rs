//! SINR-aware evaluation: far-field co-channel interference.
//!
//! The carrier-sense based model (interference graph + access shares)
//! covers APs that *defer* to each other. APs outside carrier-sense range
//! but on overlapping spectrum don't defer — they transmit concurrently
//! and leak interference power into each other's cells, lowering SINR
//! rather than airtime. §1 of the paper: "due to the 3 dB reduction in
//! the per-carrier signal power, transmissions with the wider bands are
//! more susceptible to interference (i.e., the SINR is lower)", and
//! bonded channels additionally collect interference from *both* member
//! channels.
//!
//! [`evaluate_analytic_sinr`] extends the runner with this mechanism:
//! each client's SNR becomes an SINR that folds in every out-of-CS-range
//! co-spectrum AP, weighted by that AP's duty cycle (its access share)
//! and by the spectral-overlap fraction between the two assignments.

use crate::runner::Evaluation;
use crate::traffic::{cell_goodput_bps, Traffic};
use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_mac::contention::access_shares;
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_topology::{ApId, ChannelAssignment, ClientId, Wlan};

/// Fraction of interferer `from`'s transmit power that lands inside the
/// victim assignment's band: |overlap| / |from's occupied channels|.
pub fn spectral_overlap_fraction(from: ChannelAssignment, victim: ChannelAssignment) -> f64 {
    let from_ch: Vec<_> = from.occupied().collect();
    let overlap = from_ch
        .iter()
        .filter(|c| victim.occupied().any(|v| v == **c))
        .count();
    overlap as f64 / from_ch.len() as f64
}

/// Aggregate far-field interference power (dBm) at `client` while served
/// by `serving`, from every AP that (a) spectrally overlaps the serving
/// assignment and (b) is *not* deferring to the serving AP (no
/// interference-graph edge — footnote 5's relation). Each interferer is
/// weighted by its duty cycle `duty[j]`.
pub fn interference_at_client_dbm(
    wlan: &Wlan,
    graph: &acorn_topology::InterferenceGraph,
    assignments: &[ChannelAssignment],
    serving: ApId,
    client: ClientId,
    duty: &[f64],
) -> f64 {
    let victim = assignments[serving.0];
    let mut total_mw = 0.0f64;
    for j in 0..wlan.aps.len() {
        if j == serving.0 || graph.interferes(serving, ApId(j)) {
            continue; // deferring neighbours are handled by the M share
        }
        let frac = spectral_overlap_fraction(assignments[j], victim);
        if frac <= 0.0 {
            continue;
        }
        let rx_dbm = wlan.link_budget(ApId(j), client).rx_power_dbm();
        total_mw += duty[j].clamp(0.0, 1.0) * frac * 10f64.powf(rx_dbm / 10.0);
    }
    if total_mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * total_mw.log10()
    }
}

/// SINR-aware analytic evaluation (saturated UDP or TCP): like
/// `evaluate_analytic`, plus far-field co-spectrum interference folded
/// into each client's effective SNR.
pub fn evaluate_analytic_sinr(
    wlan: &Wlan,
    assignments: &[ChannelAssignment],
    assoc: &[Option<ApId>],
    estimator: &LinkQualityEstimator,
    payload_bytes: u32,
    traffic: Traffic,
) -> Evaluation {
    assert_eq!(assignments.len(), wlan.aps.len(), "one assignment per AP");
    let graph = wlan.interference_graph(assoc);
    let duty = access_shares(&graph, assignments);
    let per_ap: Vec<f64> = (0..wlan.aps.len())
        .map(|i| {
            let ap = ApId(i);
            let width = assignments[i].width();
            let links: Vec<ClientLink> = assoc
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Some(ap))
                .map(|(c, _)| {
                    let client = ClientId(c);
                    let budget = wlan.link_budget(ap, client);
                    let interference =
                        interference_at_client_dbm(wlan, &graph, assignments, ap, client, &duty);
                    let sinr = budget.sinr_db(width, interference);
                    // Map the width-specific SINR back through the
                    // estimator (measured at the serving width).
                    let est = estimator.estimate(sinr, width);
                    let p = est.rate_point(width);
                    ClientLink {
                        rate_bps: p.mcs.mcs().rate_bps(width, estimator.gi),
                        per: p.per,
                    }
                })
                .collect();
            if links.is_empty() {
                return 0.0;
            }
            let airtime = CellAirtime::new(&links, payload_bytes);
            cell_goodput_bps(&airtime, &links, duty[i], traffic)
        })
        .collect();
    let total_bps = per_ap.iter().sum();
    Evaluation {
        per_ap_bps: per_ap,
        total_bps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_analytic;
    use acorn_topology::{Channel20, Point};

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    /// Two cells far outside carrier sense (no deferral) but close enough
    /// to leak interference: 150 m apart with an 80 m CS range.
    fn hidden_pair() -> (Wlan, Vec<Option<ApId>>) {
        // Clients sit toward their cell edges, where the neighbour's
        // leakage meaningfully moves the SINR.
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(150.0, 0.0)],
            vec![Point::new(45.0, 0.0), Point::new(105.0, 0.0)],
            3,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        let assoc = vec![Some(ApId(0)), Some(ApId(1))];
        (w, assoc)
    }

    #[test]
    fn overlap_fractions() {
        assert_eq!(spectral_overlap_fraction(single(0), single(0)), 1.0);
        assert_eq!(spectral_overlap_fraction(single(0), single(1)), 0.0);
        assert_eq!(spectral_overlap_fraction(bonded(0), single(0)), 0.5);
        assert_eq!(spectral_overlap_fraction(single(0), bonded(0)), 1.0);
        assert_eq!(spectral_overlap_fraction(bonded(0), bonded(0)), 1.0);
        assert_eq!(spectral_overlap_fraction(bonded(0), bonded(2)), 0.0);
    }

    #[test]
    fn orthogonal_channels_match_the_plain_evaluator() {
        let (w, assoc) = hidden_pair();
        let est = LinkQualityEstimator::default();
        let a = [single(0), single(1)];
        let plain = evaluate_analytic(&w, &a, &assoc, &est, 1500, Traffic::Udp);
        let sinr = evaluate_analytic_sinr(&w, &a, &assoc, &est, 1500, Traffic::Udp);
        assert!((plain.total_bps - sinr.total_bps).abs() < 1e-6);
    }

    #[test]
    fn hidden_cochannel_interferer_degrades_throughput() {
        let (w, assoc) = hidden_pair();
        let est = LinkQualityEstimator::default();
        let same = [single(0), single(0)];
        let diff = [single(0), single(1)];
        let y_same = evaluate_analytic_sinr(&w, &same, &assoc, &est, 1500, Traffic::Udp);
        let y_diff = evaluate_analytic_sinr(&w, &diff, &assoc, &est, 1500, Traffic::Udp);
        assert!(
            y_same.total_bps < y_diff.total_bps,
            "hidden interference should cost something: {:.3e} !< {:.3e}",
            y_same.total_bps,
            y_diff.total_bps
        );
        // The plain evaluator is blind to this (no IG edge → full shares).
        let blind = evaluate_analytic(&w, &same, &assoc, &est, 1500, Traffic::Udp);
        assert!((blind.total_bps - y_diff.total_bps).abs() / y_diff.total_bps < 0.01);
    }

    #[test]
    fn bonded_victims_are_more_susceptible() {
        // The paper's §1 claim: at the same distance from an interferer,
        // the bonded cell loses a larger fraction of its throughput.
        let (w, assoc) = hidden_pair();
        let est = LinkQualityEstimator::default();
        let loss_fraction = |victim: ChannelAssignment, interferer: ChannelAssignment| {
            let with =
                evaluate_analytic_sinr(&w, &[victim, interferer], &assoc, &est, 1500, Traffic::Udp)
                    .per_ap_bps[0];
            let clean =
                evaluate_analytic_sinr(&w, &[victim, single(11)], &assoc, &est, 1500, Traffic::Udp)
                    .per_ap_bps[0];
            1.0 - with / clean
        };
        // Interferer fully covers the victim's band in both cases.
        let narrow = loss_fraction(single(0), bonded(0));
        let wide = loss_fraction(bonded(0), bonded(0));
        assert!(
            wide >= narrow,
            "bonded victim should lose at least as much: {wide:.3} vs {narrow:.3}"
        );
    }

    #[test]
    fn duty_cycle_scales_interference() {
        let (w, assoc) = hidden_pair();
        let graph = w.interference_graph(&assoc);
        let a = [single(0), single(0)];
        let full = interference_at_client_dbm(&w, &graph, &a, ApId(0), ClientId(0), &[1.0, 1.0]);
        let half = interference_at_client_dbm(&w, &graph, &a, ApId(0), ClientId(0), &[1.0, 0.5]);
        assert!((full - half - 3.0103).abs() < 1e-6);
        let none = interference_at_client_dbm(&w, &graph, &a, ApId(0), ClientId(0), &[1.0, 0.0]);
        assert_eq!(none, f64::NEG_INFINITY);
    }

    #[test]
    fn deferring_neighbours_are_excluded() {
        // Put the APs inside CS range: the IG edge suppresses the SINR
        // term (they time-share instead).
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)],
            vec![Point::new(5.0, 0.0)],
            1,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        let assoc = vec![Some(ApId(0))];
        let graph = w.interference_graph(&assoc);
        assert!(graph.interferes(ApId(0), ApId(1)));
        let a = [single(0), single(0)];
        let i = interference_at_client_dbm(&w, &graph, &a, ApId(0), ClientId(0), &[0.5, 0.5]);
        assert_eq!(i, f64::NEG_INFINITY);
    }
}
