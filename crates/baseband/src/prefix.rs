//! Cyclic-prefix insertion and removal.
//!
//! The WarpLab pipeline the paper describes: "The Inverse Fast Fourier
//! Transform (IFFT) is applied on the modulated I-Q samples. A cyclic
//! prefix is then added. ... The cyclic prefix is removed and the remaining
//! samples are fed into a Fast Fourier Transform (FFT) module."
//!
//! The prefix copies the tail of each OFDM symbol to its front; as long as
//! the channel's delay spread fits within it, inter-symbol interference is
//! absorbed and per-subcarrier equalization stays a scalar divide.

use crate::cplx::Cplx;

/// Prepends a cyclic prefix of `cp_len` samples to one OFDM symbol.
///
/// Panics if `cp_len > symbol.len()` — a prefix longer than the symbol has
/// no cyclic interpretation.
pub fn add_cp(symbol: &[Cplx], cp_len: usize) -> Vec<Cplx> {
    assert!(
        cp_len <= symbol.len(),
        "cyclic prefix ({cp_len}) longer than symbol ({})",
        symbol.len()
    );
    let mut out = Vec::with_capacity(symbol.len() + cp_len);
    out.extend_from_slice(&symbol[symbol.len() - cp_len..]);
    out.extend_from_slice(symbol);
    out
}

/// Appends one OFDM symbol with its cyclic prefix to a running sample
/// stream — the allocation-free companion of [`add_cp`] used by the frame
/// builder's workspace path.
pub fn extend_with_cp(stream: &mut Vec<Cplx>, symbol: &[Cplx], cp_len: usize) {
    assert!(
        cp_len <= symbol.len(),
        "cyclic prefix ({cp_len}) longer than symbol ({})",
        symbol.len()
    );
    stream.extend_from_slice(&symbol[symbol.len() - cp_len..]);
    stream.extend_from_slice(symbol);
}

/// Strips the cyclic prefix from a received block of `fft_size + cp_len`
/// samples, returning the `fft_size` useful samples.
pub fn strip_cp(block: &[Cplx], cp_len: usize) -> &[Cplx] {
    &block[cp_len..]
}

/// The cyclic-prefix length (in samples) for an 802.11n symbol: the 800 ns
/// long guard interval is 1/4 of the 3.2 µs useful symbol, i.e. `N/4`
/// samples for an `N`-point FFT (16 at 20 MHz, 32 at 40 MHz).
pub fn standard_cp_len(fft_size: usize) -> usize {
    fft_size / 4
}

/// Cyclic-prefix length for a guard-interval choice: `N/4` for the long
/// 800 ns GI, `N/8` for the short 400 ns GI (the rate-boosting option of
/// the paper's footnote 2).
pub fn cp_len_for(fft_size: usize, gi: acorn_phy::GuardInterval) -> usize {
    match gi {
        acorn_phy::GuardInterval::Long => fft_size / 4,
        acorn_phy::GuardInterval::Short => fft_size / 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbol(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::new(i as f64, -(i as f64) * 0.5))
            .collect()
    }

    #[test]
    fn add_then_strip_is_identity() {
        let sym = symbol(64);
        let cp = standard_cp_len(64);
        let with = add_cp(&sym, cp);
        assert_eq!(with.len(), 64 + 16);
        assert_eq!(strip_cp(&with, cp), &sym[..]);
    }

    #[test]
    fn prefix_is_cyclic() {
        let sym = symbol(64);
        let with = add_cp(&sym, 16);
        // The first 16 samples equal the last 16 of the symbol.
        assert_eq!(&with[..16], &sym[48..]);
    }

    #[test]
    fn standard_lengths() {
        assert_eq!(standard_cp_len(64), 16);
        assert_eq!(standard_cp_len(128), 32);
    }

    #[test]
    #[should_panic(expected = "longer than symbol")]
    fn oversized_prefix_panics() {
        add_cp(&symbol(8), 9);
    }

    #[test]
    fn cp_makes_linear_convolution_look_circular() {
        // The core property: after CP-strip, a channel shorter than the CP
        // acts as a circular convolution, i.e. a scalar per FFT bin.
        use crate::channel::{convolve, frequency_response};
        use crate::fft::{fft_vec, ifft_vec};

        let n = 64;
        let freq: Vec<Cplx> = (0..n).map(|i| Cplx::cis(0.7 * i as f64)).collect();
        let time = ifft_vec(&freq);
        let tx = add_cp(&time, 16);

        let taps = [
            Cplx::new(0.8, 0.1),
            Cplx::new(0.0, -0.3),
            Cplx::new(0.2, 0.0),
        ];
        let rx = convolve(&tx, &taps);
        let stripped = strip_cp(&rx, 16);
        let rx_freq = fft_vec(stripped);

        let h = frequency_response(&taps, n);
        for k in 0..n {
            let expected = freq[k] * h[k];
            assert!(
                (rx_freq[k] - expected).abs() < 1e-9,
                "bin {k}: {:?} vs {:?}",
                rx_freq[k],
                expected
            );
        }
    }
}
