//! # acorn-baseband — a software OFDM/MIMO baseband (the WARP substitute)
//!
//! The ACORN paper's PHY-layer study (§3.1) runs on WARP software-defined
//! radio boards with the WarpLab OFDM reference design. This crate rebuilds
//! that measurement apparatus in Rust so the paper's Figures 1–4 can be
//! regenerated without hardware:
//!
//! * [`cplx`] — complex sample arithmetic.
//! * [`fft`] — radix-2 FFT/IFFT (64-point for 20 MHz, 128-point for 40 MHz,
//!   exactly the switch the paper performs to implement channel bonding).
//! * [`modem`] — Gray BPSK/QPSK/16-QAM/64-QAM mappers and slicers, plus the
//!   DQPSK variant the WarpLab experiments transmit.
//! * [`prefix`] — cyclic prefix handling.
//! * [`preamble`] — Barker-13 preamble construction and correlation
//!   detection ("a Barker sequence is later prepended to facilitate symbol
//!   detection at the receiver").
//! * [`channel`] — AWGN and (flat / frequency-selective) Rayleigh fading.
//! * [`stbc`] — 2×2 Alamouti space-time block coding, the transmission mode
//!   the paper uses on WARP.
//! * [`convcode`] — the K=7 (133,171) convolutional codec with 802.11
//!   puncturing and hard-decision Viterbi decoding.
//! * [`psd`] — Welch power-spectral-density estimation (Fig. 1).
//! * [`frame`] — the end-to-end Tx → channel → Rx pipeline with BER/PER
//!   counting, constellation capture and EVM (Figs. 2–4).
//!
//! The crate is deterministic given a seed, allocation-conscious, and —
//! following the smoltcp design guide idiom — synchronous and free of
//! type-level tricks.

// `deny` rather than `forbid`: the one sanctioned exception is the
// `allow`-scoped AVX-512 ACS kernel in `convcode::avx512`, which needs
// `std::arch` intrinsics. Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod convcode;
pub mod cplx;
pub mod fft;
pub mod frame;
pub mod modem;
pub mod preamble;
pub mod prefix;
pub mod psd;
pub mod stbc;

pub use channel::ChannelModel;
pub use cplx::Cplx;
pub use frame::{
    mix_seed, run_trial, run_trial_with, run_trials, try_run_trial, Equalization, FrameConfig,
    FrameError, FrameReport, FrameWorkspace, PacketOutcome, SyncMode, PACKET_CHUNK,
};
