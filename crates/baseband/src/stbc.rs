//! Alamouti 2×2 space-time block coding.
//!
//! The paper transmits its WARP frames "using 2x2 STBC (Space Time Block
//! Codes with two antennas — Alamouti); we use the STBC mode of
//! transmission since on poor quality links, the auto-rate function of our
//! 802.11n cards induces operations in this mode."
//!
//! Alamouti encodes symbol pairs `(s1, s2)` over two antennas and two
//! symbol periods:
//!
//! ```text
//! time:      t1        t2
//! antenna 1: s1/√2   −s2*/√2
//! antenna 2: s2/√2    s1*/√2
//! ```
//!
//! (the `1/√2` keeps total transmit power equal to the single-antenna
//! case, as the 802.11n spec requires). With per-path flat gains `h_ij`
//! (tx antenna i → rx antenna j) constant over the pair, maximum-ratio
//! combining at the receiver recovers each symbol with diversity order
//! `2·N_rx` and effective gain `Σ|h_ij|²/2`.

use crate::cplx::Cplx;

/// Encodes a symbol stream into the two per-antenna streams. Odd-length
/// inputs are zero-padded to a whole Alamouti pair.
pub fn alamouti_encode(symbols: &[Cplx]) -> (Vec<Cplx>, Vec<Cplx>) {
    let k = std::f64::consts::SQRT_2.recip();
    let n = symbols.len().div_ceil(2) * 2;
    let mut ant1 = Vec::with_capacity(n);
    let mut ant2 = Vec::with_capacity(n);
    let mut i = 0;
    while i < symbols.len() {
        let s1 = symbols[i];
        let s2 = if i + 1 < symbols.len() {
            symbols[i + 1]
        } else {
            Cplx::ZERO
        };
        ant1.push(s1.scale(k));
        ant2.push(s2.scale(k));
        ant1.push(-s2.conj().scale(k));
        ant2.push(s1.conj().scale(k));
        i += 2;
    }
    (ant1, ant2)
}

/// Flat channel gains of a 2×2 link: `h[i][j]` is transmit antenna `i+1` →
/// receive antenna `j+1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mimo2x2 {
    /// Path gains, `h[tx][rx]`.
    pub h: [[Cplx; 2]; 2],
}

impl Mimo2x2 {
    /// Total channel energy `Σ|h_ij|²`.
    pub fn energy(&self) -> f64 {
        self.h.iter().flatten().map(|g| g.norm_sqr()).sum()
    }
}

/// Alamouti maximum-ratio combining for one received pair.
///
/// `r1` and `r2` are the two receive antennas' samples at the two symbol
/// times (`r1 = [r1(t1), r1(t2)]`). Returns the combined estimates
/// `(ŝ1, ŝ2)`, normalized so that a noiseless channel returns the original
/// symbols exactly (the combiner divides by the channel energy and undoes
/// the `1/√2` power split).
pub fn alamouti_combine(ch: &Mimo2x2, r1: [Cplx; 2], r2: [Cplx; 2]) -> (Cplx, Cplx) {
    let [h11, h12] = ch.h[0];
    let [h21, h22] = ch.h[1];
    // Standard Alamouti combining, summed over both receive antennas.
    let mut s1 = h11.conj() * r1[0] + h21 * r1[1].conj();
    s1 += h12.conj() * r2[0] + h22 * r2[1].conj();
    let mut s2 = h21.conj() * r1[0] - h11 * r1[1].conj();
    s2 += h22.conj() * r2[0] - h12 * r2[1].conj();
    let energy = ch.energy();
    if energy <= 0.0 {
        return (Cplx::ZERO, Cplx::ZERO);
    }
    let k = std::f64::consts::SQRT_2 / energy;
    (s1.scale(k), s2.scale(k))
}

/// Applies a flat 2×2 channel to the two transmit streams, producing the
/// two receive streams (noise is added separately by the caller).
pub fn apply_mimo_channel(ch: &Mimo2x2, ant1: &[Cplx], ant2: &[Cplx]) -> (Vec<Cplx>, Vec<Cplx>) {
    assert_eq!(ant1.len(), ant2.len());
    let [h11, h12] = ch.h[0];
    let [h21, h22] = ch.h[1];
    let rx1: Vec<Cplx> = ant1
        .iter()
        .zip(ant2)
        .map(|(a, b)| h11 * *a + h21 * *b)
        .collect();
    let rx2: Vec<Cplx> = ant1
        .iter()
        .zip(ant2)
        .map(|(a, b)| h12 * *a + h22 * *b)
        .collect();
    (rx1, rx2)
}

/// End-to-end Alamouti transmission of a symbol stream over a flat 2×2
/// channel with optional per-sample noise callback; returns the combined
/// symbol estimates. This is the per-subcarrier primitive the OFDM frame
/// layer invokes once per subcarrier.
pub fn alamouti_transmit<F>(symbols: &[Cplx], ch: &Mimo2x2, mut noise: F) -> Vec<Cplx>
where
    F: FnMut() -> Cplx,
{
    let (ant1, ant2) = alamouti_encode(symbols);
    let (mut rx1, mut rx2) = apply_mimo_channel(ch, &ant1, &ant2);
    for s in rx1.iter_mut().chain(rx2.iter_mut()) {
        *s += noise();
    }
    let mut out = Vec::with_capacity(symbols.len());
    let mut t = 0;
    while t < rx1.len() {
        let (s1, s2) = alamouti_combine(ch, [rx1[t], rx1[t + 1]], [rx2[t], rx2[t + 1]]);
        out.push(s1);
        if out.len() < symbols.len() {
            out.push(s2);
        }
        t += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::complex_gaussian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_channel(rng: &mut StdRng) -> Mimo2x2 {
        Mimo2x2 {
            h: [
                [complex_gaussian(rng, 1.0), complex_gaussian(rng, 1.0)],
                [complex_gaussian(rng, 1.0), complex_gaussian(rng, 1.0)],
            ],
        }
    }

    fn qpsk_symbols(n: usize, seed: u64) -> Vec<Cplx> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let re = if rand::Rng::gen::<bool>(&mut rng) {
                    1.0
                } else {
                    -1.0
                };
                let im = if rand::Rng::gen::<bool>(&mut rng) {
                    1.0
                } else {
                    -1.0
                };
                Cplx::new(re, im).scale(std::f64::consts::SQRT_2.recip())
            })
            .collect()
    }

    #[test]
    fn encode_preserves_total_power() {
        let syms = qpsk_symbols(1000, 3);
        let (a1, a2) = alamouti_encode(&syms);
        // Total power per time slot, summed across both antennas, equals
        // the single-antenna symbol power (1.0): the 1/√2 split halves
        // each antenna's share.
        let total: f64 = a1
            .iter()
            .chain(a2.iter())
            .map(|s| s.norm_sqr())
            .sum::<f64>()
            / a1.len() as f64;
        assert!((total - 1.0).abs() < 1e-12, "per-slot total power {total}");
        let ant1_only: f64 = a1.iter().map(|s| s.norm_sqr()).sum::<f64>() / a1.len() as f64;
        assert!(
            (ant1_only - 0.5).abs() < 1e-12,
            "per-antenna power {ant1_only}"
        );
    }

    #[test]
    fn noiseless_roundtrip_identity_channel() {
        let syms = qpsk_symbols(64, 5);
        let ch = Mimo2x2 {
            h: [[Cplx::ONE, Cplx::ZERO], [Cplx::ZERO, Cplx::ONE]],
        };
        let out = alamouti_transmit(&syms, &ch, || Cplx::ZERO);
        for (a, b) in syms.iter().zip(out.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn noiseless_roundtrip_random_channel() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let ch = random_channel(&mut rng);
            let syms = qpsk_symbols(32, 11);
            let out = alamouti_transmit(&syms, &ch, || Cplx::ZERO);
            for (a, b) in syms.iter().zip(out.iter()) {
                assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn odd_length_input_roundtrips() {
        let syms = qpsk_symbols(7, 13);
        let mut rng = StdRng::seed_from_u64(17);
        let ch = random_channel(&mut rng);
        let out = alamouti_transmit(&syms, &ch, || Cplx::ZERO);
        assert_eq!(out.len(), 7);
        for (a, b) in syms.iter().zip(out.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn diversity_beats_siso_in_deep_fade() {
        // When one path is in a deep fade, the other three keep the
        // combined SNR up — the whole point of STBC on poor links.
        let ch = Mimo2x2 {
            h: [
                [Cplx::new(0.05, 0.0), Cplx::ONE],
                [Cplx::new(0.8, 0.3), Cplx::new(0.0, 0.9)],
            ],
        };
        assert!(ch.energy() > 1.0);
        let syms = qpsk_symbols(512, 19);
        let mut rng = StdRng::seed_from_u64(23);
        let out = alamouti_transmit(&syms, &ch, || complex_gaussian(&mut rng, 0.05));
        // Hard-decide QPSK and count symbol errors.
        let errors = syms
            .iter()
            .zip(out.iter())
            .filter(|(a, b)| (a.re >= 0.0) != (b.re >= 0.0) || (a.im >= 0.0) != (b.im >= 0.0))
            .count();
        assert!(
            errors == 0,
            "STBC should survive one deep-faded path, got {errors} errors"
        );
    }

    #[test]
    fn zero_channel_returns_zero() {
        let ch = Mimo2x2 {
            h: [[Cplx::ZERO; 2]; 2],
        };
        let (s1, s2) = alamouti_combine(&ch, [Cplx::ONE, Cplx::ONE], [Cplx::ONE, Cplx::ONE]);
        assert_eq!(s1, Cplx::ZERO);
        assert_eq!(s2, Cplx::ZERO);
    }
}
