//! The 802.11 convolutional codec: K=7 (133, 171) encoder, puncturing, and
//! a hard-decision Viterbi decoder.
//!
//! Commodity 802.11n cards apply this FEC below the PER the paper measures
//! in §3.2 ("A small increase in the raw uncoded BER ... might result in no
//! change in the PER on a commercial coded system like 802.11n"). Having a
//! real codec lets the baseband produce *coded* Monte-Carlo PER curves to
//! cross-validate the analytic union bound in `acorn-phy::coding`.
//!
//! * Mother code: rate 1/2, constraint length 7, generators 133/171 octal.
//! * Puncturing: the standard 802.11a/n matrices for rates 2/3, 3/4, 5/6.
//! * Termination: six zero tail bits return the encoder to state 0, so the
//!   decoder tracebacks from a known state.

use acorn_phy::CodeRate;

/// Generator polynomial G0 = 133 octal (window MSB = current input bit).
const G0: u32 = 0o133;
/// Generator polynomial G1 = 171 octal.
const G1: u32 = 0o171;
/// Number of trellis states (2^(K−1) = 64).
const STATES: usize = 64;
/// Tail bits appended to terminate the trellis.
pub const TAIL_BITS: usize = 6;

#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn parity(x: u32) -> bool {
    x.count_ones() % 2 == 1
}

/// One trellis branch: given a 6-bit state and an input bit, produce the
/// coded bit pair and the successor state.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn step(state: u32, input: bool) -> (bool, bool, u32) {
    let window = ((input as u32) << 6) | state;
    (parity(window & G0), parity(window & G1), window >> 1)
}

/// Coded output of every (state, input) branch, packed as `A | B<<1` and
/// tabulated at compile time — the decoder's inner loop does one byte load
/// where [`step`] computes two parities.
const BRANCH_OUT: [u8; 2 * STATES] = {
    let mut t = [0u8; 2 * STATES];
    let mut s = 0;
    while s < STATES {
        let mut input = 0;
        while input < 2 {
            let window = ((input as u32) << 6) | s as u32;
            let a = (window & G0).count_ones() & 1;
            let b = (window & G1).count_ones() & 1;
            t[2 * s + input] = (a | (b << 1)) as u8;
            input += 1;
        }
        s += 1;
    }
    t
};

/// Successor state of a branch: the input bit shifts into the window MSB.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn next_state(state: usize, input: usize) -> usize {
    (state >> 1) | (input << 5)
}

/// Rate-1/2 convolutional encoding with trellis termination: encodes
/// `bits` followed by six zero tail bits, producing `2·(len+6)` coded bits
/// as interleaved (A, B) pairs.
pub fn encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::new();
    encode_into(bits, &mut out);
    out
}

/// Allocation-free [`encode`]: clears and refills `out`.
///
/// The branch outputs come from the [`BRANCH_OUT`] table (one byte load
/// per bit instead of two parity computations), and the output is written
/// by index into a pre-sized buffer so the loop carries no capacity
/// checks.
pub fn encode_into(bits: &[bool], out: &mut Vec<bool>) {
    let total = bits.len() + TAIL_BITS;
    out.clear();
    out.resize(2 * total, false);
    let mut state = 0usize;
    for (i, &b) in bits.iter().enumerate() {
        let o = BRANCH_OUT[2 * state + b as usize];
        out[2 * i] = o & 1 != 0;
        out[2 * i + 1] = o & 2 != 0;
        state = (state >> 1) | ((b as usize) << 5);
    }
    for i in bits.len()..total {
        let o = BRANCH_OUT[2 * state];
        out[2 * i] = o & 1 != 0;
        out[2 * i + 1] = o & 2 != 0;
        state >>= 1;
    }
    debug_assert_eq!(state, 0, "tail bits must return the encoder to state 0");
}

/// The puncturing matrix of a code rate: `(keep_a, keep_b)` per position of
/// the puncturing period. Rate 1/2 keeps everything.
fn puncture_pattern(rate: CodeRate) -> (&'static [bool], &'static [bool]) {
    match rate {
        CodeRate::R12 => (&[true], &[true]),
        CodeRate::R23 => (&[true, true], &[true, false]),
        CodeRate::R34 => (&[true, true, false], &[true, false, true]),
        CodeRate::R56 => (
            &[true, true, false, true, false],
            &[true, false, true, false, true],
        ),
    }
}

/// Punctures a rate-1/2 coded stream (as produced by [`encode`]) down to
/// the target rate by deleting bits per the standard matrices.
pub fn puncture(coded: &[bool], rate: CodeRate) -> Vec<bool> {
    assert!(
        coded.len() % 2 == 0,
        "coded stream must be whole (A,B) pairs"
    );
    let (pa, pb) = puncture_pattern(rate);
    let period = pa.len();
    let mut out = Vec::with_capacity(coded.len());
    for (i, pair) in coded.chunks(2).enumerate() {
        let slot = i % period;
        if pa[slot] {
            out.push(pair[0]);
        }
        if pb[slot] {
            out.push(pair[1]);
        }
    }
    out
}

/// Re-inflates a punctured stream into `(Option<A>, Option<B>)` pairs, with
/// `None` marking erased (punctured) positions that contribute no branch
/// metric. `n_pairs` is the original pair count, `info_len + TAIL_BITS`.
pub fn depuncture(
    rx: &[bool],
    rate: CodeRate,
    n_pairs: usize,
) -> Vec<(Option<bool>, Option<bool>)> {
    let mut out = Vec::new();
    depuncture_into(rx, rate, n_pairs, &mut out);
    out
}

/// Allocation-free [`depuncture`]: clears and refills `out`.
pub fn depuncture_into(
    rx: &[bool],
    rate: CodeRate,
    n_pairs: usize,
    out: &mut Vec<(Option<bool>, Option<bool>)>,
) {
    let (pa, pb) = puncture_pattern(rate);
    let period = pa.len();
    out.clear();
    out.reserve(n_pairs);
    let mut it = rx.iter();
    for i in 0..n_pairs {
        let slot = i % period;
        let a = if pa[slot] { it.next().copied() } else { None };
        let b = if pb[slot] { it.next().copied() } else { None };
        out.push((a, b));
    }
}

/// Depunctures straight into received-symbol *class* bytes
/// (`3·sym(a) + sym(b)`, the index of a [`COST_SOA`] table), skipping the
/// intermediate `(Option, Option)` pair representation: at rate 1/2 (no
/// puncturing) this is one branchless byte per received bit pair, a loop
/// the autovectorizer handles, where building `Option` pairs walks a
/// serial iterator.
pub fn depuncture_classes_into(rx: &[bool], rate: CodeRate, n_pairs: usize, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(n_pairs);
    if rate == CodeRate::R12 && rx.len() >= 2 * n_pairs {
        // sym(Some(bit)) = 1 + bit, so the class is 4 + 3a + b.
        out.extend(
            rx.chunks_exact(2)
                .take(n_pairs)
                .map(|p| 4 + 3 * (p[0] as u8) + (p[1] as u8)),
        );
        return;
    }
    let (pa, pb) = puncture_pattern(rate);
    let period = pa.len();
    let mut it = rx.iter();
    for i in 0..n_pairs {
        let slot = i % period;
        let a = if pa[slot] { it.next().copied() } else { None };
        let b = if pb[slot] { it.next().copied() } else { None };
        out.push((3 * sym(a) + sym(b)) as u8);
    }
}

/// Half the state count — the lane width of the SoA ACS step.
const HALF: usize = STATES / 2;

/// Metric value large enough to never be chosen over a genuine path,
/// small enough that `INF` + (a few branch metrics) cannot wrap a `u16`.
const INF: u16 = 0x7000;

/// Maps a received (possibly erased) bit to its symbol class 0/1/2
/// (erased / zero / one); a pair selects one of the nine [`COST_SOA`]
/// tables.
#[inline]
fn sym(r: Option<bool>) -> usize {
    match r {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

/// Branch metrics in structure-of-arrays layout, one table per received
/// symbol class pair: for lane `j` (successor pair `j` / `j + 32`),
/// `[0][j]` is the cost of the even predecessor `2j` on input 0, `[1][j]`
/// the odd predecessor `2j + 1` on input 0, `[2][j]`/`[3][j]` the same on
/// input 1. Tabulated at compile time so the ACS inner loop is four
/// *contiguous* u16 streams — no per-step table expansion and no strided
/// gathers, exactly the shape the autovectorizer turns into lane ops.
const COST_SOA: [[[u16; HALF]; 4]; 9] = {
    let mut t = [[[0u16; HALF]; 4]; 9];
    let mut v = 0;
    while v < 9 {
        let (va, vb) = (v / 3, v % 3);
        let mut bm = [0u16; 4];
        let mut out = 0;
        while out < 4 {
            let mut m = 0;
            if va != 0 && ((va == 2) != (out & 1 == 1)) {
                m += 1;
            }
            if vb != 0 && ((vb == 2) != (out & 2 == 2)) {
                m += 1;
            }
            bm[out] = m;
            out += 1;
        }
        let mut j = 0;
        while j < HALF {
            t[v][0][j] = bm[BRANCH_OUT[2 * (2 * j)] as usize];
            t[v][1][j] = bm[BRANCH_OUT[2 * (2 * j + 1)] as usize];
            t[v][2][j] = bm[BRANCH_OUT[2 * (2 * j) + 1] as usize];
            t[v][3][j] = bm[BRANCH_OUT[2 * (2 * j + 1) + 1] as usize];
            j += 1;
        }
        v += 1;
    }
    t
};

/// Hard-decision Viterbi decoding of `pairs` (with erasures), returning
/// `info_len` decoded information bits. Assumes the encoder started in
/// state 0 and was terminated with [`TAIL_BITS`] zero bits; the traceback
/// therefore starts from state 0 at the end of the trellis.
pub fn viterbi_decode(pairs: &[(Option<bool>, Option<bool>)], info_len: usize) -> Vec<bool> {
    let mut survivor = Vec::new();
    let mut decoded = Vec::new();
    viterbi_decode_into(pairs, info_len, &mut survivor, &mut decoded);
    decoded
}

/// One lane-shaped ACS step: `src` holds the 64 state-major path metrics
/// entering the step, `dst` receives the 64 successor metrics, and the
/// returned word packs the 64 survivor choices (bit `s` = choice of state
/// `s`). The predecessor pair `(2j, 2j+1)` feeds exactly the two
/// successors `j` (input 0) and `j + 32` (input 1): the metrics are
/// de-interleaved once into an *even* lane array (`ev[j]` = metric of
/// state `2j`) and an *odd* array (`od[j]` = metric of `2j + 1`), then
/// each pass is pure lane arithmetic over 32 contiguous `u16` lanes —
/// add, branchless compare, branchless select, mask accumulate — the
/// shape the autovectorizer maps onto SIMD add/compare/min and
/// compare-mask instructions, with the branch metrics streaming from the
/// compile-time SoA tables in [`COST_SOA`].
#[inline(always)]
fn acs_step_packed(src: &[u16; STATES], dst: &mut [u16; STATES], v: usize) -> u64 {
    let cost = &COST_SOA[v];
    let mut ev = [0u16; HALF];
    let mut od = [0u16; HALF];
    for j in 0..HALF {
        ev[j] = src[2 * j];
        od[j] = src[2 * j + 1];
    }
    let (lo, hi) = dst.split_at_mut(HALF);
    // Input-0 successors j: predecessors (2j, 2j+1).
    let mut w0 = 0u64;
    for j in 0..HALF {
        let a = ev[j] + cost[0][j];
        let b = od[j] + cost[1][j];
        let take = b < a;
        lo[j] = if take { b } else { a };
        w0 |= (take as u64) << j;
    }
    // Input-1 successors j + 32: same predecessors, other branch.
    let mut w1 = 0u64;
    for j in 0..HALF {
        let a = ev[j] + cost[2][j];
        let b = od[j] + cost[3][j];
        let take = b < a;
        hi[j] = if take { b } else { a };
        w1 |= (take as u64) << j;
    }
    w0 | (w1 << HALF)
}

/// The shared trellis walk: `class_of(t)` yields the received-symbol
/// class index (`3·sym(a) + sym(b)`) of step `t`. Monomorphized twice —
/// over precomputed class bytes (the hot path, [`viterbi_classes_into`])
/// and over `(Option, Option)` pairs ([`viterbi_decode_into`]) — so both
/// entries walk the same [`acs_step_packed`] kernel.
///
/// The metric banks are double-buffered by step parity (no per-step
/// metric copy), and the 64 survivor choices of each step land in a
/// single packed `u64` word, shrinking survivor memory 8× (one word per
/// step instead of 64 bytes) so long trellises stay cache-resident.
///
/// Tie-breaking (the lower-numbered predecessor wins on equal metrics)
/// and the metric arithmetic are exactly those of the retained
/// state-major oracle [`viterbi_decode_scalar`]; the decoded output is
/// bit-identical for every input (pinned by the kernel-equivalence
/// proptests).
#[inline(always)]
fn viterbi_core(
    n: usize,
    info_len: usize,
    class_of: impl Fn(usize) -> usize,
    survivor: &mut Vec<u64>,
    decoded: &mut Vec<bool>,
) {
    assert!(
        n < (INF as usize - 16) / 2,
        "trellis too long for u16 metrics"
    );

    // One packed word per step; `resize` only zeroes freshly grown
    // memory, and every word is overwritten before the traceback reads it.
    if survivor.len() < n {
        survivor.resize(n, 0);
    }

    let mut bufs = [[INF; STATES]; 2];
    bufs[0][0] = 0; // state 0
    for t in 0..n {
        let v = class_of(t);
        let (b0, b1) = bufs.split_at_mut(1);
        survivor[t] = if t % 2 == 0 {
            acs_step_packed(&b0[0], &mut b1[0], v)
        } else {
            acs_step_packed(&b1[0], &mut b0[0], v)
        };
    }

    traceback(n, info_len, survivor, decoded);
}

/// Allocation-free core of [`viterbi_decode`]: the survivor memory and the
/// output vector are caller-provided scratch, resized (never shrunk) so a
/// reused buffer costs no allocation in steady state. See [`viterbi_core`]
/// for the lane-shaped ACS design; the measured decode path goes through
/// [`viterbi_classes_into`] instead, which skips the per-step `Option`
/// unpacking.
pub fn viterbi_decode_into(
    pairs: &[(Option<bool>, Option<bool>)],
    info_len: usize,
    survivor: &mut Vec<u64>,
    decoded: &mut Vec<bool>,
) {
    assert_eq!(
        pairs.len(),
        info_len + TAIL_BITS,
        "trellis length must be info_len + tail"
    );
    viterbi_core(
        pairs.len(),
        info_len,
        |t| {
            let (ra, rb) = pairs[t];
            3 * sym(ra) + sym(rb)
        },
        survivor,
        decoded,
    );
}

/// [`viterbi_decode_into`] over precomputed received-symbol class bytes
/// (as produced by [`depuncture_classes_into`]): the hot decode path.
/// `classes[t]` is `3·sym(a) + sym(b)` of trellis step `t`, so the ACS
/// step indexes its branch-metric table directly instead of unpacking
/// two `Option<bool>`s per step.
pub fn viterbi_classes_into(
    classes: &[u8],
    info_len: usize,
    survivor: &mut Vec<u64>,
    decoded: &mut Vec<bool>,
) {
    assert_eq!(
        classes.len(),
        info_len + TAIL_BITS,
        "trellis length must be info_len + tail"
    );
    #[cfg(all(target_arch = "x86_64", target_feature = "avx512bw"))]
    {
        // Same recursion with the metric banks held in two zmm registers
        // for the whole trellis — one survivor-word store per step is the
        // only per-step memory traffic besides the cost-table loads. The
        // portable path below stays the reference on other targets.
        let n = classes.len();
        assert!(
            n < (INF as usize - 16) / 2,
            "trellis too long for u16 metrics"
        );
        if survivor.len() < n {
            survivor.resize(n, 0);
        }
        avx512::acs_run(classes, survivor);
        traceback(n, info_len, survivor, decoded);
        return;
    }
    #[allow(unreachable_code)]
    viterbi_core(
        classes.len(),
        info_len,
        |t| (classes[t] as usize) % 9,
        survivor,
        decoded,
    );
}

/// Shared traceback from the terminated state 0: the input bit that
/// *entered* state `s` is its top window bit, the predecessor is
/// `2·(s & 31)` plus the recorded choice.
fn traceback(n: usize, info_len: usize, survivor: &[u64], decoded: &mut Vec<bool>) {
    let mut state = 0usize;
    decoded.resize(n, false);
    for t in (0..n).rev() {
        decoded[t] = state >> 5 != 0;
        state = ((state & 31) << 1) | ((survivor[t] >> state) & 1) as usize;
    }
    decoded.truncate(info_len);
}

/// AVX-512BW ACS kernel: 32 u16 butterflies per instruction, two
/// instructions' worth of lanes covering all 64 states.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512bw"))]
#[allow(unsafe_code)] // std::arch intrinsics; the crate is otherwise safe.
mod avx512 {
    use super::{COST_SOA, HALF, INF, STATES};
    use std::arch::x86_64::*;

    /// Lane-gather indices pulling the even (resp. odd) u16 lanes out of
    /// the concatenated pair of metric registers: predecessors `2j` and
    /// `2j + 1` of the radix-2 butterfly.
    const IDX_EV: [u16; HALF] = {
        let mut t = [0u16; HALF];
        let mut j = 0;
        while j < HALF {
            t[j] = 2 * j as u16;
            j += 1;
        }
        t
    };
    const IDX_OD: [u16; HALF] = {
        let mut t = [0u16; HALF];
        let mut j = 0;
        while j < HALF {
            t[j] = 2 * j as u16 + 1;
            j += 1;
        }
        t
    };

    /// Runs the full ACS recursion, one packed survivor word per step.
    /// Identical arithmetic to [`acs_step_packed`](super::acs_step_packed):
    /// unsigned u16 adds, `b < a` winner selection (`min_epu16` plus the
    /// compare mask), so the survivor words are bit-identical.
    pub(super) fn acs_run(classes: &[u8], survivor: &mut [u64]) {
        // SAFETY: the module's `cfg` gate means avx512bw is statically
        // enabled wherever this compiles; the raw-pointer loads read
        // in-bounds, properly initialized `[u16; 32]` arrays.
        unsafe {
            let idx_ev = _mm512_loadu_si512(IDX_EV.as_ptr().cast());
            let idx_od = _mm512_loadu_si512(IDX_OD.as_ptr().cast());
            let mut init = [INF; STATES];
            init[0] = 0;
            let mut m0 = _mm512_loadu_si512(init.as_ptr().cast());
            let mut m1 = _mm512_loadu_si512(init.as_ptr().add(HALF).cast());
            for (t, &cls) in classes.iter().enumerate() {
                let c = &COST_SOA[(cls as usize) % 9];
                let ev = _mm512_permutex2var_epi16(m0, idx_ev, m1);
                let od = _mm512_permutex2var_epi16(m0, idx_od, m1);
                let a0 = _mm512_add_epi16(ev, _mm512_loadu_si512(c[0].as_ptr().cast()));
                let b0 = _mm512_add_epi16(od, _mm512_loadu_si512(c[1].as_ptr().cast()));
                let k0 = _mm512_cmplt_epu16_mask(b0, a0);
                m0 = _mm512_min_epu16(a0, b0);
                let a1 = _mm512_add_epi16(ev, _mm512_loadu_si512(c[2].as_ptr().cast()));
                let b1 = _mm512_add_epi16(od, _mm512_loadu_si512(c[3].as_ptr().cast()));
                let k1 = _mm512_cmplt_epu16_mask(b1, a1);
                m1 = _mm512_min_epu16(a1, b1);
                survivor[t] = (k0 as u64) | ((k1 as u64) << HALF);
            }
        }
    }
}

/// The retained state-major scalar decoder — the oracle the lane-shaped
/// [`viterbi_decode_into`] is pinned against (the `interference_graph_brute`
/// of this crate: never called on hot paths, kept so equivalence tests and
/// benches have an independent reference implementation).
///
/// Walks the same successor-first trellis with interleaved metrics, a
/// per-call expanded cost table and one survivor byte per (step, state);
/// tie-breaking is the classic lower-predecessor-wins rule.
pub fn viterbi_decode_scalar(pairs: &[(Option<bool>, Option<bool>)], info_len: usize) -> Vec<bool> {
    assert_eq!(
        pairs.len(),
        info_len + TAIL_BITS,
        "trellis length must be info_len + tail"
    );
    let n = pairs.len();
    assert!(
        n < (INF as usize - 16) / 2,
        "trellis too long for u16 metrics"
    );

    let mut survivor = vec![0u8; n * STATES];
    let mut metric = [INF; STATES];
    let mut next_metric = [INF; STATES];
    metric[0] = 0;

    // A received (possibly erased) pair takes one of 3 × 3 values; for
    // each, cost[4j + i] is the branch metric of predecessor 2j (i ∈
    // {0,1}: input bit) and predecessor 2j+1 (i ∈ {2,3}).
    let mut cost_tables = [[0u16; 2 * STATES]; 9];
    for (v, table) in cost_tables.iter_mut().enumerate() {
        let (va, vb) = (v / 3, v % 3);
        let mut bm = [0u16; 4];
        for (out, slot) in bm.iter_mut().enumerate() {
            let mut m = 0;
            if va != 0 && (va == 2) != (out & 1 == 1) {
                m += 1;
            }
            if vb != 0 && (vb == 2) != (out & 2 == 2) {
                m += 1;
            }
            *slot = m;
        }
        for (c, &o) in table.iter_mut().zip(BRANCH_OUT.iter()) {
            *c = bm[o as usize];
        }
    }

    for (t, &(ra, rb)) in pairs.iter().enumerate() {
        let cost = &cost_tables[3 * sym(ra) + sym(rb)];
        let (row_lo, row_hi) = survivor[t * STATES..(t + 1) * STATES].split_at_mut(STATES / 2);
        for j in 0..STATES / 2 {
            let a = metric[2 * j];
            let b = metric[2 * j + 1];
            // Successor j (input 0) and successor j+32 (input 1).
            let (a0, b0) = (a + cost[4 * j], b + cost[4 * j + 2]);
            let (a1, b1) = (a + cost[4 * j + 1], b + cost[4 * j + 3]);
            let take0 = b0 < a0;
            let take1 = b1 < a1;
            next_metric[j] = if take0 { b0 } else { a0 };
            next_metric[j + 32] = if take1 { b1 } else { a1 };
            row_lo[j] = take0 as u8;
            row_hi[j] = take1 as u8;
        }
        std::mem::swap(&mut metric, &mut next_metric);
    }

    let mut state = 0usize;
    let mut decoded = vec![false; n];
    for t in (0..n).rev() {
        decoded[t] = state >> 5 != 0;
        state = ((state & 31) << 1) | survivor[t * STATES + state] as usize;
    }
    decoded.truncate(info_len);
    decoded
}

/// Convenience codec wrapping encode → puncture and depuncture → decode for
/// one packet at a configured rate.
#[derive(Debug, Clone, Copy)]
pub struct Codec {
    /// Operating code rate.
    pub rate: CodeRate,
}

impl Codec {
    /// Creates a codec at the given rate.
    pub fn new(rate: CodeRate) -> Codec {
        Codec { rate }
    }

    /// Encodes and punctures an information-bit packet.
    pub fn encode(&self, info: &[bool]) -> Vec<bool> {
        puncture(&encode(info), self.rate)
    }

    /// Allocation-free [`Codec::encode`]: the mother-coded stream lands in
    /// `mother` scratch (bypassed entirely at rate 1/2, where puncturing is
    /// the identity) and the punctured output in `out`.
    pub fn encode_into(&self, info: &[bool], mother: &mut Vec<bool>, out: &mut Vec<bool>) {
        if self.rate == CodeRate::R12 {
            encode_into(info, out);
            return;
        }
        encode_into(info, mother);
        let (pa, pb) = puncture_pattern(self.rate);
        let period = pa.len();
        out.clear();
        out.reserve(mother.len());
        for (i, pair) in mother.chunks(2).enumerate() {
            let slot = i % period;
            if pa[slot] {
                out.push(pair[0]);
            }
            if pb[slot] {
                out.push(pair[1]);
            }
        }
    }

    /// Number of coded (post-puncturing) bits produced for `info_len`
    /// information bits.
    pub fn coded_len(&self, info_len: usize) -> usize {
        let (pa, pb) = puncture_pattern(self.rate);
        let period = pa.len();
        let n_pairs = info_len + TAIL_BITS;
        let mut count = 0;
        for i in 0..n_pairs {
            let slot = i % period;
            count += pa[slot] as usize + pb[slot] as usize;
        }
        count
    }

    /// Depunctures and Viterbi-decodes a received coded stream back to
    /// `info_len` information bits.
    pub fn decode(&self, rx: &[bool], info_len: usize) -> Vec<bool> {
        let pairs = depuncture(rx, self.rate, info_len + TAIL_BITS);
        viterbi_decode(&pairs, info_len)
    }

    /// Allocation-free [`Codec::decode`]: depunctured symbol classes,
    /// survivor memory (one packed `u64` per trellis step) and the decoded
    /// output all live in caller scratch. Routes through
    /// [`depuncture_classes_into`] + [`viterbi_classes_into`] — decoded
    /// output bit-identical to [`Codec::decode`], which goes through the
    /// `(Option, Option)` pair representation.
    pub fn decode_into(
        &self,
        rx: &[bool],
        info_len: usize,
        classes: &mut Vec<u8>,
        survivor: &mut Vec<u64>,
        out: &mut Vec<bool>,
    ) {
        depuncture_classes_into(rx, self.rate, info_len + TAIL_BITS, classes);
        viterbi_classes_into(classes, info_len, survivor, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn branch_lut_matches_the_step_function() {
        for state in 0..STATES {
            for (input, bit) in [(0usize, false), (1, true)] {
                let (a, b, next) = step(state as u32, bit);
                let out = BRANCH_OUT[2 * state + input];
                assert_eq!(out & 1 == 1, a, "state {state} input {input}: A");
                assert_eq!(out & 2 == 2, b, "state {state} input {input}: B");
                assert_eq!(next_state(state, input), next as usize);
            }
        }
    }

    #[test]
    fn encoder_output_length() {
        let coded = encode(&[true; 10]);
        assert_eq!(coded.len(), 2 * (10 + TAIL_BITS));
    }

    #[test]
    fn encoder_known_vector() {
        // All-zero input stays all-zero (linear code).
        let coded = encode(&[false; 8]);
        assert!(coded.iter().all(|b| !b));
        // A single 1 produces the generator impulse response: the two
        // polynomials read MSB-first as the bit leaves the window.
        let coded = encode(&[true, false, false, false, false, false, false]);
        let a: Vec<bool> = coded.iter().step_by(2).copied().collect();
        let b: Vec<bool> = coded.iter().skip(1).step_by(2).copied().collect();
        // impulse response = taps of G as the bit shifts through; weight of
        // the joint response must equal the code's free distance pair count
        // for a single-bit message: weight(G0) + weight(G1) = 5 + 5 = 10.
        let weight: usize = a.iter().chain(b.iter()).map(|&x| x as usize).sum();
        assert_eq!(weight, 10); // dfree of the K=7 (133,171) code
    }

    #[test]
    fn clean_roundtrip_all_rates() {
        for rate in CodeRate::ALL {
            let info = random_bits(240, 5);
            let codec = Codec::new(rate);
            let tx = codec.encode(&info);
            assert_eq!(tx.len(), codec.coded_len(info.len()));
            let decoded = codec.decode(&tx, info.len());
            assert_eq!(decoded, info, "{rate:?}");
        }
    }

    #[test]
    fn coded_len_matches_rate() {
        let codec = Codec::new(CodeRate::R34);
        // rate 3/4: 3 info bits → 4 coded bits. With 300+6 pairs → 408.
        assert_eq!(codec.coded_len(300), 408);
        let half = Codec::new(CodeRate::R12);
        assert_eq!(half.coded_len(300), 612);
    }

    #[test]
    fn corrects_scattered_errors_rate_half() {
        let info = random_bits(300, 9);
        let codec = Codec::new(CodeRate::R12);
        let mut tx = codec.encode(&info);
        // Flip well-separated bits — within the code's correction power.
        for idx in [10, 100, 250, 400, 550] {
            tx[idx] = !tx[idx];
        }
        assert_eq!(codec.decode(&tx, info.len()), info);
    }

    #[test]
    fn corrects_errors_at_all_punctured_rates() {
        for rate in CodeRate::ALL {
            let info = random_bits(300, 13);
            let codec = Codec::new(rate);
            let mut tx = codec.encode(&info);
            let stride = tx.len() / 3;
            tx[stride] = !tx[stride];
            tx[2 * stride] = !tx[2 * stride];
            assert_eq!(codec.decode(&tx, info.len()), info, "{rate:?}");
        }
    }

    #[test]
    fn weaker_codes_break_earlier_under_noise() {
        // Monte-Carlo: at a fixed channel BER, post-decode error counts
        // should (weakly) increase with code rate — mirroring the analytic
        // ordering in acorn-phy::coding.
        let mut rng = StdRng::seed_from_u64(77);
        let p_flip = 0.04;
        let mut errors_by_rate = Vec::new();
        for rate in CodeRate::ALL {
            let codec = Codec::new(rate);
            let mut errors = 0usize;
            for trial in 0..30 {
                let info = random_bits(400, 1000 + trial);
                let mut tx = codec.encode(&info);
                for b in tx.iter_mut() {
                    if rng.gen_bool(p_flip) {
                        *b = !*b;
                    }
                }
                let decoded = codec.decode(&tx, info.len());
                errors += decoded.iter().zip(&info).filter(|(a, b)| a != b).count();
            }
            errors_by_rate.push(errors);
        }
        assert!(
            errors_by_rate[0] <= errors_by_rate[2] && errors_by_rate[0] <= errors_by_rate[3],
            "{errors_by_rate:?}"
        );
        assert!(
            *errors_by_rate.last().unwrap() > 0,
            "rate 5/6 should show errors at 4% channel BER: {errors_by_rate:?}"
        );
    }

    #[test]
    fn lane_decoder_matches_scalar_oracle_under_noise() {
        // The deeper random-pattern sweep lives in the kernel-equivalence
        // proptests; this pins the basic contract in the unit suite.
        let mut rng = StdRng::seed_from_u64(4242);
        for rate in CodeRate::ALL {
            let codec = Codec::new(rate);
            for trial in 0..10 {
                let info = random_bits(180, 900 + trial);
                let mut tx = codec.encode(&info);
                for b in tx.iter_mut() {
                    if rng.gen_bool(0.05) {
                        *b = !*b;
                    }
                }
                let pairs = depuncture(&tx, rate, info.len() + TAIL_BITS);
                assert_eq!(
                    viterbi_decode(&pairs, info.len()),
                    viterbi_decode_scalar(&pairs, info.len()),
                    "{rate:?} trial {trial}"
                );
            }
        }
    }

    #[test]
    fn lane_decoder_matches_scalar_oracle_on_pure_erasures() {
        // Degenerate inputs: every pair fully or half erased.
        for n_pairs in [TAIL_BITS, 20, 63] {
            let info_len = n_pairs - TAIL_BITS;
            for pattern in 0..3usize {
                let pairs: Vec<(Option<bool>, Option<bool>)> = (0..n_pairs)
                    .map(|i| match pattern {
                        0 => (None, None),
                        1 => (Some(i % 3 == 0), None),
                        _ => (None, Some(i % 2 == 0)),
                    })
                    .collect();
                assert_eq!(
                    viterbi_decode(&pairs, info_len),
                    viterbi_decode_scalar(&pairs, info_len),
                    "n_pairs {n_pairs} pattern {pattern}"
                );
            }
        }
    }

    #[test]
    fn survivor_scratch_reuse_never_changes_the_answer() {
        // A long noisy trellis followed by a short clean one on the same
        // scratch: stale packed words beyond the short trellis must never
        // be read.
        let codec = Codec::new(CodeRate::R12);
        let mut survivor = Vec::new();
        let mut decoded = Vec::new();
        let long = random_bits(400, 31);
        let tx = codec.encode(&long);
        let pairs = depuncture(&tx, codec.rate, long.len() + TAIL_BITS);
        viterbi_decode_into(&pairs, long.len(), &mut survivor, &mut decoded);
        assert_eq!(decoded, long);

        let short = random_bits(40, 32);
        let tx = codec.encode(&short);
        let pairs = depuncture(&tx, codec.rate, short.len() + TAIL_BITS);
        viterbi_decode_into(&pairs, short.len(), &mut survivor, &mut decoded);
        assert_eq!(decoded, short);
    }

    #[test]
    fn depuncture_erasure_positions() {
        let pairs = depuncture(&[true, true, false], CodeRate::R34, 3);
        // Pattern: (A1 B1) (A2 −) (− B3)
        assert_eq!(pairs[0], (Some(true), Some(true)));
        assert_eq!(pairs[1], (Some(false), None));
        assert_eq!(pairs[2], (None, None)); // rx exhausted → erasures
    }

    #[test]
    fn puncture_depuncture_roundtrip_structure() {
        for rate in CodeRate::ALL {
            let info = random_bits(60, 21);
            let coded = encode(&info);
            let punctured = puncture(&coded, rate);
            let pairs = depuncture(&punctured, rate, info.len() + TAIL_BITS);
            // Every Some() must match the original coded bit.
            for (i, (a, b)) in pairs.iter().enumerate() {
                if let Some(x) = a {
                    assert_eq!(*x, coded[2 * i], "{rate:?} A{i}");
                }
                if let Some(x) = b {
                    assert_eq!(*x, coded[2 * i + 1], "{rate:?} B{i}");
                }
            }
        }
    }
}
